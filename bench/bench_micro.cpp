// Microbenchmarks (google-benchmark) for the hot data structures under
// the measurement pipelines: prefix-trie longest-prefix match, DNS wire
// codec, resolver cache operations, anycast catchment scoring, the
// count-min sketch, and a full Google-DNS probe.

#include <benchmark/benchmark.h>

#include "anycast/catchment.h"
#include "core/chromium/sketch.h"
#include "core/obs/export.h"
#include "dns/wire.h"
#include "dnssrv/cache.h"
#include "googledns/google_dns.h"
#include "net/prefix_trie.h"
#include "net/rng.h"

using namespace netclients;

namespace {

void BM_TrieLongestMatch(benchmark::State& state) {
  net::PrefixTrie<std::uint32_t> trie;
  net::Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    const auto base = static_cast<std::uint32_t>(rng());
    const auto len = static_cast<std::uint8_t>(12 + rng.below(13));
    trie.insert(net::Prefix(net::Ipv4Addr(base), len),
                static_cast<std::uint32_t>(i));
  }
  net::Rng query_rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.longest_match(net::Ipv4Addr(static_cast<std::uint32_t>(
            query_rng()))));
  }
}
BENCHMARK(BM_TrieLongestMatch);

void BM_WireEncode(benchmark::State& state) {
  auto query = dns::make_query(
      0x1234, *dns::DnsName::parse("www.google.com"), dns::RecordType::kA,
      false,
      dns::EcsOption::for_query(*net::Prefix::parse("203.0.113.0/24")));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::encode(query));
  }
}
BENCHMARK(BM_WireEncode);

void BM_WireDecode(benchmark::State& state) {
  auto query = dns::make_query(
      0x1234, *dns::DnsName::parse("www.google.com"), dns::RecordType::kA,
      false,
      dns::EcsOption::for_query(*net::Prefix::parse("203.0.113.0/24")));
  const auto wire = dns::encode(query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode(wire));
  }
}
BENCHMARK(BM_WireDecode);

void BM_CacheLookupHit(benchmark::State& state) {
  dnssrv::DnsCache cache(1 << 16);
  const dnssrv::CacheKey key{*dns::DnsName::parse("www.google.com"),
                             dns::RecordType::kA,
                             *net::Prefix::parse("203.0.113.0/24")};
  dnssrv::CacheEntry entry;
  entry.expires_at = 1e18;
  cache.insert(key, entry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(key, 1.0));
  }
}
BENCHMARK(BM_CacheLookupHit);

void BM_CatchmentScore(benchmark::State& state) {
  const auto pops = anycast::PopTable::google_default();
  const anycast::CatchmentModel catchment(&pops, 7);
  net::Rng rng(3);
  for (auto _ : state) {
    const net::LatLon loc{rng.uniform(-60, 70), rng.uniform(-180, 180)};
    benchmark::DoNotOptimize(catchment.pop_for(loc, rng()));
  }
}
BENCHMARK(BM_CatchmentScore);

void BM_SketchAddEstimate(benchmark::State& state) {
  core::CountMinSketch sketch(1 << 20, 4, 5);
  net::Rng rng(4);
  for (auto _ : state) {
    const std::uint64_t key = rng();
    sketch.add(key);
    benchmark::DoNotOptimize(sketch.estimate(key));
  }
}
BENCHMARK(BM_SketchAddEstimate);

void BM_GoogleDnsProbe(benchmark::State& state) {
  static const auto pops = anycast::PopTable::google_default();
  static const anycast::CatchmentModel catchment(&pops, 7);
  static dnssrv::AuthoritativeServer auth = [] {
    dnssrv::AuthoritativeServer a;
    dnssrv::ZoneConfig zone;
    zone.name = *dns::DnsName::parse("www.google.com");
    zone.min_scope = 20;
    zone.max_scope = 24;
    a.add_zone(zone);
    return a;
  }();
  googledns::GooglePublicDns gdns(&pops, &catchment, &auth);
  const auto name = *dns::DnsName::parse("www.google.com");
  net::Rng rng(6);
  double t = 0;
  for (auto _ : state) {
    const net::Prefix scope(
        net::Ipv4Addr(static_cast<std::uint32_t>(rng())), 22);
    t += 0.01;
    benchmark::DoNotOptimize(gdns.probe(0, name, scope, t,
                                        googledns::Transport::kTcp, 0, 0));
  }
}
BENCHMARK(BM_GoogleDnsProbe);

}  // namespace

// Expanded BENCHMARK_MAIN: the metrics guard must strip --metrics-out
// before benchmark::Initialize sees (and rejects) unknown flags.
int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
