// Figure 1: geographic density of prefixes detected as active by cache
// probing (MaxMind locations, /24-expanded), plus the probed PoPs. The
// paper's qualitative observations: Europe lights up more than China, and
// within regions density follows population.
//
// Output: a coarse ASCII density map, per-region totals, and a CSV of
// 5°x5° bins for plotting.

#include <array>
#include <cstdio>
#include <map>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p =
      bench::PipelineBuilder().with_cache_probing().build();

  // Bin active /24s by MaxMind geolocation.
  std::map<std::pair<int, int>, std::uint64_t> bins;  // (lat5, lon5)
  std::vector<double> region_counts(p.world().countries().size(), 0);
  p.probing.active.for_each([&](net::Prefix prefix) {
    const std::uint32_t first = prefix.first_slash24_index();
    const std::uint64_t count = prefix.slash24_count();
    for (std::uint64_t k = 0; k < count; ++k) {
      const auto rec =
          p.world().geodb().lookup(first + static_cast<std::uint32_t>(k));
      if (!rec) continue;
      const int lat = static_cast<int>(rec->location.lat_deg / 5.0);
      const int lon = static_cast<int>(rec->location.lon_deg / 5.0);
      ++bins[{lat, lon}];
      region_counts[rec->country] += 1;
    }
  });

  // ASCII world map: 36 columns (lon) x 18 rows (lat), log brightness.
  std::printf("Figure 1 — active-prefix density (log scale; "
              "'.':1+ ':':10+ '+':100+ '#':1000+  o = probed PoP)\n\n");
  std::array<std::array<char, 38>, 19> canvas;
  for (auto& row : canvas) row.fill(' ');
  for (const auto& [key, count] : bins) {
    const int row = 17 - (key.first + 18) / 2;  // lat -90..90 -> 18 rows
    const int col = (key.second + 36) / 2;      // lon -180..180 -> 36 cols
    if (row < 0 || row > 17 || col < 0 || col > 35) continue;
    char mark = '.';
    if (count >= 1000) {
      mark = '#';
    } else if (count >= 100) {
      mark = '+';
    } else if (count >= 10) {
      mark = ':';
    }
    canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
        mark;
  }
  for (const auto& [pop, vp] : p.pops.probed_pops) {
    const auto loc = p.world().pops().site(pop).location;
    const int row = 17 - (static_cast<int>(loc.lat_deg / 5.0) + 18) / 2;
    const int col = (static_cast<int>(loc.lon_deg / 5.0) + 36) / 2;
    if (row >= 0 && row <= 17 && col >= 0 && col <= 35) {
      canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          'o';
    }
  }
  for (const auto& row : canvas) {
    std::printf("%.*s\n", 36, row.data());
  }

  // Country ranking (the paper's Europe-vs-China observation).
  std::vector<std::pair<double, std::string>> ranked;
  for (std::size_t c = 0; c < region_counts.size(); ++c) {
    if (region_counts[c] > 0) {
      ranked.emplace_back(region_counts[c], p.world().countries()[c].name);
    }
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("\nactive /24s by country (top 15):\n");
  for (std::size_t i = 0; i < ranked.size() && i < 15; ++i) {
    std::printf("  %-20s %8.0f\n", ranked[i].second.c_str(),
                ranked[i].first);
  }

  std::vector<std::vector<std::string>> csv;
  for (const auto& [key, count] : bins) {
    csv.push_back({std::to_string(key.first * 5),
                   std::to_string(key.second * 5), std::to_string(count)});
  }
  core::write_csv(bench::out_path("fig1_density.csv"),
                  {"lat_bin", "lon_bin", "active_slash24"}, csv);
  return 0;
}
