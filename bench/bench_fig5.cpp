// Figure 5 (Appendix A.1): classification of the 45 Google Public DNS
// PoPs — probed & verified (22), unprobed but verified as serving clients
// via the CDN's resolver logs (5), unprobed & unverified / inactive (18).
// Also checks the paper's load split: probed PoPs carry ~95% of Google
// query volume, the unprobed-but-verified ones ~5%.

#include <cstdio>
#include <unordered_set>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p = bench::PipelineBuilder()
                            .with_cache_probing()
                            .with_validation()
                            .build();

  std::unordered_set<anycast::PopId> probed;
  for (const auto& [pop, vp] : p.pops.probed_pops) probed.insert(pop);

  int probed_verified = 0, unprobed_verified = 0, unprobed_unverified = 0;
  double probed_clients = 0, unprobed_clients = 0;
  core::TextTable table;
  table.set_header({"PoP", "country", "class", "CDN-observed clients"});
  for (const auto& site : p.world().pops().sites()) {
    const bool is_probed = probed.contains(site.id);
    const auto it = p.ms.google_pop_clients.find(site.id);
    const double clients = it == p.ms.google_pop_clients.end() ? 0
                                                               : it->second;
    std::string cls;
    if (is_probed) {
      cls = "probed & verified";
      ++probed_verified;
      probed_clients += clients;
    } else if (clients > 0) {
      cls = "unprobed, verified";
      ++unprobed_verified;
      unprobed_clients += clients;
    } else {
      cls = "unprobed, unverified";
      ++unprobed_unverified;
    }
    table.add_row({site.city, site.country_code, cls,
                   core::human_count(clients)});
  }
  std::printf("Figure 5 — PoP coverage classes\n\n%s\n",
              table.to_string().c_str());
  std::printf("probed & verified      : %2d   (paper: 22)\n",
              probed_verified);
  std::printf("unprobed, verified     : %2d   (paper:  5)\n",
              unprobed_verified);
  std::printf("unprobed, unverified   : %2d   (paper: 18)\n",
              unprobed_unverified);
  const double total = probed_clients + unprobed_clients;
  std::printf("\nGoogle DNS clients at probed PoPs   : %5.1f%%  "
              "(paper: 95%%)\n",
              total > 0 ? 100 * probed_clients / total : 0);
  std::printf("Google DNS clients at unprobed PoPs : %5.1f%%  "
              "(paper:  5%%)\n",
              total > 0 ? 100 * unprobed_clients / total : 0);
  return 0;
}
