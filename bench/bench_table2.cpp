// Table 2: stability of ECS scopes — for each probed domain, how many
// cache hits returned a response scope equal to the (earlier-discovered)
// query scope, within 2 bits, or within 4. Paper: 90% exact, 97% within 2,
// 99% within 4 overall.

#include <cmath>
#include <cstdio>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p =
      bench::PipelineBuilder().with_cache_probing().build();

  const std::size_t domains = p.world().domains().size();
  std::vector<std::uint64_t> total(domains, 0), exact(domains, 0),
      within2(domains, 0), within4(domains, 0);
  for (const core::CacheHit& hit : p.probing.hits) {
    const auto d = static_cast<std::size_t>(hit.domain_index);
    const int diff = std::abs(static_cast<int>(hit.query_scope.length()) -
                              static_cast<int>(hit.return_scope));
    ++total[d];
    if (diff == 0) ++exact[d];
    if (diff <= 2) ++within2[d];
    if (diff <= 4) ++within4[d];
  }

  core::TextTable table;
  std::vector<std::string> header{"Scope difference"};
  for (const auto& domain : p.world().domains()) {
    header.push_back(domain.name.to_string());
  }
  header.push_back("Overall");
  table.set_header(std::move(header));

  auto add_row = [&](const char* label,
                     const std::vector<std::uint64_t>& counts) {
    std::vector<std::string> row{label};
    std::uint64_t sum = 0, denom = 0;
    for (std::size_t d = 0; d < domains; ++d) {
      sum += counts[d];
      denom += total[d];
      const double share =
          total[d] == 0 ? 0 : 100.0 * counts[d] / total[d];
      row.push_back(std::to_string(counts[d]) + " (" +
                    core::pct(share, 0) + ")");
    }
    row.push_back(std::to_string(sum) + " (" +
                  core::pct(denom == 0 ? 0 : 100.0 * sum / denom, 0) + ")");
    table.add_row(std::move(row));
  };
  add_row("Exact match", exact);
  add_row("Within 2", within2);
  add_row("Within 4", within4);

  std::printf("Table 2 — query scope vs response scope of cache hits\n"
              "(paper: 90%% exact, 97%% within 2, 99%% within 4 overall)\n\n"
              "%s\n",
              table.to_string().c_str());

  std::vector<std::vector<std::string>> rows;
  for (std::size_t d = 0; d < domains; ++d) {
    rows.push_back({p.world().domains()[d].name.to_string(),
                    std::to_string(total[d]), std::to_string(exact[d]),
                    std::to_string(within2[d]), std::to_string(within4[d])});
  }
  core::write_csv(bench::out_path("table2.csv"),
                  {"domain", "hits", "exact", "within2", "within4"}, rows);
  return 0;
}
