// Network front-end benchmark: the epoch-swap serving tier behind the
// NCS1 wire protocol (src/netsvc), measured end to end over the
// simulated bus.
//
// The bench *checks* the wire-parity contract before it times anything:
// client-observed results over UDP and over TCP must be byte-identical
// to direct SnapshotHandle lookups, and two identically-seeded faulty
// runs must replay the same loss/retry dance (same stats, same bytes);
// any mismatch is a hard failure (exit 1).
//
// Part 1 times the clean path — wall-clock chunk throughput and the
// *virtual* per-chunk round-trip latency over UDP and TCP — and appends
// rows to bench_out/netserve_latency.csv. Part 2 sweeps bus loss rates
// with and without a retry budget and appends recall rows (fraction of
// addresses answered identically to the direct path) to
// bench_out/netserve_recall.csv: retries must never hurt recall, and
// `--require-recall-gap=G` turns the buy-back into a gate — the mean
// (retry − no-retry) recall gap over the swept nonzero loss rates
// falling below G exits 1.
//
// Output: tables on stdout, the two CSVs under bench_out/, and
// `netsvc.*` counters + `netsvc.bench.*` gauges via --metrics-out.
//
// Run:  build/bench/bench_netserve [--queries=16384] [--batch=8]
//                                  [--epochs=2] [--retry-attempts=6]
//                                  [--require-recall-gap=0]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common.h"
#include "core/serve/service.h"
#include "net/rng.h"
#include "netsim/bus.h"
#include "netsim/fault.h"
#include "netsvc/client.h"
#include "netsvc/server.h"

using namespace netclients;
namespace serve = core::serve;

namespace {

using bench::flag_value;

std::vector<net::Ipv4Addr> make_queries(std::size_t count,
                                        std::uint64_t seed) {
  net::Rng rng(seed);
  std::vector<net::Ipv4Addr> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queries.push_back(net::Ipv4Addr(static_cast<std::uint32_t>(rng())));
  }
  return queries;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto at = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(at, values.size() - 1)];
}

/// One wired client/server pair over a fresh bus.
struct World {
  netsim::MessageBus bus;
  std::unique_ptr<netsvc::Server> server;
  std::unique_ptr<netsvc::Client> client;

  World(const serve::Service& service, netsvc::ClientOptions client_options,
        netsim::FaultConfig faults = {}) {
    if (faults.enabled()) bus.set_faults(std::move(faults));
    server = std::make_unique<netsvc::Server>(
        bus, service, *net::Ipv4Addr::parse("10.0.0.1"));
    client = std::make_unique<netsvc::Client>(
        bus, *net::Ipv4Addr::parse("10.0.0.2"),
        *net::Ipv4Addr::parse("10.0.0.1"), client_options);
  }
};

struct RunResult {
  std::vector<serve::LookupResult> results;
  netsvc::ClientStats client_stats;
  double wall_seconds = 0;
  double virtual_seconds = 0;
  std::vector<double> chunk_rtts;  // virtual seconds per chunk call
};

/// Drives the full query list through one client chunk by chunk,
/// recording the virtual round-trip of every chunk.
RunResult run_client(const serve::Service& service,
                     std::span<const net::Ipv4Addr> queries,
                     std::size_t batch, netsvc::ClientOptions client_options,
                     netsim::FaultConfig faults = {}) {
  World world(service, client_options, std::move(faults));
  RunResult run;
  run.results.resize(queries.size());
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t offset = 0; offset < queries.size(); offset += batch) {
    const std::size_t take = std::min(batch, queries.size() - offset);
    const double before = world.bus.now();
    world.client->lookup_many(queries.subspan(offset, take),
                              run.results.data() + offset);
    run.chunk_rtts.push_back(world.bus.now() - before);
  }
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  run.virtual_seconds = world.bus.now();
  run.client_stats = world.client->stats();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  const auto queries_n =
      static_cast<std::size_t>(flag_value(argc, argv, "--queries", 16384));
  const auto batch =
      static_cast<std::size_t>(flag_value(argc, argv, "--batch", 8));
  const int epochs = static_cast<int>(flag_value(argc, argv, "--epochs", 2));
  const int retry_attempts =
      static_cast<int>(flag_value(argc, argv, "--retry-attempts", 6));
  const double require_recall_gap =
      flag_value(argc, argv, "--require-recall-gap", 0);

  std::fprintf(stderr, "bench_netserve: world 1/%.0f, %d epoch(s), "
               "%zu queries, batch %zu\n",
               bench::scale_denominator(), epochs, queries_n, batch);
  const core::Scenario scenario(core::ScenarioBuilder()
                                    .scale_denominator(
                                        bench::scale_denominator())
                                    .epochs(epochs)
                                    .build());
  const auto chain = scenario.run_epochs();
  serve::Service service;
  service.publish(std::span<const core::snapshot::EpochRecord>(chain));

  const auto queries = make_queries(queries_n, 0x5EC7);
  const auto direct = service.acquire()->lookup_many(queries);

  netsvc::ClientOptions udp_options;
  udp_options.batch_per_message = batch;
  netsvc::ClientOptions tcp_options = udp_options;
  tcp_options.transport = googledns::Transport::kTcp;

  // ---- Wire-parity gate (before any timing) ----------------------------
  const RunResult udp = run_client(service, queries, batch, udp_options);
  const RunResult tcp = run_client(service, queries, batch, tcp_options);
  if (udp.results != direct || tcp.results != direct) {
    std::fprintf(stderr,
                 "bench_netserve: FATAL: wire results diverge from direct "
                 "snapshot lookups (udp %s, tcp %s)\n",
                 udp.results == direct ? "ok" : "MISMATCH",
                 tcp.results == direct ? "ok" : "MISMATCH");
    return 1;
  }
  {
    // Replay gate: an identically-seeded faulty run must repeat exactly.
    netsim::FaultConfig faults;
    faults.loss_probability = 0.1;
    netsvc::ClientOptions lossy = udp_options;
    lossy.retry.max_attempts = retry_attempts;
    const RunResult a = run_client(service, queries, batch, lossy, faults);
    const RunResult b = run_client(service, queries, batch, lossy, faults);
    if (a.results != b.results ||
        a.client_stats.retries != b.client_stats.retries ||
        a.client_stats.timeouts != b.client_stats.timeouts) {
      std::fprintf(stderr,
                   "bench_netserve: FATAL: identically-seeded faulty runs "
                   "diverge (retries %llu vs %llu, timeouts %llu vs %llu)\n",
                   static_cast<unsigned long long>(a.client_stats.retries),
                   static_cast<unsigned long long>(b.client_stats.retries),
                   static_cast<unsigned long long>(a.client_stats.timeouts),
                   static_cast<unsigned long long>(b.client_stats.timeouts));
      return 1;
    }
  }

  // ---- Part 1: clean-path throughput + virtual RTT ---------------------
  const std::string latency_csv = bench::out_path("netserve_latency.csv");
  std::FILE* lat = std::fopen(latency_csv.c_str(), "w");
  if (lat) {
    std::fprintf(lat,
                 "transport,chunks,wall_seconds,chunks_per_sec,"
                 "virtual_seconds,rtt_p50_ms,rtt_p99_ms\n");
  }
  std::printf("%-10s %8s %12s %14s %12s %10s %10s\n", "transport", "chunks",
              "wall_s", "chunks/s", "virtual_s", "rtt_p50_ms", "rtt_p99_ms");
  obs::Registry& registry = obs::Registry::global();
  const auto report = [&](const char* name, const RunResult& run) {
    const double chunks = static_cast<double>(run.chunk_rtts.size());
    const double rate =
        run.wall_seconds > 0 ? chunks / run.wall_seconds : 0;
    const double p50 = percentile(run.chunk_rtts, 0.50) * 1e3;
    const double p99 = percentile(run.chunk_rtts, 0.99) * 1e3;
    std::printf("%-10s %8.0f %12.3f %14.0f %12.1f %10.2f %10.2f\n", name,
                chunks, run.wall_seconds, rate, run.virtual_seconds, p50,
                p99);
    if (lat) {
      std::fprintf(lat, "%s,%.0f,%.6f,%.0f,%.3f,%.3f,%.3f\n", name, chunks,
                   run.wall_seconds, rate, run.virtual_seconds, p50, p99);
    }
    const std::string prefix = std::string("netsvc.bench.") + name + ".";
    registry.gauge(prefix + "chunks_per_sec").set(rate);
    registry.gauge(prefix + "rtt_p50_ms").set(p50);
    registry.gauge(prefix + "rtt_p99_ms").set(p99);
  };
  report("udp", udp);
  report("tcp", tcp);
  if (lat) std::fclose(lat);

  // ---- Part 2: loss sweep, retry buy-back ------------------------------
  const double loss_rates[] = {0.0, 0.05, 0.1, 0.2, 0.3};
  const std::string recall_csv = bench::out_path("netserve_recall.csv");
  std::FILE* rec = std::fopen(recall_csv.c_str(), "w");
  if (rec) std::fprintf(rec, "loss,recall_noretry,recall_retry\n");
  std::printf("\n%-8s %16s %16s\n", "loss", "recall_noretry",
              "recall_retry");
  // Recall = fraction of chunks that got an answer (exhausted chunks
  // yield miss results). Address-level equality would hide failures: a
  // random address usually misses in the direct path too, so a failed
  // chunk's miss-filled answers still "match". The answered chunks must
  // still be byte-identical to the direct path — that part is a gate.
  const auto recall_of = [&](const RunResult& run) {
    std::size_t mismatched = 0;
    for (std::size_t i = 0; i < run.results.size(); ++i) {
      if (run.results[i] != direct[i]) ++mismatched;
    }
    const auto failed_addresses =
        static_cast<std::size_t>(run.client_stats.failed_chunks) * batch;
    if (mismatched > failed_addresses) {
      std::fprintf(stderr,
                   "bench_netserve: FATAL: %zu mismatched addresses exceed "
                   "the %zu inside failed chunks\n",
                   mismatched, failed_addresses);
      std::exit(1);
    }
    const double chunks = static_cast<double>(run.chunk_rtts.size());
    return chunks > 0
               ? 1.0 - static_cast<double>(run.client_stats.failed_chunks) /
                           chunks
               : 0.0;
  };
  double gap_sum = 0;
  int gap_rates = 0;
  bool retry_never_hurts = true;
  for (const double loss : loss_rates) {
    netsim::FaultConfig faults;
    faults.loss_probability = loss;
    netsvc::ClientOptions noretry = udp_options;
    noretry.retry.max_attempts = 1;
    netsvc::ClientOptions retry = udp_options;
    retry.retry.max_attempts = retry_attempts;
    const double recall_noretry =
        recall_of(run_client(service, queries, batch, noretry, faults));
    const double recall_retry =
        recall_of(run_client(service, queries, batch, retry, faults));
    std::printf("%-8.2f %16.4f %16.4f\n", loss, recall_noretry,
                recall_retry);
    if (rec) {
      std::fprintf(rec, "%.2f,%.6f,%.6f\n", loss, recall_noretry,
                   recall_retry);
    }
    if (recall_retry < recall_noretry) retry_never_hurts = false;
    if (loss > 0) {
      gap_sum += recall_retry - recall_noretry;
      ++gap_rates;
    }
  }
  if (rec) std::fclose(rec);
  const double recall_gap = gap_rates > 0 ? gap_sum / gap_rates : 0;
  std::printf("\nmean retry recall gap over lossy rates: %.4f\n",
              recall_gap);
  registry.gauge("netsvc.bench.recall_gap").set(recall_gap);

  // Export the headline (clean UDP) run's event counters once.
  {
    World world(service, udp_options);
    auto out = direct;  // same-size scratch
    world.client->lookup_many(queries, out.data());
    world.client->stats().publish();
    world.client->stream_stats().publish("client");
    world.server->stats().publish();
    world.server->stream_stats().publish("server");
    world.bus.stats().publish();
  }

  if (!retry_never_hurts) {
    std::fprintf(stderr,
                 "bench_netserve: FATAL: retries reduced recall at some "
                 "loss rate\n");
    return 1;
  }
  if (recall_gap < require_recall_gap) {
    std::fprintf(stderr,
                 "bench_netserve: recall gap %.4f below required %.4f\n",
                 recall_gap, require_recall_gap);
    return 1;
  }
  std::printf("rows appended to %s and %s\n", latency_csv.c_str(),
              recall_csv.c_str());
  return 0;
}
