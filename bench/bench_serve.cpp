// Serving-tier benchmark: persist a multi-epoch campaign to a
// netclients.snap.v1 snapshot, load it back, seed a `serve::Service`,
// and measure lookups through snapshot handles — the single-query path
// versus the batched path, then QPS and latency *under epoch churn*.
//
// The bench *checks* the serving determinism contract before it times
// anything: handle lookups must be identical at threads=1 and threads=8,
// elementwise-equal to per-query lookup() and to the trie reference
// oracle, and WorkloadDriver::replay digests (single publisher, reader
// batches between publishes) must match at any intra-batch parallelism;
// any mismatch is a hard failure (exit 1).
//
// The churn section runs the mixed workload twice — a steady phase
// (readers only) and a churn phase (a live publisher continuously
// swapping re-keyed epochs in) — and reports per-phase QPS and
// p50/p99/p999 per-batch latency. `--require-churn-ratio=R` turns the
// "readers are never blocked by a publish" property into a gate: churn
// QPS below R × steady QPS exits 1 (CI passes 0.9; a failing attempt is
// retried once to ride out scheduler noise on small runners).
//
// Output: throughput tables on stdout, rows appended to
// bench_out/serve_qps.csv and bench_out/serve_latency.csv, the snapshot
// left at bench_out/serve.snap (CI uploads + gates all three), and
// `serve.bench.*` gauges via --metrics-out.
//
// Run:  build/bench/bench_serve [--queries=1048576] [--epochs=2]
//                               [--workload-queries=1048576]
//                               [--workload-users=1048576] [--batch=256]
//                               [--churn-retries=1]
//                               [--require-churn-ratio=0]
//                               [--snap-out=bench_out/serve.snap]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common.h"
#include "core/serve/service.h"
#include "core/serve/workload.h"
#include "core/snapshot/snapshot.h"
#include "net/rng.h"

using namespace netclients;
namespace snapshot = core::snapshot;
namespace serve = core::serve;

namespace {

using bench::flag_value;

using bench::flag_string;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Query mix for the single/batched comparison: half the addresses land
/// inside known-active prefixes (the hot serving case), half are uniform
/// over the probed address range.
std::vector<net::Ipv4Addr> make_queries(
    std::size_t count, const std::vector<snapshot::EpochRecord>& epochs,
    std::uint32_t space_begin, std::uint32_t space_end,
    std::uint64_t seed) {
  std::vector<net::Prefix> actives;
  for (const auto& epoch : epochs) {
    for (const auto& entry : epoch.prefixes) actives.push_back(entry.prefix);
  }
  net::Rng rng(seed);
  std::vector<net::Ipv4Addr> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!actives.empty() && (i & 1)) {
      const net::Prefix p = actives[rng() % actives.size()];
      const std::uint32_t span =
          ~net::Prefix::mask(p.length());  // host bits
      queries.push_back(net::Ipv4Addr(
          p.base().value() + static_cast<std::uint32_t>(rng()) % (span + 1u)));
    } else {
      const std::uint64_t span =
          (std::uint64_t{space_end} << 8) - (std::uint64_t{space_begin} << 8);
      queries.push_back(net::Ipv4Addr(static_cast<std::uint32_t>(
          (std::uint64_t{space_begin} << 8) + rng() % span)));
    }
  }
  return queries;
}

/// Service options with the epoch window pinned to the loaded chain, so
/// re-publishing churn epochs ages the oldest out instead of growing.
serve::ServiceOptions window_options(std::size_t max_epochs) {
  serve::ServiceOptions options;
  options.max_epochs = max_epochs;
  return options;
}

void print_phase(const serve::PhaseStats& phase) {
  std::printf("  %-8s %9llu q %7llu batches %8.3f s %12.0f qps "
              "p50 %7.1f us  p99 %8.1f us  p999 %8.1f us",
              phase.name.c_str(),
              static_cast<unsigned long long>(phase.queries),
              static_cast<unsigned long long>(phase.batches), phase.seconds,
              phase.qps, phase.latency.p50_us, phase.latency.p99_us,
              phase.latency.p999_us);
  if (phase.publishes > 0) {
    std::printf("  (%llu publishes, versions %llu..%llu)",
                static_cast<unsigned long long>(phase.publishes),
                static_cast<unsigned long long>(phase.version_min),
                static_cast<unsigned long long>(phase.version_max));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  // The internet presets multiply the query/user volume pushed through
  // the serving tier (the snapshot itself stays at the campaign's scale;
  // at internet scale it is the load, not the world, that grows here).
  const bench::ScaleSpec spec = bench::parse_scale(argc, argv);
  const std::size_t load_mult =
      spec.name == "internet" ? 8 : spec.internet() ? 2 : 1;
  const std::size_t queries_n = static_cast<std::size_t>(
      flag_value(argc, argv, "--queries", 1 << 20)) * load_mult;
  const int epochs_n =
      static_cast<int>(flag_value(argc, argv, "--epochs", 2));
  const std::string snap_path = flag_string(
      argc, argv, "--snap-out", bench::out_path("serve.snap"));
  const auto workload_queries = static_cast<std::size_t>(
      flag_value(argc, argv, "--workload-queries", 1 << 20)) * load_mult;
  const auto workload_users = static_cast<std::size_t>(
      flag_value(argc, argv, "--workload-users", 1 << 20)) * load_mult;
  const auto workload_batch = static_cast<std::size_t>(
      flag_value(argc, argv, "--batch", 256));
  const double require_churn_ratio =
      flag_value(argc, argv, "--require-churn-ratio", 0);
  const int churn_retries =
      static_cast<int>(flag_value(argc, argv, "--churn-retries", 1));

  // ---- 1. Multi-epoch campaign -> snapshot -----------------------------
  const core::Scenario scenario = core::ScenarioBuilder()
                                      .scale_denominator(
                                          bench::scale_denominator())
                                      .epochs(epochs_n)
                                      .build();
  std::fprintf(stderr, "[serve] world: %zu /24s, %d epoch(s)\n",
               scenario.world().blocks().size(), epochs_n);

  std::vector<snapshot::EpochRecord> records;
  {
    obs::StageSpan span("serve.bench.campaign_epochs");
    records = scenario.run_epochs();
  }
  {
    obs::StageSpan span("serve.bench.snapshot_write");
    if (!snapshot::write(snap_path, records)) return 1;
  }
  std::optional<snapshot::SnapshotFile> loaded;
  {
    obs::StageSpan span("serve.bench.snapshot_read");
    loaded = snapshot::read(snap_path);
  }
  if (!loaded || loaded->epochs.size() != records.size()) {
    std::fprintf(stderr, "[serve] snapshot round-trip failed\n");
    return 1;
  }
  std::printf("snapshot: %zu epoch(s) at %s\n", loaded->epochs.size(),
              snap_path.c_str());
  for (const auto& epoch : loaded->epochs) {
    std::printf("  epoch %u: %zu active prefixes, /24s in [%llu, %llu]\n",
                epoch.epoch_id, epoch.prefixes.size(),
                static_cast<unsigned long long>(epoch.totals.slash24_lower),
                static_cast<unsigned long long>(epoch.totals.slash24_upper));
  }

  if (loaded->epochs.size() >= 2) {
    const serve::EpochDiff diff =
        serve::diff_epochs(loaded->epochs.front(), loaded->epochs.back());
    std::printf("churn %u -> %u: +%zu gained, -%zu lost, %llu persisting, "
                "rank drift %.2f\n",
                diff.from_epoch, diff.to_epoch, diff.gained.size(),
                diff.lost.size(),
                static_cast<unsigned long long>(diff.persisting),
                diff.mean_rank_drift);
  }

  const std::span<const snapshot::EpochRecord> chain(loaded->epochs);

  // ---- 2. Seed the serving tier ----------------------------------------
  // One bulk publish = one index build; everything below reads through
  // pinned snapshot handles, never a directly constructed ClientIndex.
  const auto build_start = std::chrono::steady_clock::now();
  serve::Service service(
      window_options(loaded->epochs.size()));
  {
    obs::StageSpan span("serve.bench.index_build");
    service.publish(chain);
  }
  const double build_seconds = seconds_since(build_start);
  const serve::SnapshotHandle handle = service.acquire();
  const serve::ClientIndex& index = handle->index();
  std::printf("service: version %llu, %zu prefixes, %zu intervals, "
              "%zu ASes, seeded in %.1f ms\n",
              static_cast<unsigned long long>(handle->version()),
              index.prefix_count(), index.interval_count(),
              index.as_aggregates().size(), build_seconds * 1e3);

  const auto queries =
      make_queries(queries_n, loaded->epochs, scenario.env.slash24_begin,
                   scenario.env.slash24_end, 0x5E27E);

  // ---- 3. Determinism checks (before timing) ---------------------------
  const auto serial = handle->lookup_many(queries, 1);
  const auto parallel = handle->lookup_many(queries, 8);
  if (serial != parallel) {
    std::fprintf(stderr,
                 "[serve] FAIL: lookup_many differs between threads=1 "
                 "and threads=8\n");
    return 1;
  }
  for (std::size_t i = 0; i < queries.size(); i += 997) {
    if (handle->lookup(queries[i]) != serial[i] ||
        index.lookup_reference(queries[i]) != serial[i]) {
      std::fprintf(stderr,
                   "[serve] FAIL: lookup()/lookup_reference() and "
                   "lookup_many() disagree at query %zu\n",
                   i);
      return 1;
    }
  }

  serve::WorkloadOptions workload_options;
  workload_options.users = workload_users;
  workload_options.queries = workload_queries;
  workload_options.batch = workload_batch;
  const serve::WorkloadDriver driver(workload_options, chain);

  // Replay the interleaving-free schedule (single publisher, batches
  // between publishes) at two intra-batch parallelism levels: the
  // digests must be byte-identical — the determinism contract under a
  // fixed churn schedule.
  const auto replay_digest = [&](int lookup_threads) {
    serve::Service replay_service(
        window_options(loaded->epochs.size()));
    replay_service.publish(loaded->epochs.front());
    return driver.replay(replay_service, chain.subspan(1),
                         /*publish_every=*/driver.batch_count() /
                             (loaded->epochs.size() + 1),
                         lookup_threads);
  };
  const serve::ReplayResult replay_one = replay_digest(1);
  const serve::ReplayResult replay_eight = replay_digest(8);
  if (replay_one != replay_eight) {
    std::fprintf(stderr,
                 "[serve] FAIL: replay digest differs between "
                 "lookup_threads=1 and 8\n");
    return 1;
  }
  std::printf("replay: digest %016llx over %llu queries, %llu publishes "
              "(identical at 1 and 8 lookup threads)\n",
              static_cast<unsigned long long>(replay_one.digest),
              static_cast<unsigned long long>(replay_one.queries),
              static_cast<unsigned long long>(replay_one.publishes));

  // ---- 4. Single vs batched throughput ---------------------------------
  std::uint64_t hits = 0;
  const auto single_start = std::chrono::steady_clock::now();
  for (const net::Ipv4Addr addr : queries) {
    hits += handle->lookup(addr).active ? 1 : 0;
  }
  const double single_seconds = seconds_since(single_start);

  // Steady-state serving: the output buffer is reused across batches, so
  // it is allocated (and its pages faulted in by the warm-up pass) before
  // the timer starts.
  std::vector<serve::LookupResult> batched(queries.size());
  handle->lookup_many(queries, batched.data(), 0);
  const auto batched_start = std::chrono::steady_clock::now();
  handle->lookup_many(queries, batched.data(), 0);
  const double batched_seconds = seconds_since(batched_start);

  const double single_qps =
      single_seconds > 0 ? static_cast<double>(queries.size()) / single_seconds
                         : 0;
  const double batched_qps =
      batched_seconds > 0
          ? static_cast<double>(queries.size()) / batched_seconds
          : 0;
  const double speedup = single_qps > 0 ? batched_qps / single_qps : 0;

  std::printf("\nlookup throughput (%zu queries, %.1f%% active)\n",
              queries.size(),
              100.0 * static_cast<double>(hits) /
                  static_cast<double>(queries.size()));
  std::printf("  %-10s %10s %14s\n", "mode", "seconds", "qps");
  std::printf("  %-10s %10.3f %14.0f\n", "single", single_seconds,
              single_qps);
  std::printf("  %-10s %10.3f %14.0f\n", "batched", batched_seconds,
              batched_qps);
  std::printf("  batched/single speedup: %.1fx\n", speedup);

  obs::Registry::global().gauge("serve.bench.single_qps").set(single_qps);
  obs::Registry::global().gauge("serve.bench.batched_qps").set(batched_qps);
  obs::Registry::global().gauge("serve.bench.speedup").set(speedup);
  obs::Registry::global()
      .gauge("serve.bench.index_build_ms")
      .set(build_seconds * 1e3);

  if (std::FILE* csv =
          std::fopen(bench::out_path("serve_qps.csv").c_str(), "w")) {
    std::fprintf(csv, "mode,queries,seconds,qps\n");
    std::fprintf(csv, "single,%zu,%.6f,%.0f\n", queries.size(),
                 single_seconds, single_qps);
    std::fprintf(csv, "batched,%zu,%.6f,%.0f\n", queries.size(),
                 batched_seconds, batched_qps);
    std::fclose(csv);
  }

  // Post-timing integrity: the timed batched pass must agree with the
  // pre-timing serial pass (also keeps `batched` alive so the compiler
  // cannot elide the timed work).
  if (batched != serial) {
    std::fprintf(stderr, "[serve] FAIL: timed batched pass diverged\n");
    return 1;
  }

  // ---- 5. QPS + latency under epoch churn ------------------------------
  // Steady phase (readers only) vs churn phase (a publisher continuously
  // swaps re-keyed epochs in). The RCU handle design means readers never
  // block on a publish; the ratio gate makes that measurable.
  serve::WorkloadReport report;
  for (int attempt = 0; ; ++attempt) {
    serve::Service churn_service(
        window_options(loaded->epochs.size()));
    churn_service.publish(chain);
    report = driver.run_under_churn(churn_service, chain);
    if (require_churn_ratio <= 0 ||
        report.churn_ratio >= require_churn_ratio ||
        attempt >= churn_retries) {
      break;
    }
    std::fprintf(stderr,
                 "[serve] churn ratio %.3f below %.3f, retrying "
                 "(%d/%d)\n",
                 report.churn_ratio, require_churn_ratio, attempt + 1,
                 churn_retries);
  }

  std::printf("\nmixed workload under churn (%zu users, %zu queries/phase, "
              "mean batch %zu, zipf %.2f)\n",
              workload_options.users, driver.query_count(),
              workload_options.batch, workload_options.user_zipf);
  print_phase(report.steady);
  print_phase(report.churn);
  std::printf("  churn/steady QPS ratio: %.3f\n", report.churn_ratio);

  obs::Registry::global()
      .gauge("serve.bench.steady_qps")
      .set(report.steady.qps);
  obs::Registry::global().gauge("serve.bench.churn_qps").set(report.churn.qps);
  obs::Registry::global()
      .gauge("serve.bench.churn_ratio")
      .set(report.churn_ratio);
  obs::Registry::global()
      .gauge("serve.bench.steady_p50_us")
      .set(report.steady.latency.p50_us);
  obs::Registry::global()
      .gauge("serve.bench.steady_p99_us")
      .set(report.steady.latency.p99_us);
  obs::Registry::global()
      .gauge("serve.bench.steady_p999_us")
      .set(report.steady.latency.p999_us);
  obs::Registry::global()
      .gauge("serve.bench.churn_p50_us")
      .set(report.churn.latency.p50_us);
  obs::Registry::global()
      .gauge("serve.bench.churn_p99_us")
      .set(report.churn.latency.p99_us);
  obs::Registry::global()
      .gauge("serve.bench.churn_p999_us")
      .set(report.churn.latency.p999_us);
  obs::Registry::global()
      .gauge("serve.bench.churn_publishes")
      .set(static_cast<double>(report.churn.publishes));

  if (std::FILE* csv =
          std::fopen(bench::out_path("serve_latency.csv").c_str(), "w")) {
    std::fprintf(csv,
                 "phase,queries,batches,seconds,qps,p50_us,p99_us,p999_us,"
                 "publishes\n");
    for (const serve::PhaseStats* phase :
         {&report.steady, &report.churn}) {
      std::fprintf(csv, "%s,%llu,%llu,%.6f,%.0f,%.1f,%.1f,%.1f,%llu\n",
                   phase->name.c_str(),
                   static_cast<unsigned long long>(phase->queries),
                   static_cast<unsigned long long>(phase->batches),
                   phase->seconds, phase->qps, phase->latency.p50_us,
                   phase->latency.p99_us, phase->latency.p999_us,
                   static_cast<unsigned long long>(phase->publishes));
    }
    std::fclose(csv);
  }

  if (require_churn_ratio > 0 &&
      report.churn_ratio < require_churn_ratio) {
    std::fprintf(stderr,
                 "[serve] FAIL: churn/steady QPS ratio %.3f below required "
                 "%.3f — readers stalled by publishes\n",
                 report.churn_ratio, require_churn_ratio);
    return 1;
  }
  return 0;
}
