// Serving-index benchmark: persist a multi-epoch campaign to a
// netclients.snap.v1 snapshot, load it back, build the ClientIndex, and
// measure lookup throughput — the single-query trie path versus the
// batched sorted-merge path (`lookup_many`).
//
// The bench also *checks* the serving determinism contract before it
// times anything: lookup_many answers must be identical at threads=1 and
// threads=8 and elementwise-equal to per-query lookup(); any mismatch is
// a hard failure (exit 1). Epoch churn between the first and last epoch
// is reported via core/serve's diff analytics.
//
// Output: a throughput table on stdout, rows appended to
// bench_out/serve_qps.csv, the snapshot left at bench_out/serve.snap
// (CI uploads + gates both), and gauges `serve.bench.single_qps` /
// `serve.bench.batched_qps` / `serve.bench.speedup` via --metrics-out.
//
// Run:  build/bench/bench_serve [--queries=1048576] [--epochs=2]
//                               [--snap-out=bench_out/serve.snap]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "core/serve/serve.h"
#include "core/snapshot/snapshot.h"
#include "net/rng.h"

using namespace netclients;
namespace snapshot = core::snapshot;
namespace serve = core::serve;

namespace {

double flag_value(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const char* name,
                        const std::string& fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Query mix: half the addresses land inside known-active prefixes (the
/// hot serving case), half are uniform over the probed address range.
std::vector<net::Ipv4Addr> make_queries(
    std::size_t count, const std::vector<snapshot::EpochRecord>& epochs,
    std::uint32_t space_begin, std::uint32_t space_end,
    std::uint64_t seed) {
  std::vector<net::Prefix> actives;
  for (const auto& epoch : epochs) {
    for (const auto& entry : epoch.prefixes) actives.push_back(entry.prefix);
  }
  net::Rng rng(seed);
  std::vector<net::Ipv4Addr> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!actives.empty() && (i & 1)) {
      const net::Prefix p = actives[rng() % actives.size()];
      const std::uint32_t span =
          ~net::Prefix::mask(p.length());  // host bits
      queries.push_back(net::Ipv4Addr(
          p.base().value() + static_cast<std::uint32_t>(rng()) % (span + 1u)));
    } else {
      const std::uint64_t span =
          (std::uint64_t{space_end} << 8) - (std::uint64_t{space_begin} << 8);
      queries.push_back(net::Ipv4Addr(static_cast<std::uint32_t>(
          (std::uint64_t{space_begin} << 8) + rng() % span)));
    }
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  const std::size_t queries_n = static_cast<std::size_t>(
      flag_value(argc, argv, "--queries", 1 << 20));
  const int epochs_n =
      static_cast<int>(flag_value(argc, argv, "--epochs", 2));
  const std::string snap_path = flag_string(
      argc, argv, "--snap-out", bench::out_path("serve.snap"));

  // ---- 1. Multi-epoch campaign -> snapshot -----------------------------
  const core::Scenario scenario = core::ScenarioBuilder()
                                      .scale_denominator(
                                          bench::scale_denominator())
                                      .epochs(epochs_n)
                                      .build();
  std::fprintf(stderr, "[serve] world: %zu /24s, %d epoch(s)\n",
               scenario.world().blocks().size(), epochs_n);

  std::vector<snapshot::EpochRecord> records;
  {
    obs::StageSpan span("serve.bench.campaign_epochs");
    records = scenario.run_epochs();
  }
  {
    obs::StageSpan span("serve.bench.snapshot_write");
    if (!snapshot::write(snap_path, records)) return 1;
  }
  std::optional<snapshot::SnapshotFile> loaded;
  {
    obs::StageSpan span("serve.bench.snapshot_read");
    loaded = snapshot::read(snap_path);
  }
  if (!loaded || loaded->epochs.size() != records.size()) {
    std::fprintf(stderr, "[serve] snapshot round-trip failed\n");
    return 1;
  }
  std::printf("snapshot: %zu epoch(s) at %s\n", loaded->epochs.size(),
              snap_path.c_str());
  for (const auto& epoch : loaded->epochs) {
    std::printf("  epoch %u: %zu active prefixes, /24s in [%llu, %llu]\n",
                epoch.epoch_id, epoch.prefixes.size(),
                static_cast<unsigned long long>(epoch.totals.slash24_lower),
                static_cast<unsigned long long>(epoch.totals.slash24_upper));
  }

  if (loaded->epochs.size() >= 2) {
    const serve::EpochDiff diff =
        serve::diff_epochs(loaded->epochs.front(), loaded->epochs.back());
    std::printf("churn %u -> %u: +%zu gained, -%zu lost, %llu persisting, "
                "rank drift %.2f\n",
                diff.from_epoch, diff.to_epoch, diff.gained.size(),
                diff.lost.size(),
                static_cast<unsigned long long>(diff.persisting),
                diff.mean_rank_drift);
  }

  // ---- 2. Build the serving index --------------------------------------
  const auto build_start = std::chrono::steady_clock::now();
  serve::ClientIndex index;
  {
    obs::StageSpan span("serve.bench.index_build");
    index = serve::ClientIndex::build(loaded->epochs);
  }
  const double build_seconds = seconds_since(build_start);
  std::printf("index: %zu prefixes, %zu intervals, %zu ASes, "
              "built in %.1f ms\n",
              index.prefix_count(), index.interval_count(),
              index.as_aggregates().size(), build_seconds * 1e3);

  const auto queries =
      make_queries(queries_n, loaded->epochs, scenario.env.slash24_begin,
                   scenario.env.slash24_end, 0x5E27E);

  // ---- 3. Determinism checks (before timing) ---------------------------
  const auto serial = index.lookup_many(queries, 1);
  const auto parallel = index.lookup_many(queries, 8);
  if (serial != parallel) {
    std::fprintf(stderr,
                 "[serve] FAIL: lookup_many differs between threads=1 "
                 "and threads=8\n");
    return 1;
  }
  for (std::size_t i = 0; i < queries.size(); i += 997) {
    if (index.lookup(queries[i]) != serial[i]) {
      std::fprintf(stderr,
                   "[serve] FAIL: lookup() and lookup_many() disagree at "
                   "query %zu\n",
                   i);
      return 1;
    }
  }

  // ---- 4. Throughput ----------------------------------------------------
  std::uint64_t hits = 0;
  const auto single_start = std::chrono::steady_clock::now();
  for (const net::Ipv4Addr addr : queries) {
    hits += index.lookup(addr).active ? 1 : 0;
  }
  const double single_seconds = seconds_since(single_start);

  // Steady-state serving: the output buffer is reused across batches, so
  // it is allocated (and its pages faulted in by the warm-up pass) before
  // the timer starts.
  std::vector<serve::LookupResult> batched(queries.size());
  index.lookup_many(queries.data(), queries.size(), batched.data(), 0);
  const auto batched_start = std::chrono::steady_clock::now();
  index.lookup_many(queries.data(), queries.size(), batched.data(), 0);
  const double batched_seconds = seconds_since(batched_start);

  const double single_qps =
      single_seconds > 0 ? static_cast<double>(queries.size()) / single_seconds
                         : 0;
  const double batched_qps =
      batched_seconds > 0
          ? static_cast<double>(queries.size()) / batched_seconds
          : 0;
  const double speedup = single_qps > 0 ? batched_qps / single_qps : 0;

  std::printf("\nlookup throughput (%zu queries, %.1f%% active)\n",
              queries.size(),
              100.0 * static_cast<double>(hits) /
                  static_cast<double>(queries.size()));
  std::printf("  %-10s %10s %14s\n", "mode", "seconds", "qps");
  std::printf("  %-10s %10.3f %14.0f\n", "single", single_seconds,
              single_qps);
  std::printf("  %-10s %10.3f %14.0f\n", "batched", batched_seconds,
              batched_qps);
  std::printf("  batched/single speedup: %.1fx\n", speedup);

  obs::Registry::global().gauge("serve.bench.single_qps").set(single_qps);
  obs::Registry::global().gauge("serve.bench.batched_qps").set(batched_qps);
  obs::Registry::global().gauge("serve.bench.speedup").set(speedup);
  obs::Registry::global()
      .gauge("serve.bench.index_build_ms")
      .set(build_seconds * 1e3);

  if (std::FILE* csv =
          std::fopen(bench::out_path("serve_qps.csv").c_str(), "w")) {
    std::fprintf(csv, "mode,queries,seconds,qps\n");
    std::fprintf(csv, "single,%zu,%.6f,%.0f\n", queries.size(),
                 single_seconds, single_qps);
    std::fprintf(csv, "batched,%zu,%.6f,%.0f\n", queries.size(),
                 batched_seconds, batched_qps);
    std::fclose(csv);
  }

  // Post-timing integrity: the timed batched pass must agree with the
  // pre-timing serial pass (also keeps `batched` alive so the compiler
  // cannot elide the timed work).
  if (batched != serial) {
    std::fprintf(stderr, "[serve] FAIL: timed batched pass diverged\n");
    return 1;
  }
  return 0;
}
