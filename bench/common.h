#pragma once

// Shared scaffolding for the per-table / per-figure bench binaries.
//
// Every bench generates the same deterministic world (size controlled by
// the REPRO_SCALE env var: the denominator of the scale fraction, default
// 64 — i.e. a 1/64-size Internet) and runs whichever pipelines it needs.
// Output: a paper-style table on stdout plus CSV series under bench_out/.
// Every bench also accepts `--metrics-out <path>` (or the
// REPRO_METRICS_OUT env var) and writes the run's metrics-registry
// snapshot there on exit — JSON by default, CSV for *.csv paths.

#include <cstdint>
#include <memory>
#include <string>

#include "apnic/apnic.h"
#include "cdn/cdn.h"
#include "core/cacheprobe/cacheprobe.h"
#include "core/chromium/chromium.h"
#include "core/compare/compare.h"
#include "core/datasets/datasets.h"
#include "core/obs/export.h"
#include "core/report/report.h"
#include "core/scenario/scenario.h"
#include "googledns/google_dns.h"
#include "roots/root_server.h"
#include "sim/activity.h"
#include "sim/ditl.h"
#include "sim/world.h"

namespace netclients::bench {

/// Denominator of the world scale (REPRO_SCALE env var, default 64).
double scale_denominator();

/// DITL downsampling used at bench scale (REPRO_DITL_SAMPLE, default 64).
double ditl_sample_denominator();

// ---- Shared flag parsing ------------------------------------------------
// Every bench takes `--name=value` flags; these are the one implementation
// (the per-bench copies predating them drifted on details like whether
// argv[0] was scanned).

/// Numeric `--name=value`; `fallback` when absent.
double flag_value(int argc, char** argv, const char* name, double fallback);

/// String `--name=value`; `fallback` when absent.
std::string flag_string(int argc, char** argv, const char* name,
                        const std::string& fallback);

/// True when `--name` or `--name=...` appears.
bool flag_present(int argc, char** argv, const char* name);

/// One parsed `--scale=` preset. The paper preset reproduces the figures
/// at REPRO_SCALE (a 1/64 Internet by default); the internet presets add
/// a streaming-world phase (`stream_slash24s` routed /24s generated under
/// `stream_budget_bytes` of arena) and shard the DITL capture into
/// `corpus_files` member files for the cross-file work-stealing scan.
///
/// The arena budget is deliberately far below the emitted world size so
/// the internet presets actually exercise the bounded-memory batching.
///
///   preset         stream /24s   corpus files   arena budget
///   paper                    0              1              -
///   internet-lite    1,250,000              4          8 MiB
///   internet        10,000,000             16         64 MiB
struct ScaleSpec {
  std::string name = "paper";
  std::uint64_t stream_slash24s = 0;  // 0 = no streaming phase
  std::size_t corpus_files = 1;
  std::size_t stream_budget_bytes = 0;

  bool internet() const { return stream_slash24s != 0; }
};

/// Parses `--scale=paper|internet-lite|internet` (default paper). An
/// unknown preset is a hard error (exit 2) — a typo'd scale silently
/// benchmarking the wrong world is worse than failing.
ScaleSpec parse_scale(int argc, char** argv);

struct Pipelines {
  /// The wired world + probe substrate (core::ScenarioBuilder output).
  core::Scenario scenario;
  std::unique_ptr<core::CacheProbeCampaign> campaign;

  sim::World& world() { return scenario.world(); }
  const sim::World& world() const { return scenario.world(); }
  googledns::GooglePublicDns* google_dns() const {
    return scenario.google_dns.get();
  }

  core::PopDiscoveryResult pops;
  core::CalibrationResult calibration;
  core::CampaignResult probing;

  core::ChromiumResult chromium;
  cdn::CdnObservation ms;
  apnic::ApnicEstimate apnic;

  // /24-level datasets (Table 1 naming).
  core::PrefixDataset probing_prefixes{"cache probing"};
  core::PrefixDataset logs_prefixes{"DNS logs"};
  core::PrefixDataset union_prefixes{"cache probing + DNS logs"};
  core::PrefixDataset clients_prefixes{"Microsoft clients"};
  core::PrefixDataset resolvers_prefixes{"Microsoft resolvers"};
  core::PrefixDataset ecs_prefixes{"cloud ECS prefixes"};

  // AS-level datasets (Tables 3/4 naming).
  core::AsDataset probing_as{"cache probing"};
  core::AsDataset logs_as{"DNS logs"};
  core::AsDataset union_as{"cache probing + DNS logs"};
  core::AsDataset apnic_as{"APNIC"};
  core::AsDataset clients_as{"Microsoft clients"};
  core::AsDataset resolvers_as{"Microsoft resolvers"};
};

/// Declarative pipeline assembly: each bench binary states exactly the
/// stages it needs and gets one generated world reused across them.
///
///   Pipelines p = PipelineBuilder()
///                     .with_cache_probing()
///                     .with_chromium()
///                     .threads(8)   // optional; default REPRO_THREADS
///                     .build();
///
/// build() times every stage with obs::StageSpan — the narration printed
/// to stderr and the spans exported via `--metrics-out` come from the same
/// registry records, so reported and measured stage boundaries cannot
/// drift (table output on stdout stays clean). `bench_table1` et al.
/// thereby double as pipeline-build speed reports.
class PipelineBuilder {
 public:
  PipelineBuilder& with_cache_probing() {
    cache_probing_ = true;
    return *this;
  }
  PipelineBuilder& with_chromium() {
    chromium_ = true;
    return *this;
  }
  /// CDN + APNIC validation datasets.
  PipelineBuilder& with_validation() {
    validation_ = true;
    return *this;
  }
  /// Parallelism for the sharded stages; 0 = REPRO_THREADS env (default
  /// hardware_concurrency), 1 = serial.
  PipelineBuilder& threads(int n) {
    threads_ = n;
    return *this;
  }

  Pipelines build() const;

 private:
  bool cache_probing_ = false;
  bool chromium_ = false;
  bool validation_ = false;
  int threads_ = 0;
};

/// Creates bench_out/ (if needed) and returns "bench_out/<name>".
std::string out_path(const std::string& name);

}  // namespace netclients::bench
