#pragma once

// Shared scaffolding for the per-table / per-figure bench binaries.
//
// Every bench generates the same deterministic world (size controlled by
// the REPRO_SCALE env var: the denominator of the scale fraction, default
// 64 — i.e. a 1/64-size Internet) and runs whichever pipelines it needs.
// Output: a paper-style table on stdout plus CSV series under bench_out/.

#include <cstdint>
#include <memory>
#include <string>

#include "apnic/apnic.h"
#include "cdn/cdn.h"
#include "core/cacheprobe/cacheprobe.h"
#include "core/chromium/chromium.h"
#include "core/compare/compare.h"
#include "core/datasets/datasets.h"
#include "core/report/report.h"
#include "googledns/google_dns.h"
#include "roots/root_server.h"
#include "sim/activity.h"
#include "sim/ditl.h"
#include "sim/world.h"

namespace netclients::bench {

/// Denominator of the world scale (REPRO_SCALE env var, default 64).
double scale_denominator();

/// DITL downsampling used at bench scale (REPRO_DITL_SAMPLE, default 64).
double ditl_sample_denominator();

struct Pipelines {
  sim::World world;
  std::unique_ptr<sim::WorldActivityModel> activity;
  std::unique_ptr<googledns::GooglePublicDns> google_dns;
  std::unique_ptr<core::CacheProbeCampaign> campaign;

  core::PopDiscoveryResult pops;
  core::CalibrationResult calibration;
  core::CampaignResult probing;

  core::ChromiumResult chromium;
  cdn::CdnObservation ms;
  apnic::ApnicEstimate apnic;

  // /24-level datasets (Table 1 naming).
  core::PrefixDataset probing_prefixes{"cache probing"};
  core::PrefixDataset logs_prefixes{"DNS logs"};
  core::PrefixDataset union_prefixes{"cache probing + DNS logs"};
  core::PrefixDataset clients_prefixes{"Microsoft clients"};
  core::PrefixDataset resolvers_prefixes{"Microsoft resolvers"};
  core::PrefixDataset ecs_prefixes{"cloud ECS prefixes"};

  // AS-level datasets (Tables 3/4 naming).
  core::AsDataset probing_as{"cache probing"};
  core::AsDataset logs_as{"DNS logs"};
  core::AsDataset union_as{"cache probing + DNS logs"};
  core::AsDataset apnic_as{"APNIC"};
  core::AsDataset clients_as{"Microsoft clients"};
  core::AsDataset resolvers_as{"Microsoft resolvers"};
};

struct BuildOptions {
  bool run_cache_probing = true;
  bool run_chromium = true;
  bool run_validation = true;  // CDN + APNIC datasets
};

/// Builds the world and runs the requested pipelines; prints progress to
/// stderr so table output stays clean.
Pipelines build_pipelines(const BuildOptions& options = {});

/// Creates bench_out/ (if needed) and returns "bench_out/<name>".
std::string out_path(const std::string& name);

}  // namespace netclients::bench
