// Figure 7 (Appendix B.3): per-AS differences in relative volume between
// pairs of activity estimates. Paper: the datasets disagree by at most
// 1e-5 for 90% of ASes, and DNS logs tracks Microsoft resolvers more
// closely than APNIC tracks either (both resolver-based signals).

#include <cmath>
#include <cstdio>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p = bench::PipelineBuilder()
                            .with_cache_probing()
                            .with_chromium()
                            .with_validation()
                            .build();

  const auto logs = core::relative_volumes(p.logs_as);
  const auto resolvers = core::relative_volumes(p.resolvers_as);
  const auto apnic = core::relative_volumes(p.apnic_as);

  struct Pair {
    const char* label;
    std::vector<double> diffs;
  };
  std::vector<Pair> pairs;
  pairs.push_back(
      {"Microsoft resolvers - APNIC", core::volume_differences(resolvers,
                                                               apnic)});
  pairs.push_back({"Microsoft resolvers - DNS logs",
                   core::volume_differences(resolvers, logs)});
  pairs.push_back({"APNIC - DNS logs", core::volume_differences(apnic,
                                                                logs)});

  std::printf("Figure 7 — per-AS difference in relative volume\n\n");
  std::printf("  %-32s %8s %12s %12s\n", "", "ASes", "|diff| p90",
              "|diff| p99");
  std::vector<std::vector<std::string>> csv;
  for (auto& pair : pairs) {
    std::vector<double> magnitudes;
    magnitudes.reserve(pair.diffs.size());
    for (double d : pair.diffs) magnitudes.push_back(std::fabs(d));
    core::Cdf cdf(std::move(magnitudes));
    std::printf("  %-32s %8zu %12.2e %12.2e\n", pair.label, cdf.size(),
                cdf.quantile(0.90), cdf.quantile(0.99));
    core::Cdf signed_cdf(std::move(pair.diffs));
    for (const auto& [value, frac] : signed_cdf.points(200)) {
      csv.push_back({pair.label, core::fixed(value, 9),
                     core::fixed(frac, 4)});
    }
  }
  std::printf("\n(paper: datasets disagree by <= 1e-5 for 90%% of ASes at "
              "full scale;\n scaled worlds concentrate volume in fewer "
              "ASes, so magnitudes shift up)\n");
  core::write_csv(bench::out_path("fig7_volume_differences.csv"),
                  {"pair", "difference", "cumulative_fraction"}, csv);
  return 0;
}
