// Ablations of the campaign's design choices (DESIGN.md): redundant-query
// count, per-PoP service radii vs one max radius, transport, and campaign
// duration (loop count). Run at a reduced scale so the sweep stays fast;
// set REPRO_SCALE to override.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "anycast/vantage.h"
#include "common.h"
#include "sim/activity.h"

using namespace netclients;

namespace {

struct Setup {
  sim::World world;
  std::unique_ptr<sim::WorldActivityModel> activity;
  std::unique_ptr<googledns::GooglePublicDns> gdns;
};

Setup make_setup() {
  Setup s;
  sim::WorldConfig config;
  const char* env = std::getenv("REPRO_SCALE");
  config.scale = 1.0 / (env ? std::atof(env) : 256.0);
  s.world = sim::World::generate(config);
  s.activity = std::make_unique<sim::WorldActivityModel>(&s.world);
  s.gdns = std::make_unique<googledns::GooglePublicDns>(
      &s.world.pops(), &s.world.catchment(), &s.world.authoritative(),
      googledns::GoogleDnsConfig{}, s.activity.get());
  return s;
}

core::ProbeEnvironment make_env(Setup& s) {
  core::ProbeEnvironment env;
  env.authoritative = &s.world.authoritative();
  env.google_dns = s.gdns.get();
  env.geodb = &s.world.geodb();
  env.vantage_points = anycast::default_vantage_fleet();
  env.domains = s.world.domains();
  env.slash24_begin = 1u << 16;
  env.slash24_end = s.world.address_space_end();
  return env;
}

core::CampaignResult run_with(Setup& s, const core::CacheProbeOptions& opts,
                              double* assigned = nullptr) {
  core::CacheProbeCampaign campaign(make_env(s), opts);
  const auto pops = campaign.discover_pops();
  const auto calibration = campaign.calibrate(pops);
  auto result = campaign.run(pops, calibration);
  if (assigned) *assigned = result.average_assigned_per_pop;
  return result;
}

double truth_coverage(const Setup& s, const core::CampaignResult& r) {
  double covered = 0, total = 0;
  for (const sim::Slash24Block& block : s.world.blocks()) {
    if (block.clients() <= 0) continue;
    total += block.clients();
    if (r.active.covers(net::Prefix::from_slash24_index(block.index))) {
      covered += block.clients();
    }
  }
  return total > 0 ? 100.0 * covered / total : 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  Setup s = make_setup();
  std::fprintf(stderr, "[ablation] world: %zu /24s\n", s.world.blocks().size());

  // ---- 1. Redundant queries (the paper uses 5 to cover cache pools) ----
  std::printf("Ablation 1 — redundant queries per (PoP, prefix, domain)\n");
  std::printf("  %-10s %12s %14s %12s\n", "redundant", "probes", "client cov",
              "upper bound");
  for (int redundant : {1, 2, 3, 5, 8}) {
    core::CacheProbeOptions opts;
    opts.redundant_queries = redundant;
    opts.max_loops = 3;
    const auto result = run_with(s, opts);
    std::printf("  %-10d %12llu %13.1f%% %12llu\n", redundant,
                static_cast<unsigned long long>(result.probes_sent),
                truth_coverage(s, result),
                static_cast<unsigned long long>(
                    result.slash24_upper_bound()));
  }

  // ---- 2. Per-PoP radii vs one max radius ------------------------------
  // The paper: per-PoP radii average 2.4M candidates per PoP vs 4.4M with
  // the 5,524 km maximum everywhere.
  std::printf("\nAblation 2 — service-radius policy\n");
  std::printf("  %-22s %16s %12s %14s\n", "policy", "assigned/PoP",
              "probes", "client cov");
  {
    core::CacheProbeOptions per_pop;
    per_pop.max_loops = 3;
    double assigned = 0;
    const auto result = run_with(s, per_pop, &assigned);
    std::printf("  %-22s %16.1f %12llu %13.1f%%\n", "per-PoP (paper)",
                assigned,
                static_cast<unsigned long long>(result.probes_sent),
                truth_coverage(s, result));
  }
  {
    core::CacheProbeOptions max_radius;
    max_radius.max_loops = 3;
    max_radius.use_max_radius_everywhere = true;
    const auto result = run_with(s, max_radius, nullptr);
    std::printf("  %-22s %16.1f %12llu %13.1f%%\n", "max radius everywhere",
                result.average_assigned_per_pop,
                static_cast<unsigned long long>(result.probes_sent),
                truth_coverage(s, result));
  }

  // ---- 3. Transport ------------------------------------------------------
  std::printf("\nAblation 3 — transport (why the campaign uses TCP)\n");
  std::printf("  %-6s %12s %14s %14s\n", "proto", "probes", "rate-limited",
              "client cov");
  for (auto transport :
       {googledns::Transport::kTcp, googledns::Transport::kUdp}) {
    core::CacheProbeOptions opts;
    opts.transport = transport;
    opts.max_loops = 3;
    const auto result = run_with(s, opts);
    std::printf("  %-6s %12llu %14llu %13.1f%%\n",
                transport == googledns::Transport::kTcp ? "TCP" : "UDP",
                static_cast<unsigned long long>(result.probes_sent),
                static_cast<unsigned long long>(result.rate_limited),
                truth_coverage(s, result));
  }

  // ---- 4. Campaign duration (loops over the assigned list) --------------
  std::printf("\nAblation 4 — campaign duration (loop count; the paper "
              "loops for 120h)\n");
  std::printf("  %-6s %12s %14s\n", "loops", "probes", "client cov");
  for (int loops : {1, 2, 4, 6}) {
    core::CacheProbeOptions opts;
    opts.max_loops = loops;
    const auto result = run_with(s, opts);
    std::printf("  %-6d %12llu %13.1f%%\n", loops,
                static_cast<unsigned long long>(result.probes_sent),
                truth_coverage(s, result));
  }
  return 0;
}
