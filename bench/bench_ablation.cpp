// Ablations of the campaign's design choices (DESIGN.md): redundant-query
// count, per-PoP service radii vs one max radius, transport, and campaign
// duration (loop count). Run at a reduced scale so the sweep stays fast;
// set REPRO_SCALE to override.

#include <cstdio>
#include <cstdlib>

#include "common.h"
#include "core/scenario/scenario.h"

using namespace netclients;

namespace {

core::CampaignResult run_with(const core::Scenario& s,
                              const core::CacheProbeOptions& opts,
                              double* assigned = nullptr) {
  core::CacheProbeCampaign campaign(s.env, opts);
  auto result = campaign.run().result;
  if (assigned) *assigned = result.average_assigned_per_pop;
  return result;
}

double truth_coverage(const core::Scenario& s,
                      const core::CampaignResult& r) {
  double covered = 0, total = 0;
  for (const sim::Slash24Block& block : s.world().blocks()) {
    if (block.clients() <= 0) continue;
    total += block.clients();
    if (r.active.covers(net::Prefix::from_slash24_index(block.index))) {
      covered += block.clients();
    }
  }
  return total > 0 ? 100.0 * covered / total : 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  const char* env = std::getenv("REPRO_SCALE");
  const core::Scenario s = core::ScenarioBuilder()
                               .scale_denominator(env ? std::atof(env) : 256.0)
                               .build();
  std::fprintf(stderr, "[ablation] world: %zu /24s\n",
               s.world().blocks().size());

  // ---- 1. Redundant queries (the paper uses 5 to cover cache pools) ----
  std::printf("Ablation 1 — redundant queries per (PoP, prefix, domain)\n");
  std::printf("  %-10s %12s %14s %12s\n", "redundant", "probes", "client cov",
              "upper bound");
  for (int redundant : {1, 2, 3, 5, 8}) {
    core::CacheProbeOptions opts;
    opts.probe.redundant_queries = redundant;
    opts.max_loops = 3;
    const auto result = run_with(s, opts);
    std::printf("  %-10d %12llu %13.1f%% %12llu\n", redundant,
                static_cast<unsigned long long>(result.probes_sent),
                truth_coverage(s, result),
                static_cast<unsigned long long>(
                    result.slash24_upper_bound()));
  }

  // ---- 2. Per-PoP radii vs one max radius ------------------------------
  // The paper: per-PoP radii average 2.4M candidates per PoP vs 4.4M with
  // the 5,524 km maximum everywhere.
  std::printf("\nAblation 2 — service-radius policy\n");
  std::printf("  %-22s %16s %12s %14s\n", "policy", "assigned/PoP",
              "probes", "client cov");
  {
    core::CacheProbeOptions per_pop;
    per_pop.max_loops = 3;
    double assigned = 0;
    const auto result = run_with(s, per_pop, &assigned);
    std::printf("  %-22s %16.1f %12llu %13.1f%%\n", "per-PoP (paper)",
                assigned,
                static_cast<unsigned long long>(result.probes_sent),
                truth_coverage(s, result));
  }
  {
    core::CacheProbeOptions max_radius;
    max_radius.max_loops = 3;
    max_radius.use_max_radius_everywhere = true;
    const auto result = run_with(s, max_radius, nullptr);
    std::printf("  %-22s %16.1f %12llu %13.1f%%\n", "max radius everywhere",
                result.average_assigned_per_pop,
                static_cast<unsigned long long>(result.probes_sent),
                truth_coverage(s, result));
  }

  // ---- 3. Transport ------------------------------------------------------
  std::printf("\nAblation 3 — transport (why the campaign uses TCP)\n");
  std::printf("  %-6s %12s %14s %14s\n", "proto", "probes", "rate-limited",
              "client cov");
  for (auto transport :
       {googledns::Transport::kTcp, googledns::Transport::kUdp}) {
    core::CacheProbeOptions opts;
    opts.probe.transport = transport;
    opts.max_loops = 3;
    const auto result = run_with(s, opts);
    std::printf("  %-6s %12llu %14llu %13.1f%%\n",
                transport == googledns::Transport::kTcp ? "TCP" : "UDP",
                static_cast<unsigned long long>(result.probes_sent),
                static_cast<unsigned long long>(result.rate_limited),
                truth_coverage(s, result));
  }

  // ---- 4. Campaign duration (loops over the assigned list) --------------
  std::printf("\nAblation 4 — campaign duration (loop count; the paper "
              "loops for 120h)\n");
  std::printf("  %-6s %12s %14s\n", "loops", "probes", "client cov");
  for (int loops : {1, 2, 4, 6}) {
    core::CacheProbeOptions opts;
    opts.max_loops = loops;
    const auto result = run_with(s, opts);
    std::printf("  %-6d %12llu %13.1f%%\n", loops,
                static_cast<unsigned long long>(result.probes_sent),
                truth_coverage(s, result));
  }
  return 0;
}
