// Figure 6 (Appendix B.3): distribution across ASes of *relative* client
// activity as estimated by DNS logs (Chromium query counts), Microsoft
// resolvers (client counts per resolver AS), and APNIC (user estimates).
// Paper: DNS logs and Microsoft resolvers have similar distributions —
// both measure at the resolver — while APNIC has far fewer ASes with tiny
// volumes.

#include <cmath>
#include <cstdio>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p = bench::PipelineBuilder()
                            .with_cache_probing()
                            .with_chromium()
                            .with_validation()
                            .build();

  struct Series {
    const char* label;
    std::unordered_map<std::uint32_t, double> shares;
  };
  std::vector<Series> series;
  series.push_back({"DNS logs", core::relative_volumes(p.logs_as)});
  series.push_back(
      {"Microsoft resolvers", core::relative_volumes(p.resolvers_as)});
  series.push_back({"APNIC", core::relative_volumes(p.apnic_as)});

  std::printf("Figure 6 — CDF of per-AS relative volume (log10 shares)\n\n");
  std::printf("  %-20s %8s %9s %9s %9s %9s\n", "", "ASes", "p10", "p50",
              "p90", "p99");
  std::vector<std::vector<std::string>> csv;
  for (const auto& s : series) {
    std::vector<double> values;
    values.reserve(s.shares.size());
    for (const auto& [asn, share] : s.shares) values.push_back(share);
    core::Cdf cdf(std::move(values));
    std::printf("  %-20s %8zu %9.2e %9.2e %9.2e %9.2e\n", s.label,
                cdf.size(), cdf.quantile(0.10), cdf.quantile(0.50),
                cdf.quantile(0.90), cdf.quantile(0.99));
    for (const auto& [value, frac] : cdf.points(100)) {
      csv.push_back({s.label, core::fixed(std::log10(value + 1e-12), 4),
                     core::fixed(frac, 4)});
    }
  }
  std::printf("\n(expect DNS logs ≈ Microsoft resolvers; APNIC shifted "
              "toward larger shares)\n");
  core::write_csv(bench::out_path("fig6_relative_volume.csv"),
                  {"series", "log10_share", "cumulative_fraction"}, csv);
  return 0;
}
