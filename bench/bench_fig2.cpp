// Figure 2: CDF of the distance between calibration-hit prefixes and the
// PoP answering them, for three geographically diverse PoPs, plus the
// 90th-percentile "service radius" the campaign derives. Paper: radii
// range from 478 km (dense Europe) to 3273 km, max 5524 km (Zurich).

#include <cstdio>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p =
      bench::PipelineBuilder().with_cache_probing().build();

  const std::vector<std::string> focus = {"Groningen", "The Dalles",
                                          "Charleston"};
  std::printf("Figure 2 — distance from cache-hit prefixes to their PoP\n"
              "(paper service radii ranged 478-3273 km for these PoPs)\n\n");

  std::vector<std::vector<std::string>> csv;
  for (const std::string& city : focus) {
    const auto pop = p.world().pops().find_by_city(city);
    if (!pop || !p.calibration.hit_distances_km.contains(*pop)) {
      std::printf("  %-12s (no calibration hits)\n", city.c_str());
      continue;
    }
    const core::Cdf cdf(p.calibration.hit_distances_km.at(*pop));
    std::printf("  %-12s hits=%4zu  p50=%6.0f km  p90=%6.0f km  "
                "radius=%6.0f km\n",
                city.c_str(), cdf.size(), cdf.quantile(0.5),
                cdf.quantile(0.9), p.calibration.service_radius_km.at(*pop));
    for (const auto& [km, frac] : cdf.points(50)) {
      csv.push_back({city, core::fixed(km, 1), core::fixed(frac, 4)});
    }
  }

  std::printf("\nall probed PoPs (90th-percentile service radius):\n");
  std::vector<std::pair<double, std::string>> radii;
  for (const auto& [pop, radius] : p.calibration.service_radius_km) {
    radii.emplace_back(radius, p.world().pops().site(pop).city);
  }
  std::sort(radii.begin(), radii.end());
  double assigned_with_radii = 0;
  for (const auto& [radius, city] : radii) {
    std::printf("  %-16s %7.0f km\n", city.c_str(), radius);
  }
  (void)assigned_with_radii;
  std::printf("\nper-PoP assignment average: %.1f candidates "
              "(paper: 2.4M per PoP with per-PoP radii vs 4.4M with the "
              "5524 km max radius)\n",
              p.probing.average_assigned_per_pop);

  core::write_csv(bench::out_path("fig2_distance_cdf.csv"),
                  {"pop", "distance_km", "cumulative_fraction"}, csv);
  return 0;
}
