// Fault-injection sweep: how the cache-probing campaign degrades as the
// probe path gets lossy, and how much the retry policy buys back.
//
// Part 1 exercises the message-bus fault plane directly (--loss / --jitter
// / --outage flags) and reports BusStats. Part 2 sweeps injected probe
// timeout rates against retry budgets on one shared world and writes
// bench_out/faults_recall.csv: recall (client-weighted ground-truth
// coverage) must fall monotonically with loss, and retries must close part
// of the gap.
//
// Run:  build/bench/bench_faults [--loss=0.1] [--jitter=0.005]
//                                [--outage=BEGIN:END] [--retry-attempts=3]
//                                [--retry-backoff=0.05] [--retry-timeout=2]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "core/scenario/scenario.h"
#include "netsim/bus.h"

using namespace netclients;

namespace {

double truth_coverage(const sim::World& world,
                      const core::CampaignResult& r) {
  double covered = 0, total = 0;
  for (const sim::Slash24Block& block : world.blocks()) {
    if (block.clients() <= 0) continue;
    total += block.clients();
    if (r.active.covers(net::Prefix::from_slash24_index(block.index))) {
      covered += block.clients();
    }
  }
  return total > 0 ? 100.0 * covered / total : 0;
}

double flag_value(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  const double loss = flag_value(argc, argv, "--loss", 0.1);
  const double jitter = flag_value(argc, argv, "--jitter", 0.005);
  const int retry_attempts = static_cast<int>(
      flag_value(argc, argv, "--retry-attempts", 3));
  const double retry_backoff =
      flag_value(argc, argv, "--retry-backoff", 0.05);
  const double retry_timeout =
      flag_value(argc, argv, "--retry-timeout", 2.0);

  // ---- 1. The bus fault plane, datagram by datagram --------------------
  netsim::FaultConfig faults;
  faults.loss_probability = loss;
  faults.jitter_max_seconds = jitter;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--outage=", 9) == 0) {
      const char* spec = argv[i] + 9;
      const char* colon = std::strchr(spec, ':');
      if (colon) {
        faults.outages.push_back(
            {std::atof(spec), std::atof(colon + 1), net::Ipv4Addr(0)});
      }
    }
  }

  netsim::MessageBus bus;
  bus.set_faults(faults);
  const auto a = *net::Ipv4Addr::parse("198.18.0.1");
  const auto b = *net::Ipv4Addr::parse("198.18.0.2");
  std::uint64_t received = 0;
  bus.attach(b, [&](const netsim::Datagram&, net::SimTime) { ++received; });
  const int kDatagrams = 512;
  for (int i = 0; i < kDatagrams; ++i) {
    bus.send(a, b, netsim::Proto::kUdp, {0x00}, 0.01 * i, 0.005);
  }
  bus.run_until(0.01 * kDatagrams + 10.0);
  const netsim::BusStats& bs = bus.stats();
  bs.publish();
  std::printf("bus fault plane (loss=%.2f jitter=%.3fs outages=%zu):\n",
              loss, jitter, faults.outages.size());
  std::printf("  %-12s %8llu\n  %-12s %8llu\n  %-12s %8llu\n"
              "  %-12s %8llu\n  %-12s %8llu\n",
              "sent", static_cast<unsigned long long>(bs.sent),
              "delivered", static_cast<unsigned long long>(bs.delivered),
              "lost", static_cast<unsigned long long>(bs.lost),
              "outage-drop",
              static_cast<unsigned long long>(bs.outage_dropped),
              "reordered", static_cast<unsigned long long>(bs.reordered));
  std::printf("  receiver saw %llu datagrams\n\n",
              static_cast<unsigned long long>(received));

  // ---- 2. Campaign recall vs injected probe-loss rate ------------------
  const char* env = std::getenv("REPRO_SCALE");
  const core::Scenario scenario =
      core::ScenarioBuilder()
          .scale_denominator(env ? std::atof(env) : 512.0)
          .build();
  const sim::World& world = scenario.world();
  std::fprintf(stderr, "[faults] world: %zu /24s\n", world.blocks().size());

  // PoP discovery + calibration once, on the clean path — the sweep
  // isolates fault impact to the campaign stage itself.
  core::CacheProbeCampaign clean(scenario.env, scenario.options);
  const auto pops = clean.discover_pops();
  const auto calibration = clean.calibrate(pops);

  std::FILE* csv = std::fopen(bench::out_path("faults_recall.csv").c_str(),
                              "w");
  if (csv) std::fprintf(csv, "loss,retry_attempts,probes,retries,recall\n");
  std::printf("campaign recall vs injected probe timeout rate\n");
  std::printf("  %-6s %-9s %12s %10s %10s\n", "loss", "attempts", "probes",
              "retries", "recall");
  std::vector<int> attempt_grid = {1};
  if (retry_attempts != 1) attempt_grid.push_back(retry_attempts);
  for (double cell_loss : {0.0, 0.25, 0.5, 0.75}) {
    for (int attempts : attempt_grid) {
      googledns::GoogleDnsConfig cfg;
      cfg.faults.timeout_probability = cell_loss;
      googledns::GooglePublicDns gdns(&world.pops(), &world.catchment(),
                                      &world.authoritative(), cfg,
                                      scenario.activity.get());
      core::ProbeEnvironment cell_env = scenario.env;
      cell_env.google_dns = &gdns;
      core::CacheProbeOptions opts = scenario.options;
      opts.max_loops = 3;
      opts.probe.retry.max_attempts = attempts;
      opts.probe.retry.initial_backoff_seconds = retry_backoff;
      opts.probe.retry.udp_timeout_seconds = retry_timeout;
      opts.probe.retry.tcp_timeout_seconds = retry_timeout;
      core::CacheProbeCampaign campaign(cell_env, opts);
      const auto result = campaign.run(pops, calibration);
      const double recall = truth_coverage(world, result);
      std::printf("  %-6.2f %-9d %12llu %10llu %9.1f%%\n", cell_loss,
                  attempts,
                  static_cast<unsigned long long>(result.probes_sent),
                  static_cast<unsigned long long>(
                      result.retry_stats.retries),
                  recall);
      if (csv) {
        std::fprintf(csv, "%.2f,%d,%llu,%llu,%.3f\n", cell_loss, attempts,
                     static_cast<unsigned long long>(result.probes_sent),
                     static_cast<unsigned long long>(
                         result.retry_stats.retries),
                     recall);
      }
    }
  }
  if (csv) std::fclose(csv);
  std::printf(
      "\nReading: recall falls monotonically as probe loss rises; the retry\n"
      "budget recovers most of the gap until loss approaches saturation.\n");
  return 0;
}
