// Fault-injection sweep: how the cache-probing campaign degrades as the
// probe path gets lossy, and how much the retry policy buys back.
//
// Part 1 exercises the message-bus fault plane directly (--loss / --jitter
// / --outage flags) and reports BusStats. Part 2 sweeps injected probe
// timeout rates against retry budgets on one shared world and writes
// bench_out/faults_recall.csv: recall (client-weighted ground-truth
// coverage) must fall monotonically with loss, and retries must close part
// of the gap. Part 3 pits the event-driven probe engine against the
// legacy-sync adapter on the same faulty substrate: results must be
// byte-identical, and the engine's modeled probes/sec must beat sync by
// the pipelining factor (bench_out/faults_engine.csv; --require-speedup=N
// makes the bench exit nonzero below N — the CI gate).
//
// Run:  build/bench/bench_faults [--loss=0.1] [--jitter=0.005]
//                                [--outage=BEGIN:END] [--retry-attempts=3]
//                                [--retry-backoff=0.05] [--retry-timeout=2]
//                                [--require-speedup=N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "core/scenario/scenario.h"
#include "netsim/bus.h"

using namespace netclients;

namespace {

double truth_coverage(const sim::World& world,
                      const core::CampaignResult& r) {
  double covered = 0, total = 0;
  for (const sim::Slash24Block& block : world.blocks()) {
    if (block.clients() <= 0) continue;
    total += block.clients();
    if (r.active.covers(net::Prefix::from_slash24_index(block.index))) {
      covered += block.clients();
    }
  }
  return total > 0 ? 100.0 * covered / total : 0;
}

using bench::flag_value;

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  const double loss = flag_value(argc, argv, "--loss", 0.1);
  const double jitter = flag_value(argc, argv, "--jitter", 0.005);
  const int retry_attempts = static_cast<int>(
      flag_value(argc, argv, "--retry-attempts", 3));
  const double retry_backoff =
      flag_value(argc, argv, "--retry-backoff", 0.05);
  const double retry_timeout =
      flag_value(argc, argv, "--retry-timeout", 2.0);

  // ---- 1. The bus fault plane, datagram by datagram --------------------
  netsim::FaultConfig faults;
  faults.loss_probability = loss;
  faults.jitter_max_seconds = jitter;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--outage=", 9) == 0) {
      const char* spec = argv[i] + 9;
      const char* colon = std::strchr(spec, ':');
      if (colon) {
        faults.outages.push_back(
            {std::atof(spec), std::atof(colon + 1), net::Ipv4Addr(0)});
      }
    }
  }

  netsim::MessageBus bus;
  bus.set_faults(faults);
  const auto a = *net::Ipv4Addr::parse("198.18.0.1");
  const auto b = *net::Ipv4Addr::parse("198.18.0.2");
  std::uint64_t received = 0;
  bus.attach(b, [&](const netsim::Datagram&, net::SimTime) { ++received; });
  const int kDatagrams = 512;
  for (int i = 0; i < kDatagrams; ++i) {
    bus.send(a, b, netsim::Proto::kUdp, {0x00}, 0.01 * i, 0.005);
  }
  bus.run_until(0.01 * kDatagrams + 10.0);
  const netsim::BusStats& bs = bus.stats();
  bs.publish();
  std::printf("bus fault plane (loss=%.2f jitter=%.3fs outages=%zu):\n",
              loss, jitter, faults.outages.size());
  std::printf("  %-12s %8llu\n  %-12s %8llu\n  %-12s %8llu\n"
              "  %-12s %8llu\n  %-12s %8llu\n",
              "sent", static_cast<unsigned long long>(bs.sent),
              "delivered", static_cast<unsigned long long>(bs.delivered),
              "lost", static_cast<unsigned long long>(bs.lost),
              "outage-drop",
              static_cast<unsigned long long>(bs.outage_dropped),
              "reordered", static_cast<unsigned long long>(bs.reordered));
  std::printf("  receiver saw %llu datagrams\n\n",
              static_cast<unsigned long long>(received));

  // ---- 2. Campaign recall vs injected probe-loss rate ------------------
  const char* env = std::getenv("REPRO_SCALE");
  const core::Scenario scenario =
      core::ScenarioBuilder()
          .scale_denominator(env ? std::atof(env) : 512.0)
          .build();
  const sim::World& world = scenario.world();
  std::fprintf(stderr, "[faults] world: %zu /24s\n", world.blocks().size());

  // PoP discovery + calibration once, on the clean path — the sweep
  // isolates fault impact to the campaign stage itself. Each faulty cell
  // re-probes on top of these reused artifacts via run(kStageCampaign, .).
  core::CacheProbeCampaign clean(scenario.env, scenario.options);
  const core::CampaignArtifacts base =
      clean.run(core::kStagePops | core::kStageCalibration);

  std::FILE* csv = std::fopen(bench::out_path("faults_recall.csv").c_str(),
                              "w");
  if (csv) std::fprintf(csv, "loss,retry_attempts,probes,retries,recall\n");
  std::printf("campaign recall vs injected probe timeout rate\n");
  std::printf("  %-6s %-9s %12s %10s %10s\n", "loss", "attempts", "probes",
              "retries", "recall");
  std::vector<int> attempt_grid = {1};
  if (retry_attempts != 1) attempt_grid.push_back(retry_attempts);
  for (double cell_loss : {0.0, 0.25, 0.5, 0.75}) {
    for (int attempts : attempt_grid) {
      googledns::GoogleDnsConfig cfg;
      cfg.faults.timeout_probability = cell_loss;
      googledns::GooglePublicDns gdns(&world.pops(), &world.catchment(),
                                      &world.authoritative(), cfg,
                                      scenario.activity.get());
      core::ProbeEnvironment cell_env = scenario.env;
      cell_env.google_dns = &gdns;
      core::CacheProbeOptions opts = scenario.options;
      opts.max_loops = 3;
      opts.probe.retry.max_attempts = attempts;
      opts.probe.retry.initial_backoff_seconds = retry_backoff;
      opts.probe.retry.udp_timeout_seconds = retry_timeout;
      opts.probe.retry.tcp_timeout_seconds = retry_timeout;
      core::CacheProbeCampaign campaign(cell_env, opts);
      core::CampaignArtifacts reuse;
      reuse.pops = base.pops;
      reuse.calibration = base.calibration;
      const auto result =
          campaign.run(core::kStageCampaign, std::move(reuse)).result;
      const double recall = truth_coverage(world, result);
      std::printf("  %-6.2f %-9d %12llu %10llu %9.1f%%\n", cell_loss,
                  attempts,
                  static_cast<unsigned long long>(result.probes_sent),
                  static_cast<unsigned long long>(
                      result.retry_stats.retries),
                  recall);
      if (csv) {
        std::fprintf(csv, "%.2f,%d,%llu,%llu,%.3f\n", cell_loss, attempts,
                     static_cast<unsigned long long>(result.probes_sent),
                     static_cast<unsigned long long>(
                         result.retry_stats.retries),
                     recall);
      }
    }
  }
  if (csv) std::fclose(csv);
  std::printf(
      "\nReading: recall falls monotonically as probe loss rises; the retry\n"
      "budget recovers most of the gap until loss approaches saturation.\n");

  // ---- 3. Event engine vs legacy-sync adapter --------------------------
  // Same faulty substrate, same reused PoPs + calibration; only the probe
  // engine differs. Results must be byte-identical — the engine moves the
  // modeled clock, never the outcomes — while the in-flight window turns
  // per-chain latency (RTTs, timeouts, backoffs) into pipeline depth.
  const double require_speedup =
      flag_value(argc, argv, "--require-speedup", 0.0);
  googledns::GoogleDnsConfig engine_cfg;
  engine_cfg.faults.timeout_probability = 0.25;  // default fault profile
  googledns::GooglePublicDns engine_gdns(&world.pops(), &world.catchment(),
                                         &world.authoritative(), engine_cfg,
                                         scenario.activity.get());
  core::ProbeEnvironment engine_env = scenario.env;
  engine_env.google_dns = &engine_gdns;

  auto engine_run = [&](core::engine::EngineOptions::Mode mode, int window) {
    core::CacheProbeOptions opts = scenario.options;
    opts.max_loops = 3;
    opts.probe.retry.max_attempts = retry_attempts;
    opts.probe.retry.initial_backoff_seconds = retry_backoff;
    opts.probe.retry.udp_timeout_seconds = retry_timeout;
    opts.probe.retry.tcp_timeout_seconds = retry_timeout;
    opts.probe.engine.mode = mode;
    opts.probe.engine.window = window;
    core::CacheProbeCampaign campaign(engine_env, opts);
    core::CampaignArtifacts reuse;
    reuse.pops = base.pops;
    reuse.calibration = base.calibration;
    return campaign.run(core::kStageCampaign, std::move(reuse)).result;
  };
  const core::CampaignResult sync_run =
      engine_run(core::engine::EngineOptions::Mode::kSync, 1);
  const double sync_pps = sync_run.virtual_probes_per_second();

  std::printf("\nevent engine vs legacy-sync adapter (loss=0.25)\n");
  std::printf("  %-8s %-8s %12s %14s %12s %9s\n", "mode", "window",
              "probes", "virtual_sec", "probes/sec", "speedup");
  std::printf("  %-8s %-8d %12llu %14.1f %12.0f %9s\n", "sync", 1,
              static_cast<unsigned long long>(sync_run.probes_sent),
              sync_run.virtual_duration_seconds, sync_pps, "1.0x");
  std::FILE* engine_csv =
      std::fopen(bench::out_path("faults_engine.csv").c_str(), "w");
  if (engine_csv) {
    std::fprintf(engine_csv,
                 "mode,window,probes,virtual_seconds,probes_per_sec,"
                 "speedup\n");
    std::fprintf(engine_csv, "sync,1,%llu,%.3f,%.1f,1.0\n",
                 static_cast<unsigned long long>(sync_run.probes_sent),
                 sync_run.virtual_duration_seconds, sync_pps);
  }

  double default_speedup = 0;
  bool parity_ok = true;
  for (int window : {1, 8, 64}) {
    const core::CampaignResult event_run =
        engine_run(core::engine::EngineOptions::Mode::kEvent, window);
    // Parity gate: the window reshapes the virtual timeline only.
    if (event_run.probes_sent != sync_run.probes_sent ||
        event_run.hits.size() != sync_run.hits.size() ||
        event_run.rate_limited != sync_run.rate_limited ||
        !(event_run.retry_stats == sync_run.retry_stats)) {
      std::fprintf(stderr,
                   "[faults] PARITY FAILURE at window %d: engine and sync "
                   "campaigns diverged\n",
                   window);
      parity_ok = false;
    }
    const double pps = event_run.virtual_probes_per_second();
    const double speedup = sync_pps > 0 ? pps / sync_pps : 0;
    if (window == 64) default_speedup = speedup;
    std::printf("  %-8s %-8d %12llu %14.1f %12.0f %8.1fx\n", "event",
                window,
                static_cast<unsigned long long>(event_run.probes_sent),
                event_run.virtual_duration_seconds, pps, speedup);
    if (engine_csv) {
      std::fprintf(engine_csv, "event,%d,%llu,%.3f,%.1f,%.2f\n", window,
                   static_cast<unsigned long long>(event_run.probes_sent),
                   event_run.virtual_duration_seconds, pps, speedup);
    }
  }
  if (engine_csv) std::fclose(engine_csv);
  obs::Registry::global().gauge("engine.bench.sync_probes_per_sec")
      .set(sync_pps);
  obs::Registry::global().gauge("engine.bench.speedup").set(default_speedup);
  std::printf(
      "\nReading: identical campaigns either way; the event engine's window\n"
      "pipelines chain latency, multiplying modeled probes/sec.\n");
  if (!parity_ok) return 1;
  if (require_speedup > 0 && default_speedup < require_speedup) {
    std::fprintf(stderr,
                 "[faults] engine speedup %.1fx below required %.1fx\n",
                 default_speedup, require_speedup);
    return 1;
  }
  return 0;
}
