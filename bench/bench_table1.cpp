// Table 1: /24-prefix overlap between {cache probing, DNS logs, their
// union, Microsoft clients, Microsoft resolvers}. Paper reference (full
// scale): cache probing 9712.2K, DNS logs 692.2K, union 9753.9K, clients
// 8849.9K, resolvers 967.7K; clients∩probing = 74.7% of clients row.

#include <cstdio>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p = bench::PipelineBuilder()
                            .with_cache_probing()
                            .with_chromium()
                            .with_validation()
                            .build();

  const std::vector<const core::PrefixDataset*> sets = {
      &p.probing_prefixes, &p.logs_prefixes, &p.union_prefixes,
      &p.clients_prefixes, &p.resolvers_prefixes};
  const core::OverlapMatrix matrix = core::prefix_overlap(sets);

  std::printf("Table 1 — /24 prefix overlap (row: count in both, %% of row "
              "dataset also in column)\n\n%s\n",
              core::render_overlap(matrix).c_str());

  std::printf("paper reference (%% of row in column):\n");
  std::printf("  Microsoft clients in cache probing : paper 74.7%%\n");
  std::printf("  DNS logs in Microsoft clients      : paper 95.5%%\n");
  std::printf("  cache probing in Microsoft clients : paper 68.1%%\n");
  std::printf("  Microsoft resolvers in union       : paper 98.6%%\n");

  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = 0; r < matrix.names.size(); ++r) {
    for (std::size_t c = 0; c < matrix.names.size(); ++c) {
      rows.push_back({matrix.names[r], matrix.names[c],
                      std::to_string(matrix.cells[r][c]),
                      core::fixed(matrix.row_pct(r, c), 2)});
    }
  }
  core::write_csv(bench::out_path("table1.csv"),
                  {"row", "column", "intersection", "row_pct"}, rows);
  return 0;
}
