// §6 extension: relative activity ranking of active prefixes by repeated
// cache probing (the roadmap the paper sketches and [20] prototypes).
// Validated against ground truth: the estimated per-prefix query rate
// should rank prefixes like their true Google-DNS client rates.

#include <algorithm>
#include <cstdio>

#include "common.h"
#include "core/rank/activity_rank.h"

using namespace netclients;

namespace {

double true_rate(const bench::Pipelines& p, net::Prefix prefix) {
  double rate = 0;
  const auto [first, last] = p.world().block_range(prefix);
  for (std::size_t b = first; b < last; ++b) {
    for (std::size_t d = 0; d < p.world().domains().size(); ++d) {
      rate += p.world().gdns_rate(p.world().blocks()[b], static_cast<int>(d));
    }
  }
  return rate;
}

double spearman(std::vector<std::pair<double, double>> xy) {
  auto ranks = [](std::vector<double> v) {
    std::vector<std::size_t> order(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> rank(v.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      rank[order[i]] = static_cast<double>(i);
    }
    return rank;
  };
  std::vector<double> xs, ys;
  for (const auto& [x, y] : xy) {
    xs.push_back(x);
    ys.push_back(y);
  }
  const auto rx = ranks(xs), ry = ranks(ys);
  const double n = static_cast<double>(xy.size());
  double mean = (n - 1) / 2, num = 0, dx = 0, dy = 0;
  for (std::size_t i = 0; i < xy.size(); ++i) {
    num += (rx[i] - mean) * (ry[i] - mean);
    dx += (rx[i] - mean) * (rx[i] - mean);
    dy += (ry[i] - mean) * (ry[i] - mean);
  }
  return num / std::sqrt(dx * dy);
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p =
      bench::PipelineBuilder().with_cache_probing().build();

  core::ActivityRanker ranker(p.google_dns(), p.world().domains());
  std::fprintf(stderr, "[bench] ranking %zu active prefixes...\n",
               p.probing.active.size());
  const auto ranked = ranker.rank(p.probing, p.pops);

  std::vector<std::pair<double, double>> est_vs_truth;
  for (const auto& row : ranked) {
    est_vs_truth.emplace_back(row.estimated_rate, true_rate(p, row.prefix));
  }
  std::printf("Activity ranking (%zu prefixes, %d rounds each)\n\n",
              ranked.size(), core::RankOptions{}.rounds);

  // Decile view: mean true rate per estimated-rank decile should decrease.
  std::printf("  estimated-rank decile   mean true client rate (q/s)\n");
  const std::size_t per_decile = std::max<std::size_t>(1, ranked.size() / 10);
  std::vector<std::vector<std::string>> csv;
  for (int decile = 0; decile < 10; ++decile) {
    double total = 0;
    std::size_t count = 0;
    for (std::size_t i = decile * per_decile;
         i < std::min(ranked.size(), (decile + 1) * per_decile); ++i) {
      total += est_vs_truth[i].second;
      ++count;
    }
    if (count == 0) continue;
    std::printf("  %2d %32.5f\n", decile + 1, total / count);
    csv.push_back({std::to_string(decile + 1),
                   core::fixed(total / count, 6)});
  }

  const double rho = spearman(est_vs_truth);
  std::printf("\nSpearman rank correlation (estimate vs ground truth): "
              "%.3f\n", rho);
  std::printf("(the paper leaves this as future work; [20] reports initial "
              "validation of the approach)\n");
  core::write_csv(bench::out_path("rank_deciles.csv"),
                  {"decile", "mean_true_rate"}, csv);
  return 0;
}
