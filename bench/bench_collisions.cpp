// §3.2.1 collision analysis: the DNS-logs technique separates Chromium
// probes from other traffic with a per-name daily occurrence threshold.
// The paper's empirical simulation found random 7-15 letter names collide
// fewer than 7 times per day across all roots with 99% probability; this
// bench reproduces that analysis analytically and by Monte Carlo, at the
// real root-traffic magnitude and at the bench world's.

#include <cstdio>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  // 2020-era Chromium load on the roots: roughly half of ~60B daily root
  // queries (the paper's B-root check: "a few percent" post-fix, ~30% of
  // its 2020 level).
  const double real_daily = 25e9;

  std::printf("Chromium name-collision analysis (threshold = 7/day)\n\n");
  std::printf("  %-28s %14s %18s %14s\n", "daily signature queries",
              "E[collisions]", "P(name < 7) exact", "Monte Carlo");
  for (double daily : {real_daily, real_daily / 10, real_daily * 10}) {
    const auto study = core::study_collisions(daily, 7, 200000, 0x90);
    std::printf("  %-28.3g %14.4f %18.6f %14.6f\n", daily,
                study.expected_per_name, study.p_name_below_threshold,
                study.observed_p_below);
  }

  std::printf("\nthreshold sweep at 25e9 queries/day:\n");
  std::printf("  %-10s %20s\n", "threshold", "P(name below)");
  for (std::uint32_t threshold : {2u, 3u, 5u, 7u, 10u, 15u}) {
    const auto study = core::study_collisions(real_daily, threshold, 50000,
                                              0x91);
    std::printf("  %-10u %20.6f\n", threshold,
                study.p_name_below_threshold);
  }
  std::printf("\n(paper: fewer than 7 collisions/day with 99%% "
              "probability — i.e. P(name < 7) >= 0.99)\n");
  return 0;
}
