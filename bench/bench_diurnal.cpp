// §6 temporal-signal experiment: separating human prefixes from bot
// prefixes by their diurnal activity swing. The world is generated with a
// human day/night cycle (bots flat); the classifier probes each prefix's
// activity at several times of day and thresholds the relative swing.
//
// This is the forward-looking experiment the paper sketches ("using
// signals such as ... patterns over time (e.g., diurnal patterns)") — no
// paper figure exists, so ground-truth precision/recall is the deliverable.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "anycast/vantage.h"
#include "common.h"
#include "core/rank/activity_rank.h"
#include "sim/activity.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  sim::WorldConfig config;
  const char* env = std::getenv("REPRO_SCALE");
  config.scale = 1.0 / (env ? std::atof(env) : 256.0);
  config.diurnal_amplitude = 0.65;
  const sim::World world = sim::World::generate(config);
  sim::WorldActivityModel activity(&world);
  googledns::GooglePublicDns gdns(&world.pops(), &world.catchment(),
                                  &world.authoritative(),
                                  googledns::GoogleDnsConfig{}, &activity);
  core::ProbeEnvironment probe_env;
  probe_env.authoritative = &world.authoritative();
  probe_env.google_dns = &gdns;
  probe_env.geodb = &world.geodb();
  probe_env.vantage_points = anycast::default_vantage_fleet();
  probe_env.domains = world.domains();
  probe_env.slash24_begin = 1u << 16;
  probe_env.slash24_end = world.address_space_end();
  core::CacheProbeCampaign campaign(std::move(probe_env));
  const auto artifacts = campaign.run();
  const auto& pops = artifacts.pops;
  const auto& probing = artifacts.result;
  std::fprintf(stderr, "[diurnal] %zu active prefixes\n",
               probing.active.size());

  std::unordered_map<anycast::PopId, int> vp_of;
  for (const auto& [pop, vp] : pops.probed_pops) vp_of.emplace(pop, vp);
  std::unordered_map<std::uint32_t, anycast::PopId> pop_of;
  for (const core::CacheHit& hit : probing.hits) {
    pop_of.emplace(hit.query_scope.base().value(), hit.pop);
  }

  core::ActivityRanker ranker(&gdns, world.domains());
  // Phase-locked contrast: the prober geolocates the prefix (MaxMind) and
  // compares activity estimates at its local evening vs pre-dawn.
  const double threshold = 0.30;  // contrast above this => human
  int human_total = 0, human_flagged = 0;
  int bot_total = 0, bot_flagged = 0;
  std::vector<std::vector<std::string>> csv;
  probing.active.for_each([&](net::Prefix prefix) {
    const auto pop_it = pop_of.find(prefix.base().value());
    if (pop_it == pop_of.end() || !vp_of.contains(pop_it->second)) return;
    const auto geo = world.geodb().lookup(prefix.first_slash24_index());
    if (!geo) return;
    // Ground truth composition of the prefix.
    double humans = 0, bots = 0;
    const auto [first, last] = world.block_range(prefix);
    for (std::size_t b = first; b < last; ++b) {
      humans += world.blocks()[b].users;
      bots += world.blocks()[b].bot_users;
    }
    const bool truly_human = humans > bots;
    const double contrast = ranker.day_night_contrast(
        prefix, pop_it->second, vp_of.at(pop_it->second),
        geo->location.lon_deg);
    const bool flagged_human = contrast > threshold;
    (truly_human ? human_total : bot_total) += 1;
    if (truly_human) {
      human_flagged += flagged_human;
    } else {
      bot_flagged += flagged_human;
    }
    csv.push_back({prefix.to_string(), truly_human ? "human" : "bot",
                   core::fixed(contrast, 4)});
  });

  std::printf("Human-vs-bot classification by day/night contrast "
              "(threshold %.2f)\n\n", threshold);
  std::printf("  ground truth   prefixes   flagged human   rate\n");
  std::printf("  human        %10d %15d %5.1f%%   (recall)\n", human_total,
              human_flagged,
              human_total ? 100.0 * human_flagged / human_total : 0);
  std::printf("  bot          %10d %15d %5.1f%%   (false-positive "
              "rate)\n",
              bot_total, bot_flagged,
              bot_total ? 100.0 * bot_flagged / bot_total : 0);
  std::printf("\n(no paper reference — §6 sketches this as future work; the "
              "signal exists\n because human query rates swing with local "
              "time of day while bots are flat)\n");
  core::write_csv(bench::out_path("diurnal_swings.csv"),
                  {"prefix", "truth", "swing"}, csv);
  return 0;
}
