// Figure 4: CDF over ASes of the fraction of announced /24s detected as
// active by cache probing, with the lower bound (one /24 per hit prefix)
// and upper bound (all /24s in every hit prefix). Paper: bounds are wide —
// the median AS could be anywhere between 25% and 100% active — and at
// least 15% of ASes have most prefixes inactive.

#include <cstdio>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p =
      bench::PipelineBuilder().with_cache_probing().build();

  const auto bounds = core::per_as_active_fraction(p.world(), p.probing.active);

  std::vector<double> lower, upper;
  lower.reserve(bounds.size());
  upper.reserve(bounds.size());
  for (const auto& row : bounds) {
    lower.push_back(static_cast<double>(row.lower) /
                    static_cast<double>(row.announced_slash24));
    upper.push_back(static_cast<double>(row.upper) /
                    static_cast<double>(row.announced_slash24));
  }
  const core::Cdf lower_cdf(std::move(lower));
  const core::Cdf upper_cdf(std::move(upper));

  std::printf("Figure 4 — fraction of each AS's announced /24s detected "
              "active (%zu ASes)\n\n", bounds.size());
  std::printf("  quantile   lower bound   upper bound\n");
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    std::printf("  p%-8.0f %10.2f %13.2f\n", q * 100,
                lower_cdf.quantile(q), upper_cdf.quantile(q));
  }
  std::printf("\nmedian AS active fraction is in [%.0f%%, %.0f%%] "
              "(paper: [25%%, 100%%])\n",
              100 * lower_cdf.quantile(0.5), 100 * upper_cdf.quantile(0.5));
  std::printf("ASes with upper bound < 50%% of prefixes: %.1f%% "
              "(paper: \"most prefixes in at least 15%% of ASes do not "
              "contain clients\")\n",
              100 * [&] {
                std::size_t below = 0;
                for (const auto& row : bounds) {
                  if (row.upper * 2 < row.announced_slash24) ++below;
                }
                return static_cast<double>(below) / bounds.size();
              }());

  std::vector<std::vector<std::string>> csv;
  for (const auto& [value, frac] : lower_cdf.points(100)) {
    csv.push_back({"lower", core::fixed(value, 4), core::fixed(frac, 4)});
  }
  for (const auto& [value, frac] : upper_cdf.points(100)) {
    csv.push_back({"upper", core::fixed(value, 4), core::fixed(frac, 4)});
  }
  core::write_csv(bench::out_path("fig4_active_fraction.csv"),
                  {"bound", "active_fraction", "cumulative_fraction"}, csv);
  return 0;
}
