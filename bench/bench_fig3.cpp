// Figure 3: per-country fraction of APNIC-estimated Internet users that
// live in ASes where cache probing detected client activity. The paper
// finds ~100% in the US, 99% in India, 98% in China, with the notable
// gaps concentrated in South America (Bolivia, Ecuador, Peru, ...).

#include <cstdio>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p = bench::PipelineBuilder()
                            .with_cache_probing()
                            .with_validation()
                            .build();

  const auto rows = core::country_coverage(p.world(), p.apnic.users_by_as,
                                           p.probing_as);

  std::printf("Figure 3 — fraction of APNIC population in ASes detected by "
              "cache probing\n\n");
  core::TextTable table;
  table.set_header({"country", "region", "APNIC users", "covered"});
  std::unordered_map<std::string, std::string> region_of;
  for (const auto& c : p.world().countries()) region_of[c.code] = c.region;
  std::vector<std::vector<std::string>> csv;
  for (const auto& row : rows) {
    table.add_row({row.name, region_of[row.code],
                   core::human_count(row.apnic_users),
                   core::pct(100 * row.covered_fraction)});
    csv.push_back({row.code, row.name,
                   core::fixed(row.apnic_users, 0),
                   core::fixed(row.covered_fraction, 4)});
  }
  std::printf("%s\n", table.to_string().c_str());

  double sa_total = 0, sa_covered = 0, other_total = 0, other_covered = 0;
  for (const auto& row : rows) {
    const bool is_sa = region_of[row.code] == "SA";
    (is_sa ? sa_total : other_total) += row.apnic_users;
    (is_sa ? sa_covered : other_covered) +=
        row.apnic_users * row.covered_fraction;
  }
  std::printf("South America coverage : %5.1f%%   (the paper's problem "
              "region)\n",
              sa_total > 0 ? 100 * sa_covered / sa_total : 0);
  std::printf("Rest of world coverage : %5.1f%%\n",
              other_total > 0 ? 100 * other_covered / other_total : 0);

  core::write_csv(bench::out_path("fig3_country_coverage.csv"),
                  {"code", "country", "apnic_users", "covered_fraction"},
                  csv);
  return 0;
}
