// The paper's headline scalar claims (§1, §4), recomputed end to end:
//   * techniques identify client activity in ASes responsible for 98.8% of
//     Microsoft CDN traffic, and prefixes responsible for 95.2%;
//   * <1% of cache-probing scope prefixes contain no /24 that contacts
//     Microsoft (99.1% scope-level precision);
//   * cache probing recovers 91% of the ground-truth ECS /24s of a
//     Microsoft-hosted domain;
//   * DNS activity is a good proxy for web activity: client /24s seen over
//     HTTP cover 97.2% of ECS DNS activity and ECS prefixes cover 92% of
//     HTTP volume;
//   * 29,973 ASes detected by the techniques are absent from APNIC; ASdb
//     categorizes 92.7% of them (39.5% ISPs, 17.4% hosting, 6.2% schools).

#include <cstdio>
#include <unordered_set>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p = bench::PipelineBuilder()
                            .with_cache_probing()
                            .with_chromium()
                            .with_validation()
                            .build();

  // --- volume coverage ------------------------------------------------
  const auto as_vol = core::as_volume_overlap({&p.clients_as}, {&p.union_as});
  std::printf("AS-level CDN volume covered by techniques    : %5.1f%%  "
              "(paper 98.8%%)\n", as_vol[0][0]);
  std::printf("prefix-level CDN volume covered              : %5.1f%%  "
              "(paper 95.2%%)\n",
              core::prefix_volume_share(p.clients_prefixes,
                                        p.union_prefixes));

  // --- scope-level precision -------------------------------------------
  std::uint64_t scopes = 0, scopes_with_client = 0;
  p.probing.active.for_each([&](net::Prefix prefix) {
    ++scopes;
    const std::uint32_t first = prefix.first_slash24_index();
    const std::uint64_t count = prefix.slash24_count();
    for (std::uint64_t k = 0; k < count; ++k) {
      if (p.clients_prefixes.contains(first + static_cast<std::uint32_t>(k))) {
        ++scopes_with_client;
        return;
      }
    }
  });
  std::printf("hit scopes containing >=1 Microsoft client /24: %5.1f%%  "
              "(paper 99.1%%)\n",
              scopes ? 100.0 * scopes_with_client / scopes : 0);

  // --- ground-truth ECS recovery (the Microsoft CDN domain) -------------
  int ms_domain = -1;
  for (std::size_t d = 0; d < p.world().domains().size(); ++d) {
    if (p.world().domains()[d].is_microsoft_cdn) ms_domain = static_cast<int>(d);
  }
  std::uint64_t recovered = 0;
  for (std::uint32_t idx : p.ms.ecs_prefixes) {
    if (p.probing.active_by_domain[static_cast<std::size_t>(ms_domain)]
            .intersects(net::Prefix::from_slash24_index(idx))) {
      ++recovered;
    }
  }
  std::printf("ground-truth ECS /24s recovered by probing   : %5.1f%%  "
              "(paper 91%%)\n",
              p.ms.ecs_prefixes.empty()
                  ? 0
                  : 100.0 * recovered / p.ms.ecs_prefixes.size());

  // --- DNS as a proxy for HTTP ------------------------------------------
  std::uint64_t ecs_with_http = 0;
  for (std::uint32_t idx : p.ms.ecs_prefixes) {
    if (p.clients_prefixes.contains(idx)) ++ecs_with_http;
  }
  std::printf("ECS (DNS) prefixes with HTTP activity        : %5.1f%%  "
              "(paper 97.2%% by DNS volume)\n",
              p.ms.ecs_prefixes.empty()
                  ? 0
                  : 100.0 * ecs_with_http / p.ms.ecs_prefixes.size());
  std::printf("HTTP volume from prefixes seen in ECS DNS    : %5.1f%%  "
              "(paper 92%%)\n",
              core::prefix_volume_share(p.clients_prefixes,
                                        p.ecs_prefixes));

  // --- who does APNIC miss? ---------------------------------------------
  std::unordered_set<std::uint32_t> missed;
  for (const auto& [asn, volume] : p.union_as.entries()) {
    if (!p.apnic_as.contains(asn)) missed.insert(asn);
  }
  std::size_t categorized = 0;
  std::unordered_map<asdb::AsCategory, std::size_t> by_category;
  for (std::uint32_t asn : missed) {
    if (auto category = p.world().asdb().lookup(asn)) {
      ++categorized;
      ++by_category[*category];
    }
  }
  std::printf("\nASes detected by techniques but not in APNIC : %zu "
              "(paper 29,973 at full scale)\n", missed.size());
  std::printf("  categorized by ASdb : %5.1f%%  (paper 92.7%%)\n",
              missed.empty() ? 0 : 100.0 * categorized / missed.size());
  auto category_pct = [&](asdb::AsCategory c) {
    return categorized == 0 ? 0 : 100.0 * by_category[c] / categorized;
  };
  std::printf("  ISPs                : %5.1f%%  (paper 39.5%%)\n",
              category_pct(asdb::AsCategory::kIsp) +
                  category_pct(asdb::AsCategory::kMobileCarrier));
  std::printf("  hosting/cloud       : %5.1f%%  (paper 17.4%%)\n",
              category_pct(asdb::AsCategory::kHostingCloud));
  std::printf("  education           : %5.1f%%  (paper  6.2%%)\n",
              category_pct(asdb::AsCategory::kEducation));

  // --- technique totals ----------------------------------------------
  std::printf("\ntechnique totals at this scale:\n");
  std::printf("  cache probing /24 bounds  : [%llu, %llu]\n",
              static_cast<unsigned long long>(p.probing.slash24_lower_bound()),
              static_cast<unsigned long long>(
                  p.probing.slash24_upper_bound()));
  std::printf("  DNS logs resolvers        : %zu\n",
              p.chromium.probes_by_resolver.size());
  std::printf("  union ASes                : %zu (%.1f%% of all-dataset "
              "ASes seen by Microsoft clients at paper scale: 97%%)\n",
              p.union_as.size(),
              p.clients_as.size()
                  ? 100.0 * p.union_as.size() / p.clients_as.size()
                  : 0);
  return 0;
}
