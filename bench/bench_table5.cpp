// Table 5 (Appendix B.4): per-domain cache-probing results — total and
// unique active prefixes / ASes per probed domain, plus pairwise
// containment-aware prefix overlap. Paper highlights: Wikipedia returns
// far fewer (but much wider, /16-18) prefixes yet contributes many unique
// ASes; YouTube adds little beyond Google (89% of its prefixes are also
// Google hits); Facebook adds least.

#include <cstdio>
#include <unordered_set>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p =
      bench::PipelineBuilder().with_cache_probing().build();

  const auto& domains = p.world().domains();
  const std::size_t n = domains.size();
  const auto& by_domain = p.probing.active_by_domain;

  // AS sets per domain.
  std::vector<std::unordered_set<std::uint32_t>> as_sets(n);
  for (std::size_t d = 0; d < n; ++d) {
    by_domain[d].for_each([&](net::Prefix prefix) {
      if (auto match = p.world().prefix2as().longest_match(prefix.base())) {
        as_sets[d].insert(p.world().ases()[*match->second].asn);
      }
    });
  }

  // Unique prefixes/ASes: present for this domain only (containment-aware
  // for prefixes, since scopes differ across domains).
  std::vector<std::uint64_t> unique_prefixes(n, 0), unique_ases(n, 0);
  for (std::size_t d = 0; d < n; ++d) {
    by_domain[d].for_each([&](net::Prefix prefix) {
      for (std::size_t other = 0; other < n; ++other) {
        if (other != d && by_domain[other].intersects(prefix)) return;
      }
      ++unique_prefixes[d];
    });
    for (std::uint32_t asn : as_sets[d]) {
      bool elsewhere = false;
      for (std::size_t other = 0; other < n && !elsewhere; ++other) {
        elsewhere = other != d && as_sets[other].contains(asn);
      }
      if (!elsewhere) ++unique_ases[d];
    }
  }

  core::TextTable top;
  std::vector<std::string> header{""};
  for (const auto& domain : domains) header.push_back(domain.name.to_string());
  top.set_header(header);
  auto add = [&](const char* label, auto value_of) {
    std::vector<std::string> row{label};
    for (std::size_t d = 0; d < n; ++d) row.push_back(value_of(d));
    top.add_row(std::move(row));
  };
  add("Total prefixes", [&](std::size_t d) {
    return std::to_string(by_domain[d].size());
  });
  add("Unique prefixes", [&](std::size_t d) {
    const double share = by_domain[d].size() == 0
                             ? 0
                             : 100.0 * unique_prefixes[d] /
                                   by_domain[d].size();
    return std::to_string(unique_prefixes[d]) + " (" + core::pct(share) +
           ")";
  });
  add("Total ASes", [&](std::size_t d) {
    return std::to_string(as_sets[d].size());
  });
  add("Unique ASes", [&](std::size_t d) {
    const double share =
        as_sets[d].empty() ? 0 : 100.0 * unique_ases[d] / as_sets[d].size();
    return std::to_string(unique_ases[d]) + " (" + core::pct(share, 0) + ")";
  });
  std::printf("Table 5 (top) — per-domain discovery\n\n%s\n",
              top.to_string().c_str());

  // Bottom half: prefixes of row domain that also intersect column domain.
  core::TextTable bottom;
  bottom.set_header(header);
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row{domains[r].name.to_string()};
    for (std::size_t c = 0; c < n; ++c) {
      std::uint64_t common = 0;
      by_domain[r].for_each([&](net::Prefix prefix) {
        if (by_domain[c].intersects(prefix)) ++common;
      });
      const double share =
          by_domain[r].size() == 0 ? 0 : 100.0 * common / by_domain[r].size();
      row.push_back(std::to_string(common) + " (" + core::pct(share, 0) +
                    ")");
    }
    bottom.add_row(std::move(row));
  }
  std::printf("Table 5 (bottom) — containment-aware prefix overlap between "
              "domains\n(paper: 89%% of YouTube prefixes also hit for "
              "Google)\n\n%s\n",
              bottom.to_string().c_str());

  std::vector<std::vector<std::string>> csv;
  for (std::size_t d = 0; d < n; ++d) {
    csv.push_back({domains[d].name.to_string(),
                   std::to_string(by_domain[d].size()),
                   std::to_string(unique_prefixes[d]),
                   std::to_string(as_sets[d].size()),
                   std::to_string(unique_ases[d])});
  }
  core::write_csv(bench::out_path("table5.csv"),
                  {"domain", "total_prefixes", "unique_prefixes",
                   "total_ases", "unique_ases"},
                  csv);
  return 0;
}
