// Table 3: AS-level overlap between the two techniques, their union,
// APNIC, Microsoft clients and Microsoft resolvers. Paper diagonal:
// 36,989 / 39,652 / 51,859 / 23,344 / 64,766 / 40,394 (scale-dependent);
// headline ratios: APNIC misses 64% of Microsoft-client ASes, the union
// misses only ~23%.

#include <cstdio>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p = bench::PipelineBuilder()
                            .with_cache_probing()
                            .with_chromium()
                            .with_validation()
                            .build();

  const std::vector<const core::AsDataset*> sets = {
      &p.probing_as, &p.logs_as,      &p.union_as,
      &p.apnic_as,   &p.clients_as,   &p.resolvers_as};
  const core::OverlapMatrix matrix = core::as_overlap(sets);

  std::printf("Table 3 — AS overlap (count, %% of row dataset also in "
              "column)\n\n%s\n",
              core::render_overlap(matrix, /*human=*/false).c_str());

  const auto pct_of = [&](std::size_t row, std::size_t col) {
    return matrix.row_pct(row, col);
  };
  std::printf("headline ratios (ours vs paper):\n");
  std::printf("  APNIC coverage of Microsoft clients   : %5.1f%%  (paper "
              "35.9%%)\n", pct_of(4, 3));
  std::printf("  union coverage of Microsoft clients   : %5.1f%%  (paper "
              "77.2%%)\n", pct_of(4, 2));
  std::printf("  cache probing found in MS clients     : %5.1f%%  (paper "
              "97.1%%)\n", pct_of(0, 4));
  std::printf("  DNS logs found in MS clients          : %5.1f%%  (paper "
              "97.8%%)\n", pct_of(1, 4));
  std::printf("  union coverage of APNIC               : %5.1f%%  (paper "
              "93.8%%)\n", pct_of(3, 2));
  std::printf("  technique overlap (probing in logs)   : %5.1f%%  (paper "
              "67.0%%)\n", pct_of(0, 1));

  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = 0; r < matrix.names.size(); ++r) {
    for (std::size_t c = 0; c < matrix.names.size(); ++c) {
      rows.push_back({matrix.names[r], matrix.names[c],
                      std::to_string(matrix.cells[r][c]),
                      core::fixed(matrix.row_pct(r, c), 2)});
    }
  }
  core::write_csv(bench::out_path("table3.csv"),
                  {"row", "column", "intersection", "row_pct"}, rows);
  return 0;
}
