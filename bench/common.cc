#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <utility>

#include "core/exec/exec.h"
#include "core/obs/obs.h"

namespace netclients::bench {

namespace {

double env_denominator(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (!value) return fallback;
  const double parsed = std::atof(value);
  return parsed > 0 ? parsed : fallback;
}

/// Routes every obs::StageSpan — the pipelines' internal stage spans and
/// the bench-level ones alike — to stderr, so the registry is the single
/// source of truth for stage timing and the narration can never drift from
/// what gets exported.
void install_span_narrator() {
  static std::once_flag once;
  std::call_once(once, [] {
    obs::set_span_logger(obs::SpanLogger{
        [](std::string_view name) {
          std::fprintf(stderr, "[bench] %.*s...\n",
                       static_cast<int>(name.size()), name.data());
        },
        [](std::string_view name, double ms) {
          std::fprintf(stderr, "[bench] %.*s: %.0f ms\n",
                       static_cast<int>(name.size()), name.data(), ms);
        }});
  });
}

}  // namespace

double scale_denominator() { return env_denominator("REPRO_SCALE", 64); }

double ditl_sample_denominator() {
  return env_denominator("REPRO_DITL_SAMPLE", 64);
}

double flag_value(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const char* name,
                        const std::string& fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  const std::string bare = name;
  const std::string prefix = bare + "=";
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i] ||
        std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return true;
    }
  }
  return false;
}

ScaleSpec parse_scale(int argc, char** argv) {
  const std::string name = flag_string(argc, argv, "--scale", "paper");
  ScaleSpec spec;
  spec.name = name;
  if (name == "paper") return spec;
  if (name == "internet-lite") {
    spec.stream_slash24s = 1'250'000;
    spec.corpus_files = 4;
    spec.stream_budget_bytes = std::size_t{8} << 20;
    return spec;
  }
  if (name == "internet") {
    spec.stream_slash24s = 10'000'000;
    spec.corpus_files = 16;
    spec.stream_budget_bytes = std::size_t{64} << 20;
    return spec;
  }
  std::fprintf(stderr,
               "[bench] unknown --scale=%s (want paper, internet-lite, "
               "or internet)\n",
               name.c_str());
  std::exit(2);
}

Pipelines PipelineBuilder::build() const {
  install_span_narrator();
  obs::Registry& registry = obs::Registry::global();
  Pipelines p;
  const int threads = threads_ > 0 ? threads_ : core::exec::thread_count();
  registry.gauge("bench.scale_denominator").set(scale_denominator());
  {
    obs::StageSpan span("bench.world_generation");
    std::fprintf(stderr, "[bench] scale 1/%.0f, %d threads\n",
                 scale_denominator(), threads);
    p.scenario = core::ScenarioBuilder()
                     .scale_denominator(scale_denominator())
                     .threads(threads)
                     .build();
    std::fprintf(stderr, "[bench] %zu ASes, %zu /24s, %.0f users\n",
                 p.world().ases().size(), p.world().blocks().size(),
                 p.world().total_users());
    registry.gauge("bench.world.ases")
        .set(static_cast<double>(p.world().ases().size()));
    registry.gauge("bench.world.slash24s")
        .set(static_cast<double>(p.world().blocks().size()));
    registry.gauge("bench.world.users").set(p.world().total_users());
  }

  p.campaign = std::make_unique<core::CacheProbeCampaign>(
      p.scenario.env, p.scenario.options);

  if (cache_probing_) {
    obs::StageSpan span("bench.cache_probing_campaign");
    core::CampaignArtifacts artifacts = p.campaign->run();
    p.pops = std::move(artifacts.pops);
    p.calibration = std::move(artifacts.calibration);
    p.probing = std::move(artifacts.result);
    p.probing_prefixes = p.probing.to_prefix_dataset("cache probing");
    std::fprintf(stderr, "[bench] %llu probes, %zu hits\n",
                 static_cast<unsigned long long>(p.probing.probes_sent),
                 p.probing.hits.size());
  }

  if (chromium_) {
    obs::StageSpan span("bench.ditl_crawl");
    const roots::RootSystem root_system =
        roots::RootSystem::ditl_2020(p.world().config().seed);
    sim::DitlOptions ditl;
    ditl.sample_rate = 1.0 / ditl_sample_denominator();
    core::ChromiumOptions chromium_options;
    chromium_options.sample_rate = ditl.sample_rate;
    chromium_options.threads = threads;
    core::ChromiumCounter counter(chromium_options);
    p.chromium = counter.process(
        [&](const std::function<void(const roots::TraceRecord&)>& emit) {
          sim::generate_ditl(p.world(), root_system, ditl, emit);
        });
    p.logs_prefixes = p.chromium.to_prefix_dataset("DNS logs");
  }

  if (validation_) {
    obs::StageSpan span("bench.cdn_apnic_observation");
    p.ms = cdn::observe_cdn(p.world(), {});
    p.apnic = apnic::estimate_population(p.world(), {});
    for (const auto& [idx, volume] : p.ms.client_volume) {
      p.clients_prefixes.add(idx, volume);
    }
    for (const auto& [idx, clients] : p.ms.resolver_clients) {
      p.resolvers_prefixes.add(idx, clients);
    }
    for (std::uint32_t idx : p.ms.ecs_prefixes) p.ecs_prefixes.add(idx);
    for (const auto& [asn, users] : p.apnic.users_by_as) {
      p.apnic_as.add(asn, users);
    }
  }

  p.union_prefixes = core::PrefixDataset::union_of(
      "cache probing + DNS logs", p.probing_prefixes, p.logs_prefixes);
  p.probing_as = core::to_as_dataset("cache probing", p.probing_prefixes,
                                     p.world());
  p.logs_as = core::to_as_dataset("DNS logs", p.logs_prefixes, p.world());
  p.union_as = core::AsDataset::union_of("cache probing + DNS logs",
                                         p.probing_as, p.logs_as);
  p.clients_as =
      core::to_as_dataset("Microsoft clients", p.clients_prefixes, p.world());
  p.resolvers_as = core::to_as_dataset("Microsoft resolvers",
                                       p.resolvers_prefixes, p.world());
  return p;
}

std::string out_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name;
}

}  // namespace netclients::bench
