// Trace-ingestion benchmark: generate a sampled DITL capture, persist it
// to the NCD1 binary format, then scan it back through both ingestion
// paths — the materializing reader (read_tolerant + process) and the
// zero-copy TraceView (process_view) — and report records/sec for each.
//
// The bench *checks* the parity contract before it times anything: the
// view scan must be byte-identical to the materializing scan at
// threads=1 and threads=8; any mismatch is a hard failure (exit 1).
//
// Output: a throughput table on stdout, rows in
// bench_out/scan_throughput.csv (CI uploads + gates it), and gauges
// `chromium.scan.view_records_per_sec` /
// `chromium.scan.materialize_records_per_sec` / `chromium.scan.speedup`
// via --metrics-out. `--require-speedup=X` (CI passes 1.0) exits 1 when
// the view path is less than X times the materializing throughput.
//
// Run:  build/bench/bench_scan [--reps=3] [--require-speedup=0]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "roots/trace.h"
#include "roots/trace_view.h"

using namespace netclients;

namespace {

double flag_value(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool identical(const core::ChromiumResult& a, const core::ChromiumResult& b) {
  if (a.records_scanned != b.records_scanned ||
      a.signature_matches != b.signature_matches ||
      a.rejected_collisions != b.rejected_collisions ||
      a.probes_by_resolver.size() != b.probes_by_resolver.size()) {
    return false;
  }
  for (const auto& [addr, count] : a.probes_by_resolver) {
    const auto it = b.probes_by_resolver.find(addr);
    if (it == b.probes_by_resolver.end() || it->second != count) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  const int reps = static_cast<int>(flag_value(argc, argv, "--reps", 3));
  const double require_speedup =
      flag_value(argc, argv, "--require-speedup", 0);

  // ---- 1. Capture a sampled DITL to disk -------------------------------
  const core::Scenario scenario =
      core::ScenarioBuilder()
          .scale_denominator(bench::scale_denominator())
          .build();
  const sim::World& world = scenario.world();
  const roots::RootSystem roots =
      roots::RootSystem::ditl_2020(world.config().seed);
  sim::DitlOptions ditl;
  ditl.sample_rate = 1.0 / bench::ditl_sample_denominator();

  std::vector<roots::TraceRecord> records;
  {
    obs::StageSpan span("scan.bench.capture");
    sim::generate_ditl(world, roots, ditl,
                       [&](const roots::TraceRecord& rec) {
                         records.push_back(rec);
                       });
  }
  const std::string path = bench::out_path("scan.trace");
  {
    obs::StageSpan span("scan.bench.write");
    if (!roots::TraceFile::write(path, records)) {
      std::fprintf(stderr, "[scan] cannot write %s\n", path.c_str());
      return 1;
    }
  }
  const auto view = roots::TraceView::open(path);
  if (!view) {
    std::fprintf(stderr, "[scan] cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[scan] %zu records, %zu payload bytes (%s)\n",
               records.size(), view->payload_bytes(),
               view->mapped() ? "mmap" : "buffered");

  core::ChromiumOptions options;
  options.sample_rate = ditl.sample_rate;

  // ---- 2. Parity checks (before timing) --------------------------------
  const core::ChromiumResult reference =
      core::ChromiumCounter(options).process(records);
  for (const int threads : {1, 8}) {
    core::ChromiumOptions check = options;
    check.threads = threads;
    if (!identical(core::ChromiumCounter(check).process_view(*view),
                   reference)) {
      std::fprintf(stderr,
                   "[scan] FAIL: process_view differs from process() at "
                   "threads=%d\n",
                   threads);
      return 1;
    }
  }

  // ---- 3. Throughput: file -> ChromiumResult through both paths --------
  const core::ChromiumCounter counter(options);
  const auto n = static_cast<double>(records.size());
  double materialize_seconds = 1e30;
  double view_seconds = 1e30;
  std::uint64_t sink = 0;  // keeps the timed results observable
  for (int rep = 0; rep < reps; ++rep) {
    {
      const auto start = std::chrono::steady_clock::now();
      std::vector<roots::TraceRecord> loaded;
      roots::TraceFile::ReadStats stats;
      if (!roots::TraceFile::read_tolerant(path, &loaded, &stats)) return 1;
      const core::ChromiumResult result = counter.process(loaded);
      materialize_seconds = std::min(materialize_seconds,
                                     seconds_since(start));
      sink += result.signature_matches;
    }
    {
      const auto start = std::chrono::steady_clock::now();
      const auto timed_view = roots::TraceView::open(path);
      if (!timed_view) return 1;
      const core::ChromiumResult result = counter.process_view(*timed_view);
      view_seconds = std::min(view_seconds, seconds_since(start));
      sink += result.signature_matches;
    }
  }
  const double materialize_rps =
      materialize_seconds > 0 ? n / materialize_seconds : 0;
  const double view_rps = view_seconds > 0 ? n / view_seconds : 0;
  const double speedup =
      materialize_rps > 0 ? view_rps / materialize_rps : 0;

  std::printf("trace scan throughput (%zu records, best of %d)\n",
              records.size(), reps);
  std::printf("  %-12s %10s %16s\n", "path", "seconds", "records/sec");
  std::printf("  %-12s %10.3f %16.0f\n", "materialize", materialize_seconds,
              materialize_rps);
  std::printf("  %-12s %10.3f %16.0f\n", "view", view_seconds, view_rps);
  std::printf("  view/materialize speedup: %.1fx  (checksum %llu)\n",
              speedup, static_cast<unsigned long long>(sink));

  obs::Registry::global()
      .gauge("chromium.scan.materialize_records_per_sec")
      .set(materialize_rps);
  obs::Registry::global()
      .gauge("chromium.scan.view_records_per_sec")
      .set(view_rps);
  obs::Registry::global().gauge("chromium.scan.speedup").set(speedup);

  if (std::FILE* csv =
          std::fopen(bench::out_path("scan_throughput.csv").c_str(), "w")) {
    std::fprintf(csv, "path,records,payload_bytes,seconds,records_per_sec\n");
    std::fprintf(csv, "materialize,%zu,%zu,%.6f,%.0f\n", records.size(),
                 view->payload_bytes(), materialize_seconds, materialize_rps);
    std::fprintf(csv, "view,%zu,%zu,%.6f,%.0f\n", records.size(),
                 view->payload_bytes(), view_seconds, view_rps);
    std::fclose(csv);
  }
  std::remove(path.c_str());  // the CSV is the artifact, not the capture

  if (require_speedup > 0 && speedup < require_speedup) {
    std::fprintf(stderr,
                 "[scan] FAIL: view path %.2fx materializing, below the "
                 "required %.2fx\n",
                 speedup, require_speedup);
    return 1;
  }
  return 0;
}
