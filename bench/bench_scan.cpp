// Trace-ingestion benchmark: generate a sampled DITL capture, persist it
// to the NCD1 binary format, then scan it back through the ingestion
// paths — the materializing reader (read_tolerant + process), the
// zero-copy TraceView (process_view), and the sharded multi-file corpus
// under the work-stealing scheduler (process_corpus) — and report
// records/sec for each.
//
// The bench *checks* the parity contract before it times anything: the
// view scan must be byte-identical to the materializing scan, and the
// corpus scan byte-identical to both, at threads 1/2/8; any mismatch is
// a hard failure (exit 1).
//
// With an internet preset the bench first streams the planned world
// through the bounded-memory WorldStreamer and hard-fails if the arena
// high-water mark exceeds the preset's memory budget — the "10M routed
// /24s without 10M-block allocations" claim, enforced.
//
// Output: a throughput table on stdout, rows in
// bench_out/scan_throughput.csv (CI uploads + gates it), and gauges
// `chromium.scan.view_records_per_sec` /
// `chromium.scan.materialize_records_per_sec` / `chromium.scan.speedup` /
// `chromium.scan.corpus_records_per_sec` / `chromium.scan.corpus_speedup` /
// `chromium.scan.steal_ratio` (plus `bench.stream.*` at internet scale)
// via --metrics-out. `--require-speedup=X` (CI passes 1.0) exits 1 when
// the view path is less than X times the materializing throughput — and,
// at internet scale, when the multi-file corpus scan is less than X times
// the single-file view scan at equal threads.
//
// Run:  build/bench/bench_scan [--scale=paper|internet-lite|internet]
//                              [--reps=3] [--require-speedup=0]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "core/exec/steal.h"
#include "roots/corpus.h"
#include "roots/trace.h"
#include "roots/trace_view.h"
#include "sim/stream.h"

using namespace netclients;

namespace {

using bench::flag_value;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool identical(const core::ChromiumResult& a, const core::ChromiumResult& b) {
  if (a.records_scanned != b.records_scanned ||
      a.signature_matches != b.signature_matches ||
      a.rejected_collisions != b.rejected_collisions ||
      a.probes_by_resolver.size() != b.probes_by_resolver.size()) {
    return false;
  }
  for (const auto& [addr, count] : a.probes_by_resolver) {
    const auto it = b.probes_by_resolver.find(addr);
    if (it == b.probes_by_resolver.end() || it->second != count) return false;
  }
  return true;
}

/// Streams the internet-scale world under the preset's arena budget and
/// enforces it: arena high-water mark over budget is a hard failure, as
/// is missing the routed-/24 target by more than per-AS rounding.
int run_stream_phase(const bench::ScaleSpec& spec) {
  sim::StreamConfig config;
  config.target_routed_slash24s = spec.stream_slash24s;
  config.memory_budget_bytes = spec.stream_budget_bytes;
  const sim::WorldStreamer streamer(config);

  const std::size_t rss_before = sim::current_rss_bytes();
  const auto start = std::chrono::steady_clock::now();
  sim::StreamStats stats;
  {
    obs::StageSpan span("scan.bench.world_stream");
    stats = streamer.run(nullptr);
  }
  const double seconds = seconds_since(start);
  const std::size_t rss_after = sim::current_rss_bytes();
  const double blocks_per_sec =
      seconds > 0 ? static_cast<double>(stats.slash24s) / seconds : 0;

  std::printf("world stream (%s): %llu /24s (%llu routed, %llu active) "
              "over %llu ASes\n",
              spec.name.c_str(),
              static_cast<unsigned long long>(stats.slash24s),
              static_cast<unsigned long long>(stats.routed_slash24s),
              static_cast<unsigned long long>(stats.active_slash24s),
              static_cast<unsigned long long>(stats.ases));
  std::printf("  %llu batches, arena peak %.1f MiB of %.1f MiB budget, "
              "%.0f blocks/sec\n",
              static_cast<unsigned long long>(stats.batches),
              stats.arena_peak_bytes / (1024.0 * 1024.0),
              spec.stream_budget_bytes / (1024.0 * 1024.0), blocks_per_sec);
  if (rss_after > 0) {
    std::printf("  rss %.1f MiB -> %.1f MiB (digest %016llx)\n",
                rss_before / (1024.0 * 1024.0),
                rss_after / (1024.0 * 1024.0),
                static_cast<unsigned long long>(stats.digest));
  }

  obs::Registry& registry = obs::Registry::global();
  registry.gauge("bench.stream.slash24s")
      .set(static_cast<double>(stats.slash24s));
  registry.gauge("bench.stream.routed_slash24s")
      .set(static_cast<double>(stats.routed_slash24s));
  registry.gauge("bench.stream.blocks_per_sec").set(blocks_per_sec);
  registry.gauge("bench.stream.arena_peak_bytes")
      .set(static_cast<double>(stats.arena_peak_bytes));
  registry.gauge("bench.stream.rss_bytes")
      .set(static_cast<double>(rss_after));

  if (stats.arena_peak_bytes > spec.stream_budget_bytes) {
    std::fprintf(stderr,
                 "[scan] FAIL: stream arena peak %llu bytes exceeds the "
                 "%zu-byte budget\n",
                 static_cast<unsigned long long>(stats.arena_peak_bytes),
                 spec.stream_budget_bytes);
    return 1;
  }
  // The plan hits the target within per-AS rounding; 1% slack is generous.
  const auto target = static_cast<double>(spec.stream_slash24s);
  if (static_cast<double>(stats.routed_slash24s) < 0.99 * target) {
    std::fprintf(stderr,
                 "[scan] FAIL: streamed %llu routed /24s, short of the "
                 "%llu target\n",
                 static_cast<unsigned long long>(stats.routed_slash24s),
                 static_cast<unsigned long long>(spec.stream_slash24s));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  const bench::ScaleSpec spec = bench::parse_scale(argc, argv);
  const int reps = static_cast<int>(flag_value(argc, argv, "--reps", 3));
  const double require_speedup =
      flag_value(argc, argv, "--require-speedup", 0);

  // ---- 0. Internet-scale streaming world (budget-gated) ----------------
  if (spec.internet()) {
    if (const int rc = run_stream_phase(spec); rc != 0) return rc;
  }

  // ---- 1. Capture a sampled DITL to disk -------------------------------
  const core::Scenario scenario =
      core::ScenarioBuilder()
          .scale_denominator(bench::scale_denominator())
          .build();
  const sim::World& world = scenario.world();
  const roots::RootSystem roots =
      roots::RootSystem::ditl_2020(world.config().seed);
  sim::DitlOptions ditl;
  ditl.sample_rate = 1.0 / bench::ditl_sample_denominator();

  std::vector<roots::TraceRecord> records;
  {
    obs::StageSpan span("scan.bench.capture");
    sim::generate_ditl(world, roots, ditl,
                       [&](const roots::TraceRecord& rec) {
                         records.push_back(rec);
                       });
  }
  const std::string path = bench::out_path("scan.trace");
  {
    obs::StageSpan span("scan.bench.write");
    if (!roots::TraceFile::write(path, records)) {
      std::fprintf(stderr, "[scan] cannot write %s\n", path.c_str());
      return 1;
    }
  }
  const auto view = roots::TraceView::open(path);
  if (!view) {
    std::fprintf(stderr, "[scan] cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[scan] %zu records, %zu payload bytes (%s)\n",
               records.size(), view->payload_bytes(),
               view->mapped() ? "mmap" : "buffered");

  // The same records sharded across the corpus (1 member in the paper
  // preset, so the corpus machinery is always exercised).
  const std::string manifest_path = bench::out_path("scan.manifest");
  {
    obs::StageSpan span("scan.bench.corpus_write");
    if (!roots::write_corpus(manifest_path, records, spec.corpus_files)) {
      std::fprintf(stderr, "[scan] cannot write corpus %s\n",
                   manifest_path.c_str());
      return 1;
    }
  }
  const auto corpus = roots::CorpusView::open(manifest_path);
  if (!corpus || corpus->stats().members_skipped != 0) {
    std::fprintf(stderr, "[scan] corpus open failed for %s\n",
                 manifest_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[scan] corpus: %zu member file(s), %llu records\n",
               corpus->members().size(),
               static_cast<unsigned long long>(corpus->declared_records()));

  core::ChromiumOptions options;
  options.sample_rate = ditl.sample_rate;

  // ---- 2. Parity checks (before timing) --------------------------------
  // The acceptance contract: the multi-file work-stealing scan must be
  // byte-identical to the single-file view scan (and both to the
  // materializing reference) at every thread count, regardless of steal
  // interleaving.
  const core::ChromiumResult reference =
      core::ChromiumCounter(options).process(records);
  for (const int threads : {1, 2, 8}) {
    core::ChromiumOptions check = options;
    check.threads = threads;
    const core::ChromiumCounter counter(check);
    if (!identical(counter.process_view(*view), reference)) {
      std::fprintf(stderr,
                   "[scan] FAIL: process_view differs from process() at "
                   "threads=%d\n",
                   threads);
      return 1;
    }
    if (!identical(counter.process_corpus(*corpus), reference)) {
      std::fprintf(stderr,
                   "[scan] FAIL: process_corpus differs from process() at "
                   "threads=%d\n",
                   threads);
      return 1;
    }
  }

  // ---- 3. Throughput: file -> ChromiumResult through each path ---------
  const core::ChromiumCounter counter(options);
  const auto n = static_cast<double>(records.size());
  double materialize_seconds = 1e30;
  double view_seconds = 1e30;
  double corpus_seconds = 1e30;
  core::exec::StealTelemetry steal;
  std::uint64_t sink = 0;  // keeps the timed results observable
  for (int rep = 0; rep < reps; ++rep) {
    {
      const auto start = std::chrono::steady_clock::now();
      std::vector<roots::TraceRecord> loaded;
      roots::TraceFile::ReadStats stats;
      if (!roots::TraceFile::read_tolerant(path, &loaded, &stats)) return 1;
      const core::ChromiumResult result = counter.process(loaded);
      materialize_seconds = std::min(materialize_seconds,
                                     seconds_since(start));
      sink += result.signature_matches;
    }
    {
      const auto start = std::chrono::steady_clock::now();
      const auto timed_view = roots::TraceView::open(path);
      if (!timed_view) return 1;
      const core::ChromiumResult result = counter.process_view(*timed_view);
      view_seconds = std::min(view_seconds, seconds_since(start));
      sink += result.signature_matches;
    }
    {
      const auto start = std::chrono::steady_clock::now();
      const auto timed_corpus = roots::CorpusView::open(manifest_path);
      if (!timed_corpus) return 1;
      core::exec::StealTelemetry rep_steal;
      const core::ChromiumResult result =
          counter.process_corpus(*timed_corpus, &rep_steal);
      const double seconds = seconds_since(start);
      if (seconds < corpus_seconds) {
        corpus_seconds = seconds;
        steal = rep_steal;
      }
      sink += result.signature_matches;
    }
  }
  const double materialize_rps =
      materialize_seconds > 0 ? n / materialize_seconds : 0;
  const double view_rps = view_seconds > 0 ? n / view_seconds : 0;
  const double corpus_rps = corpus_seconds > 0 ? n / corpus_seconds : 0;
  const double speedup =
      materialize_rps > 0 ? view_rps / materialize_rps : 0;
  const double corpus_speedup = view_rps > 0 ? corpus_rps / view_rps : 0;
  const double steal_ratio =
      steal.tasks > 0
          ? static_cast<double>(steal.stolen_tasks) / steal.tasks
          : 0;

  std::printf("trace scan throughput (%zu records, %zu corpus file(s), "
              "best of %d)\n",
              records.size(), corpus->members().size(), reps);
  std::printf("  %-12s %10s %16s\n", "path", "seconds", "records/sec");
  std::printf("  %-12s %10.3f %16.0f\n", "materialize", materialize_seconds,
              materialize_rps);
  std::printf("  %-12s %10.3f %16.0f\n", "view", view_seconds, view_rps);
  std::printf("  %-12s %10.3f %16.0f\n", "corpus", corpus_seconds,
              corpus_rps);
  std::printf("  view/materialize speedup: %.1fx, corpus/view: %.2fx  "
              "(checksum %llu)\n",
              speedup, corpus_speedup,
              static_cast<unsigned long long>(sink));
  std::printf("  steal scheduler: %zu tasks over %zu workers, %zu "
              "steal(s) moved %zu task(s) (ratio %.3f)\n",
              steal.tasks, steal.workers, steal.steals, steal.stolen_tasks,
              steal_ratio);

  obs::Registry::global()
      .gauge("chromium.scan.materialize_records_per_sec")
      .set(materialize_rps);
  obs::Registry::global()
      .gauge("chromium.scan.view_records_per_sec")
      .set(view_rps);
  obs::Registry::global()
      .gauge("chromium.scan.corpus_records_per_sec")
      .set(corpus_rps);
  obs::Registry::global().gauge("chromium.scan.speedup").set(speedup);
  obs::Registry::global()
      .gauge("chromium.scan.corpus_speedup")
      .set(corpus_speedup);
  obs::Registry::global().gauge("chromium.scan.steal_ratio").set(steal_ratio);

  if (std::FILE* csv =
          std::fopen(bench::out_path("scan_throughput.csv").c_str(), "w")) {
    std::fprintf(csv,
                 "path,scale,files,records,payload_bytes,seconds,"
                 "records_per_sec\n");
    std::fprintf(csv, "materialize,%s,1,%zu,%zu,%.6f,%.0f\n",
                 spec.name.c_str(), records.size(), view->payload_bytes(),
                 materialize_seconds, materialize_rps);
    std::fprintf(csv, "view,%s,1,%zu,%zu,%.6f,%.0f\n", spec.name.c_str(),
                 records.size(), view->payload_bytes(), view_seconds,
                 view_rps);
    std::fprintf(csv, "corpus,%s,%zu,%zu,%llu,%.6f,%.0f\n", spec.name.c_str(),
                 corpus->members().size(), records.size(),
                 static_cast<unsigned long long>(corpus->payload_bytes()),
                 corpus_seconds, corpus_rps);
    std::fclose(csv);
  }
  // The CSV (and, in CI, the manifest) are the artifacts, not the capture.
  std::remove(path.c_str());

  if (require_speedup > 0 && speedup < require_speedup) {
    std::fprintf(stderr,
                 "[scan] FAIL: view path %.2fx materializing, below the "
                 "required %.2fx\n",
                 speedup, require_speedup);
    return 1;
  }
  if (require_speedup > 0 && spec.internet() &&
      corpus_speedup < require_speedup) {
    std::fprintf(stderr,
                 "[scan] FAIL: corpus path %.2fx the single-file view, "
                 "below the required %.2fx\n",
                 corpus_speedup, require_speedup);
    return 1;
  }
  return 0;
}
