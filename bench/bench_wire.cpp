// Wire-codec benchmark: build a deterministic corpus of DNS messages
// (ECS queries, compressed responses with A/TXT answers — the shapes the
// probe engine actually sends), then push it through both sides of the
// packet plane and report messages/sec for each:
//
//   decode: materializing `dns::decode` vs zero-copy `MessageView::parse`
//           plus an honest inspection pass (header, qname hash, answer
//           addresses) over the view.
//   encode: `dns::encode` (copies out of a thread-local arena into a
//           fresh vector per message) vs `dns::encode_into` against one
//           recycled arena (the zero-allocation hot path).
//
// Parity is *checked* before anything is timed: arena and alloc encodes
// must be byte-identical, MessageView must accept/materialize exactly
// what decode accepts/returns (including on truncated corpses), and
// encode(decode(encode(m))) must be byte-stable. Any mismatch exits 1.
//
// Output: a throughput table on stdout, rows in
// bench_out/wire_throughput.csv (CI uploads it), and `dns.wire.*` gauges
// via --metrics-out. `--require-speedup=X` (CI passes 1.0) exits 1 when
// view decode is less than X times the materializing decode throughput.
//
// Run:  build/bench/bench_wire [--reps=5] [--require-speedup=0]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "dns/packet.h"
#include "dns/wire.h"
#include "net/rng.h"

using namespace netclients;

namespace {

using bench::flag_value;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

dns::DnsName name_from(net::Rng& rng, const char* apex) {
  static const char* kHosts[] = {"www", "mail", "cdn", "api", "static"};
  std::string host = kHosts[rng.below(5)];
  if (rng.below(2) == 0) host += std::to_string(rng.below(100));
  return *dns::DnsName::parse(host + "." + apex);
}

/// The probe engine's message shapes, deterministically varied: RD=0/1
/// ECS queries, NOERROR responses with 1-3 A answers plus the odd TXT,
/// NXDOMAINs, myaddr-style TXT responses. Shared apexes force the
/// compression machinery to actually fire.
std::vector<dns::DnsMessage> build_corpus(std::size_t count,
                                          std::uint64_t seed) {
  static const char* kApexes[] = {"example.com", "probes.example.net",
                                  "cache.test"};
  std::vector<dns::DnsMessage> corpus;
  corpus.reserve(count);
  net::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const char* apex = kApexes[rng.below(3)];
    const auto id = static_cast<std::uint16_t>(rng.below(65536));
    const dns::DnsName qname = name_from(rng, apex);
    std::optional<dns::EcsOption> ecs;
    if (rng.below(4) != 0) {
      ecs = dns::EcsOption::for_query(net::Prefix(
          net::Ipv4Addr(static_cast<std::uint32_t>(rng.below(1u << 24) << 8)),
          static_cast<std::uint8_t>(16 + rng.below(9))));
    }
    dns::DnsMessage msg =
        dns::make_query(id, qname, dns::RecordType::kA,
                        /*recursion_desired=*/rng.below(2) == 0, ecs);
    if (rng.below(3) != 0) {  // two thirds of the corpus are responses
      msg.header.qr = true;
      msg.header.aa = true;
      if (rng.below(8) == 0) {
        msg.header.rcode = dns::RCode::kNxDomain;
      } else {
        const std::size_t answers = 1 + rng.below(3);
        for (std::size_t a = 0; a < answers; ++a) {
          dns::ResourceRecord rr;
          rr.name = qname;  // same owner as the question: compresses
          rr.type = dns::RecordType::kA;
          rr.ttl = static_cast<std::uint32_t>(30 + rng.below(300));
          rr.rdata = dns::AData{
              net::Ipv4Addr(static_cast<std::uint32_t>(rng.below(1u << 31)))};
          msg.answers.push_back(std::move(rr));
        }
        if (rng.below(4) == 0) {
          dns::ResourceRecord txt;
          txt.name = name_from(rng, apex);
          txt.type = dns::RecordType::kTxt;
          txt.ttl = 60;
          txt.rdata = dns::TxtData{"pop=" + std::to_string(rng.below(64))};
          msg.answers.push_back(std::move(txt));
        }
        if (msg.edns && msg.edns->ecs) {
          msg.edns->ecs->scope_prefix_length =
              static_cast<std::uint8_t>(16 + rng.below(9));
        }
      }
    }
    corpus.push_back(std::move(msg));
  }
  return corpus;
}

/// decode/parse differential on one byte string: both sides must agree on
/// accept vs reject, diagnostics included, and on the materialized value.
bool codec_parity(std::span<const std::uint8_t> wire) {
  const dns::DecodeResult materialized = dns::decode(wire);
  std::string view_error;
  const auto view = dns::MessageView::parse(wire, &view_error);
  if (materialized.ok != view.has_value()) return false;
  if (!materialized.ok) return materialized.error == view_error;
  return view->materialize() == materialized.message;
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  const int reps = static_cast<int>(flag_value(argc, argv, "--reps", 5));
  const double require_speedup =
      flag_value(argc, argv, "--require-speedup", 0);

  const std::vector<dns::DnsMessage> corpus = build_corpus(256, 0x1035);

  // ---- 1. Parity hard-checks (before timing) ---------------------------
  dns::WireArena arena;
  std::vector<std::vector<std::uint8_t>> wires;
  wires.reserve(corpus.size());
  std::size_t wire_bytes = 0;
  for (const dns::DnsMessage& msg : corpus) {
    const std::vector<std::uint8_t> alloc = dns::encode(msg);
    const auto arena_span = dns::encode_into(msg, arena);
    if (!std::equal(alloc.begin(), alloc.end(), arena_span.begin(),
                    arena_span.end())) {
      std::fprintf(stderr, "[wire] FAIL: encode_into differs from encode\n");
      return 1;
    }
    if (!codec_parity(alloc)) {
      std::fprintf(stderr, "[wire] FAIL: MessageView/decode parity\n");
      return 1;
    }
    // Byte stability: re-encoding the decoded message reproduces the wire.
    if (dns::encode(dns::decode(alloc).message) != alloc) {
      std::fprintf(stderr, "[wire] FAIL: encode/decode not byte-stable\n");
      return 1;
    }
    // Truncated corpses must be rejected identically by both decoders.
    for (const std::size_t cut : {std::size_t{0}, std::size_t{5},
                                  alloc.size() / 2, alloc.size() - 1}) {
      if (!codec_parity(std::span(alloc).first(cut))) {
        std::fprintf(stderr,
                     "[wire] FAIL: truncation parity at %zu bytes\n", cut);
        return 1;
      }
    }
    wire_bytes += alloc.size();
    wires.push_back(alloc);
  }
  std::fprintf(stderr, "[wire] corpus: %zu messages, %zu wire bytes\n",
               wires.size(), wire_bytes);

  // ---- 2. Throughput ---------------------------------------------------
  constexpr int kPasses = 2000;
  const double n = static_cast<double>(wires.size()) * kPasses;
  double decode_view_s = 1e30, decode_mat_s = 1e30;
  double encode_arena_s = 1e30, encode_alloc_s = 1e30;
  std::uint64_t sink = 0;  // keeps the timed work observable
  for (int rep = 0; rep < reps; ++rep) {
    {
      const auto start = std::chrono::steady_clock::now();
      for (int pass = 0; pass < kPasses; ++pass) {
        for (const auto& wire : wires) {
          const dns::DecodeResult result = dns::decode(wire);
          sink += result.message.header.id + result.message.answers.size();
          if (!result.message.questions.empty()) {
            sink += result.message.questions[0].name.hash();
          }
        }
      }
      decode_mat_s = std::min(decode_mat_s, seconds_since(start));
    }
    {
      const auto start = std::chrono::steady_clock::now();
      for (int pass = 0; pass < kPasses; ++pass) {
        for (const auto& wire : wires) {
          const auto view = dns::MessageView::parse(wire);
          sink += view->header().id;
          if (view->question_count() > 0) {
            sink += view->first_question().name.canonical_hash();
          }
          view->for_each_record(
              dns::MessageView::Section::kAnswer,
              [&](const dns::MessageView::RecordView& rr) {
                if (const auto addr = rr.a_address()) sink += addr->value();
              });
        }
      }
      decode_view_s = std::min(decode_view_s, seconds_since(start));
    }
    {
      const auto start = std::chrono::steady_clock::now();
      for (int pass = 0; pass < kPasses; ++pass) {
        for (const auto& msg : corpus) sink += dns::encode(msg).size();
      }
      encode_alloc_s = std::min(encode_alloc_s, seconds_since(start));
    }
    {
      const auto start = std::chrono::steady_clock::now();
      for (int pass = 0; pass < kPasses; ++pass) {
        for (const auto& msg : corpus) {
          sink += dns::encode_into(msg, arena).size();
        }
      }
      encode_arena_s = std::min(encode_arena_s, seconds_since(start));
    }
  }
  const double decode_mat_rps = n / decode_mat_s;
  const double decode_view_rps = n / decode_view_s;
  const double encode_alloc_rps = n / encode_alloc_s;
  const double encode_arena_rps = n / encode_arena_s;
  const double decode_speedup = decode_view_rps / decode_mat_rps;
  const double encode_speedup = encode_arena_rps / encode_alloc_rps;

  std::printf("wire codec throughput (%zu messages x %d passes, best of %d)\n",
              wires.size(), kPasses, reps);
  std::printf("  %-20s %10s %16s\n", "path", "seconds", "msgs/sec");
  std::printf("  %-20s %10.3f %16.0f\n", "decode/materialize", decode_mat_s,
              decode_mat_rps);
  std::printf("  %-20s %10.3f %16.0f\n", "decode/view", decode_view_s,
              decode_view_rps);
  std::printf("  %-20s %10.3f %16.0f\n", "encode/alloc", encode_alloc_s,
              encode_alloc_rps);
  std::printf("  %-20s %10.3f %16.0f\n", "encode/arena", encode_arena_s,
              encode_arena_rps);
  std::printf("  decode view/materialize speedup: %.2fx\n", decode_speedup);
  std::printf("  encode arena/alloc speedup:      %.2fx  (checksum %llu)\n",
              encode_speedup, static_cast<unsigned long long>(sink));

  obs::Registry& registry = obs::Registry::global();
  registry.gauge("dns.wire.decode.materialize_msgs_per_sec")
      .set(decode_mat_rps);
  registry.gauge("dns.wire.decode.view_msgs_per_sec").set(decode_view_rps);
  registry.gauge("dns.wire.decode.speedup").set(decode_speedup);
  registry.gauge("dns.wire.encode.alloc_msgs_per_sec").set(encode_alloc_rps);
  registry.gauge("dns.wire.encode.arena_msgs_per_sec").set(encode_arena_rps);
  registry.gauge("dns.wire.encode.speedup").set(encode_speedup);

  if (std::FILE* csv =
          std::fopen(bench::out_path("wire_throughput.csv").c_str(), "w")) {
    std::fprintf(csv, "path,messages,wire_bytes,seconds,msgs_per_sec\n");
    std::fprintf(csv, "decode_materialize,%.0f,%zu,%.6f,%.0f\n", n, wire_bytes,
                 decode_mat_s, decode_mat_rps);
    std::fprintf(csv, "decode_view,%.0f,%zu,%.6f,%.0f\n", n, wire_bytes,
                 decode_view_s, decode_view_rps);
    std::fprintf(csv, "encode_alloc,%.0f,%zu,%.6f,%.0f\n", n, wire_bytes,
                 encode_alloc_s, encode_alloc_rps);
    std::fprintf(csv, "encode_arena,%.0f,%zu,%.6f,%.0f\n", n, wire_bytes,
                 encode_arena_s, encode_arena_rps);
    std::fclose(csv);
  }

  if (require_speedup > 0 && decode_speedup < require_speedup) {
    std::fprintf(stderr,
                 "[wire] FAIL: view decode %.2fx materializing, below the "
                 "required %.2fx\n",
                 decode_speedup, require_speedup);
    return 1;
  }
  return 0;
}
