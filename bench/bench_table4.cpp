// Table 4: percent of each dataset's activity *volume* in ASes that also
// appear in each other dataset. Rows need a volume measure, so cache
// probing and the union appear only as columns (as in the paper). Paper:
// DNS-logs ASes hold 97.6% of APNIC population; union holds 98.8% of
// Microsoft clients volume and 100.0% of Microsoft resolvers volume.

#include <cstdio>

#include "common.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  bench::Pipelines p = bench::PipelineBuilder()
                            .with_cache_probing()
                            .with_chromium()
                            .with_validation()
                            .build();

  const std::vector<const core::AsDataset*> rows = {
      &p.logs_as, &p.apnic_as, &p.clients_as, &p.resolvers_as};
  const std::vector<const core::AsDataset*> cols = {
      &p.probing_as, &p.logs_as,    &p.union_as,
      &p.apnic_as,   &p.clients_as, &p.resolvers_as};
  const auto volume = core::as_volume_overlap(rows, cols);

  core::TextTable table;
  std::vector<std::string> header{""};
  for (const auto* ds : cols) header.push_back(ds->name());
  table.set_header(std::move(header));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::vector<std::string> row{rows[r]->name()};
    for (std::size_t c = 0; c < cols.size(); ++c) {
      row.push_back(core::pct(volume[r][c]));
    }
    table.add_row(std::move(row));
  }
  std::printf("Table 4 — %% of row dataset's activity volume in ASes also "
              "observed by column dataset\n\n%s\n",
              table.to_string().c_str());

  std::printf("paper reference:\n");
  std::printf("  APNIC volume in cache-probing ASes      : paper 97.6%%, "
              "ours %.1f%%\n", volume[1][0]);
  std::printf("  APNIC volume in DNS-logs ASes           : paper 97.6%%, "
              "ours %.1f%%\n", volume[1][1]);
  std::printf("  MS clients volume in union ASes         : paper 98.8%%, "
              "ours %.1f%%\n", volume[2][2]);
  std::printf("  MS clients volume in APNIC ASes         : paper 92.0%%, "
              "ours %.1f%%\n", volume[2][3]);
  std::printf("  MS resolvers volume in union ASes       : paper 100.0%%, "
              "ours %.1f%%\n", volume[3][2]);

  std::vector<std::vector<std::string>> csv;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      csv.push_back({rows[r]->name(), cols[c]->name(),
                     core::fixed(volume[r][c], 2)});
    }
  }
  core::write_csv(bench::out_path("table4.csv"),
                  {"row", "column", "volume_pct"}, csv);
  return 0;
}
