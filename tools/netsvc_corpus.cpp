// Regenerates the checked-in seed corpus for fuzz_netsvc
// (tests/corpus/netsvc/): one file per interesting NCS1 shape — valid
// queries at several batch sizes (including the kMaxQuestionsPerMessage
// edge), full/truncated/FORMERR responses, plus profile-violating and
// DNS-invalid corpses that exercise every parse_query reject path.
// Deterministic: same binary, same bytes.
//
// Run:  build/tools/netsvc_corpus tests/corpus/netsvc

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dns/message.h"
#include "dns/wire.h"
#include "net/prefix.h"
#include "net/rng.h"
#include "netsvc/protocol.h"

using namespace netclients;

namespace {

bool dump(const std::filesystem::path& dir, const std::string& name,
          const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", (dir / name).c_str());
    return false;
  }
  return true;
}

bool dump(const std::filesystem::path& dir, const std::string& name,
          std::span<const std::uint8_t> bytes) {
  return dump(dir, name, std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
}

std::vector<net::Ipv4Addr> addresses(std::size_t count, std::uint64_t seed) {
  net::Rng rng(seed);
  std::vector<net::Ipv4Addr> addrs;
  addrs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    addrs.push_back(net::Ipv4Addr(static_cast<std::uint32_t>(rng())));
  }
  return addrs;
}

core::serve::LookupResult result_for(std::uint64_t seed) {
  net::Rng rng(seed);
  core::serve::LookupResult result;
  result.active = rng.bernoulli(0.5);
  result.prefix =
      net::Prefix(net::Ipv4Addr(static_cast<std::uint32_t>(rng())),
                  static_cast<std::uint8_t>(rng.below(33)));
  result.volume = static_cast<double>(rng.below(1u << 16)) / 3.0;
  result.asn = static_cast<std::uint32_t>(rng());
  result.country = static_cast<std::uint16_t>(rng.below(300));
  result.domain_mask = static_cast<std::uint32_t>(rng());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : "tests/corpus/netsvc";
  std::filesystem::create_directories(dir);

  dns::WireArena arena;
  bool ok = true;

  // Valid queries across the batch-size range.
  const auto one = addresses(1, 0xA1);
  const auto eight = addresses(8, 0xA8);
  const auto sixteen = addresses(16, 0xA16);
  const auto full = addresses(netsvc::kMaxQuestionsPerMessage, 0xAFF);
  ok &= dump(dir, "query_single", netsvc::encode_query(1, one, arena));
  ok &= dump(dir, "query_batch8", netsvc::encode_query(2, eight, arena));
  ok &= dump(dir, "query_batch16", netsvc::encode_query(3, sixteen, arena));
  ok &= dump(dir, "query_batch_max", netsvc::encode_query(4, full, arena));

  // Responses (parse_query drops them as qr=1; parse_response accepts).
  {
    netsvc::QueryView query;
    const auto wire = netsvc::encode_query(5, eight, arena);
    if (netsvc::parse_query(wire, &query) != netsvc::ParseStatus::kOk) {
      std::fprintf(stderr, "self-parse of query_batch8 failed\n");
      return 1;
    }
    std::vector<core::serve::LookupResult> results;
    for (std::size_t i = 0; i < eight.size(); ++i) {
      results.push_back(result_for(0xBE5E + i));
    }
    dns::WireArena response_arena;
    ok &= dump(dir, "response_batch8",
               netsvc::encode_response(query, results, response_arena));
    ok &= dump(dir, "response_truncated",
               netsvc::encode_truncated(query, response_arena));
    ok &= dump(dir, "response_formerr",
               netsvc::encode_formerr(5, response_arena));
  }

  // Profile violations: valid DNS, invalid NCS1 (the FORMERR paths).
  ok &= dump(dir, "formerr_bad_hex",
             dns::encode(dns::make_query(6, *dns::DnsName::parse(
                                                "deadbeeg.ncs1"),
                                         dns::RecordType::kTxt, false)));
  ok &= dump(dir, "formerr_wrong_suffix",
             dns::encode(dns::make_query(7, *dns::DnsName::parse(
                                                "deadbeef.wrong"),
                                         dns::RecordType::kTxt, false)));
  ok &= dump(dir, "formerr_wrong_type",
             dns::encode(dns::make_query(8, *dns::DnsName::parse(
                                                "deadbeef.ncs1"),
                                         dns::RecordType::kA, false)));
  ok &= dump(dir, "formerr_edns",
             dns::encode(dns::make_query(
                 9, *dns::DnsName::parse("deadbeef.ncs1"),
                 dns::RecordType::kTxt, false,
                 dns::EcsOption::for_query(
                     net::Prefix(*net::Ipv4Addr::parse("100.64.5.0"), 24)))));
  {
    // Zero questions: a bare query header.
    dns::DnsMessage empty;
    empty.header.id = 10;
    ok &= dump(dir, "formerr_no_questions", dns::encode(empty));
  }

  // DNS-invalid corpses (the silent-drop paths).
  {
    const auto wire = netsvc::encode_query(11, one, arena);
    ok &= dump(dir, "drop_truncated_header",
               std::span<const std::uint8_t>(wire.data(), 11));
    ok &= dump(dir, "drop_truncated_name",
               std::span<const std::uint8_t>(wire.data(), 17));
  }

  if (ok) std::printf("netsvc corpus written to %s\n", dir.c_str());
  return ok ? 0 : 1;
}
