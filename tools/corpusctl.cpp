// corpusctl — generate, inspect, verify, and scan sharded NCCORPUS
// trace corpora (a manifest plus N NCD1/NCP1 member files).
//
//   corpusctl generate <manifest> [--files=N] [--format=ncd1|ncp1]
//                                 [--seed=N]
//       capture a sampled DITL from the deterministic world (REPRO_SCALE /
//       REPRO_DITL_SAMPLE sized, like the benches) and shard it into N
//       member files next to the manifest
//   corpusctl inspect  <manifest>  per-member table + totals (tolerant:
//                                  unreadable members are reported, not
//                                  fatal)
//   corpusctl verify   <manifest>  strict gate: re-reads every member,
//                                  checks the manifest CRCs and record
//                                  framing; exit 1 on the first problem
//   corpusctl scan     <manifest> [--threads=N]
//                                  run the cross-file work-stealing
//                                  Chromium scan and print the result +
//                                  steal telemetry
//
// `inspect` and `scan` read tolerantly (the pipeline contract: damaged
// members are skipped and counted); `verify` is the strict complement CI
// can gate artifacts on.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/chromium/chromium.h"
#include "core/exec/steal.h"
#include "core/scenario/scenario.h"
#include "roots/corpus.h"
#include "roots/root_server.h"
#include "sim/ditl.h"
#include "sim/world.h"

using namespace netclients;

namespace {

double flag_value(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const char* name,
                        const std::string& fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

double env_denominator(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (!value) return fallback;
  const double parsed = std::atof(value);
  return parsed > 0 ? parsed : fallback;
}

int run_generate(const char* manifest, int argc, char** argv) {
  const auto files = static_cast<std::size_t>(
      flag_value(argc, argv, "--files", 4));
  const std::string format_name =
      flag_string(argc, argv, "--format", "ncd1");
  const auto seed =
      static_cast<std::uint64_t>(flag_value(argc, argv, "--seed", 42));
  roots::CorpusFormat format;
  if (format_name == "ncd1") {
    format = roots::CorpusFormat::kNcd1;
  } else if (format_name == "ncp1") {
    format = roots::CorpusFormat::kNcp1;
  } else {
    std::fprintf(stderr, "corpusctl: unknown --format=%s\n",
                 format_name.c_str());
    return 2;
  }

  sim::WorldConfig world_config;
  world_config.seed = seed;
  world_config.scale = 1.0 / env_denominator("REPRO_SCALE", 64);
  const core::Scenario scenario =
      core::ScenarioBuilder().world_config(world_config).build();
  const roots::RootSystem roots_system =
      roots::RootSystem::ditl_2020(scenario.world().config().seed);
  sim::DitlOptions ditl;
  ditl.sample_rate = 1.0 / env_denominator("REPRO_DITL_SAMPLE", 64);

  std::vector<roots::TraceRecord> records;
  sim::generate_ditl(scenario.world(), roots_system, ditl,
                     [&](const roots::TraceRecord& rec) {
                       records.push_back(rec);
                     });
  if (!roots::write_corpus(manifest, records, files, format)) {
    std::fprintf(stderr, "corpusctl: cannot write corpus at %s\n", manifest);
    return 1;
  }
  const auto written = roots::CorpusManifest::read(manifest);
  std::printf("%s: %zu member(s), %llu records, %llu bytes (%s, "
              "sample 1/%.0f)\n",
              manifest, written ? written->members.size() : 0,
              static_cast<unsigned long long>(
                  written ? written->total_records() : 0),
              static_cast<unsigned long long>(
                  written ? written->total_bytes() : 0),
              format_name.c_str(), 1.0 / ditl.sample_rate);
  return 0;
}

int run_inspect(const char* manifest, int, char**) {
  const auto parsed = roots::CorpusManifest::read(manifest);
  if (!parsed) {
    std::fprintf(stderr, "corpusctl: %s is not a readable NCCORPUS "
                 "manifest\n", manifest);
    return 1;
  }
  const auto view = roots::CorpusView::open(manifest);
  std::printf("%s: %zu member(s), %llu records, %llu bytes declared\n",
              manifest, parsed->members.size(),
              static_cast<unsigned long long>(parsed->total_records()),
              static_cast<unsigned long long>(parsed->total_bytes()));
  std::printf("  %-28s %6s %12s %12s %10s %s\n", "file", "fmt", "records",
              "bytes", "crc32", "state");
  for (std::size_t i = 0; i < parsed->members.size(); ++i) {
    const roots::CorpusMember& member = parsed->members[i];
    const bool readable =
        view && i < view->members().size() && view->members()[i].readable();
    std::printf("  %-28s %6s %12llu %12llu   %08x %s\n",
                member.file.c_str(),
                std::string(roots::corpus_format_name(member.format)).c_str(),
                static_cast<unsigned long long>(member.records),
                static_cast<unsigned long long>(member.bytes), member.crc,
                readable ? "ok" : "SKIPPED");
  }
  if (view && view->stats().members_skipped > 0) {
    std::printf("  warnings: %llu member(s) unreadable, %llu declared "
                "record(s) lost\n",
                static_cast<unsigned long long>(view->stats().members_skipped),
                static_cast<unsigned long long>(
                    view->stats().records_skipped));
  }
  return 0;
}

int run_verify(const char* manifest, int, char**) {
  roots::CorpusView::OpenOptions options;
  options.verify_crc = true;
  const auto view = roots::CorpusView::open(manifest, options);
  if (!view) {
    std::fprintf(stderr, "corpusctl: %s is not a readable NCCORPUS "
                 "manifest\n", manifest);
    return 1;
  }
  const auto& stats = view->stats();
  if (stats.members_skipped > 0) {
    std::fprintf(stderr,
                 "corpusctl: %s: %llu member(s) failed (%llu CRC "
                 "mismatches), %llu records unavailable\n",
                 manifest,
                 static_cast<unsigned long long>(stats.members_skipped),
                 static_cast<unsigned long long>(stats.crc_mismatches),
                 static_cast<unsigned long long>(stats.records_skipped));
    return 1;
  }
  // CRCs cover the bytes; validate() walks the record framing too.
  for (const auto& member : view->members()) {
    roots::TraceFile::ReadStats framing;
    if (member.trace) framing = member.trace->validate();
    if (member.packets) framing = member.packets->validate();
    if (framing.records_skipped > 0 || framing.truncated) {
      std::fprintf(stderr,
                   "corpusctl: %s: %llu damaged record(s)%s in %s\n",
                   manifest,
                   static_cast<unsigned long long>(framing.records_skipped),
                   framing.truncated ? " (truncated)" : "",
                   member.meta.file.c_str());
      return 1;
    }
  }
  std::printf("%s: ok (%zu member(s), %llu records, CRCs verified)\n",
              manifest, view->members().size(),
              static_cast<unsigned long long>(view->declared_records()));
  return 0;
}

int run_scan(const char* manifest, int argc, char** argv) {
  core::ChromiumOptions options;
  options.threads = static_cast<int>(flag_value(argc, argv, "--threads", 0));
  options.sample_rate =
      1.0 / env_denominator("REPRO_DITL_SAMPLE", 64);
  core::exec::StealTelemetry steal;
  const auto result = core::ChromiumCounter(options).process_corpus_file(
      manifest, &steal);
  if (!result) {
    std::fprintf(stderr, "corpusctl: %s is not a readable NCCORPUS "
                 "manifest\n", manifest);
    return 1;
  }
  std::printf("%s: %llu records scanned, %llu signature matches, "
              "%llu collision-rejected, %llu skipped\n",
              manifest,
              static_cast<unsigned long long>(result->records_scanned),
              static_cast<unsigned long long>(result->signature_matches),
              static_cast<unsigned long long>(result->rejected_collisions),
              static_cast<unsigned long long>(result->records_skipped));
  std::printf("  %zu resolver source address(es) attributed\n",
              result->probes_by_resolver.size());
  const double ratio =
      steal.tasks > 0
          ? static_cast<double>(steal.stolen_tasks) / steal.tasks
          : 0;
  std::printf("  scheduler: %zu chunk task(s) over %zu worker(s), %zu "
              "steal(s) moved %zu task(s) (ratio %.3f)\n",
              steal.tasks, steal.workers, steal.steals, steal.stolen_tasks,
              ratio);
  return 0;
}

/// One row per subcommand; main() is just a table walk (the snapctl
/// pattern), so adding a command is one entry plus its run_* function.
struct Command {
  const char* name;
  const char* usage;
  int (*run)(const char* manifest, int argc, char** argv);
};

constexpr Command kCommands[] = {
    {"generate",
     "corpusctl generate <manifest> [--files=N] [--format=ncd1|ncp1] "
     "[--seed=N]",
     run_generate},
    {"inspect", "corpusctl inspect  <manifest>", run_inspect},
    {"verify", "corpusctl verify   <manifest>", run_verify},
    {"scan", "corpusctl scan     <manifest> [--threads=N]", run_scan},
};

int usage() {
  std::fprintf(stderr, "usage:\n");
  for (const Command& command : kCommands) {
    std::fprintf(stderr, "  %s\n", command.usage);
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  for (const Command& command : kCommands) {
    if (std::strcmp(argv[1], command.name) == 0) {
      return command.run(argv[2], argc - 3, argv + 3);
    }
  }
  return usage();
}
