// Schema gate for exported metrics files (CI's bench-smoke job):
//
//   metrics_check <metrics.json> [required-metric-name...]
//
// Exits 0 when the file parses as netclients.metrics.v1 and every
// required metric name (counter, gauge, histogram, or span) is present;
// prints the first problem and exits 1 otherwise.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/obs/export.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: metrics_check <metrics.json> "
                 "[required-metric-name...]\n");
    return 1;
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "metrics_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const std::string problem = netclients::obs::validate_metrics_json(text);
  if (!problem.empty()) {
    std::fprintf(stderr, "metrics_check: %s: %s\n", argv[1], problem.c_str());
    return 1;
  }

  const auto snapshot = netclients::obs::parse_json(text);
  std::vector<std::string> names;
  for (const auto& [name, value] : snapshot->counters) names.push_back(name);
  for (const auto& [name, value] : snapshot->gauges) names.push_back(name);
  for (const auto& h : snapshot->histograms) names.push_back(h.name);
  for (const auto& s : snapshot->spans) names.push_back(s.name);

  bool ok = true;
  for (int i = 2; i < argc; ++i) {
    if (std::find(names.begin(), names.end(), argv[i]) == names.end()) {
      std::fprintf(stderr, "metrics_check: %s: missing required metric %s\n",
                   argv[1], argv[i]);
      ok = false;
    }
  }
  if (!ok) return 1;

  std::printf(
      "%s: ok (%zu counters, %zu gauges, %zu histograms, %zu spans)\n",
      argv[1], snapshot->counters.size(), snapshot->gauges.size(),
      snapshot->histograms.size(), snapshot->spans.size());
  return 0;
}
