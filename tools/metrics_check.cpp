// Schema gate for exported measurement artifacts (CI's bench-smoke job):
//
//   metrics_check [--snap <file.snap>]... [<metrics.json>
//                                          [required-metric-name...]]
//
// Each `--snap` file is strictly validated as netclients.snap.v1
// (header magic, section framing, CRCs, delta-chain integrity). The
// metrics JSON, when given, must parse as netclients.metrics.v1 and
// contain every required metric name (counter, gauge, histogram, or
// span). Prints the first problem and exits 1 on any failure.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/obs/export.h"
#include "core/snapshot/snapshot.h"

int main(int argc, char** argv) {
  std::vector<const char*> snaps;
  int arg = 1;
  while (arg + 1 < argc && std::strcmp(argv[arg], "--snap") == 0) {
    snaps.push_back(argv[arg + 1]);
    arg += 2;
  }
  if (snaps.empty() && arg >= argc) {
    std::fprintf(stderr,
                 "usage: metrics_check [--snap <file.snap>]... "
                 "[<metrics.json> [required-metric-name...]]\n");
    return 1;
  }

  for (const char* snap : snaps) {
    const std::string problem =
        netclients::core::snapshot::validate_file(snap);
    if (!problem.empty()) {
      std::fprintf(stderr, "metrics_check: %s: %s\n", snap, problem.c_str());
      return 1;
    }
    std::printf("%s: ok (netclients.snap.v1)\n", snap);
  }
  if (arg >= argc) return 0;

  std::ifstream in(argv[arg]);
  if (!in) {
    std::fprintf(stderr, "metrics_check: cannot open %s\n", argv[arg]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const std::string problem = netclients::obs::validate_metrics_json(text);
  if (!problem.empty()) {
    std::fprintf(stderr, "metrics_check: %s: %s\n", argv[arg],
                 problem.c_str());
    return 1;
  }

  const auto snapshot = netclients::obs::parse_json(text);
  std::vector<std::string> names;
  for (const auto& [name, value] : snapshot->counters) names.push_back(name);
  for (const auto& [name, value] : snapshot->gauges) names.push_back(name);
  for (const auto& h : snapshot->histograms) names.push_back(h.name);
  for (const auto& s : snapshot->spans) names.push_back(s.name);

  bool ok = true;
  for (int i = arg + 1; i < argc; ++i) {
    if (std::find(names.begin(), names.end(), argv[i]) == names.end()) {
      std::fprintf(stderr, "metrics_check: %s: missing required metric %s\n",
                   argv[arg], argv[i]);
      ok = false;
    }
  }
  if (!ok) return 1;

  std::printf(
      "%s: ok (%zu counters, %zu gauges, %zu histograms, %zu spans)\n",
      argv[arg], snapshot->counters.size(), snapshot->gauges.size(),
      snapshot->histograms.size(), snapshot->spans.size());
  return 0;
}
