// Schema gate for exported measurement artifacts (CI's bench-smoke job):
//
//   metrics_check [--snap <file.snap>]... [<metrics.json>
//                                          [requirement...]]
//
// Each `--snap` file is strictly validated as netclients.snap.v1
// (header magic, section framing, CRCs, delta-chain integrity). The
// metrics JSON, when given, must parse as netclients.metrics.v1 and
// satisfy every requirement:
//
//   name          the metric exists (counter, gauge, histogram, span)
//   name>=value   the counter/gauge exists AND its value is >= value
//   name<=value   ... value is <= value
//
// Threshold forms gate measured quantities — e.g.
// `serve.bench.churn_ratio>=0.9` turns "publishes do not stall readers"
// into a CI failure. They apply to counters and gauges (the scalar
// metrics); histogram/span requirements are presence-only. Prints every
// problem and exits 1 on any failure.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/obs/export.h"
#include "core/snapshot/snapshot.h"

namespace {

/// Scalar value of a counter or gauge; nullopt for histograms/spans
/// (which have no single value to threshold) and unknown names.
std::optional<double> scalar_value(const netclients::obs::Snapshot& snapshot,
                                   const std::string& name) {
  for (const auto& [metric, value] : snapshot.counters) {
    if (metric == name) return static_cast<double>(value);
  }
  for (const auto& [metric, value] : snapshot.gauges) {
    if (metric == name) return value;
  }
  return std::nullopt;
}

bool check_requirement(const netclients::obs::Snapshot& snapshot,
                       const std::vector<std::string>& names,
                       const char* metrics_path, const std::string& spec) {
  std::string name = spec;
  enum { kExists, kAtLeast, kAtMost } mode = kExists;
  double bound = 0;
  for (const char* op : {">=", "<="}) {
    const auto at = spec.find(op);
    if (at != std::string::npos) {
      name = spec.substr(0, at);
      bound = std::atof(spec.c_str() + at + 2);
      mode = op[0] == '>' ? kAtLeast : kAtMost;
      break;
    }
  }

  if (mode == kExists) {
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      std::fprintf(stderr, "metrics_check: %s: missing required metric %s\n",
                   metrics_path, name.c_str());
      return false;
    }
    return true;
  }

  const std::optional<double> value = scalar_value(snapshot, name);
  if (!value) {
    std::fprintf(stderr,
                 "metrics_check: %s: %s is not a counter or gauge (required "
                 "by '%s')\n",
                 metrics_path, name.c_str(), spec.c_str());
    return false;
  }
  const bool ok = mode == kAtLeast ? *value >= bound : *value <= bound;
  if (!ok) {
    std::fprintf(stderr, "metrics_check: %s: %s = %g violates '%s'\n",
                 metrics_path, name.c_str(), *value, spec.c_str());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> snaps;
  int arg = 1;
  while (arg + 1 < argc && std::strcmp(argv[arg], "--snap") == 0) {
    snaps.push_back(argv[arg + 1]);
    arg += 2;
  }
  if (snaps.empty() && arg >= argc) {
    std::fprintf(stderr,
                 "usage: metrics_check [--snap <file.snap>]... "
                 "[<metrics.json> [name | name>=value | name<=value]...]\n");
    return 1;
  }

  for (const char* snap : snaps) {
    const std::string problem =
        netclients::core::snapshot::validate_file(snap);
    if (!problem.empty()) {
      std::fprintf(stderr, "metrics_check: %s: %s\n", snap, problem.c_str());
      return 1;
    }
    std::printf("%s: ok (netclients.snap.v1)\n", snap);
  }
  if (arg >= argc) return 0;

  std::ifstream in(argv[arg]);
  if (!in) {
    std::fprintf(stderr, "metrics_check: cannot open %s\n", argv[arg]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const std::string problem = netclients::obs::validate_metrics_json(text);
  if (!problem.empty()) {
    std::fprintf(stderr, "metrics_check: %s: %s\n", argv[arg],
                 problem.c_str());
    return 1;
  }

  const auto snapshot = netclients::obs::parse_json(text);
  std::vector<std::string> names;
  for (const auto& [name, value] : snapshot->counters) names.push_back(name);
  for (const auto& [name, value] : snapshot->gauges) names.push_back(name);
  for (const auto& h : snapshot->histograms) names.push_back(h.name);
  for (const auto& s : snapshot->spans) names.push_back(s.name);

  bool ok = true;
  for (int i = arg + 1; i < argc; ++i) {
    ok &= check_requirement(*snapshot, names, argv[arg], argv[i]);
  }
  if (!ok) return 1;

  std::printf(
      "%s: ok (%zu counters, %zu gauges, %zu histograms, %zu spans)\n",
      argv[arg], snapshot->counters.size(), snapshot->gauges.size(),
      snapshot->histograms.size(), snapshot->spans.size());
  return 0;
}
