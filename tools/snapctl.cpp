// snapctl — inspect, validate, and diff netclients.snap.v1 snapshot files.
//
//   snapctl inspect  <file>            per-epoch summary + read stats
//   snapctl validate <file>            strict framing/CRC/chain check
//   snapctl diff     <file> [from to]  churn between two epochs
//                                      (default: the last two)
//
// `validate` is the strict gate (exit 1 on the first structural problem —
// the same check CI applies to snapshot artifacts via metrics_check);
// `inspect` and `diff` read tolerantly, reporting skipped sections rather
// than failing, so a damaged capture can still be examined.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/serve/serve.h"
#include "core/snapshot/snapshot.h"

using namespace netclients;
namespace snapshot = core::snapshot;
namespace serve = core::serve;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: snapctl inspect  <file.snap>\n"
               "       snapctl validate <file.snap>\n"
               "       snapctl diff     <file.snap> [from-epoch to-epoch]\n");
  return 2;
}

std::optional<snapshot::SnapshotFile> load(const char* path) {
  auto file = snapshot::read(path);
  if (!file) {
    std::fprintf(stderr, "snapctl: %s is not a %s file (or unreadable)\n",
                 path, std::string(snapshot::kSchemaName).c_str());
  }
  return file;
}

void print_stats(const snapshot::ReadStats& stats) {
  if (stats.sections_skipped == 0 && !stats.truncated) return;
  std::printf("  warnings: %llu section(s) skipped (%llu CRC failures), "
              "%llu epoch(s) dropped%s\n",
              static_cast<unsigned long long>(stats.sections_skipped),
              static_cast<unsigned long long>(stats.crc_failures),
              static_cast<unsigned long long>(stats.epochs_skipped),
              stats.truncated ? ", file truncated" : "");
}

int run_inspect(const char* path) {
  const auto file = load(path);
  if (!file) return 1;
  std::printf("%s: %s, %zu epoch(s)\n", path,
              std::string(snapshot::kSchemaName).c_str(),
              file->epochs.size());
  print_stats(file->stats);
  for (const auto& epoch : file->epochs) {
    std::printf(
        "  epoch %u: world seed %llu, options digest %016llx\n"
        "    %zu active prefixes, active /24s in [%llu, %llu]\n"
        "    %llu probes, %llu hits, %zu ASes, %zu countries, "
        "%u domain(s)\n",
        epoch.epoch_id, static_cast<unsigned long long>(epoch.world_seed),
        static_cast<unsigned long long>(epoch.options_digest),
        epoch.prefixes.size(),
        static_cast<unsigned long long>(epoch.totals.slash24_lower),
        static_cast<unsigned long long>(epoch.totals.slash24_upper),
        static_cast<unsigned long long>(epoch.totals.probes_sent),
        static_cast<unsigned long long>(epoch.totals.cache_hits),
        epoch.as_aggregates.size(), epoch.countries.size(),
        epoch.domain_count);
  }
  return 0;
}

int run_validate(const char* path) {
  const std::string problem = snapshot::validate_file(path);
  if (!problem.empty()) {
    std::fprintf(stderr, "snapctl: %s: %s\n", path, problem.c_str());
    return 1;
  }
  std::printf("%s: ok (%s)\n", path,
              std::string(snapshot::kSchemaName).c_str());
  return 0;
}

const snapshot::EpochRecord* find_epoch(const snapshot::SnapshotFile& file,
                                        std::uint32_t id) {
  for (const auto& epoch : file.epochs) {
    if (epoch.epoch_id == id) return &epoch;
  }
  return nullptr;
}

int run_diff(const char* path, int argc, char** argv) {
  const auto file = load(path);
  if (!file) return 1;
  print_stats(file->stats);
  if (file->epochs.size() < 2) {
    std::fprintf(stderr, "snapctl: %s has %zu epoch(s); diff needs two\n",
                 path, file->epochs.size());
    return 1;
  }
  const snapshot::EpochRecord* from = nullptr;
  const snapshot::EpochRecord* to = nullptr;
  if (argc >= 2) {
    from = find_epoch(*file, static_cast<std::uint32_t>(std::atoi(argv[0])));
    to = find_epoch(*file, static_cast<std::uint32_t>(std::atoi(argv[1])));
    if (!from || !to) {
      std::fprintf(stderr, "snapctl: no such epoch in %s\n", path);
      return 1;
    }
  } else {
    from = &file->epochs[file->epochs.size() - 2];
    to = &file->epochs.back();
  }

  const serve::EpochDiff diff = serve::diff_epochs(*from, *to);
  std::printf("epoch %u -> %u:\n", diff.from_epoch, diff.to_epoch);
  std::printf("  %-12s %8zu prefixes (%.0f volume)\n", "gained",
              diff.gained.size(), diff.gained_volume);
  std::printf("  %-12s %8zu prefixes (%.0f volume)\n", "lost",
              diff.lost.size(), diff.lost_volume);
  std::printf("  %-12s %8llu prefixes\n", "persisting",
              static_cast<unsigned long long>(diff.persisting));
  std::printf("  volume: %.0f -> %.0f\n", diff.volume_from, diff.volume_to);
  std::printf("  rank drift: mean %.2f positions (normalized %.4f)\n",
              diff.mean_rank_drift, diff.normalized_rank_drift);
  const std::size_t show = 5;
  for (std::size_t i = 0; i < diff.gained.size() && i < show; ++i) {
    std::printf("    + %s\n", diff.gained[i].to_string().c_str());
  }
  for (std::size_t i = 0; i < diff.lost.size() && i < show; ++i) {
    std::printf("    - %s\n", diff.lost[i].to_string().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const char* command = argv[1];
  const char* path = argv[2];
  if (std::strcmp(command, "inspect") == 0) return run_inspect(path);
  if (std::strcmp(command, "validate") == 0) return run_validate(path);
  if (std::strcmp(command, "diff") == 0) {
    return run_diff(path, argc - 3, argv + 3);
  }
  return usage();
}
