// snapctl — inspect, validate, diff, and serve netclients.snap.v1
// snapshot files.
//
//   snapctl inspect  <file>            per-epoch summary + read stats
//   snapctl validate <file>            strict framing/CRC/chain check
//   snapctl diff     <file> [from to]  churn between two epochs
//                                      (default: the last two)
//   snapctl serve    <file> [workload] publish the chain into a
//                                      serve::Service, replay a mixed
//                                      workload, print QPS + latency
//   snapctl netserve <file> [key=value ...]
//                                      publish the chain, stand the
//                                      netsvc server/client pair up on a
//                                      simulated bus, drive a batched
//                                      lookup workload over the NCS1
//                                      wire protocol, verify wire parity
//                                      against direct handle lookups,
//                                      and print the netsvc.* counters
//
// `netserve` knobs (defaults in parentheses): transport=udp|tcp (udp),
// queries=N (65536), batch=N (8), loss=P (0), attempts=N (3). With
// loss>0 the bus fault plane drops datagrams at rate P and the client's
// retry/escalation stack recovers; parity is then asserted only for
// chunks that succeeded (failed chunks are reported, not a parity
// error).
//
// `validate` is the strict gate (exit 1 on the first structural problem —
// the same check CI applies to snapshot artifacts via metrics_check);
// `inspect` and `diff` read tolerantly, reporting skipped sections rather
// than failing, so a damaged capture can still be examined.
//
// `serve` stands the serving tier up on the file: every epoch is
// published in chain order (the rolling swaps a deployment would see),
// then a WorkloadDriver stream runs a steady and a churn phase through
// snapshot handles. The optional workload file is `key=value` lines
// (`#` comments) overriding WorkloadOptions — e.g.
//     queries=4194304
//     users=1048576
//     user_zipf=1.2
//     miss_fraction=0.4

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/serve/service.h"
#include "core/serve/workload.h"
#include "core/snapshot/snapshot.h"
#include "net/rng.h"
#include "netsim/bus.h"
#include "netsim/fault.h"
#include "netsvc/client.h"
#include "netsvc/server.h"

using namespace netclients;
namespace snapshot = core::snapshot;
namespace serve = core::serve;

namespace {

std::optional<std::string> slurp(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

/// "1.2 MiB"-style rendering; bytes below 1 KiB print exact.
std::string human_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < (std::uint64_t{1} << 20)) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", bytes / 1024.0);
  } else if (bytes < (std::uint64_t{1} << 30)) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", bytes / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GiB",
                  bytes / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

std::optional<snapshot::SnapshotFile> load(const char* path) {
  auto file = snapshot::read(path);
  if (!file) {
    std::fprintf(stderr, "snapctl: %s is not a %s file (or unreadable)\n",
                 path, std::string(snapshot::kSchemaName).c_str());
  }
  return file;
}

void print_stats(const snapshot::ReadStats& stats) {
  if (stats.sections_skipped == 0 && !stats.truncated) return;
  std::printf("  warnings: %llu section(s) skipped (%llu CRC failures), "
              "%llu epoch(s) dropped%s\n",
              static_cast<unsigned long long>(stats.sections_skipped),
              static_cast<unsigned long long>(stats.crc_failures),
              static_cast<unsigned long long>(stats.epochs_skipped),
              stats.truncated ? ", file truncated" : "");
}

int run_inspect(const char* path, int, char**) {
  const auto file = load(path);
  if (!file) return 1;
  std::printf("%s: %s, %zu epoch(s)\n", path,
              std::string(snapshot::kSchemaName).c_str(),
              file->epochs.size());
  print_stats(file->stats);
  for (const auto& epoch : file->epochs) {
    std::printf(
        "  epoch %u: world seed %llu, options digest %016llx\n"
        "    %zu active prefixes, active /24s in [%llu, %llu]\n"
        "    %llu probes, %llu hits, %zu ASes, %zu countries, "
        "%u domain(s)\n",
        epoch.epoch_id, static_cast<unsigned long long>(epoch.world_seed),
        static_cast<unsigned long long>(epoch.options_digest),
        epoch.prefixes.size(),
        static_cast<unsigned long long>(epoch.totals.slash24_lower),
        static_cast<unsigned long long>(epoch.totals.slash24_upper),
        static_cast<unsigned long long>(epoch.totals.probes_sent),
        static_cast<unsigned long long>(epoch.totals.cache_hits),
        epoch.as_aggregates.size(), epoch.countries.size(),
        epoch.domain_count);
  }

  // Footprint breakdown: walk the raw frames so per-section byte sizes
  // (and their share of the file) are visible without decoding twice.
  const auto bytes = slurp(path);
  const auto sections =
      bytes ? snapshot::section_sizes(*bytes) : std::nullopt;
  if (sections) {
    struct KindTotal {
      std::uint64_t payload = 0;
      std::uint64_t count = 0;
    };
    // Aggregate by kind in first-seen order (epoch_header first in a
    // well-formed file), framing overhead accounted separately.
    std::vector<std::pair<std::uint32_t, KindTotal>> by_kind;
    std::uint64_t payload_total = 0;
    for (const auto& section : *sections) {
      auto it = std::find_if(by_kind.begin(), by_kind.end(),
                             [&](const auto& entry) {
                               return entry.first == section.kind;
                             });
      if (it == by_kind.end()) {
        by_kind.emplace_back(section.kind, KindTotal{});
        it = by_kind.end() - 1;
      }
      it->second.payload += section.payload_bytes;
      it->second.count += 1;
      payload_total += section.payload_bytes;
    }
    const std::uint64_t file_bytes = bytes->size();
    std::printf("  footprint: %s file, %zu section(s), %s payload\n",
                human_bytes(file_bytes).c_str(), sections->size(),
                human_bytes(payload_total).c_str());
    for (const auto& [kind, total] : by_kind) {
      const double share =
          file_bytes == 0 ? 0.0 : 100.0 * total.payload / file_bytes;
      std::printf("    %-14s %10s  %5.1f%%  (%llu section(s))\n",
                  std::string(snapshot::section_kind_name(kind)).c_str(),
                  human_bytes(total.payload).c_str(), share,
                  static_cast<unsigned long long>(total.count));
    }
    const std::uint64_t framing =
        file_bytes > payload_total ? file_bytes - payload_total : 0;
    std::printf("    %-14s %10s  %5.1f%%\n", "framing+magic",
                human_bytes(framing).c_str(),
                file_bytes == 0 ? 0.0 : 100.0 * framing / file_bytes);
  }
  return 0;
}

int run_validate(const char* path, int, char**) {
  const std::string problem = snapshot::validate_file(path);
  if (!problem.empty()) {
    std::fprintf(stderr, "snapctl: %s: %s\n", path, problem.c_str());
    return 1;
  }
  std::printf("%s: ok (%s)\n", path,
              std::string(snapshot::kSchemaName).c_str());
  return 0;
}

const snapshot::EpochRecord* find_epoch(const snapshot::SnapshotFile& file,
                                        std::uint32_t id) {
  for (const auto& epoch : file.epochs) {
    if (epoch.epoch_id == id) return &epoch;
  }
  return nullptr;
}

int run_diff(const char* path, int argc, char** argv) {
  const auto file = load(path);
  if (!file) return 1;
  print_stats(file->stats);
  if (file->epochs.size() < 2) {
    std::fprintf(stderr, "snapctl: %s has %zu epoch(s); diff needs two\n",
                 path, file->epochs.size());
    return 1;
  }
  const snapshot::EpochRecord* from = nullptr;
  const snapshot::EpochRecord* to = nullptr;
  if (argc >= 2) {
    from = find_epoch(*file, static_cast<std::uint32_t>(std::atoi(argv[0])));
    to = find_epoch(*file, static_cast<std::uint32_t>(std::atoi(argv[1])));
    if (!from || !to) {
      std::fprintf(stderr, "snapctl: no such epoch in %s\n", path);
      return 1;
    }
  } else {
    from = &file->epochs[file->epochs.size() - 2];
    to = &file->epochs.back();
  }

  const serve::EpochDiff diff = serve::diff_epochs(*from, *to);
  std::printf("epoch %u -> %u:\n", diff.from_epoch, diff.to_epoch);
  std::printf("  %-12s %8zu prefixes (%.0f volume)\n", "gained",
              diff.gained.size(), diff.gained_volume);
  std::printf("  %-12s %8zu prefixes (%.0f volume)\n", "lost",
              diff.lost.size(), diff.lost_volume);
  std::printf("  %-12s %8llu prefixes\n", "persisting",
              static_cast<unsigned long long>(diff.persisting));
  std::printf("  volume: %.0f -> %.0f\n", diff.volume_from, diff.volume_to);
  std::printf("  rank drift: mean %.2f positions (normalized %.4f)\n",
              diff.mean_rank_drift, diff.normalized_rank_drift);
  const std::size_t show = 5;
  for (std::size_t i = 0; i < diff.gained.size() && i < show; ++i) {
    std::printf("    + %s\n", diff.gained[i].to_string().c_str());
  }
  for (std::size_t i = 0; i < diff.lost.size() && i < show; ++i) {
    std::printf("    - %s\n", diff.lost[i].to_string().c_str());
  }
  return 0;
}

/// Parses a `key=value` workload file onto defaults; unknown keys are a
/// hard error (a typo'd knob silently running defaults is worse).
bool parse_workload_file(const char* path, serve::WorkloadOptions* options) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "snapctl: cannot read workload file %s\n", path);
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "snapctl: %s:%d: expected key=value\n", path,
                   lineno);
      return false;
    }
    const std::string key = line.substr(first, eq - first);
    const double value = std::atof(line.c_str() + eq + 1);
    if (key == "users") {
      options->users = static_cast<std::size_t>(value);
    } else if (key == "queries") {
      options->queries = static_cast<std::size_t>(value);
    } else if (key == "batch") {
      options->batch = static_cast<std::size_t>(value);
    } else if (key == "user_zipf") {
      options->user_zipf = value;
    } else if (key == "prefix_zipf") {
      options->prefix_zipf = value;
    } else if (key == "miss_fraction") {
      options->miss_fraction = value;
    } else if (key == "burst_amplitude") {
      options->burst_amplitude = value;
    } else if (key == "batches_per_day") {
      options->batches_per_day = value;
    } else if (key == "burst_peak_hour") {
      options->burst_peak_hour = value;
    } else if (key == "seed") {
      options->seed = static_cast<std::uint64_t>(value);
    } else if (key == "reader_threads") {
      options->reader_threads = static_cast<int>(value);
    } else if (key == "publish_pause_us") {
      options->publish_pause_us = value;
    } else if (key == "publish_duty") {
      options->publish_duty = value;
    } else {
      std::fprintf(stderr, "snapctl: %s:%d: unknown workload key '%s'\n",
                   path, lineno, key.c_str());
      return false;
    }
  }
  return true;
}

void print_phase(const serve::PhaseStats& phase) {
  std::printf("  %-8s %12llu %10llu %10.3f %14.0f %9.1f %9.1f %9.1f\n",
              phase.name.c_str(),
              static_cast<unsigned long long>(phase.queries),
              static_cast<unsigned long long>(phase.batches), phase.seconds,
              phase.qps, phase.latency.p50_us, phase.latency.p99_us,
              phase.latency.p999_us);
}

int run_serve(const char* path, int argc, char** argv) {
  const auto file = load(path);
  if (!file) return 1;
  print_stats(file->stats);
  if (file->epochs.empty()) {
    std::fprintf(stderr, "snapctl: %s has no epochs to serve\n", path);
    return 1;
  }

  serve::WorkloadOptions options;
  options.queries = 1 << 20;
  options.users = 1 << 18;
  if (argc >= 1 && !parse_workload_file(argv[0], &options)) return 2;

  // Publish epoch-by-epoch in chain order — the same rolling sequence of
  // swaps a live deployment would apply — keeping the window at the
  // chain length so churn re-publishes age the oldest epoch out.
  serve::ServiceOptions service_options;
  service_options.max_epochs = file->epochs.size();
  serve::Service service(service_options);
  for (const auto& epoch : file->epochs) service.publish(epoch);
  const serve::SnapshotHandle handle = service.acquire();
  std::printf("%s: serving %zu epoch(s), version %llu, %zu prefixes, "
              "%zu ASes\n",
              path, file->epochs.size(),
              static_cast<unsigned long long>(handle->version()),
              handle->index().prefix_count(),
              handle->index().as_aggregates().size());

  const serve::WorkloadDriver driver(
      options, std::span<const snapshot::EpochRecord>(file->epochs));
  std::printf("workload: %zu queries over %zu users, %zu batches "
              "(zipf %.2f, miss %.2f)\n",
              driver.query_count(), options.users, driver.batch_count(),
              options.user_zipf, options.miss_fraction);

  const serve::WorkloadReport report = driver.run_under_churn(
      service, std::span<const snapshot::EpochRecord>(file->epochs));
  std::printf("  %-8s %12s %10s %10s %14s %9s %9s %9s\n", "phase", "queries",
              "batches", "seconds", "qps", "p50_us", "p99_us", "p999_us");
  print_phase(report.steady);
  print_phase(report.churn);
  std::printf("  churn publishes: %llu, churn/steady QPS ratio: %.3f\n",
              static_cast<unsigned long long>(report.churn.publishes),
              report.churn_ratio);
  return 0;
}

/// Reads `key=` from key=value args; returns fallback when absent.
double arg_value(int argc, char** argv, const char* key, double fallback) {
  const std::string prefix = std::string(key) + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool arg_is(int argc, char** argv, const char* key, const char* value) {
  const std::string want = std::string(key) + "=" + value;
  for (int i = 0; i < argc; ++i) {
    if (want == argv[i]) return true;
  }
  return false;
}

int run_netserve(const char* path, int argc, char** argv) {
  const auto file = load(path);
  if (!file) return 1;
  print_stats(file->stats);
  if (file->epochs.empty()) {
    std::fprintf(stderr, "snapctl: %s has no epochs to serve\n", path);
    return 1;
  }
  const auto queries_n =
      static_cast<std::size_t>(arg_value(argc, argv, "queries", 65536));
  const auto batch =
      static_cast<std::size_t>(arg_value(argc, argv, "batch", 8));
  const double loss = arg_value(argc, argv, "loss", 0);
  const int attempts = static_cast<int>(arg_value(argc, argv, "attempts", 3));
  const bool tcp = arg_is(argc, argv, "transport", "tcp");

  serve::Service service;
  service.publish(std::span<const snapshot::EpochRecord>(file->epochs));
  const serve::SnapshotHandle handle = service.acquire();
  std::printf("%s: serving %zu epoch(s), %zu prefixes over the wire "
              "(%s, batch %zu, loss %.2f, attempts %d)\n",
              path, file->epochs.size(), handle->index().prefix_count(),
              tcp ? "tcp" : "udp", batch, loss, attempts);

  netsim::MessageBus bus;
  if (loss > 0) {
    netsim::FaultConfig faults;
    faults.loss_probability = loss;
    bus.set_faults(std::move(faults));
  }
  const auto server_addr = net::Ipv4Addr(0x0A000001);  // 10.0.0.1
  const auto client_addr = net::Ipv4Addr(0x0A000002);  // 10.0.0.2
  netsvc::Server server(bus, service, server_addr);
  netsvc::ClientOptions client_options;
  client_options.batch_per_message = batch;
  client_options.retry.max_attempts = attempts;
  if (tcp) client_options.transport = googledns::Transport::kTcp;
  netsvc::Client client(bus, client_addr, server_addr, client_options);

  net::Rng rng(0x5EC7);
  std::vector<net::Ipv4Addr> queries;
  queries.reserve(queries_n);
  for (std::size_t i = 0; i < queries_n; ++i) {
    queries.push_back(net::Ipv4Addr(static_cast<std::uint32_t>(rng())));
  }
  const auto wire_results = client.lookup_many(queries);
  const auto direct = handle->lookup_many(queries, 1);

  // Parity: every chunk the client answered must match the direct path.
  // With faults, exhausted chunks yield miss results — count, don't fail.
  std::size_t mismatched = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (wire_results[i] != direct[i]) ++mismatched;
  }
  const auto& stats = client.stats();
  const std::size_t failed_addresses =
      static_cast<std::size_t>(stats.failed_chunks) * batch;
  std::printf("  %zu addresses in %zu-address chunks: %llu responses, "
              "%llu retries, %llu timeouts, %llu failed chunk(s)\n",
              queries.size(), batch,
              static_cast<unsigned long long>(stats.responses),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.timeouts),
              static_cast<unsigned long long>(stats.failed_chunks));
  std::printf("  transports: %llu udp / %llu tcp queries, "
              "%llu truncated seen, %llu escalation(s)\n",
              static_cast<unsigned long long>(stats.udp_queries),
              static_cast<unsigned long long>(stats.tcp_queries),
              static_cast<unsigned long long>(stats.truncated_seen),
              static_cast<unsigned long long>(stats.escalations));
  std::printf("  virtual clock at %.3f s; server: %llu udp + %llu tcp "
              "requests, %llu lookups, %llu window stall(s)\n",
              bus.now(),
              static_cast<unsigned long long>(server.stats().udp_requests),
              static_cast<unsigned long long>(server.stats().tcp_requests),
              static_cast<unsigned long long>(server.stats().lookups),
              static_cast<unsigned long long>(server.stats().window_stalls));
  if (mismatched > failed_addresses) {
    std::fprintf(stderr,
                 "snapctl: netserve parity FAILED: %zu mismatched "
                 "addresses exceed the %zu in failed chunks\n",
                 mismatched, failed_addresses);
    return 1;
  }
  std::printf("  wire parity ok (%zu/%zu addresses byte-identical to "
              "direct lookups)\n",
              queries.size() - mismatched, queries.size());
  return 0;
}

/// One row per subcommand; main() is just a table walk, so adding a
/// command is one entry here plus its run_* function.
struct Command {
  const char* name;
  const char* usage;
  // Receives the snapshot path plus any arguments after it.
  int (*run)(const char* path, int argc, char** argv);
};

constexpr Command kCommands[] = {
    {"inspect", "snapctl inspect  <file.snap>", run_inspect},
    {"validate", "snapctl validate <file.snap>", run_validate},
    {"diff", "snapctl diff     <file.snap> [from-epoch to-epoch]", run_diff},
    {"serve", "snapctl serve    <file.snap> [workload.conf]", run_serve},
    {"netserve",
     "snapctl netserve <file.snap> [transport=udp|tcp] [queries=N] "
     "[batch=N] [loss=P] [attempts=N]",
     run_netserve},
};

int usage() {
  std::fprintf(stderr, "usage:\n");
  for (const Command& command : kCommands) {
    std::fprintf(stderr, "  %s\n", command.usage);
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  for (const Command& command : kCommands) {
    if (std::strcmp(argv[1], command.name) == 0) {
      return command.run(argv[2], argc - 3, argv + 3);
    }
  }
  return usage();
}
