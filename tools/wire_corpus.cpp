// Regenerates the checked-in seed corpus for fuzz_wire
// (tests/corpus/wire/): one file per interesting wire-format shape —
// queries with and without ECS, compressed multi-answer responses, TXT
// payloads, NXDOMAIN, the myaddr TXT exchange, plus a handful of
// near-valid corpses (truncations, a pointer ladder) that exercise the
// reject paths. Deterministic: same binary, same bytes.
//
// Run:  build/tools/wire_corpus tests/corpus/wire

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dns/message.h"
#include "dns/wire.h"
#include "net/prefix.h"

using namespace netclients;

namespace {

bool dump(const std::filesystem::path& dir, const std::string& name,
          const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", (dir / name).c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "tests/corpus/wire";
  std::filesystem::create_directories(dir);

  const auto www = *dns::DnsName::parse("www.example.com");
  const auto probe = *dns::DnsName::parse("qpwoeiruty");
  const auto ecs = dns::EcsOption::for_query(
      net::Prefix(*net::Ipv4Addr::parse("100.64.5.0"), 24));

  bool ok = true;

  // Plain RD=1 A query.
  ok &= dump(dir, "query_a",
             dns::encode(dns::make_query(1, www, dns::RecordType::kA, true)));
  // RD=0 ECS snoop query — the paper's probe shape.
  ok &= dump(dir, "query_ecs",
             dns::encode(dns::make_query(2, www, dns::RecordType::kA, false,
                                         ecs)));
  // Single-label Chromium-style probe.
  ok &= dump(dir, "query_single_label",
             dns::encode(dns::make_query(3, probe, dns::RecordType::kA,
                                         true)));
  // Compressed response: three answers sharing the question's owner name.
  {
    dns::DnsMessage msg =
        dns::make_query(4, www, dns::RecordType::kA, false, ecs);
    msg.header.qr = true;
    msg.header.aa = true;
    msg.edns->ecs->scope_prefix_length = 20;
    for (std::uint32_t i = 0; i < 3; ++i) {
      msg.answers.push_back(dns::ResourceRecord{
          www, dns::RecordType::kA, dns::kClassIn, 300 + i,
          dns::AData{net::Ipv4Addr(0x0A000001u + i)}});
    }
    ok &= dump(dir, "response_compressed", dns::encode(msg));
  }
  // TXT response (myaddr-style PoP report).
  {
    dns::DnsMessage msg = dns::make_query(
        5, *dns::DnsName::parse("o-o.myaddr.l.google.com"),
        dns::RecordType::kTxt, true);
    msg.header.qr = true;
    msg.answers.push_back(dns::ResourceRecord{
        msg.questions[0].name, dns::RecordType::kTxt, dns::kClassIn, 60,
        dns::TxtData{"173.194.98.1"}});
    ok &= dump(dir, "response_txt", dns::encode(msg));
  }
  // NXDOMAIN.
  {
    dns::DnsMessage msg =
        dns::make_query(6, *dns::DnsName::parse("nx.example.org"),
                        dns::RecordType::kA, false);
    msg.header.qr = true;
    msg.header.rcode = dns::RCode::kNxDomain;
    ok &= dump(dir, "response_nxdomain", dns::encode(msg));
  }
  // Reject-path seeds: header-only, mid-name truncation, pointer ladder.
  {
    const auto full =
        dns::encode(dns::make_query(7, www, dns::RecordType::kA, true));
    ok &= dump(dir, "truncated_header",
               {full.begin(), full.begin() + 11});
    ok &= dump(dir, "truncated_name",
               {full.begin(), full.begin() + 15});
    std::vector<std::uint8_t> ladder = {0x00, 0x08, 0x00, 0x00, 0x00, 0x01,
                                        0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
    ladder.push_back(0x01);
    ladder.push_back('a');
    ladder.push_back(0x00);
    std::size_t prev = 12;
    for (int i = 0; i < 70; ++i) {
      const std::size_t here = ladder.size();
      ladder.push_back(static_cast<std::uint8_t>(0xC0 | (prev >> 8)));
      ladder.push_back(static_cast<std::uint8_t>(prev & 0xFF));
      prev = here;
    }
    ladder.push_back(static_cast<std::uint8_t>(0xC0 | (prev >> 8)));
    ladder.push_back(static_cast<std::uint8_t>(prev & 0xFF));
    ladder.push_back(0x00);
    ladder.push_back(0x01);
    ladder.push_back(0x00);
    ladder.push_back(0x01);
    ok &= dump(dir, "pointer_ladder", ladder);
  }

  if (ok) std::printf("wire corpus written to %s\n", dir.c_str());
  return ok ? 0 : 1;
}
