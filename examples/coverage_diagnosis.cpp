// Coverage diagnosis: why does cache probing miss the client volume it
// misses? For every ground-truth client /24 the tool attributes the miss
// to one of the pipeline's failure modes:
//   1. the /24's Google queries are served by an unprobed PoP;
//   2. the serving PoP is probed, but geolocation placed the prefix
//      outside that PoP's service radius, so it was never assigned there;
//   3. it was probed at the right PoP but never returned a cache hit
//      (activity too low for the domains' TTL windows, or non-Google-DNS
//      clients only).
//
// This is the kind of introspection the paper's §6 roadmap calls for; it
// requires ground truth, so it only exists in simulation.
//
// Run:  build/examples/coverage_diagnosis [scale-denominator]

#include <cstdio>
#include <utility>
#include <cstdlib>
#include <unordered_set>

#include "core/obs/export.h"
#include "core/scenario/scenario.h"
#include "net/geo.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  double denominator = 256;
  if (argc > 1) denominator = std::atof(argv[1]);
  const core::Scenario scenario =
      core::ScenarioBuilder().scale_denominator(denominator).build();
  const sim::World& world = scenario.world();

  core::CacheProbeCampaign campaign = scenario.campaign();
  const auto artifacts = campaign.run();
  const auto& pops = artifacts.pops;
  const auto& calibration = artifacts.calibration;
  const auto& result = artifacts.result;

  std::unordered_set<anycast::PopId> probed;
  for (const auto& [pop, vp] : pops.probed_pops) probed.insert(pop);

  double covered = 0, unprobed_pop = 0, unassigned = 0, no_hit = 0;
  double total = 0;
  for (const sim::Slash24Block& block : world.blocks()) {
    const double volume = block.clients();
    if (volume <= 0) continue;
    total += volume;
    if (result.active.covers(net::Prefix::from_slash24_index(block.index))) {
      covered += volume;
      continue;
    }
    if (!probed.contains(block.gdns_pop)) {
      unprobed_pop += volume;
      continue;
    }
    // Was any domain's scope block for this /24 assigned to the serving
    // PoP? Approximate with the top domain's scope and the calibrated
    // radius check the campaign uses.
    const auto rec = world.geodb().lookup(block.index);
    bool assignable = false;
    if (rec) {
      const double radius =
          calibration.service_radius_km.contains(block.gdns_pop)
              ? calibration.service_radius_km.at(block.gdns_pop)
              : 0;
      const double km = net::haversine_km(
          rec->location, world.pops().site(block.gdns_pop).location);
      assignable = km <= radius + rec->error_radius_km;
    }
    (assignable ? no_hit : unassigned) += volume;
  }

  std::printf("client volume (ground truth, weighted by clients):\n");
  std::printf("  covered by cache probing : %5.1f%%\n", 100 * covered / total);
  std::printf("  served by unprobed PoP   : %5.1f%%\n",
              100 * unprobed_pop / total);
  std::printf("  outside service radius   : %5.1f%%\n",
              100 * unassigned / total);
  std::printf("  probed but never hit     : %5.1f%%\n", 100 * no_hit / total);
  std::printf("\nper-PoP service radii (km):\n");
  for (const auto& [pop, radius] : calibration.service_radius_km) {
    std::printf("  %-16s %7.0f  (%zu calibration hits)\n",
                world.pops().site(pop).city.c_str(), radius,
                calibration.hit_distances_km.at(pop).size());
  }
  return 0;
}
