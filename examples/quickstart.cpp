// Quickstart: generate a small synthetic Internet, run both measurement
// techniques (Google Public DNS cache probing and Chromium root-trace
// counting), and cross-compare against the CDN's privileged view — the
// whole paper in one file.
//
// Run:  build/examples/quickstart [scale-denominator]

#include <cstdio>
#include <utility>
#include <cstdlib>

#include "core/obs/export.h"
#include "apnic/apnic.h"
#include "cdn/cdn.h"
#include "core/chromium/chromium.h"
#include "core/compare/compare.h"
#include "core/report/report.h"
#include "core/scenario/scenario.h"
#include "roots/root_server.h"
#include "sim/ditl.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  double denominator = 256;
  if (argc > 1) denominator = std::atof(argv[1]);

  // 1. A synthetic Internet plus the probe substrate, wired once.
  const core::Scenario scenario =
      core::ScenarioBuilder().scale_denominator(denominator).build();
  const sim::World& world = scenario.world();
  std::printf("world: %zu ASes, %zu allocated /24s, %.0f users\n",
              world.ases().size(), world.blocks().size(),
              world.total_users());

  // 2. Technique 1 — cache probing Google Public DNS.
  core::CacheProbeCampaign campaign = scenario.campaign();
  const auto artifacts = campaign.run();
  const auto& pops = artifacts.pops;
  const auto& probing = artifacts.result;
  std::printf("cache probing: %zu vantage points reach %zu PoPs\n",
              pops.vp_pop.size(), pops.probed_pops.size());
  std::printf(
      "cache probing: %llu probes, %zu hits, active /24s in [%llu, %llu]\n",
      static_cast<unsigned long long>(probing.probes_sent),
      probing.hits.size(),
      static_cast<unsigned long long>(probing.slash24_lower_bound()),
      static_cast<unsigned long long>(probing.slash24_upper_bound()));

  // 3. Technique 2 — Chromium probes in root DITL traces.
  const roots::RootSystem root_system =
      roots::RootSystem::ditl_2020(world.config().seed);
  sim::DitlOptions ditl;
  // DITL is processed streaming with uniform sampling (the pipeline scales
  // counts back up); see DESIGN.md on laptop-scale trace handling.
  ditl.sample_rate = 1.0 / 64;
  core::ChromiumOptions chromium_options;
  chromium_options.sample_rate = ditl.sample_rate;
  core::ChromiumCounter counter(chromium_options);
  const auto chromium = counter.process(
      [&](const std::function<void(const roots::TraceRecord&)>& emit) {
        sim::generate_ditl(world, root_system, ditl, emit);
      });
  std::printf(
      "DNS logs: %llu records, %llu matches, %llu collision-rejected, "
      "%zu resolvers\n",
      static_cast<unsigned long long>(chromium.records_scanned),
      static_cast<unsigned long long>(chromium.signature_matches),
      static_cast<unsigned long long>(chromium.rejected_collisions),
      chromium.probes_by_resolver.size());

  // 4. Validation datasets + cross-comparison.
  const cdn::CdnObservation ms = cdn::observe_cdn(world, {});
  core::PrefixDataset probing_ds =
      probing.to_prefix_dataset("cache probing");
  core::PrefixDataset logs_ds = chromium.to_prefix_dataset("DNS logs");
  core::PrefixDataset clients_ds("Microsoft clients");
  for (const auto& [idx, volume] : ms.client_volume) {
    clients_ds.add(idx, volume);
  }
  const auto matrix = core::prefix_overlap(
      {&probing_ds, &logs_ds, &clients_ds});
  std::printf("\n%s\n", core::render_overlap(matrix).c_str());
  std::printf("volume coverage: %.1f%% of CDN requests are in prefixes "
              "cache probing marks active\n",
              core::prefix_volume_share(clients_ds, probing_ds));

  const auto apnic_est = apnic::estimate_population(world, {});
  std::printf("APNIC publishes estimates for %zu of %zu ASes\n",
              apnic_est.users_by_as.size(), world.ases().size());
  return 0;
}
