// Geolocation trust scoring — the paper's second motivating use case:
// "geolocation databases like MaxMind are more accurate for end-user
// networks [16], so knowing which networks host end-users provides insight
// into which geolocation results are trustworthy."
//
// This example classifies every geolocatable /24 as client-active or not
// (using the cache-probing map) and measures the database's true error in
// each class against simulator ground truth.
//
// Run:  build/examples/geolocation_confidence [scale-denominator]

#include <cstdio>
#include <utility>
#include <cstdlib>
#include <vector>

#include "core/obs/export.h"
#include "core/compare/compare.h"
#include "core/scenario/scenario.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  double denominator = 256;
  if (argc > 1) denominator = std::atof(argv[1]);
  const core::Scenario scenario =
      core::ScenarioBuilder().scale_denominator(denominator).build();
  const sim::World& world = scenario.world();

  core::CacheProbeCampaign campaign = scenario.campaign();
  const auto result = campaign.run().result;

  std::vector<double> active_errors, inactive_errors;
  for (const sim::Slash24Block& block : world.blocks()) {
    const auto rec = world.geodb().lookup(block.index);
    if (!rec) continue;
    const double error_km = net::haversine_km(block.location, rec->location);
    if (result.active.covers(net::Prefix::from_slash24_index(block.index))) {
      active_errors.push_back(error_km);
    } else {
      inactive_errors.push_back(error_km);
    }
  }
  const core::Cdf active_cdf(std::move(active_errors));
  const core::Cdf inactive_cdf(std::move(inactive_errors));

  std::printf("MaxMind-style geolocation error vs ground truth, split by\n"
              "cache-probing client activity (%zu active, %zu inactive "
              "/24s):\n\n",
              active_cdf.size(), inactive_cdf.size());
  std::printf("  quantile   client-active /24s   other /24s\n");
  for (double q : {0.5, 0.75, 0.9, 0.95}) {
    std::printf("  p%-8.0f %17.0f km %9.0f km\n", q * 100,
                active_cdf.quantile(q), inactive_cdf.quantile(q));
  }
  std::printf("\nReading: geolocation of prefixes the activity map marks as\n"
              "client-hosting is substantially more accurate — a database\n"
              "consumer can use the map as a per-prefix confidence signal.\n");
  return 0;
}
