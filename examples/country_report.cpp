// Per-country Internet activity report: combines both techniques with the
// APNIC baseline into the kind of per-country summary the paper's Figure 3
// is built from — APNIC population, ASes detected by each technique, and
// coverage of the population.
//
// Run:  build/examples/country_report [scale-denominator] [country-code]

#include <cstdio>
#include <utility>
#include <cstdlib>
#include <cstring>

#include "core/obs/export.h"
#include "apnic/apnic.h"
#include "core/chromium/chromium.h"
#include "core/compare/compare.h"
#include "core/report/report.h"
#include "core/scenario/scenario.h"
#include "roots/root_server.h"
#include "sim/ditl.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  double denominator = 256;
  if (argc > 1) denominator = std::atof(argv[1]);
  const char* focus = argc > 2 ? argv[2] : nullptr;

  const core::Scenario scenario =
      core::ScenarioBuilder().scale_denominator(denominator).build();
  const sim::World& world = scenario.world();

  core::CacheProbeCampaign campaign = scenario.campaign();
  const auto probing = campaign.run().result;
  const auto probing_as = core::to_as_dataset(
      "cache probing", probing.to_prefix_dataset("p"), world);

  const roots::RootSystem roots =
      roots::RootSystem::ditl_2020(world.config().seed);
  sim::DitlOptions ditl;
  ditl.sample_rate = 1.0 / 64;
  core::ChromiumOptions chromium_options;
  chromium_options.sample_rate = ditl.sample_rate;
  const core::ChromiumCounter counter(chromium_options);
  const auto chromium = counter.process(
      [&](const std::function<void(const roots::TraceRecord&)>& emit) {
        sim::generate_ditl(world, roots, ditl, emit);
      });
  const auto logs_as = core::to_as_dataset(
      "DNS logs", chromium.to_prefix_dataset("l"), world);

  const auto apnic_est = apnic::estimate_population(world, {});
  const auto coverage =
      core::country_coverage(world, apnic_est.users_by_as, probing_as);

  // Per-country AS tallies.
  std::unordered_map<std::uint16_t, int> total_ases, probing_hits, log_hits;
  for (const sim::AsEntry& as : world.ases()) {
    ++total_ases[as.country];
    probing_hits[as.country] += probing_as.contains(as.asn);
    log_hits[as.country] += logs_as.contains(as.asn);
  }
  std::unordered_map<std::string, std::uint16_t> index_of;
  for (std::uint16_t c = 0; c < world.countries().size(); ++c) {
    index_of[world.countries()[c].code] = c;
  }

  core::TextTable table;
  table.set_header({"country", "APNIC users", "ASes", "probing", "DNS logs",
                    "APNIC pop covered"});
  for (const auto& row : coverage) {
    if (focus && std::strcmp(row.code.c_str(), focus) != 0) continue;
    const std::uint16_t c = index_of[row.code];
    table.add_row({row.name, core::human_count(row.apnic_users),
                   std::to_string(total_ases[c]),
                   std::to_string(probing_hits[c]),
                   std::to_string(log_hits[c]),
                   core::pct(100 * row.covered_fraction)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
