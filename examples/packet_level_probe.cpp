// Packet-level cache snooping: the full §3.1 flow as actual DNS datagrams
// on the message bus — client populates Google Public DNS through an RD=1
// query, the prober identifies its PoP with a myaddr TXT lookup, then
// snoops with RD=0 ECS queries over TCP. Every message crosses the bus as
// RFC 1035 wire bytes.
//
// Run:  build/examples/packet_level_probe

#include <cstdio>

#include "core/obs/export.h"
#include "dns/wire.h"
#include "googledns/google_dns.h"
#include "netsim/bus.h"
#include "netsim/dns_endpoint.h"
#include "sim/domains.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  // A miniature world: one zone, real PoP table/catchment, explicit caches.
  anycast::PopTable pops = anycast::PopTable::google_default();
  anycast::CatchmentModel catchment(&pops, 42);
  dnssrv::AuthoritativeServer auth;
  {
    dnssrv::ZoneConfig zone;
    zone.name = *dns::DnsName::parse("www.example.com");
    zone.min_scope = 20;
    zone.max_scope = 24;
    auth.add_zone(zone);
  }
  googledns::GooglePublicDns gdns(&pops, &catchment, &auth);

  netsim::MessageBus bus;
  const auto google_addr = *net::Ipv4Addr::parse("8.8.8.8");
  const auto client_addr = *net::Ipv4Addr::parse("100.64.5.9");
  const auto prober_addr = *net::Ipv4Addr::parse("198.18.0.1");
  const net::LatLon client_loc{52.5, 13.4};   // Berlin-ish eyeball
  const net::LatLon prober_loc{53.2, 6.6};    // Groningen cloud VM

  // Google's front end on the bus: location/route key are derived from
  // the source address (who is asking), as anycast would. The endpoint
  // answers straight from wire bytes — zero-copy parse, arena encode.
  netsim::GoogleEndpointOptions google_opts;
  google_opts.vp_id = 1;
  google_opts.locate = [&](net::Ipv4Addr src) {
    return src == client_addr ? client_loc : prober_loc;
  };
  netsim::attach_google_dns(bus, google_addr, gdns, google_opts);

  // The client resolves normally (RD=1) — this is the activity the prober
  // will detect.
  bus.attach(client_addr, [&](const netsim::Datagram& d, net::SimTime) {
    const auto response = dns::decode(d.payload);
    if (response.ok && !response.message.answers.empty()) {
      std::printf("[client ] got answer, ttl=%u\n",
                  response.message.answers[0].ttl);
    }
  });
  const auto domain = *dns::DnsName::parse("www.example.com");
  bus.send(client_addr, google_addr, netsim::Proto::kUdp,
           dns::encode(dns::make_query(
               1, domain, dns::RecordType::kA, true,
               dns::EcsOption::for_query(
                   net::Prefix::slash24_of(client_addr)))),
           0.0, 0.01);

  // The prober: myaddr first, then RD=0 ECS snoops with rising attempt ids
  // to cover the cache pools.
  int snoop_hits = 0;
  std::uint16_t next_id = 100;
  bus.attach(prober_addr, [&](const netsim::Datagram& d, net::SimTime) {
    const auto response = dns::decode(d.payload);
    if (!response.ok) return;
    const auto& msg = response.message;
    if (!msg.questions.empty() &&
        msg.questions[0].type == dns::RecordType::kTxt &&
        !msg.answers.empty()) {
      std::printf("[prober ] myaddr says PoP = %s\n",
                  std::get<dns::TxtData>(msg.answers[0].rdata).text.c_str());
      return;
    }
    if (!msg.answers.empty() && msg.edns && msg.edns->ecs &&
        msg.edns->ecs->scope_prefix_length > 0) {
      ++snoop_hits;
      std::printf("[prober ] cache HIT, scope /%d, remaining ttl %u\n",
                  msg.edns->ecs->scope_prefix_length, msg.answers[0].ttl);
    }
  });
  bus.send(prober_addr, google_addr, netsim::Proto::kUdp,
           dns::encode(dns::make_query(
               99, googledns::GooglePublicDns::myaddr_name(),
               dns::RecordType::kTxt, true)),
           0.5, 0.01);

  const auto scope = *auth.scope_for(domain,
                                     net::Prefix::slash24_of(client_addr),
                                     gdns.config().epoch);
  for (int attempt = 0; attempt < 8; ++attempt) {
    bus.send(prober_addr, google_addr, netsim::Proto::kTcp,
             dns::encode(dns::make_query(
                 next_id++, domain, dns::RecordType::kA, false,
                 dns::EcsOption::for_query(
                     net::Prefix::slash24_of(client_addr)
                         .widen_to(scope)))),
             1.0 + attempt * 0.1, 0.01);
  }
  bus.run_until(10.0);
  bus.stats().publish();  // netsim.bus.* counters into the metrics export
  std::printf("\nbus: %llu datagrams delivered, snoop hits: %d "
              "(the client's activity is visible without its cooperation)\n",
              static_cast<unsigned long long>(bus.stats().delivered),
              snoop_hits);
  return snoop_hits > 0 ? 0 : 1;
}
