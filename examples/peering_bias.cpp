// The "are we one hop away?" bias — the paper's §1 example: Google peered
// directly with 41% of all networks but 61% of networks hosting end users,
// so conclusions about Internet structure flip depending on whether you
// weight networks by user activity.
//
// We reproduce that analysis shape in the synthetic world: a cloud
// provider peers preferentially with large networks; we then compute the
// fraction of direct-peer networks (a) over all ASes and (b) over the ASes
// the cache-probing technique marks as client-hosting.
//
// Run:  build/examples/peering_bias [scale-denominator]

#include <cstdio>
#include <utility>
#include <cstdlib>
#include <unordered_set>

#include "core/obs/export.h"
#include "core/datasets/datasets.h"
#include "core/scenario/scenario.h"
#include "net/rng.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  double denominator = 256;
  if (argc > 1) denominator = std::atof(argv[1]);
  const core::Scenario scenario =
      core::ScenarioBuilder().scale_denominator(denominator).build();
  const sim::World& world = scenario.world();

  // A synthetic cloud's peering policy: peer probability grows with the
  // network's announced footprint (big networks meet you at IXPs).
  std::unordered_set<std::uint32_t> direct_peers;
  net::Rng rng(0x9EE2);
  for (const sim::AsEntry& as : world.ases()) {
    std::uint64_t footprint = 0;
    for (const net::Prefix& p : as.announced) {
      footprint += p.slash24_count();
    }
    const double p_peer =
        footprint >= 128 ? 0.92 : (footprint >= 16 ? 0.55 : 0.12);
    if (rng.bernoulli(p_peer)) direct_peers.insert(as.asn);
  }

  // The activity map.
  core::CacheProbeCampaign campaign = scenario.campaign();
  const auto probing = campaign.run().result;
  const auto client_ases = core::to_as_dataset(
      "clients", probing.to_prefix_dataset("cache probing"), world);

  std::size_t all = 0, all_direct = 0, client = 0, client_direct = 0;
  std::size_t truth_client = 0, truth_client_direct = 0;
  for (const sim::AsEntry& as : world.ases()) {
    ++all;
    const bool direct = direct_peers.contains(as.asn);
    all_direct += direct;
    if (client_ases.contains(as.asn)) {
      ++client;
      client_direct += direct;
    }
    // Ground truth "user network": hosts a non-trivial user population
    // (nearly every AS has a stray user or two; the interesting class is
    // networks whose purpose is serving eyeballs).
    if (as.users > 10) {
      ++truth_client;
      truth_client_direct += direct;
    }
  }

  std::printf("direct peering with the synthetic cloud:\n");
  std::printf("  over all networks              : %5.1f%%   (paper's Google "
              "example: 41%%)\n",
              100.0 * all_direct / all);
  std::printf("  over measured client networks  : %5.1f%%   (paper: 61%%)\n",
              client ? 100.0 * client_direct / client : 0);
  std::printf("  over ground-truth user networks: %5.1f%%\n",
              truth_client ? 100.0 * truth_client_direct / truth_client : 0);
  std::printf(
      "\nReading: restricting the question to networks that actually host\n"
      "clients changes the answer by tens of percentage points, and the\n"
      "measured activity map recovers nearly the same figure as ground\n"
      "truth — the paper's argument for why such a map matters.\n");
  return 0;
}
