// Outage impact assessment — the paper's opening motivation ("does an
// outage impact any users?").
//
// Scenario: a routing incident takes down a set of prefixes. Without an
// activity map, all you can report is "N /24s unreachable". With the
// cache-probing activity map, you can weight the outage by whether those
// prefixes actually host clients — and the simulator's ground truth lets
// us check the assessment.
//
// Run:  build/examples/outage_impact [scale-denominator]

#include <cstdio>
#include <utility>
#include <cstdlib>

#include "core/obs/export.h"
#include "core/scenario/scenario.h"
#include "net/rng.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  double denominator = 256;
  if (argc > 1) denominator = std::atof(argv[1]);
  const core::Scenario scenario =
      core::ScenarioBuilder().scale_denominator(denominator).build();
  const sim::World& world = scenario.world();

  // Build the activity map once (this is what an operator would keep
  // refreshed in production).
  core::CacheProbeCampaign campaign = scenario.campaign();
  const auto result = campaign.run().result;
  std::printf("activity map ready: [%llu, %llu] active /24s\n\n",
              static_cast<unsigned long long>(result.slash24_lower_bound()),
              static_cast<unsigned long long>(result.slash24_upper_bound()));

  // Simulate three outages: a dense eyeball AS, a hosting AS, and an
  // unrouted block (e.g. a bogus hijack alarm).
  struct Outage {
    const char* label;
    std::vector<net::Prefix> prefixes;
    double true_users = 0;
  };
  std::vector<Outage> outages;
  for (const sim::AsEntry& as : world.ases()) {
    if (outages.size() == 0 && as.type == sim::AsType::kIspEyeball &&
        as.users > 5000) {
      outages.push_back({"regional ISP outage", as.announced, 0});
    } else if (outages.size() == 1 &&
               as.type == sim::AsType::kHostingCloud &&
               as.bot_users > 100) {
      outages.push_back({"hosting provider outage", as.announced, 0});
    } else if (outages.size() == 2) {
      break;
    }
  }
  // Unrouted space "outage".
  for (const sim::Slash24Block& block : world.blocks()) {
    if (!block.routed) {
      outages.push_back(
          {"unrouted space (false alarm)",
           {net::Prefix::from_slash24_index(block.index).widen_to(20)},
           0});
      break;
    }
  }

  std::printf("%-28s %10s %14s %14s %12s\n", "incident", "/24s down",
              "active (map)", "active share", "true users");
  for (Outage& outage : outages) {
    std::uint64_t total = 0, active = 0;
    for (const net::Prefix& p : outage.prefixes) {
      const std::uint32_t first = p.first_slash24_index();
      for (std::uint64_t k = 0; k < p.slash24_count(); ++k) {
        ++total;
        active += result.active.covers(net::Prefix::from_slash24_index(
            first + static_cast<std::uint32_t>(k)));
      }
      const auto [lo, hi] = world.block_range(p);
      for (std::size_t b = lo; b < hi; ++b) {
        outage.true_users += world.blocks()[b].users;
      }
    }
    std::printf("%-28s %10llu %14llu %13.0f%% %12.0f\n", outage.label,
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(active),
                total ? 100.0 * active / total : 0, outage.true_users);
  }
  std::printf(
      "\nReading: raw \"/24s down\" counts rank the incidents wrongly; the\n"
      "activity map separates the user-affecting outage from infrastructure\n"
      "noise, matching the ground-truth user counts.\n");
  return 0;
}
