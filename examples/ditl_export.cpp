// DITL export / re-import: materializes a sampled DITL capture to the
// library's binary trace format, re-runs the Chromium pipeline from the
// file, then persists the analysis as a netclients.snap.v1 snapshot —
// the workflow a researcher with DNS-OARC access would use (collect
// once, analyze many times, serve the result).
//
// Run:  build/examples/ditl_export [scale-denominator] [out.trace]

#include <cstdio>
#include <cstdlib>

#include "core/obs/export.h"
#include "core/chromium/chromium.h"
#include "core/scenario/scenario.h"
#include "core/serve/service.h"
#include "core/snapshot/snapshot.h"
#include "roots/root_server.h"
#include "roots/trace.h"
#include "roots/trace_view.h"
#include "sim/ditl.h"

using namespace netclients;

int main(int argc, char** argv) {
  obs::MetricsOutGuard metrics_out(&argc, argv);
  double denominator = 512;
  if (argc > 1) denominator = std::atof(argv[1]);
  const std::string path = argc > 2 ? argv[2] : "ditl_sample.trace";

  const core::Scenario scenario =
      core::ScenarioBuilder().scale_denominator(denominator).build();
  const sim::World& world = scenario.world();
  const roots::RootSystem roots =
      roots::RootSystem::ditl_2020(world.config().seed);

  sim::DitlOptions ditl;
  ditl.sample_rate = 1.0 / 64;
  std::vector<roots::TraceRecord> records;
  const auto stats = sim::generate_ditl(
      world, roots, ditl,
      [&](const roots::TraceRecord& rec) { records.push_back(rec); });
  std::printf("captured %zu records (%llu suppressed on non-DITL letters)\n",
              records.size(),
              static_cast<unsigned long long>(stats.suppressed));

  if (!roots::TraceFile::write(path, records)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  // Re-import and analyze, as a separate consumer would — through the
  // zero-copy view: the capture is mmap-ed (buffered where mapping is
  // unavailable) and scanned in place, never materialized. The read is
  // tolerant: a capture damaged in transit still yields every record
  // before the corruption, with the rest counted as skipped.
  core::ChromiumOptions options;
  options.sample_rate = ditl.sample_rate;
  const core::ChromiumCounter counter(options);
  const auto view = roots::TraceView::open(path);
  if (!view) {
    std::fprintf(stderr, "cannot read back %s\n", path.c_str());
    return 1;
  }
  const core::ChromiumResult result = counter.process_view(*view);
  std::printf("re-analyzed from disk (%s, zero-copy): "
              "%llu records (%llu skipped), "
              "%llu signature matches, %llu collision-rejected, "
              "%zu resolvers with Chromium activity\n",
              view->mapped() ? "mmap" : "buffered",
              static_cast<unsigned long long>(result.records_scanned),
              static_cast<unsigned long long>(result.records_skipped),
              static_cast<unsigned long long>(result.signature_matches),
              static_cast<unsigned long long>(result.rejected_collisions),
              result.probes_by_resolver.size());

  // Top resolvers by (scaled) Chromium volume.
  std::vector<std::pair<double, std::uint32_t>> top;
  for (const auto& [addr, count] : result.probes_by_resolver) {
    top.emplace_back(count, addr);
  }
  std::sort(top.rbegin(), top.rend());
  std::printf("\ntop resolvers by estimated Chromium probes (2 days):\n");
  for (std::size_t i = 0; i < top.size() && i < 8; ++i) {
    std::printf("  %-18s %12.0f\n",
                net::Ipv4Addr(top[i].second).to_string().c_str(),
                top[i].first);
  }

  // Persist the analysis as a serving-ready snapshot epoch and read it
  // back — the "analyze many times" half of the workflow keeps the
  // (small) snapshot, not the (large) raw trace.
  const std::string snap_path = path + ".snap";
  const core::snapshot::EpochRecord epoch = core::snapshot::make_epoch(
      result, world, 0, core::snapshot::options_digest(options));
  if (!core::snapshot::write(snap_path, {epoch})) {
    std::fprintf(stderr, "cannot write %s\n", snap_path.c_str());
    return 1;
  }
  const auto snap = core::snapshot::read(snap_path);
  if (!snap || snap->epochs.size() != 1) {
    std::fprintf(stderr, "cannot read back %s\n", snap_path.c_str());
    return 1;
  }
  // Serve the re-imported epoch the way a deployment would: publish it
  // into a Service and read through a pinned snapshot handle.
  core::serve::Service service;
  service.publish(std::span<const core::snapshot::EpochRecord>(snap->epochs));
  const core::serve::SnapshotHandle handle = service.acquire();
  std::printf("\nsnapshot %s: %zu resolver /24s, %zu ASes, "
              "total volume %.0f (serving version %llu)\n",
              snap_path.c_str(), handle->index().prefix_count(),
              handle->index().as_aggregates().size(),
              handle->index().total_volume(),
              static_cast<unsigned long long>(handle->version()));

  std::remove(path.c_str());
  std::remove(snap_path.c_str());
  return 0;
}
