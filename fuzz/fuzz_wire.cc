// libFuzzer harness for the DNS wire codec — the first-class version of
// the seeded mutation loops in tests/test_fuzz_wire.cpp. Three properties,
// any violation traps:
//
//   1. Differential: the zero-copy MessageView::parse and the
//      materializing dns::decode must agree on accept vs reject, on the
//      rejection diagnostic, and on the decoded message.
//   2. Round-trip: an accepted input must re-encode to bytes that decode
//      back to the same message (decode∘encode idempotence).
//   3. Stability: re-encoding that decoded message again must reproduce
//      the same bytes (encode is a function of the message alone).
//
// Crashing inputs found in CI get uploaded as artifacts and folded back
// into tests/corpus/wire/ as regression seeds.
//
// Build:  cmake -DNETCLIENTS_FUZZERS=ON (clang only)
// Run:    build/fuzz/fuzz_wire tests/corpus/wire/ -max_total_time=60

#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>

#include "dns/packet.h"
#include "dns/wire.h"

using namespace netclients;

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "[fuzz_wire] property violated: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> wire(data, size);

  std::string view_error;
  const auto view = dns::MessageView::parse(wire, &view_error);
  const dns::DecodeResult materialized = dns::decode(wire);

  require(materialized.ok == view.has_value(),
          "view/decode disagree on accept");
  if (!materialized.ok) {
    require(materialized.error == view_error,
            "view/decode disagree on diagnostic");
    return 0;
  }
  require(view->materialize() == materialized.message,
          "view materializes a different message");

  const auto rewire = dns::encode(materialized.message);
  const dns::DecodeResult second = dns::decode(rewire);
  require(second.ok, "re-encoded message no longer decodes");
  require(second.message == materialized.message,
          "decode/encode round trip changed the message");
  require(dns::encode(second.message) == rewire, "encode is not stable");
  return 0;
}
