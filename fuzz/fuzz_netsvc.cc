// libFuzzer harness for the NCS1 wire protocol — the network front-end's
// parse surface (netsvc/protocol.h). Properties, any violation traps:
//
//   1. Safety: parse_query and parse_response accept arbitrary bytes
//      without crashing (both sit directly behind the bus).
//   2. Profile soundness: an accepted query re-parses by the generic
//      zero-copy packet plane (dns::MessageView) as a well-formed query
//      with one TXT/IN question per reported address.
//   3. Answer round-trip: for an accepted query, the full response, the
//      TC=1 response, and the FORMERR response all encode and parse back
//      with the query's id, the right truncation flag, and result blobs
//      identical field for field.
//
// Crashing inputs found in CI get uploaded as artifacts and folded back
// into tests/corpus/netsvc/ as regression seeds.
//
// Build:  cmake -DNETCLIENTS_FUZZERS=ON (clang only)
// Run:    build/fuzz/fuzz_netsvc tests/corpus/netsvc/ -max_total_time=60

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "dns/packet.h"
#include "net/rng.h"
#include "netsvc/protocol.h"

using namespace netclients;

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "[fuzz_netsvc] property violated: %s\n", what);
    std::abort();
  }
}

core::serve::LookupResult result_for(std::uint64_t seed) {
  net::Rng rng(seed);
  core::serve::LookupResult result;
  result.active = rng.bernoulli(0.5);
  result.prefix =
      net::Prefix(net::Ipv4Addr(static_cast<std::uint32_t>(rng())),
                  static_cast<std::uint8_t>(rng.below(33)));
  result.volume = static_cast<double>(rng.below(1u << 16)) / 3.0;
  result.asn = static_cast<std::uint32_t>(rng());
  result.country = static_cast<std::uint16_t>(rng.below(300));
  result.domain_mask = static_cast<std::uint32_t>(rng());
  return result;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> wire(data, size);

  // Property 1: both parsers must survive arbitrary bytes.
  netsvc::ResponseView response;
  (void)netsvc::parse_response(wire, &response);

  netsvc::QueryView query;
  if (netsvc::parse_query(wire, &query) != netsvc::ParseStatus::kOk) {
    return 0;
  }

  // Property 2: an accepted query is a well-formed DNS query under the
  // generic packet plane, one TXT/IN question per address.
  std::string error;
  const auto view = dns::MessageView::parse(wire, &error);
  require(view.has_value(), "accepted query rejected by MessageView");
  require(!view->header().qr, "accepted query has qr=1");
  require(view->question_count() == query.addrs.size(),
          "address count != question count");
  require(query.addrs.size() >= 1 &&
              query.addrs.size() <= netsvc::kMaxQuestionsPerMessage,
          "accepted batch size out of range");
  require(query.name_offsets.size() == query.addrs.size(),
          "name offset per question");

  // Property 3: the whole answer path round-trips.
  std::vector<core::serve::LookupResult> results(query.addrs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i] = result_for(i ^ (std::uint64_t{query.id} << 32));
  }
  dns::WireArena arena;
  const auto reply = netsvc::encode_response(query, results, arena);
  require(reply.size() ==
              netsvc::response_wire_size(query.question_bytes.size(),
                                         results.size()),
          "response size formula");
  require(netsvc::parse_response(reply, &response), "response unparseable");
  require(response.id == query.id, "response id mismatch");
  require(!response.truncated, "full response claims truncation");
  require(response.results == results, "result blobs changed in flight");

  const auto truncated = netsvc::encode_truncated(query, arena);
  require(netsvc::parse_response(truncated, &response),
          "TC response unparseable");
  require(response.truncated && response.results.empty(),
          "TC response shape");

  const auto formerr = netsvc::encode_formerr(query.id, arena);
  require(netsvc::parse_response(formerr, &response),
          "FORMERR response unparseable");
  require(response.rcode == dns::RCode::kFormErr, "FORMERR rcode");
  return 0;
}
