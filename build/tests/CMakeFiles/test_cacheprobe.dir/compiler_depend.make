# Empty compiler generated dependencies file for test_cacheprobe.
# This may be replaced when dependencies are built.
