file(REMOVE_RECURSE
  "CMakeFiles/test_cacheprobe.dir/test_cacheprobe.cpp.o"
  "CMakeFiles/test_cacheprobe.dir/test_cacheprobe.cpp.o.d"
  "test_cacheprobe"
  "test_cacheprobe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cacheprobe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
