file(REMOVE_RECURSE
  "CMakeFiles/test_netsim.dir/test_netsim.cpp.o"
  "CMakeFiles/test_netsim.dir/test_netsim.cpp.o.d"
  "test_netsim"
  "test_netsim.pdb"
  "test_netsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
