# Empty dependencies file for test_cdn_apnic.
# This may be replaced when dependencies are built.
