file(REMOVE_RECURSE
  "CMakeFiles/test_cdn_apnic.dir/test_cdn_apnic.cpp.o"
  "CMakeFiles/test_cdn_apnic.dir/test_cdn_apnic.cpp.o.d"
  "test_cdn_apnic"
  "test_cdn_apnic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdn_apnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
