file(REMOVE_RECURSE
  "CMakeFiles/test_rank.dir/test_rank.cpp.o"
  "CMakeFiles/test_rank.dir/test_rank.cpp.o.d"
  "test_rank"
  "test_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
