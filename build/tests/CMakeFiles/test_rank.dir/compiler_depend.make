# Empty compiler generated dependencies file for test_rank.
# This may be replaced when dependencies are built.
