# Empty dependencies file for test_dnssrv.
# This may be replaced when dependencies are built.
