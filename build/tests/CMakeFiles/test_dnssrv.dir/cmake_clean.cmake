file(REMOVE_RECURSE
  "CMakeFiles/test_dnssrv.dir/test_dnssrv.cpp.o"
  "CMakeFiles/test_dnssrv.dir/test_dnssrv.cpp.o.d"
  "test_dnssrv"
  "test_dnssrv.pdb"
  "test_dnssrv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnssrv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
