
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/test_determinism.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/test_determinism.dir/test_determinism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/netclients_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/netclients_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/apnic/CMakeFiles/netclients_apnic.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/netclients_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netclients_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/googledns/CMakeFiles/netclients_googledns.dir/DependInfo.cmake"
  "/root/repo/build/src/anycast/CMakeFiles/netclients_anycast.dir/DependInfo.cmake"
  "/root/repo/build/src/dnssrv/CMakeFiles/netclients_dnssrv.dir/DependInfo.cmake"
  "/root/repo/build/src/roots/CMakeFiles/netclients_roots.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/netclients_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/netclients_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netclients_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
