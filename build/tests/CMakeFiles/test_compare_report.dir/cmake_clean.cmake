file(REMOVE_RECURSE
  "CMakeFiles/test_compare_report.dir/test_compare_report.cpp.o"
  "CMakeFiles/test_compare_report.dir/test_compare_report.cpp.o.d"
  "test_compare_report"
  "test_compare_report.pdb"
  "test_compare_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compare_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
