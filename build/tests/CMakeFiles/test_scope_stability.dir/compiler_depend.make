# Empty compiler generated dependencies file for test_scope_stability.
# This may be replaced when dependencies are built.
