file(REMOVE_RECURSE
  "CMakeFiles/test_scope_stability.dir/test_scope_stability.cpp.o"
  "CMakeFiles/test_scope_stability.dir/test_scope_stability.cpp.o.d"
  "test_scope_stability"
  "test_scope_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scope_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
