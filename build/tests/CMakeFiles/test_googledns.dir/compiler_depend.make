# Empty compiler generated dependencies file for test_googledns.
# This may be replaced when dependencies are built.
