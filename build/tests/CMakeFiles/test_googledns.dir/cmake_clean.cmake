file(REMOVE_RECURSE
  "CMakeFiles/test_googledns.dir/test_googledns.cpp.o"
  "CMakeFiles/test_googledns.dir/test_googledns.cpp.o.d"
  "test_googledns"
  "test_googledns.pdb"
  "test_googledns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_googledns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
