# Empty compiler generated dependencies file for test_geo_asdb.
# This may be replaced when dependencies are built.
