file(REMOVE_RECURSE
  "CMakeFiles/test_geo_asdb.dir/test_geo_asdb.cpp.o"
  "CMakeFiles/test_geo_asdb.dir/test_geo_asdb.cpp.o.d"
  "test_geo_asdb"
  "test_geo_asdb.pdb"
  "test_geo_asdb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo_asdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
