# Empty dependencies file for test_chromium.
# This may be replaced when dependencies are built.
