file(REMOVE_RECURSE
  "CMakeFiles/test_chromium.dir/test_chromium.cpp.o"
  "CMakeFiles/test_chromium.dir/test_chromium.cpp.o.d"
  "test_chromium"
  "test_chromium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chromium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
