file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_wire.dir/test_fuzz_wire.cpp.o"
  "CMakeFiles/test_fuzz_wire.dir/test_fuzz_wire.cpp.o.d"
  "test_fuzz_wire"
  "test_fuzz_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
