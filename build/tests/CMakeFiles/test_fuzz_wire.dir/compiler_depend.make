# Empty compiler generated dependencies file for test_fuzz_wire.
# This may be replaced when dependencies are built.
