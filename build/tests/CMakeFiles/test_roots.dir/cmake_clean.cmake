file(REMOVE_RECURSE
  "CMakeFiles/test_roots.dir/test_roots.cpp.o"
  "CMakeFiles/test_roots.dir/test_roots.cpp.o.d"
  "test_roots"
  "test_roots.pdb"
  "test_roots[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
