# Empty compiler generated dependencies file for test_roots.
# This may be replaced when dependencies are built.
