# Empty compiler generated dependencies file for test_anycast.
# This may be replaced when dependencies are built.
