file(REMOVE_RECURSE
  "CMakeFiles/test_anycast.dir/test_anycast.cpp.o"
  "CMakeFiles/test_anycast.dir/test_anycast.cpp.o.d"
  "test_anycast"
  "test_anycast.pdb"
  "test_anycast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anycast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
