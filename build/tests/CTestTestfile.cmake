# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_dns[1]_include.cmake")
include("/root/repo/build/tests/test_dnssrv[1]_include.cmake")
include("/root/repo/build/tests/test_anycast[1]_include.cmake")
include("/root/repo/build/tests/test_googledns[1]_include.cmake")
include("/root/repo/build/tests/test_roots[1]_include.cmake")
include("/root/repo/build/tests/test_geo_asdb[1]_include.cmake")
include("/root/repo/build/tests/test_compare_report[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;32;add_nc_test_batch;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cdn_apnic "/root/repo/build/tests/test_cdn_apnic")
set_tests_properties(test_cdn_apnic PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;33;add_nc_test_batch;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cacheprobe "/root/repo/build/tests/test_cacheprobe")
set_tests_properties(test_cacheprobe PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;34;add_nc_test_batch;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_chromium "/root/repo/build/tests/test_chromium")
set_tests_properties(test_chromium PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;35;add_nc_test_batch;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;36;add_nc_test_batch;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_rank "/root/repo/build/tests/test_rank")
set_tests_properties(test_rank PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;37;add_nc_test_batch;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fuzz_wire "/root/repo/build/tests/test_fuzz_wire")
set_tests_properties(test_fuzz_wire PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;38;add_nc_test_batch;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_scope_stability "/root/repo/build/tests/test_scope_stability")
set_tests_properties(test_scope_stability PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;39;add_nc_test_batch;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_determinism "/root/repo/build/tests/test_determinism")
set_tests_properties(test_determinism PROPERTIES  LABELS "determinism;tsan" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;40;add_nc_test_batch;/root/repo/tests/CMakeLists.txt;0;")
