file(REMOVE_RECURSE
  "CMakeFiles/ditl_export.dir/ditl_export.cpp.o"
  "CMakeFiles/ditl_export.dir/ditl_export.cpp.o.d"
  "ditl_export"
  "ditl_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ditl_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
