# Empty compiler generated dependencies file for ditl_export.
# This may be replaced when dependencies are built.
