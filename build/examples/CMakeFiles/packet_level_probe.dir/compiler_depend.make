# Empty compiler generated dependencies file for packet_level_probe.
# This may be replaced when dependencies are built.
