file(REMOVE_RECURSE
  "CMakeFiles/packet_level_probe.dir/packet_level_probe.cpp.o"
  "CMakeFiles/packet_level_probe.dir/packet_level_probe.cpp.o.d"
  "packet_level_probe"
  "packet_level_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_level_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
