file(REMOVE_RECURSE
  "CMakeFiles/coverage_diagnosis.dir/coverage_diagnosis.cpp.o"
  "CMakeFiles/coverage_diagnosis.dir/coverage_diagnosis.cpp.o.d"
  "coverage_diagnosis"
  "coverage_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
