# Empty compiler generated dependencies file for coverage_diagnosis.
# This may be replaced when dependencies are built.
