file(REMOVE_RECURSE
  "CMakeFiles/geolocation_confidence.dir/geolocation_confidence.cpp.o"
  "CMakeFiles/geolocation_confidence.dir/geolocation_confidence.cpp.o.d"
  "geolocation_confidence"
  "geolocation_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolocation_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
