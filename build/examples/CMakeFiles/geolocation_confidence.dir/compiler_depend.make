# Empty compiler generated dependencies file for geolocation_confidence.
# This may be replaced when dependencies are built.
