file(REMOVE_RECURSE
  "CMakeFiles/outage_impact.dir/outage_impact.cpp.o"
  "CMakeFiles/outage_impact.dir/outage_impact.cpp.o.d"
  "outage_impact"
  "outage_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
