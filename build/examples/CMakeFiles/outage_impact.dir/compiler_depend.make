# Empty compiler generated dependencies file for outage_impact.
# This may be replaced when dependencies are built.
