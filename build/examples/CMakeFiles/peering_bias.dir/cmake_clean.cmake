file(REMOVE_RECURSE
  "CMakeFiles/peering_bias.dir/peering_bias.cpp.o"
  "CMakeFiles/peering_bias.dir/peering_bias.cpp.o.d"
  "peering_bias"
  "peering_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peering_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
