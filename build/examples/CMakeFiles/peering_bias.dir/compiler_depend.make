# Empty compiler generated dependencies file for peering_bias.
# This may be replaced when dependencies are built.
