# Empty compiler generated dependencies file for country_report.
# This may be replaced when dependencies are built.
