file(REMOVE_RECURSE
  "CMakeFiles/country_report.dir/country_report.cpp.o"
  "CMakeFiles/country_report.dir/country_report.cpp.o.d"
  "country_report"
  "country_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/country_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
