file(REMOVE_RECURSE
  "libnetclients_geo.a"
)
