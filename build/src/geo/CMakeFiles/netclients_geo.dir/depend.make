# Empty dependencies file for netclients_geo.
# This may be replaced when dependencies are built.
