file(REMOVE_RECURSE
  "CMakeFiles/netclients_geo.dir/geodb.cc.o"
  "CMakeFiles/netclients_geo.dir/geodb.cc.o.d"
  "libnetclients_geo.a"
  "libnetclients_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclients_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
