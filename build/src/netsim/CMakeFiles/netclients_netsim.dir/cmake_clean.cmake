file(REMOVE_RECURSE
  "CMakeFiles/netclients_netsim.dir/bus.cc.o"
  "CMakeFiles/netclients_netsim.dir/bus.cc.o.d"
  "libnetclients_netsim.a"
  "libnetclients_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclients_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
