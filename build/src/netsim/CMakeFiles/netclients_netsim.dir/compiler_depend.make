# Empty compiler generated dependencies file for netclients_netsim.
# This may be replaced when dependencies are built.
