file(REMOVE_RECURSE
  "libnetclients_netsim.a"
)
