file(REMOVE_RECURSE
  "libnetclients_cdn.a"
)
