file(REMOVE_RECURSE
  "CMakeFiles/netclients_cdn.dir/cdn.cc.o"
  "CMakeFiles/netclients_cdn.dir/cdn.cc.o.d"
  "libnetclients_cdn.a"
  "libnetclients_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclients_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
