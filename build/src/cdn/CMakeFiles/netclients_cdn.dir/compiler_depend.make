# Empty compiler generated dependencies file for netclients_cdn.
# This may be replaced when dependencies are built.
