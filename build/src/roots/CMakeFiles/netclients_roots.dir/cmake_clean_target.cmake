file(REMOVE_RECURSE
  "libnetclients_roots.a"
)
