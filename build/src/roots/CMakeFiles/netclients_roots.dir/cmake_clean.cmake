file(REMOVE_RECURSE
  "CMakeFiles/netclients_roots.dir/root_server.cc.o"
  "CMakeFiles/netclients_roots.dir/root_server.cc.o.d"
  "CMakeFiles/netclients_roots.dir/trace.cc.o"
  "CMakeFiles/netclients_roots.dir/trace.cc.o.d"
  "libnetclients_roots.a"
  "libnetclients_roots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclients_roots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
