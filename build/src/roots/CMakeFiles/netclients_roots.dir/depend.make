# Empty dependencies file for netclients_roots.
# This may be replaced when dependencies are built.
