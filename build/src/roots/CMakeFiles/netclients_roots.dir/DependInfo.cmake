
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roots/root_server.cc" "src/roots/CMakeFiles/netclients_roots.dir/root_server.cc.o" "gcc" "src/roots/CMakeFiles/netclients_roots.dir/root_server.cc.o.d"
  "/root/repo/src/roots/trace.cc" "src/roots/CMakeFiles/netclients_roots.dir/trace.cc.o" "gcc" "src/roots/CMakeFiles/netclients_roots.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/netclients_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netclients_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
