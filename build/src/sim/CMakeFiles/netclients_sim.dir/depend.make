# Empty dependencies file for netclients_sim.
# This may be replaced when dependencies are built.
