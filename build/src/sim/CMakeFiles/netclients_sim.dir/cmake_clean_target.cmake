file(REMOVE_RECURSE
  "libnetclients_sim.a"
)
