file(REMOVE_RECURSE
  "CMakeFiles/netclients_sim.dir/activity.cc.o"
  "CMakeFiles/netclients_sim.dir/activity.cc.o.d"
  "CMakeFiles/netclients_sim.dir/country.cc.o"
  "CMakeFiles/netclients_sim.dir/country.cc.o.d"
  "CMakeFiles/netclients_sim.dir/ditl.cc.o"
  "CMakeFiles/netclients_sim.dir/ditl.cc.o.d"
  "CMakeFiles/netclients_sim.dir/domains.cc.o"
  "CMakeFiles/netclients_sim.dir/domains.cc.o.d"
  "CMakeFiles/netclients_sim.dir/world.cc.o"
  "CMakeFiles/netclients_sim.dir/world.cc.o.d"
  "libnetclients_sim.a"
  "libnetclients_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclients_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
