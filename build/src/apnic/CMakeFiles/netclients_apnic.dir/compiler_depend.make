# Empty compiler generated dependencies file for netclients_apnic.
# This may be replaced when dependencies are built.
