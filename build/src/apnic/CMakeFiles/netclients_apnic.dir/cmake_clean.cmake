file(REMOVE_RECURSE
  "CMakeFiles/netclients_apnic.dir/apnic.cc.o"
  "CMakeFiles/netclients_apnic.dir/apnic.cc.o.d"
  "libnetclients_apnic.a"
  "libnetclients_apnic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclients_apnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
