file(REMOVE_RECURSE
  "libnetclients_apnic.a"
)
