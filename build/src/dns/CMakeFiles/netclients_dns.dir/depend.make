# Empty dependencies file for netclients_dns.
# This may be replaced when dependencies are built.
