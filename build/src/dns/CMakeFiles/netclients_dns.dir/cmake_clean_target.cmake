file(REMOVE_RECURSE
  "libnetclients_dns.a"
)
