
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/message.cc" "src/dns/CMakeFiles/netclients_dns.dir/message.cc.o" "gcc" "src/dns/CMakeFiles/netclients_dns.dir/message.cc.o.d"
  "/root/repo/src/dns/name.cc" "src/dns/CMakeFiles/netclients_dns.dir/name.cc.o" "gcc" "src/dns/CMakeFiles/netclients_dns.dir/name.cc.o.d"
  "/root/repo/src/dns/wire.cc" "src/dns/CMakeFiles/netclients_dns.dir/wire.cc.o" "gcc" "src/dns/CMakeFiles/netclients_dns.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/netclients_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
