file(REMOVE_RECURSE
  "CMakeFiles/netclients_dns.dir/message.cc.o"
  "CMakeFiles/netclients_dns.dir/message.cc.o.d"
  "CMakeFiles/netclients_dns.dir/name.cc.o"
  "CMakeFiles/netclients_dns.dir/name.cc.o.d"
  "CMakeFiles/netclients_dns.dir/wire.cc.o"
  "CMakeFiles/netclients_dns.dir/wire.cc.o.d"
  "libnetclients_dns.a"
  "libnetclients_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclients_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
