file(REMOVE_RECURSE
  "libnetclients_googledns.a"
)
