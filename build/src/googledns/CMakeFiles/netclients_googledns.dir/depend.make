# Empty dependencies file for netclients_googledns.
# This may be replaced when dependencies are built.
