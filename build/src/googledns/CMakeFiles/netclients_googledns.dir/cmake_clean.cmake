file(REMOVE_RECURSE
  "CMakeFiles/netclients_googledns.dir/google_dns.cc.o"
  "CMakeFiles/netclients_googledns.dir/google_dns.cc.o.d"
  "libnetclients_googledns.a"
  "libnetclients_googledns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclients_googledns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
