# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("net")
subdirs("dns")
subdirs("dnssrv")
subdirs("netsim")
subdirs("anycast")
subdirs("googledns")
subdirs("roots")
subdirs("geo")
subdirs("asdb")
subdirs("sim")
subdirs("cdn")
subdirs("apnic")
subdirs("core")
