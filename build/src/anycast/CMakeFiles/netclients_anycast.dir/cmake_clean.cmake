file(REMOVE_RECURSE
  "CMakeFiles/netclients_anycast.dir/catchment.cc.o"
  "CMakeFiles/netclients_anycast.dir/catchment.cc.o.d"
  "CMakeFiles/netclients_anycast.dir/pop.cc.o"
  "CMakeFiles/netclients_anycast.dir/pop.cc.o.d"
  "CMakeFiles/netclients_anycast.dir/vantage.cc.o"
  "CMakeFiles/netclients_anycast.dir/vantage.cc.o.d"
  "libnetclients_anycast.a"
  "libnetclients_anycast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclients_anycast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
