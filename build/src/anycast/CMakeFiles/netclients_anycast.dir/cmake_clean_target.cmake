file(REMOVE_RECURSE
  "libnetclients_anycast.a"
)
