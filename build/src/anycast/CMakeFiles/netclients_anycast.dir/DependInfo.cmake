
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anycast/catchment.cc" "src/anycast/CMakeFiles/netclients_anycast.dir/catchment.cc.o" "gcc" "src/anycast/CMakeFiles/netclients_anycast.dir/catchment.cc.o.d"
  "/root/repo/src/anycast/pop.cc" "src/anycast/CMakeFiles/netclients_anycast.dir/pop.cc.o" "gcc" "src/anycast/CMakeFiles/netclients_anycast.dir/pop.cc.o.d"
  "/root/repo/src/anycast/vantage.cc" "src/anycast/CMakeFiles/netclients_anycast.dir/vantage.cc.o" "gcc" "src/anycast/CMakeFiles/netclients_anycast.dir/vantage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/netclients_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
