# Empty dependencies file for netclients_anycast.
# This may be replaced when dependencies are built.
