file(REMOVE_RECURSE
  "libnetclients_dnssrv.a"
)
