# Empty compiler generated dependencies file for netclients_dnssrv.
# This may be replaced when dependencies are built.
