file(REMOVE_RECURSE
  "CMakeFiles/netclients_dnssrv.dir/authoritative.cc.o"
  "CMakeFiles/netclients_dnssrv.dir/authoritative.cc.o.d"
  "CMakeFiles/netclients_dnssrv.dir/cache.cc.o"
  "CMakeFiles/netclients_dnssrv.dir/cache.cc.o.d"
  "libnetclients_dnssrv.a"
  "libnetclients_dnssrv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclients_dnssrv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
