
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnssrv/authoritative.cc" "src/dnssrv/CMakeFiles/netclients_dnssrv.dir/authoritative.cc.o" "gcc" "src/dnssrv/CMakeFiles/netclients_dnssrv.dir/authoritative.cc.o.d"
  "/root/repo/src/dnssrv/cache.cc" "src/dnssrv/CMakeFiles/netclients_dnssrv.dir/cache.cc.o" "gcc" "src/dnssrv/CMakeFiles/netclients_dnssrv.dir/cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/netclients_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netclients_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
