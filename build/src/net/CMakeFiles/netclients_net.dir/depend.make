# Empty dependencies file for netclients_net.
# This may be replaced when dependencies are built.
