file(REMOVE_RECURSE
  "CMakeFiles/netclients_net.dir/ipv4.cc.o"
  "CMakeFiles/netclients_net.dir/ipv4.cc.o.d"
  "CMakeFiles/netclients_net.dir/prefix.cc.o"
  "CMakeFiles/netclients_net.dir/prefix.cc.o.d"
  "CMakeFiles/netclients_net.dir/prefix_set.cc.o"
  "CMakeFiles/netclients_net.dir/prefix_set.cc.o.d"
  "libnetclients_net.a"
  "libnetclients_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclients_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
