file(REMOVE_RECURSE
  "libnetclients_net.a"
)
