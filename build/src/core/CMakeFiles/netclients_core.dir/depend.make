# Empty dependencies file for netclients_core.
# This may be replaced when dependencies are built.
