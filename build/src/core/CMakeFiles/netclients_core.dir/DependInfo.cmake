
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cacheprobe/cacheprobe.cc" "src/core/CMakeFiles/netclients_core.dir/cacheprobe/cacheprobe.cc.o" "gcc" "src/core/CMakeFiles/netclients_core.dir/cacheprobe/cacheprobe.cc.o.d"
  "/root/repo/src/core/chromium/chromium.cc" "src/core/CMakeFiles/netclients_core.dir/chromium/chromium.cc.o" "gcc" "src/core/CMakeFiles/netclients_core.dir/chromium/chromium.cc.o.d"
  "/root/repo/src/core/compare/compare.cc" "src/core/CMakeFiles/netclients_core.dir/compare/compare.cc.o" "gcc" "src/core/CMakeFiles/netclients_core.dir/compare/compare.cc.o.d"
  "/root/repo/src/core/datasets/datasets.cc" "src/core/CMakeFiles/netclients_core.dir/datasets/datasets.cc.o" "gcc" "src/core/CMakeFiles/netclients_core.dir/datasets/datasets.cc.o.d"
  "/root/repo/src/core/exec/exec.cc" "src/core/CMakeFiles/netclients_core.dir/exec/exec.cc.o" "gcc" "src/core/CMakeFiles/netclients_core.dir/exec/exec.cc.o.d"
  "/root/repo/src/core/rank/activity_rank.cc" "src/core/CMakeFiles/netclients_core.dir/rank/activity_rank.cc.o" "gcc" "src/core/CMakeFiles/netclients_core.dir/rank/activity_rank.cc.o.d"
  "/root/repo/src/core/report/report.cc" "src/core/CMakeFiles/netclients_core.dir/report/report.cc.o" "gcc" "src/core/CMakeFiles/netclients_core.dir/report/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/netclients_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/netclients_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/apnic/CMakeFiles/netclients_apnic.dir/DependInfo.cmake"
  "/root/repo/build/src/googledns/CMakeFiles/netclients_googledns.dir/DependInfo.cmake"
  "/root/repo/build/src/roots/CMakeFiles/netclients_roots.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/netclients_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netclients_net.dir/DependInfo.cmake"
  "/root/repo/build/src/anycast/CMakeFiles/netclients_anycast.dir/DependInfo.cmake"
  "/root/repo/build/src/dnssrv/CMakeFiles/netclients_dnssrv.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/netclients_dns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
