file(REMOVE_RECURSE
  "CMakeFiles/netclients_core.dir/cacheprobe/cacheprobe.cc.o"
  "CMakeFiles/netclients_core.dir/cacheprobe/cacheprobe.cc.o.d"
  "CMakeFiles/netclients_core.dir/chromium/chromium.cc.o"
  "CMakeFiles/netclients_core.dir/chromium/chromium.cc.o.d"
  "CMakeFiles/netclients_core.dir/compare/compare.cc.o"
  "CMakeFiles/netclients_core.dir/compare/compare.cc.o.d"
  "CMakeFiles/netclients_core.dir/datasets/datasets.cc.o"
  "CMakeFiles/netclients_core.dir/datasets/datasets.cc.o.d"
  "CMakeFiles/netclients_core.dir/exec/exec.cc.o"
  "CMakeFiles/netclients_core.dir/exec/exec.cc.o.d"
  "CMakeFiles/netclients_core.dir/rank/activity_rank.cc.o"
  "CMakeFiles/netclients_core.dir/rank/activity_rank.cc.o.d"
  "CMakeFiles/netclients_core.dir/report/report.cc.o"
  "CMakeFiles/netclients_core.dir/report/report.cc.o.d"
  "libnetclients_core.a"
  "libnetclients_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclients_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
