file(REMOVE_RECURSE
  "libnetclients_core.a"
)
