file(REMOVE_RECURSE
  "CMakeFiles/bench_rank.dir/bench_rank.cpp.o"
  "CMakeFiles/bench_rank.dir/bench_rank.cpp.o.d"
  "bench_rank"
  "bench_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
