# Empty compiler generated dependencies file for bench_rank.
# This may be replaced when dependencies are built.
