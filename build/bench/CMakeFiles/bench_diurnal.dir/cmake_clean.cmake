file(REMOVE_RECURSE
  "CMakeFiles/bench_diurnal.dir/bench_diurnal.cpp.o"
  "CMakeFiles/bench_diurnal.dir/bench_diurnal.cpp.o.d"
  "bench_diurnal"
  "bench_diurnal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
