# Empty compiler generated dependencies file for bench_diurnal.
# This may be replaced when dependencies are built.
