file(REMOVE_RECURSE
  "CMakeFiles/bench_collisions.dir/bench_collisions.cpp.o"
  "CMakeFiles/bench_collisions.dir/bench_collisions.cpp.o.d"
  "bench_collisions"
  "bench_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
