# Empty compiler generated dependencies file for bench_collisions.
# This may be replaced when dependencies are built.
