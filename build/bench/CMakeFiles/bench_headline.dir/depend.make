# Empty dependencies file for bench_headline.
# This may be replaced when dependencies are built.
