file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1.dir/bench_fig1.cpp.o"
  "CMakeFiles/bench_fig1.dir/bench_fig1.cpp.o.d"
  "bench_fig1"
  "bench_fig1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
