# Empty compiler generated dependencies file for bench_fig1.
# This may be replaced when dependencies are built.
