#include "sim/domains.h"

namespace netclients::sim {

std::vector<DomainInfo> default_domains() {
  std::vector<DomainInfo> domains;
  DomainInfo google;
  google.name = *dns::DnsName::parse("www.google.com");
  google.alexa_rank = 1;
  google.ttl_seconds = 300;
  google.min_scope = 20;
  google.max_scope = 24;
  google.scope_stop_probability = 0.40;
  google.scope_drift_probability = 0.11;
  google.queries_per_user_per_day = 7.5;
  domains.push_back(google);

  DomainInfo youtube;
  youtube.name = *dns::DnsName::parse("www.youtube.com");
  youtube.alexa_rank = 2;
  youtube.ttl_seconds = 300;
  youtube.min_scope = 20;
  youtube.max_scope = 24;
  youtube.scope_stop_probability = 0.40;
  youtube.scope_drift_probability = 0.12;
  youtube.queries_per_user_per_day = 4.8;
  domains.push_back(youtube);

  // Facebook supports ECS only without "www" (B.4), and the www variant is
  // what browsers mostly resolve — so the ECS-visible query stream is a
  // fraction of Facebook's true popularity.
  DomainInfo facebook;
  facebook.name = *dns::DnsName::parse("facebook.com");
  facebook.alexa_rank = 7;
  facebook.ttl_seconds = 300;
  facebook.min_scope = 20;
  facebook.max_scope = 24;
  facebook.scope_stop_probability = 0.45;
  facebook.scope_drift_probability = 0.06;
  facebook.queries_per_user_per_day = 1.4;
  domains.push_back(facebook);

  DomainInfo wikipedia;
  wikipedia.name = *dns::DnsName::parse("www.wikipedia.org");
  wikipedia.alexa_rank = 13;
  wikipedia.ttl_seconds = 600;
  wikipedia.min_scope = 16;
  wikipedia.max_scope = 18;
  wikipedia.scope_stop_probability = 0.55;
  wikipedia.scope_drift_probability = 0.03;
  wikipedia.queries_per_user_per_day = 0.55;
  domains.push_back(wikipedia);

  DomainInfo mscdn;
  mscdn.name = *dns::DnsName::parse("azcdn.trafficmanager.net");
  mscdn.alexa_rank = 28;
  mscdn.ttl_seconds = 300;  // Traffic Manager default is 5 minutes
  mscdn.min_scope = 20;
  mscdn.max_scope = 24;
  mscdn.scope_stop_probability = 0.45;
  mscdn.scope_drift_probability = 0.05;
  mscdn.queries_per_user_per_day = 1.6;
  mscdn.is_microsoft_cdn = true;
  domains.push_back(mscdn);
  return domains;
}

}  // namespace netclients::sim
