#pragma once

#include <cstdint>
#include <vector>

#include "dns/name.h"

namespace netclients::sim {

/// A domain the cache-probing campaign can query, with the authoritative
/// behaviour and client popularity that drive cache occupancy.
struct DomainInfo {
  dns::DnsName name;
  int alexa_rank = 0;
  std::uint32_t ttl_seconds = 300;
  bool supports_ecs = true;
  std::uint8_t min_scope = 20;
  std::uint8_t max_scope = 24;
  double scope_stop_probability = 0.45;
  double scope_drift_probability = 0.10;
  /// Global average DNS queries per user per day reaching the recursive
  /// (i.e. after browser/OS caching).
  double queries_per_user_per_day = 1.0;
  bool is_microsoft_cdn = false;  // the Traffic Manager validation domain
};

/// The paper's probe set (§3.1.1 / B.4): the four top-ranked Alexa domains
/// that support ECS with TTL > 60s, plus the Microsoft CDN domain used for
/// validation. Wikipedia's authoritative returns much less specific scopes
/// (16–18) than the others (20–24) — the cause of its small prefix counts
/// but large AS coverage in Table 5.
std::vector<DomainInfo> default_domains();

/// Index helpers for the default list.
inline constexpr int kDomainGoogle = 0;
inline constexpr int kDomainYoutube = 1;
inline constexpr int kDomainFacebook = 2;
inline constexpr int kDomainWikipedia = 3;
inline constexpr int kDomainMsCdn = 4;

}  // namespace netclients::sim
