#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/geo.h"

namespace netclients::sim {

/// Static facts about a country in the synthetic world. Names, locations
/// and user counts approximate the real 2021 Internet so that per-country
/// output (Figure 3) is readable; everything else is a modelling knob.
struct CountryInfo {
  std::string code;  // ISO 3166-1 alpha-2
  std::string name;
  std::string region;  // NA, SA, EU, AS, AF, OC
  /// Internet users at full scale (approximate real 2021 values).
  double internet_users = 0;
  net::LatLon centroid;
  double spread_km = 500;  // geographic dispersion of its networks

  /// Share of clients configured to use Google Public DNS. Coverage of the
  /// cache-probing technique in a country is bounded by this.
  double google_dns_share = 0.30;

  /// Per-domain popularity multipliers, aligned with
  /// sim::default_domains() order (google, youtube, facebook, wikipedia,
  /// ms cdn). Models e.g. the near-absence of Google/Facebook traffic from
  /// China.
  double domain_multiplier[5] = {1, 1, 1, 1, 1};

  /// Anycast pathology: probability that an AS registered here has its
  /// Google DNS queries routed to a misroute target instead of a sensible
  /// nearby PoP. South American countries get high values + the unprobed
  /// Buenos Aires site, reproducing the paper's Figure 3 coverage gaps.
  double misroute_probability = 0.0;
  std::vector<std::string> misroute_cities;  // PoP cities (PopTable names)
};

/// The built-in table (~60 countries covering ~95% of real Internet users).
const std::vector<CountryInfo>& builtin_countries();

}  // namespace netclients::sim
