#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "anycast/catchment.h"
#include "anycast/pop.h"
#include "asdb/asdb.h"
#include "dnssrv/authoritative.h"
#include "geo/geodb.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"
#include "sim/config.h"
#include "sim/country.h"
#include "sim/domains.h"

namespace netclients::sim {

/// Business type of a synthetic AS; maps onto the ASdb taxonomy for the
/// §4 "who does APNIC miss" analysis.
enum class AsType : std::uint8_t {
  kIspEyeball,
  kMobileCarrier,
  kHostingCloud,
  kEducation,
  kEnterprise,
  kGovernment,
  kContentCdn,
  kTransit,
  kPublicDns,  // Google Public DNS / other public resolver operators
};

struct AsEntry {
  std::uint32_t asn = 0;
  std::uint16_t country = 0;  // index into World::countries()
  AsType type = AsType::kIspEyeball;

  double users = 0;      // ground-truth human web users
  double bot_users = 0;  // machine clients (hosting/cloud)

  std::vector<net::Prefix> announced;

  /// Resolver configuration of this AS's clients.
  double google_dns_share = 0.3;
  double other_public_share = 0.08;
  double chromium_share = 0.72;

  bool runs_resolver = false;
  /// AS index hosting this AS's resolver endpoints (self unless
  /// outsourced to a hosting provider).
  std::uint32_t resolver_host_as = 0;
  /// For ASes without their own resolver: index of the (same-country ISP)
  /// AS whose resolver their non-public-DNS clients use.
  std::uint32_t upstream_resolver_as = 0;

  /// Users whose queries flow through this AS's *central* resolver
  /// endpoints (own users + delegating child ASes, minus users behind
  /// block-level recursing forwarders and public-DNS users). Filled in the
  /// resolver pass.
  double central_resolved_users = 0;
  double central_resolved_chromium_users = 0;

  /// Anycast pathology: when set, all Google-DNS queries from this AS land
  /// on this PoP regardless of geography.
  anycast::PopId forced_pop = anycast::kNoPop;

  double total_clients() const { return users + bot_users; }
};

/// Ground truth for one allocated /24.
struct Slash24Block {
  std::uint32_t index = 0;  // address >> 8
  std::uint32_t as_index = kNoAs;
  std::uint16_t country = 0;
  bool routed = false;
  bool resolver_infra = false;  // hosts central resolver endpoints
  /// This client block contains a resolver visible to the CDN's
  /// authoritative DNS (CPE forwarder / enterprise resolver).
  bool ms_visible_resolver = false;
  /// That resolver recurses directly (hits the roots itself) rather than
  /// forwarding to the AS's central resolver.
  bool resolver_recurses = false;
  /// An unrelated host here emits root queries matching the Chromium
  /// signature (IoT connectivity checks, headless Chromium on servers):
  /// visible to DNS logs but not to the CDN's resolver view.
  bool junk_emitter = false;

  float users = 0;      // human web users in this /24
  float bot_users = 0;  // non-human web clients
  net::LatLon location;             // ground-truth location
  anycast::PopId gdns_pop = anycast::kNoPop;  // serving Google PoP

  static constexpr std::uint32_t kNoAs = 0xFFFFFFFF;

  double clients() const { return users + bot_users; }
};

/// A recursive-resolver endpoint as seen by authoritatives and roots.
struct ResolverEndpoint {
  net::Ipv4Addr address;
  std::uint32_t owner_as = 0;  // whose clients it serves
  std::uint32_t host_as = 0;   // where the address lives
  bool sends_ecs = false;      // Google Public DNS only
  anycast::PopId pop = anycast::kNoPop;  // for per-PoP Google egress
  double served_users = 0;
  double served_chromium_users = 0;
};

/// The fully generated synthetic Internet. Immutable after generate();
/// every downstream observation (CDN logs, APNIC estimates, DITL traces,
/// cache occupancy) is a deterministic function of this plus a seed.
class World {
 public:
  /// An empty world; populate via `generate`. Public so aggregates can
  /// default-construct and assign.
  World() = default;

  static World generate(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }
  const std::vector<CountryInfo>& countries() const { return countries_; }
  const std::vector<AsEntry>& ases() const { return ases_; }
  const std::vector<Slash24Block>& blocks() const { return blocks_; }
  const std::vector<ResolverEndpoint>& resolver_endpoints() const {
    return resolver_endpoints_;
  }
  const anycast::PopTable& pops() const { return *pops_; }
  const anycast::CatchmentModel& catchment() const { return *catchment_; }
  const std::vector<DomainInfo>& domains() const { return domains_; }
  const dnssrv::AuthoritativeServer& authoritative() const { return auth_; }
  /// Mutable access for test-harness fault injection only (the zone data
  /// itself stays immutable after generate(); see dnssrv::UpstreamFaults).
  dnssrv::AuthoritativeServer& authoritative_mutable() { return auth_; }
  const geo::GeoDatabase& geodb() const { return geodb_; }
  const asdb::AsdbDatabase& asdb() const { return asdb_; }
  const net::PrefixTrie<std::uint32_t>& prefix2as() const {
    return *prefix2as_;
  }
  std::uint32_t google_as() const { return google_as_; }
  std::uint32_t other_public_as() const { return other_public_as_; }

  /// Binary search for a /24's ground truth; nullptr if unallocated.
  const Slash24Block* block_at(std::uint32_t slash24_index) const;

  /// Positions [first, last) in blocks() covered by `prefix`.
  std::pair<std::size_t, std::size_t> block_range(net::Prefix prefix) const;

  /// Client DNS query rate (queries/second) from this block for domain
  /// `d`, restricted to clients using Google Public DNS.
  double gdns_rate(const Slash24Block& block, int domain_index) const {
    return gdns_human_rate(block, domain_index) +
           gdns_bot_rate(block, domain_index);
  }
  /// The human component (subject to the diurnal cycle) and the bot
  /// component (flat) of gdns_rate.
  double gdns_human_rate(const Slash24Block& block, int domain_index) const;
  double gdns_bot_rate(const Slash24Block& block, int domain_index) const;

  /// Same, for all resolvers (used by the CDN's authoritative view).
  double total_domain_rate(const Slash24Block& block, int domain_index) const;

  double country_domain_multiplier(std::uint16_t country,
                                   int domain_index) const;

  /// Total ground-truth users (scaled world).
  double total_users() const { return total_users_; }

  /// The last allocated /24 index + 1 (scan upper bound).
  std::uint32_t address_space_end() const { return space_end_; }

 private:
  WorldConfig config_;
  std::vector<CountryInfo> countries_;
  std::vector<AsEntry> ases_;
  std::vector<Slash24Block> blocks_;  // sorted by index
  std::vector<ResolverEndpoint> resolver_endpoints_;
  std::unique_ptr<anycast::PopTable> pops_;
  std::unique_ptr<anycast::CatchmentModel> catchment_;
  std::vector<DomainInfo> domains_;
  dnssrv::AuthoritativeServer auth_;
  geo::GeoDatabase geodb_;
  asdb::AsdbDatabase asdb_;
  // Heap-allocated: the authoritative server keeps a topology pointer to
  // it, which must stay valid when the World is moved.
  std::unique_ptr<net::PrefixTrie<std::uint32_t>> prefix2as_ =
      std::make_unique<net::PrefixTrie<std::uint32_t>>();
  std::uint32_t google_as_ = 0;
  std::uint32_t other_public_as_ = 0;
  double total_users_ = 0;
  std::uint32_t space_end_ = 0;
};

}  // namespace netclients::sim
