#include "sim/country.h"

namespace netclients::sim {
namespace {

CountryInfo make(std::string code, std::string name, std::string region,
                 double users_millions, double lat, double lon,
                 double spread_km, double gshare) {
  CountryInfo c;
  c.code = std::move(code);
  c.name = std::move(name);
  c.region = std::move(region);
  c.internet_users = users_millions * 1e6;
  c.centroid = {lat, lon};
  c.spread_km = spread_km;
  c.google_dns_share = gshare;
  return c;
}

std::vector<CountryInfo> build() {
  std::vector<CountryInfo> t;
  // ---- North America
  t.push_back(make("US", "United States", "NA", 300, 39.8, -98.6, 1800, 0.34));
  t.push_back(make("CA", "Canada", "NA", 35, 50.0, -97.0, 1500, 0.33));
  t.push_back(make("MX", "Mexico", "NA", 95, 23.6, -102.5, 800, 0.30));
  t.push_back(make("GT", "Guatemala", "NA", 9, 15.8, -90.2, 250, 0.28));
  t.push_back(make("CU", "Cuba", "NA", 7, 21.5, -77.8, 300, 0.15));
  // ---- South America (coverage-gap region: high misroute to the unprobed
  // Buenos Aires PoP, per Figure 3).
  auto sa = [&](CountryInfo c, double misroute) {
    c.misroute_probability = misroute;
    c.misroute_cities = {"Buenos Aires"};
    t.push_back(std::move(c));
  };
  sa(make("BR", "Brazil", "SA", 160, -10.8, -52.9, 1500, 0.31), 0.25);
  sa(make("AR", "Argentina", "SA", 35, -34.6, -64.0, 900, 0.32), 0.35);
  sa(make("CO", "Colombia", "SA", 32, 4.1, -73.1, 600, 0.30), 0.20);
  sa(make("PE", "Peru", "SA", 25, -9.2, -75.0, 600, 0.28), 0.45);
  sa(make("VE", "Venezuela", "SA", 18, 7.1, -66.2, 500, 0.27), 0.38);
  sa(make("CL", "Chile", "SA", 15, -33.5, -70.7, 800, 0.33), 0.15);
  sa(make("EC", "Ecuador", "SA", 12, -1.4, -78.4, 300, 0.28), 0.45);
  sa(make("BO", "Bolivia", "SA", 6, -16.7, -64.7, 400, 0.25), 0.60);
  sa(make("PY", "Paraguay", "SA", 4, -23.4, -58.4, 300, 0.27), 0.42);
  sa(make("UY", "Uruguay", "SA", 3, -32.8, -55.8, 200, 0.32), 0.28);
  sa(make("SR", "Suriname", "SA", 0.4, 4.1, -55.9, 120, 0.25), 0.50);
  // ---- Europe
  t.push_back(make("DE", "Germany", "EU", 78, 51.1, 10.4, 400, 0.26));
  t.push_back(make("GB", "United Kingdom", "EU", 65, 54.0, -2.5, 400, 0.28));
  t.push_back(make("FR", "France", "EU", 60, 46.6, 2.4, 450, 0.27));
  t.push_back(make("IT", "Italy", "EU", 50, 42.8, 12.7, 450, 0.29));
  t.push_back(make("ES", "Spain", "EU", 44, 40.2, -3.6, 450, 0.28));
  t.push_back(make("PL", "Poland", "EU", 34, 52.1, 19.4, 350, 0.27));
  t.push_back(make("RO", "Romania", "EU", 14, 45.9, 24.9, 280, 0.28));
  t.push_back(make("NL", "Netherlands", "EU", 16, 52.2, 5.3, 150, 0.27));
  t.push_back(make("BE", "Belgium", "EU", 10, 50.6, 4.6, 120, 0.26));
  t.push_back(make("CZ", "Czechia", "EU", 9, 49.8, 15.5, 200, 0.26));
  t.push_back(make("SE", "Sweden", "EU", 9.5, 62.0, 15.0, 600, 0.25));
  t.push_back(make("CH", "Switzerland", "EU", 8, 46.8, 8.2, 120, 0.26));
  t.push_back(make("AT", "Austria", "EU", 8, 47.6, 14.1, 180, 0.26));
  t.push_back(make("PT", "Portugal", "EU", 8, 39.6, -8.0, 250, 0.28));
  t.push_back(make("GR", "Greece", "EU", 8, 39.1, 22.9, 250, 0.28));
  t.push_back(make("HU", "Hungary", "EU", 8, 47.2, 19.4, 180, 0.27));
  t.push_back(make("UA", "Ukraine", "EU", 30, 49.0, 31.4, 450, 0.30));
  t.push_back(make("RU", "Russia", "EU", 120, 56.0, 60.0, 2500, 0.24));
  t.push_back(make("FI", "Finland", "EU", 5, 64.0, 26.0, 500, 0.25));
  t.push_back(make("DK", "Denmark", "EU", 5.5, 56.0, 9.5, 150, 0.25));
  t.push_back(make("NO", "Norway", "EU", 5, 61.0, 9.0, 500, 0.25));
  t.push_back(make("IE", "Ireland", "EU", 4.5, 53.2, -8.2, 150, 0.28));
  // ---- Asia
  {
    // China: Google services essentially unreachable; Google Public DNS
    // adoption tiny. Its prefixes light up far less in cache probing, as
    // the paper observes in Figure 1.
    CountryInfo cn = make("CN", "China", "AS", 1000, 35.0, 104.0, 2200, 0.04);
    cn.domain_multiplier[0] = 0.05;  // google
    cn.domain_multiplier[1] = 0.04;  // youtube
    cn.domain_multiplier[2] = 0.04;  // facebook
    cn.domain_multiplier[3] = 0.25;  // wikipedia
    // The global Microsoft CDN sees little mainland traffic (Azure China
    // is operated separately), so China contributes far less validation
    // volume than its user count suggests.
    cn.domain_multiplier[4] = 0.12;  // ms cdn
    t.push_back(std::move(cn));
  }
  t.push_back(make("IN", "India", "AS", 800, 21.0, 78.0, 1500, 0.34));
  t.push_back(make("ID", "Indonesia", "AS", 200, -2.5, 118.0, 1700, 0.31));
  t.push_back(make("PK", "Pakistan", "AS", 120, 30.4, 69.4, 700, 0.30));
  t.push_back(make("BD", "Bangladesh", "AS", 120, 23.7, 90.4, 300, 0.30));
  t.push_back(make("JP", "Japan", "AS", 115, 36.2, 138.3, 800, 0.25));
  t.push_back(make("PH", "Philippines", "AS", 85, 12.9, 121.8, 800, 0.32));
  t.push_back(make("VN", "Vietnam", "AS", 70, 14.1, 108.3, 700, 0.31));
  t.push_back(make("TR", "Turkey", "AS", 70, 39.0, 35.2, 700, 0.31));
  {
    CountryInfo ir = make("IR", "Iran", "AS", 70, 32.4, 53.7, 700, 0.22);
    ir.domain_multiplier[2] = 0.15;  // facebook blocked
    ir.domain_multiplier[1] = 0.30;
    t.push_back(std::move(ir));
  }
  t.push_back(make("TH", "Thailand", "AS", 55, 15.9, 100.9, 500, 0.30));
  t.push_back(make("KR", "South Korea", "AS", 50, 36.5, 127.9, 300, 0.24));
  t.push_back(make("MY", "Malaysia", "AS", 27, 4.2, 102.0, 500, 0.31));
  t.push_back(make("TW", "Taiwan", "AS", 22, 23.7, 121.0, 200, 0.28));
  t.push_back(make("SA", "Saudi Arabia", "AS", 30, 24.2, 45.1, 700, 0.29));
  t.push_back(make("IQ", "Iraq", "AS", 25, 33.2, 43.7, 400, 0.28));
  t.push_back(make("UZ", "Uzbekistan", "AS", 17, 41.4, 64.6, 500, 0.27));
  t.push_back(make("IL", "Israel", "AS", 7, 31.5, 34.9, 120, 0.27));
  t.push_back(make("AE", "UAE", "AS", 9, 24.0, 54.0, 200, 0.28));
  t.push_back(make("SG", "Singapore", "AS", 5, 1.35, 103.8, 40, 0.29));
  t.push_back(make("HK", "Hong Kong", "AS", 6.5, 22.3, 114.2, 40, 0.28));
  // ---- Africa
  t.push_back(make("NG", "Nigeria", "AF", 110, 9.1, 8.7, 700, 0.33));
  t.push_back(make("EG", "Egypt", "AF", 55, 26.8, 30.8, 500, 0.30));
  t.push_back(make("ZA", "South Africa", "AF", 35, -29.0, 24.7, 700, 0.31));
  t.push_back(make("KE", "Kenya", "AF", 20, 0.0, 37.9, 400, 0.32));
  t.push_back(make("MA", "Morocco", "AF", 25, 31.8, -7.1, 400, 0.30));
  t.push_back(make("DZ", "Algeria", "AF", 25, 28.0, 1.7, 700, 0.29));
  t.push_back(make("GH", "Ghana", "AF", 12, 7.9, -1.0, 300, 0.32));
  t.push_back(make("ET", "Ethiopia", "AF", 12, 9.1, 40.5, 500, 0.28));
  // ---- Oceania
  t.push_back(make("AU", "Australia", "OC", 23, -25.3, 133.8, 1800, 0.30));
  t.push_back(make("NZ", "New Zealand", "OC", 4.3, -41.0, 174.0, 500, 0.29));
  return t;
}

}  // namespace

const std::vector<CountryInfo>& builtin_countries() {
  static const std::vector<CountryInfo> table = build();
  return table;
}

}  // namespace netclients::sim
