#pragma once

#include <cstdint>
#include <functional>

#include "roots/root_server.h"
#include "roots/trace.h"
#include "sim/world.h"

namespace netclients::sim {

/// Parameters of one simulated DITL collection.
struct DitlOptions {
  double days = 2.0;  // the real DITL captures ~48 hours
  /// Uniform downsampling applied at generation. The real collection keeps
  /// every packet but is processed on DNS-OARC infrastructure; sampling
  /// lets laptop-scale runs keep the same code path. Counts reported by
  /// the pipeline are scaled back by 1/sample_rate (see
  /// core::ChromiumOptions::sample_rate).
  double sample_rate = 1.0;
  std::uint64_t seed = 0xD17Lu;

  // Background (non-Chromium) traffic knobs.
  double typo_queries_per_user_per_day = 0.04;   // dictionary words, no TLD
  double legit_tld_queries_per_user_per_day = 0.25;  // priming/NS refresh
  int dga_families = 24;       // malware families emitting random names
  double dga_queries_per_name = 400;  // each DGA name queried by many hosts
};

struct DitlStats {
  std::uint64_t chromium_probes = 0;  // emitted signature probes (sampled)
  std::uint64_t background = 0;       // emitted non-Chromium records
  std::uint64_t suppressed = 0;       // generated on non-usable letters
};

/// Streams the captured queries of the usable DITL root letters to `sink`,
/// in arbitrary order. Sources are:
///   * Chromium interception probes (3 random 7-15 lowercase labels per
///     browser start / network change [35]) from every resolver endpoint,
///     every recursing block-level forwarder, and Google's per-PoP egress;
///   * dictionary "typo" junk (repeated single labels — filtered out by
///     the pipeline's collision threshold);
///   * DGA malware names (random-looking but heavily repeated);
///   * legitimate TLD queries (carry a TLD, never match the signature);
///   * signature-shaped junk from `junk_emitter` hosts (IoT checks,
///     headless browsers) — the false-ish positives that make DNS logs
///     see /24s the CDN resolver view never does.
///
/// Deterministic for a given (world, options); re-invoking replays the
/// identical stream, which the two-pass Chromium pipeline relies on.
DitlStats generate_ditl(
    const World& world, const roots::RootSystem& roots,
    const DitlOptions& options,
    const std::function<void(const roots::TraceRecord&)>& sink);

/// Ground truth for pipeline validation: expected Chromium probes per day
/// (unsampled) attributable to each resolver source address.
std::unordered_map<std::uint32_t, double> chromium_ground_truth(
    const World& world);

}  // namespace netclients::sim
