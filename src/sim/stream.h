#pragma once

// Streaming, bounded-memory world generation at the real IPv4 order of
// magnitude (~10M routed /24s).
//
// `World::generate` materializes every Slash24Block (and the AS table, the
// trie, the geo database...) before anyone can look at one — fine at paper
// scale (REPRO_SCALE shrinks the world to thousands of blocks), hopeless
// at internet scale where the block array alone is gigabytes. The
// streamer inverts that: a *plan* phase sizes every AS from O(ases) state
// (per-AS RNG streams, prefix-sum address layout — the same shard-RNG
// discipline as `exec`), then an *emit* phase generates blocks batch by
// batch into one fixed-size arena and hands each batch to a visitor. Peak
// memory is a function of the `memory_budget_bytes` knob, never of the
// world size.
//
// Determinism: every AS draws from `exec::shard_rng(seed, as_index)`
// streams keyed by its logical index — never by thread, batch, or budget.
// The emitted block sequence (ascending /24 index) is therefore
// byte-identical for any `threads`, any memory budget, and any batch
// split; `StreamStats::digest` folds the sequence so tests can assert
// exactly that.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/country.h"

namespace netclients::sim {

struct StreamConfig {
  std::uint64_t seed = 42;

  /// Announced (routed) /24 target. The plan hits this within per-AS
  /// rounding; `StreamStats` reports the exact count. The real Internet:
  /// ~12M routed /24s.
  std::uint64_t target_routed_slash24s = 10'000'000;

  /// Fraction of allocated /24 space left unannounced (the paper: 15.5M
  /// public vs ~12M routed). Unrouted blocks are emitted too (flagged),
  /// interleaved as per-AS allocation gaps.
  double unrouted_fraction = 0.22;

  /// Arena budget. The emit arena is the only world-size-proportional
  /// allocation, and it is capped at this many bytes (rounded down to
  /// whole blocks; floored at one maximal AS span so generation always
  /// makes progress).
  std::size_t memory_budget_bytes = std::size_t{256} << 20;

  /// ASes to spread the address space over. 0 = derived from the target
  /// at the real-world density (~180 announced /24s per AS).
  std::uint32_t ases = 0;

  /// Parallelism for the per-batch fill. 0 = exec::thread_count();
  /// 1 = serial. Any value produces the identical stream.
  int threads = 0;

  std::uint32_t derived_ases() const {
    if (ases != 0) return ases;
    const auto n = static_cast<std::uint32_t>(target_routed_slash24s / 180);
    return n < 64 ? 64 : n;
  }
};

/// One emitted /24: the compact streaming counterpart of Slash24Block.
/// 16 bytes so a 256 MiB arena holds 16M blocks.
struct StreamBlock {
  std::uint32_t index = 0;     // address >> 8
  std::uint32_t as_index = kNoAs;
  float users = 0;             // client mass (human or bot, see flags)
  std::uint16_t country = 0;
  std::uint8_t flags = 0;
  std::uint8_t as_type = 0;    // AsType ordinal of the owner

  static constexpr std::uint32_t kNoAs = 0xFFFFFFFF;
  static constexpr std::uint8_t kRouted = 1;  // announced by an AS
  static constexpr std::uint8_t kActive = 2;  // has client mass
  static constexpr std::uint8_t kBots = 4;    // mass is non-human

  bool routed() const { return flags & kRouted; }
  bool active() const { return flags & kActive; }

  friend bool operator==(const StreamBlock&, const StreamBlock&) = default;
};
static_assert(sizeof(StreamBlock) == 16);

struct StreamStats {
  std::uint64_t ases = 0;
  std::uint64_t slash24s = 0;          // blocks emitted (routed + unrouted)
  std::uint64_t routed_slash24s = 0;
  std::uint64_t active_slash24s = 0;
  double total_users = 0;
  std::uint64_t batches = 0;           // arena flushes
  std::uint64_t arena_capacity_blocks = 0;
  std::uint64_t arena_peak_blocks = 0; // high-water mark of one batch
  std::uint64_t arena_peak_bytes = 0;  // == peak_blocks * sizeof(StreamBlock)
  /// Order-sensitive fold over every emitted block, identical across
  /// thread counts, budgets, and batch splits by construction.
  std::uint64_t digest = 0;
};

/// Generates the planned world as a stream of StreamBlock batches.
class WorldStreamer {
 public:
  using Visitor = std::function<void(std::span<const StreamBlock>)>;

  explicit WorldStreamer(StreamConfig config);

  /// Blocks the plan will emit (exact; cheap — the plan is O(ases)).
  std::uint64_t planned_slash24s() const { return planned_slash24s_; }
  std::uint64_t planned_routed_slash24s() const { return planned_routed_; }

  /// Emits every block in ascending /24-index order, calling `visit` once
  /// per arena flush. The visitor borrows the span only for the duration
  /// of the call (the arena is reused). Pass a null visitor to measure
  /// pure generation throughput.
  StreamStats run(const Visitor& visit) const;

 private:
  struct AsPlan {
    std::uint64_t first_index = 0;  // first /24 of the gap+announced span
    std::uint32_t gap = 0;          // unrouted blocks before the announced
    std::uint32_t announced = 0;
    std::uint32_t active = 0;
    float users = 0;                // total client mass of this AS
    std::uint16_t country = 0;
    std::uint8_t type = 0;
    std::uint8_t bots = 0;

    std::uint64_t span() const { return std::uint64_t{gap} + announced; }
  };

  void fill_as(const AsPlan& as, std::uint32_t as_index,
               StreamBlock* out) const;

  StreamConfig config_;
  std::vector<CountryInfo> countries_;
  std::vector<AsPlan> plan_;
  std::vector<std::uint64_t> block_offsets_;  // prefix sums of span()
  std::uint64_t planned_slash24s_ = 0;
  std::uint64_t planned_routed_ = 0;
};

/// Current process resident-set size in bytes (Linux /proc/self/status;
/// 0 where unavailable). The bench's memory-budget gate reads this next
/// to the arena gauge.
std::size_t current_rss_bytes();

}  // namespace netclients::sim
