#pragma once

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "googledns/activity_model.h"
#include "sim/world.h"

namespace netclients::sim {

/// Bridges the generated world to the Google Public DNS front end: the
/// aggregate client query rate for (PoP, domain, scope block) is the sum of
/// per-/24 Google-DNS rates of blocks inside the scope block whose anycast
/// catchment is that PoP.
///
/// Rates are memoized per (pop, domain, block) — the probing campaign
/// revisits each combination dozens of times (redundant queries × loop
/// iterations).
class WorldActivityModel final : public googledns::ClientActivityModel {
 public:
  explicit WorldActivityModel(const World* world);

  double arrival_rate(anycast::PopId pop, const dns::DnsName& domain,
                      net::Prefix scope_block) const override;

  /// Diurnal-aware rate: the human component of a block oscillates with
  /// its local time of day (WorldConfig::diurnal_amplitude), bots stay
  /// flat. Aggregation across a scope block's /24s stays O(1) per probe:
  /// the per-block phases are folded into two memoized Fourier sums.
  double arrival_rate_at(anycast::PopId pop, const dns::DnsName& domain,
                         net::Prefix scope_block,
                         net::SimTime t) const override;

  /// Index of a probeable domain in world.domains(), or -1.
  int domain_index(const dns::DnsName& domain) const;

 private:
  struct RateParts {
    double human = 0;   // mean human rate
    double hcos = 0;    // Σ human_b · cos(phase_b)
    double hsin = 0;    // Σ human_b · sin(phase_b)
    double bot = 0;     // flat bot rate
  };
  const RateParts& parts(anycast::PopId pop, const dns::DnsName& domain,
                         net::Prefix scope_block) const;

  const World* world_;
  std::unordered_map<dns::DnsName, int> domain_index_;
  // Shared across concurrent PoP shards; each value is a pure function of
  // its key, so a lost insertion race recomputes the same parts.
  mutable std::shared_mutex memo_mu_;
  mutable std::unordered_map<std::uint64_t, RateParts> memo_;
};

}  // namespace netclients::sim
