#include "sim/activity.h"

#include <cmath>
#include <mutex>
#include <numbers>

#include "net/rng.h"
#include "net/sim_time.h"

namespace netclients::sim {
namespace {

constexpr double kOmega = 2.0 * std::numbers::pi / net::kDay;

/// Phase offset of a block's diurnal cycle: local time leads UTC by
/// longitude/15 hours, and the cycle peaks at the configured local hour.
double phase_of(const Slash24Block& block, double peak_local_hour) {
  const double local_lead_seconds = block.location.lon_deg / 360.0 * net::kDay;
  return kOmega * (local_lead_seconds - peak_local_hour * 3600.0);
}

}  // namespace

WorldActivityModel::WorldActivityModel(const World* world) : world_(world) {
  const auto& domains = world_->domains();
  for (std::size_t d = 0; d < domains.size(); ++d) {
    domain_index_.emplace(domains[d].name, static_cast<int>(d));
  }
}

int WorldActivityModel::domain_index(const dns::DnsName& domain) const {
  auto it = domain_index_.find(domain);
  return it == domain_index_.end() ? -1 : it->second;
}

const WorldActivityModel::RateParts& WorldActivityModel::parts(
    anycast::PopId pop, const dns::DnsName& domain,
    net::Prefix scope_block) const {
  static const RateParts kZero{};
  const int d = domain_index(domain);
  if (d < 0) return kZero;
  const std::uint64_t key = net::stable_seed(
      0x4A7Eu, static_cast<std::uint64_t>(pop), static_cast<std::uint64_t>(d),
      std::uint64_t{scope_block.base().value()},
      std::uint64_t{scope_block.length()});
  {
    std::shared_lock<std::shared_mutex> lock(memo_mu_);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
  }

  RateParts parts;
  const double peak = world_->config().diurnal_peak_local_hour;
  const auto [first, last] = world_->block_range(scope_block);
  const auto& blocks = world_->blocks();
  for (std::size_t b = first; b < last; ++b) {
    if (blocks[b].gdns_pop != pop) continue;
    const double human = world_->gdns_human_rate(blocks[b], d);
    parts.human += human;
    parts.bot += world_->gdns_bot_rate(blocks[b], d);
    if (human > 0 && world_->config().diurnal_amplitude > 0) {
      const double phase = phase_of(blocks[b], peak);
      parts.hcos += human * std::cos(phase);
      parts.hsin += human * std::sin(phase);
    }
  }
  std::unique_lock<std::shared_mutex> lock(memo_mu_);
  return memo_.emplace(key, parts).first->second;
}

double WorldActivityModel::arrival_rate(anycast::PopId pop,
                                        const dns::DnsName& domain,
                                        net::Prefix scope_block) const {
  const RateParts& p = parts(pop, domain, scope_block);
  return p.human + p.bot;
}

double WorldActivityModel::arrival_rate_at(anycast::PopId pop,
                                           const dns::DnsName& domain,
                                           net::Prefix scope_block,
                                           net::SimTime t) const {
  const RateParts& p = parts(pop, domain, scope_block);
  const double amplitude = world_->config().diurnal_amplitude;
  if (amplitude <= 0) return p.human + p.bot;
  // Σ_b h_b (1 + A cos(ωt + φ_b)) = H + A (cos ωt Σ h_b cos φ_b
  //                                        - sin ωt Σ h_b sin φ_b).
  const double modulated =
      p.human + amplitude * (std::cos(kOmega * t) * p.hcos -
                             std::sin(kOmega * t) * p.hsin);
  return std::max(0.0, modulated) + p.bot;
}

}  // namespace netclients::sim
