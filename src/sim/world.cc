#include "sim/world.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "net/rng.h"
#include "net/sim_time.h"

namespace netclients::sim {
namespace {

/// Per-type modelling parameters.
struct TypeParams {
  double users_per_active24;  // client density in active /24s
  double active_frac;         // mean fraction of announced /24s with clients
  double resolver_prob;       // runs its own resolver service
  double geo_quality;         // MaxMind accuracy (eyeballs locate well)
  double eyeball_weight;      // share multiplier when splitting country users
  bool bots;                  // client population is non-human
};

TypeParams params(AsType type) {
  // Densities follow the paper's aggregate ratio: ~4.2B users generate
  // client activity in ~8.9M /24s (≈475 users per active /24, NAT/CGN
  // included), and ~74% of routed /24s show client traffic.
  switch (type) {
    case AsType::kIspEyeball:
      return {450, 0.85, 0.92, 0.88, 1.0, false};
    case AsType::kMobileCarrier:
      return {900, 0.88, 0.88, 0.60, 0.55, false};
    case AsType::kEducation:
      return {150, 0.60, 0.80, 0.85, 0.050, false};
    case AsType::kEnterprise:
      return {60, 0.55, 0.32, 0.80, 0.022, false};
    case AsType::kGovernment:
      return {60, 0.55, 0.50, 0.80, 0.010, false};
    case AsType::kHostingCloud:
      return {30, 0.55, 0.55, 0.35, 0.006, true};
    case AsType::kContentCdn:
      return {60, 0.40, 0.40, 0.30, 0.001, true};
    case AsType::kTransit:
      return {40, 0.25, 0.30, 0.25, 0.0005, true};
    case AsType::kPublicDns:
      return {0, 0.0, 1.0, 0.30, 0.0, false};
  }
  return {};
}

asdb::AsCategory category_of(AsType type) {
  switch (type) {
    case AsType::kIspEyeball: return asdb::AsCategory::kIsp;
    case AsType::kMobileCarrier: return asdb::AsCategory::kMobileCarrier;
    case AsType::kHostingCloud: return asdb::AsCategory::kHostingCloud;
    case AsType::kEducation: return asdb::AsCategory::kEducation;
    case AsType::kEnterprise: return asdb::AsCategory::kEnterprise;
    case AsType::kGovernment: return asdb::AsCategory::kGovernment;
    case AsType::kContentCdn: return asdb::AsCategory::kContentCdn;
    case AsType::kTransit: return asdb::AsCategory::kTransit;
    case AsType::kPublicDns: return asdb::AsCategory::kHostingCloud;
  }
  return asdb::AsCategory::kOther;
}

AsType sample_type(net::Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.30) return AsType::kIspEyeball;
  if (u < 0.36) return AsType::kMobileCarrier;
  if (u < 0.53) return AsType::kHostingCloud;
  if (u < 0.61) return AsType::kEducation;
  if (u < 0.86) return AsType::kEnterprise;
  if (u < 0.90) return AsType::kGovernment;
  if (u < 0.92) return AsType::kContentCdn;
  return AsType::kTransit;
}

/// Uniform point within `radius_km` of a centroid (disk area measure).
net::LatLon jitter_location(net::LatLon centroid, double radius_km,
                            net::Rng& rng) {
  const double r = radius_km * std::sqrt(rng.uniform());
  return net::destination_point(centroid, rng.uniform(0, 360), r);
}

constexpr std::uint32_t kFirstSlash24 = 1u << 16;  // 1.0.0.0

}  // namespace

World World::generate(const WorldConfig& config) {
  World w;
  w.config_ = config;
  w.countries_ = builtin_countries();
  w.domains_ = default_domains();

  // --- authoritative zones for the probe-able domains ---------------------
  for (std::size_t d = 0; d < w.domains_.size(); ++d) {
    const DomainInfo& info = w.domains_[d];
    dnssrv::ZoneConfig zone;
    zone.name = info.name;
    zone.ttl_seconds = info.ttl_seconds;
    zone.supports_ecs = info.supports_ecs;
    zone.min_scope = info.min_scope;
    zone.max_scope = info.max_scope;
    zone.stop_probability = info.scope_stop_probability;
    zone.scope_drift_probability = info.scope_drift_probability;
    zone.seed = net::stable_seed(config.seed ^ 0x5C09Eu, d);
    w.auth_.add_zone(zone);
  }

  w.pops_ = std::make_unique<anycast::PopTable>(
      anycast::PopTable::google_default());
  w.catchment_ = std::make_unique<anycast::CatchmentModel>(
      w.pops_.get(), net::stable_seed(config.seed, 0xCA7C),
      config.catchment_detour_sigma);

  net::Rng rng(net::stable_seed(config.seed, 0x301D));

  // --- AS skeleton ---------------------------------------------------------
  const std::size_t num_countries = w.countries_.size();
  std::vector<double> country_users(num_countries);
  for (std::size_t c = 0; c < num_countries; ++c) {
    country_users[c] = w.countries_[c].internet_users * config.scale;
  }

  // Every country fields at least one AS, so tiny worlds can't shrink
  // below one-AS-per-country.
  const std::uint32_t target_ases = std::max<std::uint32_t>(
      config.num_ases(), static_cast<std::uint32_t>(num_countries));
  std::vector<std::uint32_t> ases_per_country(num_countries, 1);
  {
    double weight_total = 0;
    std::vector<double> weights(num_countries);
    for (std::size_t c = 0; c < num_countries; ++c) {
      weights[c] = std::pow(w.countries_[c].internet_users, 0.62);
      weight_total += weights[c];
    }
    std::uint32_t assigned = static_cast<std::uint32_t>(num_countries);
    const double spare =
        static_cast<double>(target_ases) - static_cast<double>(num_countries);
    for (std::size_t c = 0; c < num_countries; ++c) {
      const std::uint32_t extra =
          static_cast<std::uint32_t>(spare * weights[c] / weight_total);
      ases_per_country[c] += extra;
      assigned += extra;
    }
    // Largest-country catch-up for rounding remainder.
    while (assigned < target_ases) {
      ases_per_country[0] += 1;
      ++assigned;
    }
  }

  // Special ASes: Google Public DNS and a Cloudflare-style public resolver.
  {
    AsEntry google;
    google.asn = 15169;
    google.country = 0;  // US is first in the table
    google.type = AsType::kPublicDns;
    google.runs_resolver = true;
    w.google_as_ = 0;
    w.ases_.push_back(google);

    AsEntry other;
    other.asn = 13335;
    other.country = 0;
    other.type = AsType::kPublicDns;
    other.runs_resolver = true;
    w.other_public_as_ = 1;
    w.ases_.push_back(other);
  }

  std::uint32_t as_counter = 0;
  for (std::size_t c = 0; c < num_countries; ++c) {
    const CountryInfo& country = w.countries_[c];
    net::Rng crng(net::stable_seed(config.seed, 0xC0u, c));
    const std::uint32_t n = ases_per_country[c];
    std::vector<double> weights(n);
    std::vector<AsEntry> entries(n);
    double weight_total = 0;
    for (std::uint32_t k = 0; k < n; ++k) {
      AsEntry a;
      a.asn = 1000 + (as_counter++) * 7 +
              static_cast<std::uint32_t>(crng.below(5));
      a.country = static_cast<std::uint16_t>(c);
      // Every country gets at least one eyeball ISP; the rest sample the
      // global type mix.
      a.type = k == 0 ? AsType::kIspEyeball : sample_type(crng);
      const TypeParams tp = params(a.type);
      a.google_dns_share = std::clamp(
          country.google_dns_share + crng.normal(0, 0.08), 0.02, 0.85);
      a.other_public_share = std::clamp(
          config.other_public_dns_share + crng.normal(0, 0.04), 0.01, 0.30);
      a.chromium_share = std::clamp(
          config.chromium_share + crng.normal(0, 0.08), 0.20, 0.95);
      a.runs_resolver = crng.bernoulli(tp.resolver_prob);
      if (country.misroute_probability > 0 &&
          crng.bernoulli(country.misroute_probability) &&
          !country.misroute_cities.empty()) {
        const auto& city = country.misroute_cities[crng.below(
            country.misroute_cities.size())];
        if (auto pop = w.pops_->find_by_city(city)) a.forced_pop = *pop;
      }
      // Heavy-tailed share of the country's users: a Pareto head (the
      // handful of dominant eyeball ISPs) on top of a lognormal body that
      // stretches the tail across many orders of magnitude — the real AS
      // ecosystem has tens of thousands of ASes with only dozens of users,
      // which is exactly the population APNIC's ad sampling misses (§4).
      weights[k] = tp.eyeball_weight * crng.pareto(1.0, 0.75) *
                   crng.lognormal(0.0, 3.0);
      weight_total += weights[k];
      entries[k] = std::move(a);
    }
    for (std::uint32_t k = 0; k < n; ++k) {
      const TypeParams tp = params(entries[k].type);
      const double mass = country_users[c] * weights[k] / weight_total;
      if (tp.bots) {
        entries[k].bot_users = mass;
      } else {
        entries[k].users = mass;
      }
      w.total_users_ += entries[k].users;
      w.ases_.push_back(std::move(entries[k]));
    }
  }

  // --- Address plan + /24 ground truth ------------------------------------
  std::uint32_t cursor = kFirstSlash24;
  auto align_up = [](std::uint32_t value, std::uint32_t alignment) {
    return (value + alignment - 1) / alignment * alignment;
  };
  auto allocate_prefix = [&](std::uint32_t slash24s) {
    cursor = align_up(cursor, slash24s);
    const std::uint32_t base = cursor;
    cursor += slash24s;
    return base;
  };

  std::vector<double> google_pop_users(w.pops_->size(), 0.0);
  std::vector<double> google_pop_chromium(w.pops_->size(), 0.0);

  for (std::size_t as_index = 0; as_index < w.ases_.size(); ++as_index) {
    AsEntry& as = w.ases_[as_index];
    net::Rng arng(net::stable_seed(config.seed, 0xA5u, as_index));
    const TypeParams tp = params(as.type);
    const CountryInfo& country = w.countries_[as.country];

    if (as.type == AsType::kPublicDns) {
      // One /19 of infrastructure; front-end /24s are assigned per-PoP in
      // the resolver pass below.
      const std::uint32_t base = allocate_prefix(32);
      as.announced.push_back(
          net::Prefix(net::Ipv4Addr(base << 8), 19));
      for (std::uint32_t i = 0; i < 32; ++i) {
        Slash24Block block;
        block.index = base + i;
        block.as_index = static_cast<std::uint32_t>(as_index);
        block.country = as.country;
        block.routed = true;
        block.resolver_infra = true;
        block.location = jitter_location(country.centroid, 300, arng);
        block.gdns_pop = w.catchment_->pop_for(
            block.location, net::stable_seed(config.seed, block.index));
        w.blocks_.push_back(block);
      }
      continue;
    }

    const double clients = as.total_clients();
    std::uint32_t n_active = clients > 0 && tp.users_per_active24 > 0
        ? static_cast<std::uint32_t>(
              std::ceil(clients / tp.users_per_active24))
        : 0;
    std::uint32_t n_announced = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::ceil(n_active / std::max(0.05, tp.active_frac) *
                         arng.uniform(1.0, 1.35))));
    // Keep single ASes from swallowing the address plan.
    n_announced = std::min(n_announced, 1u << 14);
    n_active = std::min(n_active, n_announced);

    // Split the announced budget into CIDR prefixes (/16../24).
    std::uint32_t remaining = n_announced;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;  // base, size
    while (remaining > 0) {
      std::uint32_t k = 0;
      while ((2u << k) <= remaining && k < 8) ++k;  // largest 2^k <= remaining
      if (k > 0 && arng.bernoulli(0.4)) --k;        // fragmentation jitter
      const std::uint32_t size = std::min(remaining, 1u << k);
      const std::uint32_t base = allocate_prefix(1u << k);
      spans.emplace_back(base, 1u << k);
      as.announced.push_back(net::Prefix(net::Ipv4Addr(base << 8),
                                         static_cast<std::uint8_t>(24 - k)));
      remaining -= size;
    }

    // Which /24s get clients: fill a prefix-clustered selection. Walk the
    // spans, giving each span a Beta-flavored local density so activity is
    // clustered (some prefixes dense, some empty) — the property behind
    // Figure 4's wide per-AS spread.
    std::vector<std::uint32_t> active_indices;
    active_indices.reserve(n_active);
    {
      std::unordered_set<std::uint32_t> chosen;
      std::uint32_t still_needed = n_active;
      for (const auto& [base, size] : spans) {
        if (still_needed == 0) break;
        const double density =
            std::clamp(tp.active_frac * arng.uniform(0.3, 1.9), 0.02, 1.0);
        for (std::uint32_t i = 0; i < size && still_needed > 0; ++i) {
          if (arng.bernoulli(density)) {
            active_indices.push_back(base + i);
            chosen.insert(base + i);
            --still_needed;
          }
        }
      }
      // Top up deterministically if the random walk under-filled.
      for (const auto& [base, size] : spans) {
        if (still_needed == 0) break;
        for (std::uint32_t i = 0; i < size && still_needed > 0; ++i) {
          const std::uint32_t idx = base + i;
          if (chosen.insert(idx).second) {
            active_indices.push_back(idx);
            --still_needed;
          }
        }
      }
      std::sort(active_indices.begin(), active_indices.end());
    }

    // Client mass per active /24: lognormal weights.
    std::vector<double> block_weights(active_indices.size());
    double weight_total = 0;
    for (auto& bw : block_weights) {
      bw = arng.lognormal(0.0, 0.9);
      weight_total += bw;
    }

    std::size_t active_at = 0;
    const anycast::PopId forced = as.forced_pop;
    for (const auto& [base, size] : spans) {
      for (std::uint32_t i = 0; i < size; ++i) {
        Slash24Block block;
        block.index = base + i;
        block.as_index = static_cast<std::uint32_t>(as_index);
        block.country = as.country;
        block.routed = true;
        block.location =
            jitter_location(country.centroid, country.spread_km, arng);
        if (active_at < active_indices.size() &&
            active_indices[active_at] == block.index) {
          const double mass =
              clients * block_weights[active_at] / weight_total;
          if (tp.bots) {
            block.bot_users = static_cast<float>(mass);
          } else {
            block.users = static_cast<float>(mass);
          }
          ++active_at;
        }
        block.gdns_pop =
            forced != anycast::kNoPop
                ? forced
                : w.catchment_->pop_for(
                      block.location,
                      net::stable_seed(config.seed, block.index));
        // Resolver visibility flags (see Slash24Block docs).
        if (block.users > 0.5) {
          net::Rng brng(net::stable_seed(config.seed, 0xB10Cu, block.index));
          block.ms_visible_resolver = brng.bernoulli(0.10);
          block.resolver_recurses =
              block.ms_visible_resolver && brng.bernoulli(0.40);
          block.junk_emitter = brng.bernoulli(0.03);
        } else {
          net::Rng brng(net::stable_seed(config.seed, 0xB10Du, block.index));
          block.junk_emitter = brng.bernoulli(0.004);
        }
        w.blocks_.push_back(block);
      }
    }

    // Per-PoP Google Public DNS load contributions.
    for (std::size_t b = w.blocks_.size() - n_announced;
         b < w.blocks_.size(); ++b) {
      const Slash24Block& block = w.blocks_[b];
      if (block.clients() <= 0) continue;
      const double g_users = block.users * as.google_dns_share +
                             block.bot_users * 0.45;
      if (block.gdns_pop != anycast::kNoPop) {
        google_pop_users[static_cast<std::size_t>(block.gdns_pop)] += g_users;
        google_pop_chromium[static_cast<std::size_t>(block.gdns_pop)] +=
            block.users * as.google_dns_share * as.chromium_share;
      }
    }

    // Allocated-but-unrouted space interleaved with routed space (the
    // paper: 15.5M public /24s, ~12M routed).
    if (arng.bernoulli(0.5)) {
      const double ghost_ratio =
          config.unrouted_fraction / (1.0 - config.unrouted_fraction);
      std::uint32_t ghost = static_cast<std::uint32_t>(
          n_announced * ghost_ratio * 2.0 * arng.uniform(0.5, 1.5));
      while (ghost > 0) {
        std::uint32_t k = 0;
        while ((2u << k) <= ghost && k < 8) ++k;
        const std::uint32_t size = 1u << k;
        const std::uint32_t base = allocate_prefix(size);
        for (std::uint32_t i = 0; i < size; ++i) {
          Slash24Block block;
          block.index = base + i;
          block.as_index = Slash24Block::kNoAs;
          block.country = as.country;
          block.routed = false;
          block.location =
              jitter_location(country.centroid, country.spread_km, arng);
          w.blocks_.push_back(block);
        }
        ghost -= std::min(ghost, size);
      }
    }
  }
  w.space_end_ = cursor;

  assert(std::is_sorted(w.blocks_.begin(), w.blocks_.end(),
                        [](const Slash24Block& a, const Slash24Block& b) {
                          return a.index < b.index;
                        }));

  // --- Routeviews-style prefix→AS table -----------------------------------
  for (std::size_t as_index = 0; as_index < w.ases_.size(); ++as_index) {
    for (const net::Prefix& p : w.ases_[as_index].announced) {
      w.prefix2as_->insert(p, static_cast<std::uint32_t>(as_index));
    }
  }
  // ECS scopes follow routing aggregates (see set_topology docs).
  w.auth_.set_topology(w.prefix2as_.get());

  // --- Resolver pass -------------------------------------------------------
  // Upstream resolver selection for delegating ASes: the biggest resolver-
  // running ISP in the same country (fallback: biggest worldwide).
  std::vector<std::uint32_t> country_isp(num_countries, 0);
  std::uint32_t biggest_isp = 0;
  double biggest_users = -1;
  {
    std::vector<double> best(num_countries, -1);
    for (std::size_t i = 0; i < w.ases_.size(); ++i) {
      const AsEntry& as = w.ases_[i];
      if (!as.runs_resolver ||
          (as.type != AsType::kIspEyeball &&
           as.type != AsType::kMobileCarrier)) {
        continue;
      }
      if (as.users > best[as.country]) {
        best[as.country] = as.users;
        country_isp[as.country] = static_cast<std::uint32_t>(i);
      }
      if (as.users > biggest_users) {
        biggest_users = as.users;
        biggest_isp = static_cast<std::uint32_t>(i);
      }
    }
    for (std::size_t c = 0; c < num_countries; ++c) {
      if (best[c] < 0) country_isp[c] = biggest_isp;
    }
  }
  std::vector<std::uint32_t> hosting_ases;
  for (std::size_t i = 0; i < w.ases_.size(); ++i) {
    if (w.ases_[i].type == AsType::kHostingCloud) {
      hosting_ases.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Central-resolved user mass per resolver-owning AS.
  std::vector<double> central_users(w.ases_.size(), 0.0);
  std::vector<double> central_chromium(w.ases_.size(), 0.0);
  {
    // Users behind recursing block-level forwarders never reach centrals.
    std::vector<double> own_users(w.ases_.size(), 0.0);
    for (const Slash24Block& block : w.blocks_) {
      if (block.as_index == Slash24Block::kNoAs || block.resolver_recurses) {
        continue;
      }
      own_users[block.as_index] += block.users;
    }
    for (std::size_t i = 0; i < w.ases_.size(); ++i) {
      AsEntry& as = w.ases_[i];
      const double isp_share =
          std::max(0.0, 1.0 - as.google_dns_share - as.other_public_share);
      const double mass = own_users[i] * isp_share;
      const std::uint32_t owner =
          as.runs_resolver ? static_cast<std::uint32_t>(i)
                           : country_isp[as.country];
      as.upstream_resolver_as = owner;
      central_users[owner] += mass;
      central_chromium[owner] += mass * as.chromium_share;
    }
  }

  // Materialize central resolver endpoints.
  for (std::size_t i = 0; i < w.ases_.size(); ++i) {
    AsEntry& as = w.ases_[i];
    if (!as.runs_resolver || as.type == AsType::kPublicDns) continue;
    as.central_resolved_users = central_users[i];
    as.central_resolved_chromium_users = central_chromium[i];
    net::Rng rrng(net::stable_seed(config.seed, 0x2E50u, i));
    as.resolver_host_as = static_cast<std::uint32_t>(i);
    if (!hosting_ases.empty() && as.type != AsType::kIspEyeball &&
        as.type != AsType::kMobileCarrier &&
        rrng.bernoulli(config.resolver_outsourced_probability)) {
      as.resolver_host_as = hosting_ases[rrng.below(hosting_ases.size())];
    }
    int endpoints = 1 + (as.central_resolved_users > 5e3 ? 1 : 0) +
                    (as.central_resolved_users > 5e4 ? 1 : 0);
    const AsEntry& host = w.ases_[as.resolver_host_as];
    for (int e = 0; e < endpoints; ++e) {
      const net::Prefix& home =
          host.announced[static_cast<std::size_t>(e) % host.announced.size()];
      ResolverEndpoint ep;
      ep.address = net::Ipv4Addr(home.base().value() + 10 +
                                 static_cast<std::uint32_t>(e));
      ep.owner_as = static_cast<std::uint32_t>(i);
      ep.host_as = as.resolver_host_as;
      ep.served_users = as.central_resolved_users / endpoints;
      ep.served_chromium_users = as.central_resolved_chromium_users / endpoints;
      w.resolver_endpoints_.push_back(ep);
    }
  }

  // Google Public DNS per-PoP egress endpoints.
  {
    const AsEntry& google = w.ases_[w.google_as_];
    const std::uint32_t base24 = google.announced.front().first_slash24_index();
    std::uint32_t next = 0;
    for (const auto& site : w.pops_->sites()) {
      if (!site.active) continue;
      ResolverEndpoint ep;
      ep.address = net::Ipv4Addr(((base24 + next) << 8) + 1);
      ep.owner_as = w.google_as_;
      ep.host_as = w.google_as_;
      ep.sends_ecs = true;
      ep.pop = site.id;
      ep.served_users =
          google_pop_users[static_cast<std::size_t>(site.id)];
      ep.served_chromium_users =
          google_pop_chromium[static_cast<std::size_t>(site.id)];
      w.resolver_endpoints_.push_back(ep);
      ++next;
    }
  }

  // Other-public resolver endpoints: four shards worldwide, no ECS.
  {
    const AsEntry& other = w.ases_[w.other_public_as_];
    double other_users = 0;
    double other_chromium = 0;
    for (const Slash24Block& block : w.blocks_) {
      if (block.as_index == Slash24Block::kNoAs || block.users <= 0) continue;
      const AsEntry& as = w.ases_[block.as_index];
      other_users += block.users * as.other_public_share;
      other_chromium +=
          block.users * as.other_public_share * as.chromium_share;
    }
    const std::uint32_t base24 = other.announced.front().first_slash24_index();
    for (int shard = 0; shard < 4; ++shard) {
      ResolverEndpoint ep;
      ep.address = net::Ipv4Addr(
          ((base24 + 4u + static_cast<std::uint32_t>(shard)) << 8) + 1);
      ep.owner_as = w.other_public_as_;
      ep.host_as = w.other_public_as_;
      ep.served_users = other_users / 4;
      ep.served_chromium_users = other_chromium / 4;
      w.resolver_endpoints_.push_back(ep);
    }
  }

  // --- Observation databases ----------------------------------------------
  for (const Slash24Block& block : w.blocks_) {
    net::Rng grng(net::stable_seed(config.seed, 0x6E0u, block.index));
    const double quality = block.as_index == Slash24Block::kNoAs
                               ? 0.25
                               : params(w.ases_[block.as_index].type)
                                         .geo_quality;
    w.geodb_.add(block.index,
                 geo::GeoDatabase::observe(block.location, block.country,
                                           quality, grng));
  }
  {
    net::Rng drng(net::stable_seed(config.seed, 0xA5DBu));
    for (const AsEntry& as : w.ases_) {
      if (drng.bernoulli(0.927)) {
        w.asdb_.add(as.asn, category_of(as.type));
      }
    }
  }
  return w;
}

const Slash24Block* World::block_at(std::uint32_t slash24_index) const {
  auto it = std::lower_bound(
      blocks_.begin(), blocks_.end(), slash24_index,
      [](const Slash24Block& b, std::uint32_t idx) { return b.index < idx; });
  if (it == blocks_.end() || it->index != slash24_index) return nullptr;
  return &*it;
}

std::pair<std::size_t, std::size_t> World::block_range(
    net::Prefix prefix) const {
  const std::uint32_t first = prefix.first_slash24_index();
  const std::uint32_t last =
      first + static_cast<std::uint32_t>(prefix.slash24_count());
  auto lo = std::lower_bound(
      blocks_.begin(), blocks_.end(), first,
      [](const Slash24Block& b, std::uint32_t idx) { return b.index < idx; });
  auto hi = std::lower_bound(
      blocks_.begin(), blocks_.end(), last,
      [](const Slash24Block& b, std::uint32_t idx) { return b.index < idx; });
  return {static_cast<std::size_t>(lo - blocks_.begin()),
          static_cast<std::size_t>(hi - blocks_.begin())};
}

double World::country_domain_multiplier(std::uint16_t country,
                                        int domain_index) const {
  return countries_[country].domain_multiplier[domain_index];
}

double World::gdns_human_rate(const Slash24Block& block,
                              int domain_index) const {
  if (block.as_index == Slash24Block::kNoAs) return 0;
  const AsEntry& as = ases_[block.as_index];
  const DomainInfo& domain = domains_[static_cast<std::size_t>(domain_index)];
  const double mult = country_domain_multiplier(block.country, domain_index);
  return block.users * as.google_dns_share *
         domain.queries_per_user_per_day * mult / net::kDay;
}

double World::gdns_bot_rate(const Slash24Block& block,
                            int domain_index) const {
  if (block.as_index == Slash24Block::kNoAs) return 0;
  const DomainInfo& domain = domains_[static_cast<std::size_t>(domain_index)];
  // Bots live disproportionately on cloud-friendly resolvers and hammer
  // CDN-ish domains; humans follow the country's popularity profile.
  const double bot_mult = domain.is_microsoft_cdn ? 1.0 : 0.25;
  return block.bot_users * 0.45 * domain.queries_per_user_per_day *
         bot_mult / net::kDay;
}

double World::total_domain_rate(const Slash24Block& block,
                                int domain_index) const {
  if (block.as_index == Slash24Block::kNoAs) return 0;
  const DomainInfo& domain = domains_[static_cast<std::size_t>(domain_index)];
  const double mult = country_domain_multiplier(block.country, domain_index);
  const double human =
      block.users * domain.queries_per_user_per_day * mult;
  const double bot_mult = domain.is_microsoft_cdn ? 1.0 : 0.25;
  const double bot =
      block.bot_users * domain.queries_per_user_per_day * bot_mult;
  return (human + bot) / net::kDay;
}

}  // namespace netclients::sim
