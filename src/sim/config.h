#pragma once

#include <cstdint>

namespace netclients::sim {

/// Generation parameters for the synthetic Internet. All knobs have
/// defaults chosen so the pipelines reproduce the *shape* of the paper's
/// results (see EXPERIMENTS.md); `scale` shrinks the world uniformly so the
/// full campaign runs in seconds.
struct WorldConfig {
  std::uint64_t seed = 42;

  /// Fraction of the real Internet's size: the paper's world has ~15.5M
  /// public /24s, ~12M routed, and ~66.8K ASes seen by at least one
  /// technique. Counts scale linearly; percentages are scale-free.
  double scale = 1.0 / 32;

  // ---- Population / browsers -------------------------------------------
  double chromium_share = 0.72;  // of web users (Chrome+Edge+Brave+Opera)
  double browser_starts_per_user_per_day = 2.0;
  double network_changes_per_user_per_day = 0.7;  // also trigger probes
  double sessions_per_user_per_day = 9.0;

  // ---- Resolver ecosystem ----------------------------------------------
  /// Default country-level share of clients using Google Public DNS
  /// (overridden per country, then jittered per AS).
  double google_dns_share = 0.30;
  /// Share using some other public resolver (Cloudflare-like, no ECS
  /// pass-through, invisible to cache probing).
  double other_public_dns_share = 0.08;
  /// Probability that an AS that runs "its own" resolver actually hosts it
  /// in a third-party hosting AS (makes DNS logs attribute activity to
  /// ASes without eyeballs — one cause of the low cache∩logs overlap).
  double resolver_outsourced_probability = 0.12;

  // ---- CDN / validation-side activity ----------------------------------
  double ms_cdn_http_per_user_per_day = 9.0;
  double ms_cdn_dns_per_user_per_day = 1.6;

  // ---- Temporal structure -------------------------------------------------
  /// Relative amplitude of the human diurnal cycle: client query rates
  /// swing by ±amplitude around the mean, peaking in the local evening.
  /// Bots are flat. Defaults to 0 (stationary) — the §6 temporal-signal
  /// experiments (bench_diurnal) turn it on explicitly.
  double diurnal_amplitude = 0.0;
  double diurnal_peak_local_hour = 20.0;

  // ---- Anycast ----------------------------------------------------------
  double catchment_detour_sigma = 0.22;

  // ---- Address plan ------------------------------------------------------
  /// Fraction of allocated /24 space that is not announced (the paper: 15.5M
  /// public vs ~12M routed).
  double unrouted_fraction = 0.22;

  // ---- Derived magnitudes (at scale = 1) ---------------------------------
  std::uint32_t ases_at_full_scale = 66800;
  double world_users_at_full_scale = 4.2e9;

  std::uint32_t num_ases() const {
    auto n = static_cast<std::uint32_t>(ases_at_full_scale * scale);
    return n < 16 ? 16 : n;
  }
};

}  // namespace netclients::sim
