#include "sim/ditl.h"

#include <array>
#include <string>
#include <vector>

#include "net/rng.h"
#include "net/sim_time.h"
#include "net/zipf.h"

namespace netclients::sim {
namespace {

std::string random_signature_name(net::Rng& rng) {
  // Chromium: 7-15 random lowercase letters, single label [35].
  const std::size_t len = 7 + rng.below(9);
  std::string name(len, 'a');
  for (auto& c : name) c = static_cast<char>('a' + rng.below(26));
  return name;
}

std::string random_word(net::Rng& rng, std::size_t min_len,
                        std::size_t max_len) {
  const std::size_t len = min_len + rng.below(max_len - min_len + 1);
  std::string word(len, 'a');
  for (auto& c : word) c = static_cast<char>('a' + rng.below(26));
  return word;
}

struct ProbeSource {
  std::uint32_t address = 0;
  double chromium_per_day = 0;  // signature probes per day (ground truth)
  double junk_signature_per_day = 0;  // signature-shaped, not Chromium
};

std::vector<ProbeSource> enumerate_sources(const World& world) {
  const WorldConfig& cfg = world.config();
  const double probes_per_chromium_user =
      (cfg.browser_starts_per_user_per_day +
       cfg.network_changes_per_user_per_day) *
      3.0;  // Chromium issues three probes per trigger
  std::vector<ProbeSource> sources;
  for (const ResolverEndpoint& ep : world.resolver_endpoints()) {
    ProbeSource s;
    s.address = ep.address.value();
    s.chromium_per_day = ep.served_chromium_users * probes_per_chromium_user;
    sources.push_back(s);
  }
  for (const Slash24Block& block : world.blocks()) {
    if (block.resolver_recurses && block.as_index != Slash24Block::kNoAs) {
      const AsEntry& as = world.ases()[block.as_index];
      const double isp_share = std::max(
          0.0, 1.0 - as.google_dns_share - as.other_public_share);
      ProbeSource s;
      s.address = (block.index << 8) + 1;
      s.chromium_per_day = block.users * isp_share * as.chromium_share *
                           probes_per_chromium_user;
      sources.push_back(s);
    }
    if (block.junk_emitter) {
      net::Rng rng(net::stable_seed(world.config().seed, 0x17E4u,
                                    block.index));
      ProbeSource s;
      s.address = (block.index << 8) + 200;
      s.junk_signature_per_day = rng.lognormal(std::log(40.0), 0.8);
      sources.push_back(s);
    }
  }
  return sources;
}

}  // namespace

std::unordered_map<std::uint32_t, double> chromium_ground_truth(
    const World& world) {
  std::unordered_map<std::uint32_t, double> truth;
  for (const ProbeSource& s : enumerate_sources(world)) {
    if (s.chromium_per_day > 0) truth[s.address] += s.chromium_per_day;
  }
  return truth;
}

DitlStats generate_ditl(
    const World& world, const roots::RootSystem& roots,
    const DitlOptions& options,
    const std::function<void(const roots::TraceRecord&)>& sink) {
  DitlStats stats;
  const double period = options.days * net::kDay;

  std::array<bool, 26> usable{};
  for (char letter : roots.usable_ditl_letters()) {
    usable[static_cast<std::size_t>(letter - 'a')] = true;
  }

  auto emit = [&](std::uint32_t source, const std::string& label_or_name,
                  bool has_tld, net::Rng& rng, std::uint64_t nonce,
                  bool is_chromium) {
    const char letter = roots.pick_letter(source, nonce);
    if (!usable[static_cast<std::size_t>(letter - 'a')]) {
      ++stats.suppressed;
      return;
    }
    roots::TraceRecord rec;
    rec.source = net::Ipv4Addr(source);
    rec.root_letter = letter;
    rec.qtype = dns::RecordType::kA;
    rec.timestamp = rng.uniform(0.0, period);
    auto name = dns::DnsName::parse(label_or_name);
    if (!name) return;
    rec.qname = std::move(*name);
    if (is_chromium || !has_tld) {
      ++stats.chromium_probes;
    } else {
      ++stats.background;
    }
    sink(rec);
  };

  // --- Signature probes (Chromium + shaped junk) per source ---------------
  const auto sources = enumerate_sources(world);
  for (std::size_t si = 0; si < sources.size(); ++si) {
    const ProbeSource& s = sources[si];
    net::Rng rng(net::stable_seed(options.seed, 0xC4A0u, s.address));
    const double expected = (s.chromium_per_day + s.junk_signature_per_day) *
                            options.days * options.sample_rate;
    const std::uint64_t n = rng.poisson(expected);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::string name = random_signature_name(rng);
      emit(s.address, name, /*has_tld=*/false, rng, i, /*is_chromium=*/true);
    }
  }

  // --- Dictionary typo junk: repeated single labels ------------------------
  // A shared vocabulary queried over and over: the names the collision
  // threshold exists to reject.
  {
    net::Rng vocab_rng(net::stable_seed(options.seed, 0x70C4u));
    std::vector<std::string> vocabulary;
    vocabulary.reserve(3000);
    for (int i = 0; i < 3000; ++i) {
      vocabulary.push_back(random_word(vocab_rng, 3, 14));
    }
    net::ZipfSampler zipf(vocabulary.size(), 1.05);
    for (const ResolverEndpoint& ep : world.resolver_endpoints()) {
      net::Rng rng(net::stable_seed(options.seed, 0x7090u,
                                    ep.address.value()));
      const double expected = ep.served_users *
                              options.typo_queries_per_user_per_day *
                              options.days * options.sample_rate;
      const std::uint64_t n = rng.poisson(expected);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::string& word = vocabulary[zipf.sample(rng)];
        emit(ep.address.value(), word, /*has_tld=*/false, rng, i, false);
      }
    }

    // --- Legitimate TLD traffic (multi-label; never matches) --------------
    const auto& tlds = roots.tlds();
    for (const ResolverEndpoint& ep : world.resolver_endpoints()) {
      net::Rng rng(net::stable_seed(options.seed, 0x1E61u,
                                    ep.address.value()));
      const double expected = ep.served_users *
                              options.legit_tld_queries_per_user_per_day *
                              options.days * options.sample_rate;
      const std::uint64_t n = rng.poisson(expected);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::string name = vocabulary[zipf.sample(rng)] + "." +
                                 tlds[rng.below(tlds.size())];
        emit(ep.address.value(), name, /*has_tld=*/true, rng, i, false);
      }
    }
  }

  // --- DGA malware: random-looking names, heavily repeated ----------------
  {
    const auto& endpoints = world.resolver_endpoints();
    if (!endpoints.empty()) {
      net::Rng rng(net::stable_seed(options.seed, 0xD6A0u));
      const int names_per_family_day = 30;
      for (int fam = 0; fam < options.dga_families; ++fam) {
        for (int day = 0; day < static_cast<int>(options.days + 0.999);
             ++day) {
          for (int nm = 0; nm < names_per_family_day; ++nm) {
            const std::string name = random_signature_name(rng);
            const std::uint64_t occurrences = rng.poisson(
                options.dga_queries_per_name * options.sample_rate);
            for (std::uint64_t i = 0; i < occurrences; ++i) {
              const ResolverEndpoint& ep =
                  endpoints[rng.below(endpoints.size())];
              emit(ep.address.value(), name, /*has_tld=*/false, rng, i,
                   false);
            }
          }
        }
      }
    }
  }
  return stats;
}

}  // namespace netclients::sim
