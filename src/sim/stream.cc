#include "sim/stream.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/exec/exec.h"
#include "net/rng.h"
#include "sim/world.h"

namespace netclients::sim {
namespace {

constexpr std::uint32_t kFirstSlash24 = 1u << 16;  // 1.0.0.0
constexpr std::uint32_t kMaxAnnouncedPerAs = 1u << 14;

/// RNG stream tags: the plan and the fill draw from *different* per-AS
/// streams so batch boundaries can never perturb either.
constexpr std::uint64_t kPlanTag = 0x57AE4C0DEull;
constexpr std::uint64_t kFillTag = 0x57AEF111ull;

/// Streaming counterpart of world.cc's TypeParams (same aggregate shape:
/// ~475 users per active /24, ~74% of routed /24s active).
struct StreamTypeParams {
  double users_per_active24;
  double active_frac;
  bool bots;
};

StreamTypeParams stream_params(AsType type) {
  switch (type) {
    case AsType::kIspEyeball:
      return {450, 0.85, false};
    case AsType::kMobileCarrier:
      return {900, 0.88, false};
    case AsType::kEducation:
      return {150, 0.60, false};
    case AsType::kEnterprise:
      return {60, 0.55, false};
    case AsType::kGovernment:
      return {60, 0.55, false};
    case AsType::kHostingCloud:
      return {30, 0.55, true};
    case AsType::kContentCdn:
      return {60, 0.40, true};
    case AsType::kTransit:
      return {40, 0.25, true};
    case AsType::kPublicDns:
      return {0, 0.0, false};
  }
  return {};
}

AsType sample_stream_type(net::Rng& rng) {
  // Same global mix as world.cc's sample_type.
  const double u = rng.uniform();
  if (u < 0.30) return AsType::kIspEyeball;
  if (u < 0.36) return AsType::kMobileCarrier;
  if (u < 0.53) return AsType::kHostingCloud;
  if (u < 0.61) return AsType::kEducation;
  if (u < 0.86) return AsType::kEnterprise;
  if (u < 0.90) return AsType::kGovernment;
  if (u < 0.92) return AsType::kContentCdn;
  return AsType::kTransit;
}

std::uint64_t block_hash(const StreamBlock& block) {
  std::uint64_t lo, hi;
  static_assert(sizeof(StreamBlock) == 2 * sizeof(std::uint64_t));
  std::memcpy(&lo, &block, sizeof(lo));
  std::memcpy(&hi, reinterpret_cast<const char*>(&block) + sizeof(lo),
              sizeof(hi));
  return net::hash_combine(net::mix64(lo), hi);
}

}  // namespace

WorldStreamer::WorldStreamer(StreamConfig config)
    : config_(config), countries_(builtin_countries()) {
  const std::uint32_t ases = config_.derived_ases();
  plan_.resize(ases);

  // Country sampling weights (cumulative internet-user mass).
  std::vector<double> country_cum(countries_.size());
  double country_total = 0;
  for (std::size_t c = 0; c < countries_.size(); ++c) {
    country_total += countries_[c].internet_users;
    country_cum[c] = country_total;
  }

  // Per-AS announced-space weights: the same heavy tail world.cc uses
  // (Pareto head over a lognormal body), drawn from each AS's own plan
  // stream so the plan is order- and thread-independent by construction.
  std::vector<double> weights(ases);
  double weight_total = 0;
  for (std::uint32_t k = 0; k < ases; ++k) {
    net::Rng rng = core::exec::shard_rng(config_.seed ^ kPlanTag, k);
    weights[k] = rng.pareto(1.0, 0.75) * rng.lognormal(0.0, 2.0);
    weight_total += weights[k];
  }

  const double target = static_cast<double>(config_.target_routed_slash24s);
  std::uint64_t announced_total = 0;
  for (std::uint32_t k = 0; k < ases; ++k) {
    const auto announced = static_cast<std::uint32_t>(std::clamp<double>(
        static_cast<double>(std::llround(target * weights[k] / weight_total)),
        1.0, kMaxAnnouncedPerAs));
    plan_[k].announced = announced;
    announced_total += announced;
  }
  // The per-AS cap clips the heavy tail, which can leave the plan well
  // short of the target; hand the deficit to ASes with headroom,
  // proportionally, in one deterministic pass.
  if (announced_total < config_.target_routed_slash24s) {
    const std::uint64_t deficit =
        config_.target_routed_slash24s - announced_total;
    std::uint64_t headroom_total = 0;
    for (const AsPlan& as : plan_) {
      headroom_total += kMaxAnnouncedPerAs - as.announced;
    }
    if (headroom_total > 0) {
      for (AsPlan& as : plan_) {
        const std::uint64_t headroom = kMaxAnnouncedPerAs - as.announced;
        as.announced += static_cast<std::uint32_t>(
            std::min<std::uint64_t>(headroom,
                                    deficit * headroom / headroom_total));
      }
    }
  }

  // Second per-AS plan pass: identity, activity, and the unrouted gap
  // preceding each AS's announced span. Drawn from a forked stream so the
  // weight draws above keep their own positions.
  const double uf = std::clamp(config_.unrouted_fraction, 0.0, 0.9);
  const double gap_ratio = uf / (1.0 - uf);
  for (std::uint32_t k = 0; k < ases; ++k) {
    AsPlan& as = plan_[k];
    net::Rng rng =
        core::exec::shard_rng(config_.seed ^ kPlanTag ^ 0x1D0ull, k);
    const AsType type = sample_stream_type(rng);
    const StreamTypeParams tp = stream_params(type);
    as.type = static_cast<std::uint8_t>(type);
    as.bots = tp.bots ? 1 : 0;
    // Country sampled by internet-user mass.
    const double pick = rng.uniform() * country_total;
    const auto c = static_cast<std::size_t>(
        std::lower_bound(country_cum.begin(), country_cum.end(), pick) -
        country_cum.begin());
    as.country = static_cast<std::uint16_t>(
        c >= countries_.size() ? countries_.size() - 1 : c);
    as.gap = static_cast<std::uint32_t>(
        std::llround(as.announced * gap_ratio * rng.uniform(0.7, 1.3)));
    as.active = std::min(
        as.announced,
        static_cast<std::uint32_t>(std::ceil(
            as.announced * tp.active_frac * rng.uniform(0.6, 1.2))));
    as.users = static_cast<float>(as.active * tp.users_per_active24 *
                                  rng.uniform(0.7, 1.3));
  }

  // Address layout: one prefix-sum walk pins every AS's span up front, so
  // the emit phase can fill any batch of ASes independently.
  block_offsets_.resize(static_cast<std::size_t>(ases) + 1);
  std::uint64_t cursor = kFirstSlash24;
  planned_routed_ = 0;
  for (std::uint32_t k = 0; k < ases; ++k) {
    block_offsets_[k] = cursor - kFirstSlash24;
    plan_[k].first_index = cursor;
    cursor += plan_[k].span();
    planned_routed_ += plan_[k].announced;
  }
  block_offsets_[ases] = cursor - kFirstSlash24;
  planned_slash24s_ = cursor - kFirstSlash24;
}

void WorldStreamer::fill_as(const AsPlan& as, std::uint32_t as_index,
                            StreamBlock* out) const {
  // Unrouted gap first: allocated-but-unannounced space.
  for (std::uint32_t g = 0; g < as.gap; ++g) {
    StreamBlock block;
    block.index = static_cast<std::uint32_t>(as.first_index + g);
    block.as_index = StreamBlock::kNoAs;
    block.country = as.country;
    out[g] = block;
  }

  net::Rng rng = core::exec::shard_rng(config_.seed ^ kFillTag, as_index);
  StreamBlock* announced = out + as.gap;
  const auto first_announced =
      static_cast<std::uint32_t>(as.first_index + as.gap);

  // Pass 1: base fields plus a density-walk active selection (clustered,
  // like world.cc's span walk), topped up deterministically to exactly
  // `as.active`.
  const double density =
      as.announced > 0
          ? std::clamp(static_cast<double>(as.active) / as.announced *
                           rng.uniform(0.6, 1.6),
                       0.02, 1.0)
          : 0.0;
  std::uint32_t still_needed = as.active;
  for (std::uint32_t i = 0; i < as.announced; ++i) {
    StreamBlock block;
    block.index = first_announced + i;
    block.as_index = as_index;
    block.country = as.country;
    block.as_type = as.type;
    block.flags = StreamBlock::kRouted;
    if (still_needed > 0 && rng.bernoulli(density)) {
      block.flags |= StreamBlock::kActive;
      --still_needed;
    }
    announced[i] = block;
  }
  for (std::uint32_t i = 0; i < as.announced && still_needed > 0; ++i) {
    if (!(announced[i].flags & StreamBlock::kActive)) {
      announced[i].flags |= StreamBlock::kActive;
      --still_needed;
    }
  }

  // Pass 2: split the AS's client mass across its active blocks with
  // lognormal weights (drawn in ascending block order — deterministic).
  std::vector<float> block_weights;
  block_weights.reserve(as.active);
  double weight_total = 0;
  for (std::uint32_t i = 0; i < as.announced; ++i) {
    if (announced[i].flags & StreamBlock::kActive) {
      const auto w = static_cast<float>(rng.lognormal(0.0, 0.9));
      block_weights.push_back(w);
      weight_total += w;
    }
  }
  std::size_t at = 0;
  for (std::uint32_t i = 0; i < as.announced; ++i) {
    if (!(announced[i].flags & StreamBlock::kActive)) continue;
    announced[i].users =
        weight_total > 0
            ? static_cast<float>(as.users * block_weights[at] / weight_total)
            : 0.0f;
    if (as.bots) announced[i].flags |= StreamBlock::kBots;
    ++at;
  }
}

StreamStats WorldStreamer::run(const Visitor& visit) const {
  StreamStats stats;
  stats.ases = plan_.size();

  std::uint64_t max_span = 1;
  for (const AsPlan& as : plan_) max_span = std::max(max_span, as.span());

  // The arena is the only world-size-proportional allocation: budget
  // bytes worth of blocks, floored at one maximal AS span (progress
  // guarantee), capped at the whole world (tiny worlds under huge
  // budgets don't over-allocate).
  std::uint64_t capacity = std::max<std::uint64_t>(
      config_.memory_budget_bytes / sizeof(StreamBlock), max_span);
  capacity = std::min<std::uint64_t>(capacity, planned_slash24s_);
  capacity = std::max<std::uint64_t>(capacity, max_span);
  stats.arena_capacity_blocks = capacity;
  std::vector<StreamBlock> arena(static_cast<std::size_t>(capacity));

  std::size_t as_at = 0;
  while (as_at < plan_.size()) {
    // Greedy batch: as many consecutive ASes as fit the arena.
    std::size_t batch_end = as_at;
    std::uint64_t batch_blocks = 0;
    while (batch_end < plan_.size() &&
           batch_blocks + plan_[batch_end].span() <= capacity) {
      batch_blocks += plan_[batch_end].span();
      ++batch_end;
    }
    if (batch_end == as_at) {  // unreachable: capacity >= max_span
      batch_blocks = plan_[as_at].span();
      batch_end = as_at + 1;
    }

    // Parallel fill: each AS writes its own pre-computed arena slice.
    // Slices are disjoint; every draw comes from the AS's own fill
    // stream, so the batch split and the worker schedule are invisible
    // in the output.
    const std::uint64_t batch_base = block_offsets_[as_at];
    core::exec::parallel_map(
        batch_end - as_at, config_.threads, [&](std::size_t k) {
          const std::size_t as_index = as_at + k;
          fill_as(plan_[as_index], static_cast<std::uint32_t>(as_index),
                  arena.data() + (block_offsets_[as_index] - batch_base));
          return 0;
        });

    // Serial fold in emission order: digest + tallies, then the visitor.
    const std::span<const StreamBlock> batch(
        arena.data(), static_cast<std::size_t>(batch_blocks));
    for (const StreamBlock& block : batch) {
      stats.digest = net::hash_combine(stats.digest, block_hash(block));
      if (block.routed()) ++stats.routed_slash24s;
      if (block.active()) {
        ++stats.active_slash24s;
        stats.total_users += block.users;
      }
    }
    stats.slash24s += batch_blocks;
    stats.arena_peak_blocks = std::max(stats.arena_peak_blocks, batch_blocks);
    ++stats.batches;
    if (visit) visit(batch);

    as_at = batch_end;
  }
  stats.arena_peak_bytes = stats.arena_peak_blocks * sizeof(StreamBlock);

  obs::Registry& registry = obs::Registry::global();
  registry.gauge("sim.stream.slash24s")
      .set(static_cast<double>(stats.slash24s));
  registry.gauge("sim.stream.routed")
      .set(static_cast<double>(stats.routed_slash24s));
  registry.gauge("sim.stream.arena_peak_bytes")
      .set(static_cast<double>(stats.arena_peak_bytes));
  registry.gauge("sim.stream.arena_flushes")
      .set(static_cast<double>(stats.batches));
  return stats;
}

std::size_t current_rss_bytes() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::size_t rss = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
      rss = static_cast<std::size_t>(kb) * 1024;
      break;
    }
  }
  std::fclose(status);
  return rss;
}

}  // namespace netclients::sim
