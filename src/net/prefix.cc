#include "net/prefix.h"

#include <charconv>

namespace netclients::net {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  unsigned length = 0;
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(),
                      length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      length > 32) {
    return std::nullopt;
  }
  return Prefix(*addr, static_cast<std::uint8_t>(length));
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace netclients::net
