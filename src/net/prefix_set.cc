#include "net/prefix_set.h"

namespace netclients::net {

bool DisjointPrefixSet::insert(Prefix prefix) {
  if (covers(prefix)) return false;
  // Remove all stored prefixes nested inside the new one. They start at or
  // after prefix.base() and end at or before prefix.last_address().
  auto it = entries_.lower_bound(prefix.base().value());
  while (it != entries_.end() &&
         it->first <= prefix.last_address().value()) {
    slash24_total_ -= it->second.slash24_count();
    it = entries_.erase(it);
  }
  entries_.emplace(prefix.base().value(), prefix);
  slash24_total_ += prefix.slash24_count();
  return true;
}

bool DisjointPrefixSet::covers(Prefix prefix) const {
  auto it = entries_.upper_bound(prefix.base().value());
  if (it == entries_.begin()) return false;
  --it;
  return it->second.contains(prefix);
}

bool DisjointPrefixSet::intersects(Prefix prefix) const {
  if (covers(prefix)) return true;
  auto it = entries_.lower_bound(prefix.base().value());
  return it != entries_.end() &&
         it->first <= prefix.last_address().value();
}

std::vector<Prefix> DisjointPrefixSet::prefixes() const {
  std::vector<Prefix> out;
  out.reserve(entries_.size());
  for (const auto& [base, p] : entries_) out.push_back(p);
  return out;
}

}  // namespace netclients::net
