#pragma once

// Shared CRC-32 (IEEE 802.3, reflected 0xEDB88320 polynomial) used by the
// snapshot frame checksums and the trace-corpus manifest. Kept header-only
// so leaf libraries (roots, snapshot) can use it without a new link edge.

#include <array>
#include <cstdint>
#include <string_view>

namespace netclients::net {

inline std::uint32_t crc32(std::string_view bytes) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : bytes) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace netclients::net
