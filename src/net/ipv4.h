#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace netclients::net {

/// An IPv4 address stored in host byte order.
///
/// A thin value type: cheap to copy, totally ordered, hashable. All
/// arithmetic in the library (prefix containment, /24 indexing) is done on
/// the host-order 32-bit value.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}

  /// Builds an address from four dotted-quad octets.
  static constexpr Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b,
                                        std::uint8_t c, std::uint8_t d) {
    return Ipv4Addr((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad notation ("192.0.2.1"). Returns nullopt on any
  /// syntax error (missing octets, values > 255, trailing junk).
  static std::optional<Ipv4Addr> parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }

  /// Index of the /24 block containing this address (value >> 8).
  constexpr std::uint32_t slash24_index() const { return value_ >> 8; }

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace netclients::net

template <>
struct std::hash<netclients::net::Ipv4Addr> {
  std::size_t operator()(netclients::net::Ipv4Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
