#include "net/ipv4.h"

#include <array>
#include <charconv>

namespace netclients::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
    auto [next, ec] = std::from_chars(p, end, octets[i]);
    if (ec != std::errc{} || next == p || octets[i] > 255) return std::nullopt;
    p = next;
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr::from_octets(static_cast<std::uint8_t>(octets[0]),
                               static_cast<std::uint8_t>(octets[1]),
                               static_cast<std::uint8_t>(octets[2]),
                               static_cast<std::uint8_t>(octets[3]));
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xFF);
  }
  return out;
}

}  // namespace netclients::net
