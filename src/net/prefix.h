#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.h"

namespace netclients::net {

/// An IPv4 CIDR prefix in canonical form (host bits zeroed).
///
/// The default-constructed prefix is 0.0.0.0/0 (the whole address space).
/// Ordering is lexicographic on (base address, length), which places a
/// covering prefix immediately before its first covered sub-prefix — the
/// property the disjoint-set and trie code relies on.
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Canonicalizes: any host bits set below `length` are masked away.
  constexpr Prefix(Ipv4Addr base, std::uint8_t length)
      : base_(Ipv4Addr(base.value() & mask(length))), length_(length) {
    assert(length <= 32);
  }

  /// The /24 containing `addr`.
  static constexpr Prefix slash24_of(Ipv4Addr addr) {
    return Prefix(addr, 24);
  }

  /// The /24 with the given slash24 index (addr >> 8).
  static constexpr Prefix from_slash24_index(std::uint32_t index) {
    return Prefix(Ipv4Addr(index << 8), 24);
  }

  /// Parses "a.b.c.d/len". Returns nullopt on syntax errors or len > 32.
  static std::optional<Prefix> parse(std::string_view text);

  constexpr Ipv4Addr base() const { return base_; }
  constexpr std::uint8_t length() const { return length_; }

  /// Network mask for a prefix length (mask(0) == 0, mask(32) == ~0).
  static constexpr std::uint32_t mask(std::uint8_t length) {
    return length == 0 ? 0u : ~0u << (32 - length);
  }

  constexpr bool contains(Ipv4Addr addr) const {
    return (addr.value() & mask(length_)) == base_.value();
  }

  /// True when `other` is equal to or nested inside this prefix.
  constexpr bool contains(Prefix other) const {
    return other.length_ >= length_ && contains(other.base_);
  }

  /// True when either prefix contains the other.
  constexpr bool overlaps(Prefix other) const {
    return contains(other) || other.contains(*this);
  }

  constexpr Ipv4Addr last_address() const {
    return Ipv4Addr(base_.value() | ~mask(length_));
  }

  /// Number of /24 blocks covered. Prefixes longer than /24 count as the
  /// fraction-free 1 (their enclosing /24), matching the paper's convention
  /// of widening rare scopes longer than /24 to the /24.
  constexpr std::uint64_t slash24_count() const {
    return length_ >= 24 ? 1 : (std::uint64_t{1} << (24 - length_));
  }

  /// Index of the first /24 covered (for >= /24 prefixes: the enclosing /24).
  constexpr std::uint32_t first_slash24_index() const {
    return base_.slash24_index();
  }

  /// The enclosing prefix of the given (shorter or equal) length.
  constexpr Prefix widen_to(std::uint8_t length) const {
    assert(length <= length_);
    return Prefix(base_, length);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix& a, const Prefix& b) {
    if (auto c = a.base_ <=> b.base_; c != 0) return c;
    return a.length_ <=> b.length_;
  }
  friend constexpr bool operator==(const Prefix&, const Prefix&) = default;

 private:
  Ipv4Addr base_;
  std::uint8_t length_ = 0;
};

}  // namespace netclients::net

template <>
struct std::hash<netclients::net::Prefix> {
  std::size_t operator()(const netclients::net::Prefix& p) const noexcept {
    std::uint64_t key =
        (std::uint64_t{p.base().value()} << 8) | p.length();
    // SplitMix64 finalizer: strong avalanche for the low bits used by
    // unordered containers.
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ULL;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebULL;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
  }
};
