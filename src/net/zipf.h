#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "net/rng.h"

namespace netclients::net {

/// Zipf(s) sampler over ranks 0..n-1 using a precomputed CDF. Models domain
/// popularity (rank-1 google.com vs rank-13 wikipedia.org) and per-prefix
/// activity skew.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent) : cdf_(n) {
    double total = 0;
    for (std::size_t rank = 0; rank < n; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
      cdf_[rank] = total;
    }
    for (auto& v : cdf_) v /= total;
  }

  std::size_t sample(Rng& rng) const {
    double u = rng.uniform();
    // Binary search for the first CDF entry >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Probability mass of a given rank.
  double pmf(std::size_t rank) const {
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace netclients::net
