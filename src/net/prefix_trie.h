#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/prefix.h"

namespace netclients::net {

/// A binary radix trie mapping CIDR prefixes to values, supporting
/// longest-prefix match — the core lookup structure behind the
/// Routeviews-style prefix-to-AS table and the scope-dedup logic of the
/// cache-probing pipeline.
///
/// Nodes are path-uncompressed (one bit per level, max depth 32), which is
/// simple and plenty fast for our workloads; the microbenchmarks in
/// bench_micro quantify lookup cost.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or overwrites the value at `prefix`. Returns true if a new
  /// entry was created, false if an existing one was replaced.
  bool insert(Prefix prefix, T value) {
    Node* node = walk_to(prefix, /*create=*/true);
    bool created = !node->value.has_value();
    node->value = std::move(value);
    if (created) ++size_;
    return created;
  }

  /// Exact-match lookup.
  const T* find(Prefix prefix) const {
    const Node* node = walk_to_const(prefix);
    return node && node->value ? &*node->value : nullptr;
  }

  /// Longest-prefix match for an address: the most specific inserted prefix
  /// containing `addr`, or nullopt.
  std::optional<std::pair<Prefix, const T*>> longest_match(
      Ipv4Addr addr) const {
    const Node* node = root_.get();
    std::optional<std::pair<Prefix, const T*>> best;
    std::uint32_t bits = addr.value();
    for (std::uint8_t depth = 0;; ++depth) {
      if (node->value) {
        best = {Prefix(addr, depth), &*node->value};
      }
      if (depth == 32) break;
      unsigned bit = (bits >> (31 - depth)) & 1u;
      if (!node->children[bit]) break;
      node = node->children[bit].get();
    }
    return best;
  }

  /// Shortest-prefix (least specific) match containing `addr`, or nullopt.
  std::optional<std::pair<Prefix, const T*>> shortest_match(
      Ipv4Addr addr) const {
    const Node* node = root_.get();
    std::uint32_t bits = addr.value();
    for (std::uint8_t depth = 0;; ++depth) {
      if (node->value) return {{Prefix(addr, depth), &*node->value}};
      if (depth == 32) break;
      unsigned bit = (bits >> (31 - depth)) & 1u;
      if (!node->children[bit]) break;
      node = node->children[bit].get();
    }
    return std::nullopt;
  }

  /// True when any inserted prefix contains `addr`.
  bool covers(Ipv4Addr addr) const { return longest_match(addr).has_value(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Visits every (prefix, value) pair in address order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(root_.get(), 0, 0, fn);
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> children[2];
  };

  Node* walk_to(Prefix prefix, bool create) {
    Node* node = root_.get();
    std::uint32_t bits = prefix.base().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      unsigned bit = (bits >> (31 - depth)) & 1u;
      if (!node->children[bit]) {
        if (!create) return nullptr;
        node->children[bit] = std::make_unique<Node>();
      }
      node = node->children[bit].get();
    }
    return node;
  }

  const Node* walk_to_const(Prefix prefix) const {
    const Node* node = root_.get();
    std::uint32_t bits = prefix.base().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      unsigned bit = (bits >> (31 - depth)) & 1u;
      if (!node->children[bit]) return nullptr;
      node = node->children[bit].get();
    }
    return node;
  }

  template <typename Fn>
  static void visit(const Node* node, std::uint32_t base, std::uint8_t depth,
                    Fn& fn) {
    if (node->value) fn(Prefix(Ipv4Addr(base), depth), *node->value);
    if (depth == 32) return;
    if (node->children[0]) visit(node->children[0].get(), base, depth + 1, fn);
    if (node->children[1]) {
      visit(node->children[1].get(), base | (1u << (31 - depth)), depth + 1,
            fn);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace netclients::net
