#pragma once

#include <cmath>
#include <numbers>

namespace netclients::net {

/// A geographic coordinate in degrees. Latitude in [-90, 90], longitude in
/// [-180, 180).
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

inline constexpr double kEarthRadiusKm = 6371.0;

inline double deg2rad(double deg) {
  return deg * std::numbers::pi / 180.0;
}
inline double rad2deg(double rad) {
  return rad * 180.0 / std::numbers::pi;
}

/// Great-circle distance between two points (haversine formula), in km.
/// Used for anycast catchment modelling and PoP service-radius calibration.
inline double haversine_km(LatLon a, LatLon b) {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

/// The point reached by travelling `distance_km` from `origin` along the
/// initial `bearing_deg` (great-circle). Used to jitter synthetic prefix
/// locations around country centroids and to model geolocation error.
inline LatLon destination_point(LatLon origin, double bearing_deg,
                                double distance_km) {
  const double delta = distance_km / kEarthRadiusKm;
  const double theta = deg2rad(bearing_deg);
  const double lat1 = deg2rad(origin.lat_deg);
  const double lon1 = deg2rad(origin.lon_deg);
  const double lat2 = std::asin(std::sin(lat1) * std::cos(delta) +
                                std::cos(lat1) * std::sin(delta) *
                                    std::cos(theta));
  const double lon2 =
      lon1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(lat1),
                        std::cos(delta) - std::sin(lat1) * std::sin(lat2));
  double lon_deg = rad2deg(lon2);
  // Normalize longitude into [-180, 180).
  while (lon_deg >= 180.0) lon_deg -= 360.0;
  while (lon_deg < -180.0) lon_deg += 360.0;
  return {rad2deg(lat2), lon_deg};
}

}  // namespace netclients::net
