#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/prefix.h"

namespace netclients::net {

/// A set of CIDR prefixes maintained in *disjoint* canonical form: no stored
/// prefix contains another. Inserting a prefix that is already covered is a
/// no-op; inserting a covering prefix absorbs the covered entries.
///
/// This is the representation used for cache-probing hit sets, where a hit
/// with return scope /16 subsumes hits for any /24 inside it, and for the
/// lower/upper /24 bound computations of Figure 4 and Table 1.
class DisjointPrefixSet {
 public:
  /// Inserts `prefix`, maintaining disjointness. Returns true if the set
  /// changed (i.e. the prefix was not already covered).
  bool insert(Prefix prefix);

  /// True when `prefix` is fully covered by some stored prefix.
  bool covers(Prefix prefix) const;
  bool covers(Ipv4Addr addr) const { return covers(Prefix(addr, 32)); }

  /// True when `prefix` overlaps any stored prefix (covers it, or contains
  /// one or more stored prefixes). Used for the containment-aware matching
  /// of Table 5, where hits for different domains have different scopes.
  bool intersects(Prefix prefix) const;

  /// Number of disjoint stored prefixes — the paper's *lower bound* on
  /// active /24s (one active /24 per non-overlapping hit prefix).
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Total /24 blocks covered — the paper's *upper bound* on active /24s
  /// (all /24s inside every hit prefix assumed active).
  std::uint64_t slash24_upper_bound() const { return slash24_total_; }

  /// The stored disjoint prefixes in address order.
  std::vector<Prefix> prefixes() const;

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [base, p] : entries_) fn(p);
  }

  void clear() {
    entries_.clear();
    slash24_total_ = 0;
  }

 private:
  // Keyed by base address; disjointness guarantees at most one entry can
  // cover any address, so predecessor lookup suffices for containment.
  std::map<std::uint32_t, Prefix> entries_;
  std::uint64_t slash24_total_ = 0;
};

}  // namespace netclients::net
