#pragma once

#include <cstdint>

namespace netclients::net {

/// Simulated time in seconds since the start of the measurement campaign.
/// The library never reads a wall clock: every component that needs time
/// takes a SimTime argument, which is what makes runs reproducible.
using SimTime = double;

inline constexpr SimTime kSecond = 1.0;
inline constexpr SimTime kMinute = 60.0;
inline constexpr SimTime kHour = 3600.0;
inline constexpr SimTime kDay = 86400.0;

}  // namespace netclients::net
