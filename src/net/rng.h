#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string_view>

namespace netclients::net {

/// SplitMix64 step: turns any 64-bit state into a well-mixed output and
/// advances the state. Used for seeding and as a stable hash finalizer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes a 64-bit value through the SplitMix64 finalizer (stateless).
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Order-dependent combination of hash values; `stable_hash(a, b)` differs
/// from `stable_hash(b, a)`. Stable across platforms and runs — the library
/// never uses std::hash for simulation decisions.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// FNV-1a over bytes, then strengthened with the SplitMix64 finalizer.
constexpr std::uint64_t stable_hash(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

/// xoshiro256** — the library's deterministic PRNG. Satisfies
/// UniformRandomBitGenerator so it composes with <random> when needed, but
/// the sampling helpers below avoid <random> distributions, whose outputs
/// are not specified portably.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound) via rejection-free Lemire reduction
  /// (bias is negligible at 64-bit width for our bounds).
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : (*this)() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    double u = uniform();
    // Guard against log(0).
    return -std::log1p(-u) / rate;
  }

  /// Standard normal via Box–Muller (one value per call; simple and
  /// deterministic).
  double normal() {
    double u1 = 1.0 - uniform();  // (0, 1]
    double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Log-normal with the given underlying normal parameters.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Poisson sample. Knuth's method for small means, normal approximation
  /// (rounded, clamped at 0) for large ones.
  std::uint64_t poisson(double mean) {
    if (mean <= 0) return 0;
    if (mean < 32) {
      const double limit = std::exp(-mean);
      std::uint64_t k = 0;
      double product = uniform();
      while (product > limit) {
        ++k;
        product *= uniform();
      }
      return k;
    }
    double sample = normal(mean, std::sqrt(mean));
    return sample <= 0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
  }

  /// Pareto (Type I) with scale xm > 0 and shape alpha > 0 — the
  /// heavy-tailed distribution behind AS sizes and activity volumes.
  double pareto(double xm, double alpha) {
    double u = 1.0 - uniform();  // (0, 1]
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Derives an independent child generator; `label` keeps streams for
  /// different purposes decorrelated under the same master seed.
  Rng fork(std::uint64_t label) {
    return Rng(hash_combine((*this)(), label));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// A deterministic "random oracle": hash a tuple of keys into an Rng seed.
/// This is how lazily-evaluated simulation state (e.g. whether a DNS cache
/// pool holds a record in a given TTL window) stays reproducible without
/// storing it.
template <typename... Keys>
constexpr std::uint64_t stable_seed(std::uint64_t root, Keys... keys) {
  std::uint64_t h = mix64(root ^ 0x6a09e667f3bcc909ULL);
  ((h = hash_combine(h, static_cast<std::uint64_t>(keys))), ...);
  return h;
}

}  // namespace netclients::net
