#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "anycast/catchment.h"
#include "anycast/pop.h"
#include "anycast/vantage.h"
#include "dns/message.h"
#include "dns/packet.h"
#include "dnssrv/authoritative.h"
#include "dnssrv/cache.h"
#include "dnssrv/rate_limiter.h"
#include "googledns/activity_model.h"
#include "net/sim_time.h"

namespace netclients::googledns {

enum class Transport { kUdp, kTcp };

/// A half-open window of simulation time.
struct TimeWindow {
  net::SimTime begin = 0;
  net::SimTime end = 0;
  bool contains(net::SimTime t) const { return t >= begin && t < end; }
};

/// Deterministic failure injection for the resolver front end. Every
/// verdict is a pure function of the probe's identity (pop, vantage,
/// domain, scope, attempt, retry, quantized time), so faulty runs stay
/// byte-identical at any REPRO_THREADS. All-zero defaults leave behaviour
/// — and the exported metric name set — exactly as a fault-free build.
struct FailureInjection {
  std::uint64_t seed = 0xFA0117;
  /// Probe unanswered within its timeout (loss anywhere on the path).
  double timeout_probability = 0;
  /// Front end answers SERVFAIL.
  double servfail_probability = 0;
  /// Transient rate-limit surges: inside each surge window, probes are
  /// refused with this probability on top of the token buckets.
  double surge_refusal_probability = 0;
  std::vector<TimeWindow> surge_windows;
  /// Cache-eviction storms: inside each window, the entry a probe would
  /// have found has this probability of having been evicted from its pool
  /// (both the explicit pools and the analytic occupancy are suppressed).
  double eviction_probability = 0;
  std::vector<TimeWindow> eviction_windows;

  bool enabled() const {
    return timeout_probability > 0 || servfail_probability > 0 ||
           (surge_refusal_probability > 0 && !surge_windows.empty()) ||
           (eviction_probability > 0 && !eviction_windows.empty());
  }
};

/// How the resolver talks to the authoritative upstream.
///
/// `kWire` is the real path: every resolve/scope fetch is an RFC 1035
/// packet round trip (arena-encoded query → AuthoritativeServer::
/// handle_wire → zero-copy MessageView parse of the reply). `kStructured`
/// is the legacy compatibility mode calling the direct API. The two are
/// byte-identical in campaign results at any REPRO_THREADS — the wire
/// reply carries exactly the fields the direct API returns — and tests
/// assert that parity both ways.
enum class UpstreamMode : std::uint8_t { kWire, kStructured };

struct GoogleDnsConfig {
  int pools_per_pop = 4;
  std::size_t pool_capacity = 1 << 18;
  // The paper found repeated UDP probing of the same domains trips a limit
  // far below the documented 1,500 QPS, forcing the campaign onto TCP.
  double udp_repeated_qps_limit = 20.0;
  double tcp_qps_limit = 1500.0;
  std::uint64_t seed = 0x600613;
  // Epoch used when fetching scope/answers for client-driven entries; the
  // probing campaign runs in a later epoch than scope discovery, producing
  // Table 2's drift.
  std::uint32_t epoch = 1;
  // Service time of an answered (or refused) probe, per transport — the
  // virtual-time cost the async engine charges for a completed round trip.
  // TCP rides a handshake on top of the UDP path. Timed-out probes cost
  // the retry policy's timeout instead, so these only price answers.
  double udp_rtt_seconds = 0.03;
  double tcp_rtt_seconds = 0.05;
  // Injectable failure modes; all-zero by default (perfect substrate).
  FailureInjection faults;
  // Upstream transport: RFC 1035 wire bytes by default, with the direct
  // structured API kept as a config-gated compatibility mode.
  UpstreamMode upstream_mode = UpstreamMode::kWire;

  double rtt_for(Transport transport) const {
    return transport == Transport::kTcp ? tcp_rtt_seconds : udp_rtt_seconds;
  }
};

/// How one cache-snooping probe ended.
enum class ProbeStatus : std::uint8_t { kOk, kRateLimited, kServfail, kTimeout };

/// Outcome of one cache-snooping probe (RD=0, ECS-tagged).
struct ProbeResult {
  ProbeStatus status = ProbeStatus::kOk;
  /// Kept in sync with status == kRateLimited for pre-ProbeStatus callers.
  bool rate_limited = false;
  bool cache_hit = false;
  std::uint8_t return_scope = 0;    // valid when cache_hit
  std::uint32_t remaining_ttl = 0;  // valid when cache_hit
  anycast::PopId pop = anycast::kNoPop;
  /// Virtual service time of this probe: one transport RTT when an answer
  /// (or refusal) came back, 0 on timeout — the prober charges its policy
  /// timeout for those instead.
  double rtt_seconds = 0;

  /// Hard failures the retry policy acts on (rate limiting is normal
  /// operation: the paper's answer to it was transport choice, not retry).
  bool failed() const {
    return status == ProbeStatus::kServfail || status == ProbeStatus::kTimeout;
  }
};

/// Model of Google Public DNS: an anycast fleet of PoPs, each with several
/// independent cache pools, honoring client-supplied ECS prefixes and
/// answering non-recursive (RD=0) queries strictly from cache.
///
/// Concurrency discipline (see DESIGN.md "Concurrency model"): `probe` and
/// `client_query` may be called concurrently as long as concurrent callers
/// target *distinct PoPs* — each PoP's cache pools and each vantage point's
/// token buckets are thread-confined to that PoP's shard. The shared
/// lookup tables (pool-set / limiter creation, the scope memo) are guarded
/// internally, and every memoized value is a pure function of its key, so
/// results never depend on interleaving.
///
/// Two occupancy sources compose:
///  * an explicit per-pool DnsCache populated by `client_query` — exact,
///    used by tests/examples at small scale;
///  * a lazy analytic model driven by a ClientActivityModel — used at
///    Internet scale, sampling whether a Poisson client-arrival process
///    would have refreshed the entry within its TTL.
class GooglePublicDns {
 public:
  GooglePublicDns(const anycast::PopTable* pops,
                  const anycast::CatchmentModel* catchment,
                  const dnssrv::AuthoritativeServer* upstream,
                  GoogleDnsConfig config = {},
                  const ClientActivityModel* activity = nullptr);

  /// Which PoP serves queries from this location/network — the simulated
  /// `dig @8.8.8.8 o-o.myaddr.l.google.com -t TXT`.
  anycast::PopId pop_for(net::LatLon location, std::uint64_t route_key,
                         const anycast::RouteBias& bias = {}) const;

  /// A recursive (RD=1) query from a real client: resolves upstream with
  /// the client's /24 as ECS source and caches under the returned scope in
  /// one explicit pool of the serving PoP.
  void client_query(anycast::PopId pop, const dns::DnsName& domain,
                    net::Ipv4Addr client, net::SimTime now);

  /// A cache-snooping probe: RD=0, ECS = `query_scope`, sent over
  /// `transport` by vantage `vp_id` to PoP `pop`. `attempt` selects which
  /// cache pool the query lands in (the paper sends 5 redundant queries to
  /// cover multiple pools). `retry` is the resilience layer's retry index
  /// for this attempt: it re-rolls the fault oracle (loss is transient)
  /// but NOT the pool hash — a retried flow keeps its 5-tuple and lands
  /// in the same pool, so retries can only recover masked answers.
  ProbeResult probe(anycast::PopId pop, const dns::DnsName& domain,
                    net::Prefix query_scope, net::SimTime now,
                    Transport transport, int vp_id, int attempt,
                    int retry = 0);

  /// Full wire-format front end for packet-level tests and examples:
  /// decodes nothing (caller passes the message), applies anycast routing,
  /// myaddr TXT service, RD=0 snooping and RD=1 recursion.
  dns::DnsMessage handle(const dns::DnsMessage& query, net::LatLon source,
                         std::uint64_t route_key, net::SimTime now,
                         Transport transport, int vp_id = 0,
                         const anycast::RouteBias& bias = {});

  /// RFC 1035 wire front end: zero-copy parse of the query packet, `handle`
  /// for the answer, arena-encoded response. Returns an empty span for
  /// unparseable queries (the packets a structured caller would drop at
  /// decode); otherwise byte-identical to encode(handle(decode(wire))).
  /// The span borrows `arena` until the next encode into it.
  std::span<const std::uint8_t> handle_wire(
      std::span<const std::uint8_t> query_wire, net::LatLon source,
      std::uint64_t route_key, net::SimTime now, Transport transport,
      dns::WireArena& arena, int vp_id = 0,
      const anycast::RouteBias& bias = {});

  /// Total explicit cache entries across all pools (diagnostics).
  std::size_t explicit_entries() const;

  const anycast::PopTable& pops() const { return *pops_; }

  const GoogleDnsConfig& config() const { return config_; }

  /// The myaddr service name.
  static const dns::DnsName& myaddr_name();

 private:
  struct PoolSet {
    std::vector<std::unique_ptr<dnssrv::DnsCache>> pools;
  };

  dnssrv::DnsCache& pool(anycast::PopId pop, int index);
  /// One limiter per (vantage, transport, domain loop): the prober runs a
  /// separate query loop per domain, each its own flow; Google's limits
  /// apply per flow. Each loop's timestamps are monotone.
  dnssrv::TokenBucket& limiter(int vp_id, Transport transport,
                               const dns::DnsName& domain);

  /// Upstream fetches, routed per `config_.upstream_mode`: either a full
  /// RFC 1035 round trip (encode into a thread_local arena, handle_wire,
  /// zero-copy parse of the reply) or the direct structured API. The wire
  /// reply carries exactly the fields the direct call returns, so both
  /// modes yield identical values — asserted by tests in both directions.
  std::optional<dnssrv::EcsAnswer> upstream_resolve(const dns::DnsName& domain,
                                                    net::Prefix source) const;
  std::optional<std::uint8_t> upstream_scope(const dns::DnsName& domain,
                                             net::Prefix block) const;

  /// Lazy occupancy: would a Poisson arrival process at `rate` (per pool)
  /// have an arrival within the TTL window ending at `now`?
  bool analytic_present(anycast::PopId pop, int pool_index,
                        const dns::DnsName& domain, net::Prefix scope_block,
                        std::uint32_t ttl, double pool_rate,
                        net::SimTime now, double* age_out) const;

  const anycast::PopTable* pops_;
  const anycast::CatchmentModel* catchment_;
  const dnssrv::AuthoritativeServer* upstream_;
  GoogleDnsConfig config_;
  const ClientActivityModel* activity_;
  // Creation of a PoP's pool set / a flow's limiter is locked; the created
  // objects themselves are thread-confined to their PoP's shard
  // (unordered_map never invalidates references to values).
  mutable std::mutex pools_mu_;
  std::unordered_map<anycast::PopId, PoolSet> pop_pools_;
  std::mutex limiters_mu_;
  std::unordered_map<std::uint64_t, dnssrv::TokenBucket> limiters_;
  // Scope assignments are pure functions of (domain, block) at a fixed
  // epoch; the campaign probes each combination dozens of times, from
  // every PoP shard — reads dominate, so a shared_mutex. A lost race
  // recomputes the same value.
  std::shared_mutex scope_mu_;
  std::unordered_map<std::uint64_t, std::uint8_t> scope_memo_;
};

}  // namespace netclients::googledns
