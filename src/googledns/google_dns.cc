#include "googledns/google_dns.h"

#include <algorithm>
#include <cmath>

#include "core/obs/obs.h"
#include "dns/packet.h"

namespace netclients::googledns {

using anycast::PopId;

namespace {

// Per-probe outcome telemetry. Counters only (integer-commutative, so
// concurrent PoP shards stay deterministic in total); every counter is
// bumped exactly once per probe/client_query call, never on memo fills or
// other interleaving-dependent events.
struct ProbeMetrics {
  obs::Counter& sent = obs::Registry::global().counter("googledns.probe.sent");
  obs::Counter& rate_limited =
      obs::Registry::global().counter("googledns.probe.rate_limited");
  obs::Counter& unknown_zone =
      obs::Registry::global().counter("googledns.probe.unknown_zone");
  obs::Counter& scope_zero =
      obs::Registry::global().counter("googledns.probe.scope_zero");
  obs::Counter& scope_drift_miss =
      obs::Registry::global().counter("googledns.probe.scope_drift_miss");
  obs::Counter& hit_explicit =
      obs::Registry::global().counter("googledns.probe.hit_explicit");
  obs::Counter& hit_analytic =
      obs::Registry::global().counter("googledns.probe.hit_analytic");
  obs::Counter& miss = obs::Registry::global().counter("googledns.probe.miss");
  obs::Counter& client_queries =
      obs::Registry::global().counter("googledns.client_query.sent");
  obs::Counter& client_cached =
      obs::Registry::global().counter("googledns.client_query.cached");

  static ProbeMetrics& get() {
    static ProbeMetrics metrics;
    return metrics;
  }
};

// Injected-fault telemetry. Looked up (and therefore registered) only on
// the failure paths, so a fault-free run's exported metric name set is
// byte-identical to a build without fault injection.
obs::Counter& fault_counter(const char* name) {
  return obs::Registry::global().counter(name);
}

bool in_window(const std::vector<TimeWindow>& windows, net::SimTime now) {
  for (const TimeWindow& w : windows) {
    if (w.contains(now)) return true;
  }
  return false;
}

}  // namespace

GooglePublicDns::GooglePublicDns(const anycast::PopTable* pops,
                                 const anycast::CatchmentModel* catchment,
                                 const dnssrv::AuthoritativeServer* upstream,
                                 GoogleDnsConfig config,
                                 const ClientActivityModel* activity)
    : pops_(pops),
      catchment_(catchment),
      upstream_(upstream),
      config_(config),
      activity_(activity) {}

const dns::DnsName& GooglePublicDns::myaddr_name() {
  static const dns::DnsName name =
      *dns::DnsName::parse("o-o.myaddr.l.google.com");
  return name;
}

PopId GooglePublicDns::pop_for(net::LatLon location, std::uint64_t route_key,
                               const anycast::RouteBias& bias) const {
  return catchment_->pop_for(location, route_key, bias);
}

dnssrv::DnsCache& GooglePublicDns::pool(PopId pop, int index) {
  // Lock covers only set creation; the returned cache is thread-confined
  // to the shard probing this PoP.
  std::lock_guard<std::mutex> lock(pools_mu_);
  PoolSet& set = pop_pools_[pop];
  if (set.pools.empty()) {
    set.pools.reserve(static_cast<std::size_t>(config_.pools_per_pop));
    for (int i = 0; i < config_.pools_per_pop; ++i) {
      set.pools.push_back(
          std::make_unique<dnssrv::DnsCache>(config_.pool_capacity));
    }
  }
  return *set.pools[static_cast<std::size_t>(index)];
}

dnssrv::TokenBucket& GooglePublicDns::limiter(int vp_id, Transport transport,
                                              const dns::DnsName& domain) {
  const std::uint64_t key = net::hash_combine(
      domain.hash(), (static_cast<std::uint64_t>(vp_id) << 1) |
                         (transport == Transport::kTcp ? 1u : 0u));
  // Lock covers only creation: each (vantage, transport, domain) flow is
  // driven by exactly one PoP shard, so the bucket itself needs no lock.
  std::lock_guard<std::mutex> lock(limiters_mu_);
  auto it = limiters_.find(key);
  if (it == limiters_.end()) {
    const double qps = transport == Transport::kTcp
                           ? config_.tcp_qps_limit
                           : config_.udp_repeated_qps_limit;
    it = limiters_.try_emplace(key, qps, qps).first;
  }
  return it->second;
}

std::optional<dnssrv::EcsAnswer> GooglePublicDns::upstream_resolve(
    const dns::DnsName& domain, net::Prefix source) const {
  if (config_.upstream_mode == UpstreamMode::kStructured) {
    return upstream_->resolve(domain, source, config_.epoch);
  }
  // Wire mode: one RFC 1035 round trip. Arenas are per-thread so
  // concurrent PoP shards never share encode state, and the reply view
  // borrows the reply arena only within this frame.
  thread_local dns::WireArena query_arena;
  thread_local dns::WireArena reply_arena;
  const auto id = static_cast<std::uint16_t>(net::stable_seed(
      config_.seed ^ 0x3135u, domain.hash(),
      std::uint64_t{source.base().value()}, std::uint64_t{source.length()},
      std::uint64_t{config_.epoch}));
  const dns::DnsMessage query =
      dns::make_query(id, domain, dns::RecordType::kA, /*recursion_desired=*/
                      false, dns::EcsOption::for_query(source));
  const auto reply = upstream_->handle_wire(
      dns::encode_into(query, query_arena), config_.epoch, reply_arena);
  const auto view = dns::MessageView::parse(reply);
  if (!view || view->header().rcode != dns::RCode::kNoError) {
    return std::nullopt;  // unknown zone (NXDOMAIN) or unparseable reply
  }
  dnssrv::EcsAnswer answer{};
  bool have_a = false;
  view->for_each_record(
      dns::MessageView::Section::kAnswer,
      [&](const dns::MessageView::RecordView& record) {
        if (have_a) return;
        if (auto a = record.a_address()) {
          answer.address = *a;
          answer.ttl = record.ttl;
          have_a = true;
        }
      });
  if (!have_a) return std::nullopt;
  if (view->edns() && view->edns()->ecs) {
    answer.scope_length = view->edns()->ecs->scope_prefix_length;
  }
  return answer;
}

std::optional<std::uint8_t> GooglePublicDns::upstream_scope(
    const dns::DnsName& domain, net::Prefix block) const {
  if (config_.upstream_mode == UpstreamMode::kStructured) {
    return upstream_->scope_for(domain, block, config_.epoch);
  }
  // The authoritative's wire reply scopes its answer exactly as scope_for
  // would (scope 0 for ECS-oblivious zones, NXDOMAIN for unknown ones).
  auto answer = upstream_resolve(domain, block);
  if (!answer) return std::nullopt;
  return answer->scope_length;
}

void GooglePublicDns::client_query(PopId pop, const dns::DnsName& domain,
                                   net::Ipv4Addr client, net::SimTime now) {
  // Google forwards the client's /24 as the ECS source (rarely more
  // specific, per [34]) and caches under the scope the authoritative
  // returns.
  const net::Prefix source = net::Prefix::slash24_of(client);
  ProbeMetrics::get().client_queries.add();
  auto answer = upstream_resolve(domain, source);
  if (!answer) return;
  ProbeMetrics::get().client_cached.add();
  const net::Prefix scope_block = source.widen_to(answer->scope_length);
  const int pool_index = static_cast<int>(net::stable_seed(
                             config_.seed ^ 0xC11E27u, client.value(),
                             static_cast<std::uint64_t>(now * 1000)) %
                         static_cast<std::uint64_t>(config_.pools_per_pop));
  dnssrv::CacheKey key{domain, dns::RecordType::kA, scope_block};
  dnssrv::CacheEntry entry;
  entry.rdata = dns::AData{answer->address};
  entry.scope_length = answer->scope_length;
  entry.original_ttl = answer->ttl;
  entry.expires_at = now + answer->ttl;
  pool(pop, pool_index).insert(key, entry);
}

bool GooglePublicDns::analytic_present(PopId pop, int pool_index,
                                       const dns::DnsName& domain,
                                       net::Prefix scope_block,
                                       std::uint32_t ttl, double pool_rate,
                                       net::SimTime now,
                                       double* age_out) const {
  if (pool_rate <= 0 || ttl == 0) return false;
  const double window = ttl;
  const auto entry_seed = [&](std::int64_t window_index) {
    return net::stable_seed(
        config_.seed ^ 0x9E1Fu, static_cast<std::uint64_t>(pop),
        static_cast<std::uint64_t>(pool_index),
        std::hash<dns::DnsName>{}(domain),
        std::uint64_t{scope_block.base().value()},
        std::uint64_t{scope_block.length()},
        static_cast<std::uint64_t>(window_index));
  };
  const std::int64_t w = static_cast<std::int64_t>(std::floor(now / window));

  // Latest client arrival at or before `now`, looking back one TTL. Window
  // arrivals are Poisson(rate × window), uniform within the window; we
  // materialize the few points we need deterministically per window, so
  // repeated probes observe a consistent cache timeline.
  double latest = -1.0;
  for (std::int64_t x = w; x >= w - 1; --x) {
    net::Rng rng(entry_seed(x));
    const std::uint64_t n = rng.poisson(pool_rate * window);
    if (n == 0) continue;
    const double start = static_cast<double>(x) * window;
    if (n <= 16) {
      for (std::uint64_t i = 0; i < n; ++i) {
        const double at = start + window * rng.uniform();
        if (at <= now && at > latest) latest = at;
      }
    } else {
      // Dense window: the maximum of n uniforms, thinned to those <= now.
      const double cut = std::clamp((now - start) / window, 0.0, 1.0);
      if (cut > 0) {
        const double frac =
            cut * std::pow(rng.uniform(), 1.0 / (static_cast<double>(n) * cut));
        const double at = start + window * frac;
        if (at > latest) latest = at;
      }
    }
    if (latest >= 0) break;  // later window already gave the latest arrival
  }
  if (latest < 0 || now - latest >= ttl) return false;
  if (age_out) *age_out = now - latest;
  return true;
}

ProbeResult GooglePublicDns::probe(PopId pop, const dns::DnsName& domain,
                                   net::Prefix query_scope, net::SimTime now,
                                   Transport transport, int vp_id,
                                   int attempt, int retry) {
  ProbeResult result;
  result.pop = pop;
  result.rtt_seconds = config_.rtt_for(transport);
  ProbeMetrics::get().sent.add();
  if (!limiter(vp_id, transport, domain).allow(now)) {
    ProbeMetrics::get().rate_limited.add();
    result.status = ProbeStatus::kRateLimited;
    result.rate_limited = true;
    return result;
  }
  // Injected faults, decided by a per-probe oracle keyed on the probe's
  // identity (time quantized to the millisecond — finer than any two
  // distinct probes of one flow ever get). The draws happen in a fixed
  // order so enabling one fault class never perturbs another's stream.
  bool evicted = false;
  if (config_.faults.enabled()) {
    const FailureInjection& faults = config_.faults;
    net::Rng rng(net::stable_seed(
        faults.seed, static_cast<std::uint64_t>(pop),
        static_cast<std::uint64_t>(vp_id),
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(attempt)),
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(retry)),
        domain.hash(), std::uint64_t{query_scope.base().value()},
        std::uint64_t{query_scope.length()},
        static_cast<std::uint64_t>(now * 1000.0)));
    const double failure_draw = rng.uniform();
    const double surge_draw = rng.uniform();
    const double evict_draw = rng.uniform();
    if (failure_draw < faults.timeout_probability) {
      fault_counter("googledns.fault.timeout").add();
      result.status = ProbeStatus::kTimeout;
      result.rtt_seconds = 0;  // nothing came back to clock an RTT against
      return result;
    }
    if (failure_draw <
        faults.timeout_probability + faults.servfail_probability) {
      fault_counter("googledns.fault.servfail").add();
      result.status = ProbeStatus::kServfail;
      return result;
    }
    if (faults.surge_refusal_probability > 0 &&
        in_window(faults.surge_windows, now) &&
        surge_draw < faults.surge_refusal_probability) {
      fault_counter("googledns.fault.surge_refused").add();
      result.status = ProbeStatus::kRateLimited;
      result.rate_limited = true;
      return result;
    }
    evicted = faults.eviction_probability > 0 &&
              in_window(faults.eviction_windows, now) &&
              evict_draw < faults.eviction_probability;
  }
  // The prober cannot choose the pool its query lands in; redundant
  // attempts hash to (possibly repeated) pools.
  const int pool_index = static_cast<int>(
      net::stable_seed(config_.seed ^ 0x9001u, static_cast<std::uint64_t>(pop),
                       static_cast<std::uint64_t>(vp_id),
                       static_cast<std::uint64_t>(attempt),
                       std::hash<dns::DnsName>{}(domain),
                       std::uint64_t{query_scope.base().value()}) %
      static_cast<std::uint64_t>(config_.pools_per_pop));

  const dnssrv::ZoneConfig* zone = upstream_->zone(domain);
  if (!zone) {
    ProbeMetrics::get().unknown_zone.add();
    return result;  // unknown zone: nothing could be cached
  }

  // The scope the authoritative *currently* assigns to this block. Client
  // queries landing here were cached under that scope's block. RFC 7871:
  // a cached entry answers a query only when the entry's scope block
  // contains the query's source prefix — so if the scope drifted to be
  // more specific than our (previously discovered) query scope, we miss.
  std::uint8_t entry_scope = 0;
  {
    const std::uint64_t memo_key = net::stable_seed(
        domain.hash(), std::uint64_t{query_scope.base().value()},
        std::uint64_t{query_scope.length()});
    bool found = false;
    {
      std::shared_lock<std::shared_mutex> lock(scope_mu_);
      auto it = scope_memo_.find(memo_key);
      if (it != scope_memo_.end()) {
        entry_scope = it->second;
        found = true;
      }
    }
    if (!found) {
      // The scope is a pure function of (domain, block, epoch): concurrent
      // shards that race here compute the same value.
      auto scope_now = upstream_scope(domain, query_scope);
      entry_scope = scope_now ? *scope_now : 255;
      std::unique_lock<std::shared_mutex> lock(scope_mu_);
      scope_memo_.emplace(memo_key, entry_scope);
    }
  }
  if (entry_scope == 0) ProbeMetrics::get().scope_zero.add();
  if (entry_scope > query_scope.length()) {
    ProbeMetrics::get().scope_drift_miss.add();
    return result;
  }
  const net::Prefix entry_block = query_scope.widen_to(entry_scope);

  // Eviction storm: the entry this probe would have found is gone from its
  // pool, whatever either occupancy source says.
  if (evicted) {
    fault_counter("googledns.fault.evicted").add();
    ProbeMetrics::get().miss.add();
    return result;
  }

  // Explicit (event-driven) pool contents take precedence: exact state.
  dnssrv::CacheKey key{domain, dns::RecordType::kA, entry_block};
  if (const dnssrv::CacheEntry* entry = pool(pop, pool_index).lookup(key, now)) {
    ProbeMetrics::get().hit_explicit.add();
    result.cache_hit = true;
    result.return_scope = entry->scope_length;
    result.remaining_ttl = entry->remaining_ttl(now);
    return result;
  }

  // Analytic occupancy from the world's client activity. The rate is
  // sampled at probe time, so diurnal worlds expose time-of-day structure
  // to the prober (the §6 temporal signal).
  if (activity_) {
    const double rate =
        activity_->arrival_rate_at(pop, domain, entry_block, now) /
        static_cast<double>(config_.pools_per_pop);
    double age = 0;
    if (analytic_present(pop, pool_index, domain, entry_block,
                         zone->ttl_seconds, rate, now, &age)) {
      ProbeMetrics::get().hit_analytic.add();
      result.cache_hit = true;
      result.return_scope = entry_scope;
      result.remaining_ttl = static_cast<std::uint32_t>(
          std::max(0.0, zone->ttl_seconds - age));
    }
  }
  if (!result.cache_hit) ProbeMetrics::get().miss.add();
  return result;
}

std::size_t GooglePublicDns::explicit_entries() const {
  std::lock_guard<std::mutex> lock(pools_mu_);
  std::size_t total = 0;
  for (const auto& [pop, set] : pop_pools_) {
    for (const auto& p : set.pools) total += p->size();
  }
  return total;
}

dns::DnsMessage GooglePublicDns::handle(const dns::DnsMessage& query,
                                        net::LatLon source,
                                        std::uint64_t route_key,
                                        net::SimTime now, Transport transport,
                                        int vp_id,
                                        const anycast::RouteBias& bias) {
  if (query.questions.empty()) {
    return dns::make_response(query, dns::RCode::kFormErr);
  }
  const dns::Question& q = query.questions.front();
  const PopId pop = pop_for(source, route_key, bias);

  // PoP identification service: TXT o-o.myaddr.l.google.com.
  if (q.name == myaddr_name() && q.type == dns::RecordType::kTxt) {
    dns::DnsMessage response = dns::make_response(query, dns::RCode::kNoError);
    response.header.ra = true;
    response.answers.push_back(dns::ResourceRecord{
        q.name, dns::RecordType::kTxt, dns::kClassIn, 60,
        dns::TxtData{pops_->site(pop).city}});
    return response;
  }

  if (query.header.rd) {
    // Full recursion: resolve and cache (explicit mode).
    net::Ipv4Addr client(static_cast<std::uint32_t>(route_key));
    if (query.edns && query.edns->ecs) {
      client = query.edns->ecs->address;
    }
    client_query(pop, q.name, client, now);
    auto answer = upstream_resolve(q.name, net::Prefix::slash24_of(client));
    if (!answer) return dns::make_response(query, dns::RCode::kNxDomain);
    dns::DnsMessage response = dns::make_response(query, dns::RCode::kNoError);
    response.header.ra = true;
    response.answers.push_back(dns::ResourceRecord{
        q.name, dns::RecordType::kA, dns::kClassIn, answer->ttl,
        dns::AData{answer->address}});
    if (response.edns && response.edns->ecs) {
      response.edns->ecs->scope_prefix_length = answer->scope_length;
    }
    return response;
  }

  // RD=0: cache snooping.
  net::Prefix query_scope;  // defaults to 0.0.0.0/0
  if (query.edns && query.edns->ecs) {
    query_scope = query.edns->ecs->source_prefix();
  }
  ProbeResult pr = probe(pop, q.name, query_scope, now, transport, vp_id,
                         query.header.id);
  if (pr.rate_limited) return dns::make_response(query, dns::RCode::kRefused);
  if (pr.status == ProbeStatus::kServfail) {
    return dns::make_response(query, dns::RCode::kServFail);
  }
  // An injected timeout has no wire answer at all; the closest in-band
  // signal for the synchronous front end is SERVFAIL after the wait.
  if (pr.status == ProbeStatus::kTimeout) {
    return dns::make_response(query, dns::RCode::kServFail);
  }
  dns::DnsMessage response = dns::make_response(query, dns::RCode::kNoError);
  response.header.ra = true;
  if (pr.cache_hit) {
    auto answer = upstream_resolve(q.name, query_scope);
    response.answers.push_back(dns::ResourceRecord{
        q.name, dns::RecordType::kA, dns::kClassIn, pr.remaining_ttl,
        dns::AData{answer ? answer->address : net::Ipv4Addr(0)}});
    if (response.edns && response.edns->ecs) {
      response.edns->ecs->scope_prefix_length = pr.return_scope;
    }
  }
  return response;
}

std::span<const std::uint8_t> GooglePublicDns::handle_wire(
    std::span<const std::uint8_t> query_wire, net::LatLon source,
    std::uint64_t route_key, net::SimTime now, Transport transport,
    dns::WireArena& arena, int vp_id, const anycast::RouteBias& bias) {
  auto view = dns::MessageView::parse(query_wire);
  if (!view) return {};
  // handle() reads only the header, the questions, and the EDNS state, so
  // the query's RR sections are never materialized.
  dns::DnsMessage query;
  query.header = view->header();
  query.questions.reserve(view->question_count());
  view->for_each_question([&query](const dns::MessageView::QuestionView& q) {
    query.questions.push_back(
        dns::Question{q.name.materialize(), q.type, q.qclass});
  });
  query.edns = view->edns();
  return dns::encode_into(
      handle(query, source, route_key, now, transport, vp_id, bias), arena);
}

}  // namespace netclients::googledns
