#pragma once

#include "anycast/pop.h"
#include "dns/name.h"
#include "net/prefix.h"
#include "net/sim_time.h"

namespace netclients::googledns {

/// Source of client-driven DNS arrival rates, implemented by the world
/// model (sim::WorldActivityModel).
///
/// `arrival_rate` returns the aggregate Poisson rate (queries per second)
/// at which clients whose queries anycast to `pop` resolve `domain` with an
/// ECS scope falling in `scope_block`. The Google front end divides this
/// across its independent cache pools and lazily samples cache occupancy
/// from the implied renewal process — the trick that lets a laptop stand in
/// for the Internet without simulating billions of queries (see DESIGN.md).
class ClientActivityModel {
 public:
  virtual ~ClientActivityModel() = default;

  /// Long-run mean arrival rate.
  virtual double arrival_rate(anycast::PopId pop, const dns::DnsName& domain,
                              net::Prefix scope_block) const = 0;

  /// Instantaneous rate at simulated time `t` (diurnal cycles etc.).
  /// Defaults to the stationary rate.
  virtual double arrival_rate_at(anycast::PopId pop,
                                 const dns::DnsName& domain,
                                 net::Prefix scope_block,
                                 net::SimTime /*t*/) const {
    return arrival_rate(pop, domain, scope_block);
  }
};

}  // namespace netclients::googledns
