#include "netsim/fault.h"

#include "net/rng.h"

namespace netclients::netsim {

FaultDecision FaultPlane::decide(net::Ipv4Addr src, net::Ipv4Addr dst,
                                 std::uint64_t sequence,
                                 net::SimTime send_time) const {
  FaultDecision decision;
  if (!enabled()) return decision;

  for (net::Ipv4Addr hole : config_.blackholes) {
    if (hole == src || hole == dst) {
      decision.drop = true;
      decision.cause = FaultDecision::Cause::kBlackhole;
      return decision;
    }
  }
  for (const OutageWindow& outage : config_.outages) {
    if (outage.contains(send_time) && outage.matches(src, dst)) {
      decision.drop = true;
      decision.cause = FaultDecision::Cause::kOutage;
      return decision;
    }
  }

  // One RNG per datagram, keyed by its identity. Draws happen in a fixed
  // order regardless of which fault classes are enabled, so turning one
  // knob never perturbs another knob's stream.
  net::Rng rng(net::stable_seed(config_.seed, std::uint64_t{src.value()},
                                std::uint64_t{dst.value()}, sequence));
  const double loss_draw = rng.uniform();
  const double jitter_draw = rng.uniform();
  const double reorder_draw = rng.uniform();
  const double hold_draw = rng.uniform();

  if (config_.loss_probability > 0 &&
      loss_draw < config_.loss_probability) {
    decision.drop = true;
    decision.cause = FaultDecision::Cause::kLoss;
    return decision;
  }
  if (config_.jitter_max_seconds > 0) {
    decision.extra_latency += config_.jitter_max_seconds * jitter_draw;
  }
  if (config_.reorder_probability > 0 &&
      reorder_draw < config_.reorder_probability) {
    decision.reordered = true;
    decision.extra_latency += config_.reorder_window_seconds * hold_draw;
  }
  return decision;
}

}  // namespace netclients::netsim
