#include "netsim/bus.h"

#include <algorithm>

namespace netclients::netsim {

void MessageBus::attach(net::Ipv4Addr address, Handler handler) {
  handlers_.insert_or_assign(address, std::move(handler));
}

void MessageBus::detach(net::Ipv4Addr address) { handlers_.erase(address); }

void MessageBus::send(net::Ipv4Addr src, net::Ipv4Addr dst, Proto proto,
                      std::vector<std::uint8_t> payload, net::SimTime now,
                      double latency) {
  Event event;
  event.datagram.src = src;
  event.datagram.dst = dst;
  event.datagram.proto = proto;
  event.datagram.payload = std::move(payload);
  event.datagram.deliver_at = std::max(now, now_) + std::max(0.0, latency);
  event.sequence = sequence_++;
  queue_.push(std::move(event));
}

std::size_t MessageBus::run_until(net::SimTime deadline) {
  std::size_t count = 0;
  while (!queue_.empty() &&
         queue_.top().datagram.deliver_at <= deadline) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.datagram.deliver_at;
    auto it = handlers_.find(event.datagram.dst);
    if (it == handlers_.end()) {
      ++dropped_;
      continue;
    }
    // DNS-over-UDP truncation: keep the 12-byte header, set TC (bit 9 of
    // the flags word), drop the rest. The receiver sees a valid but
    // truncated message and retries over TCP.
    if (event.datagram.proto == Proto::kUdp &&
        event.datagram.payload.size() > udp_mtu_) {
      event.datagram.payload.resize(12);
      event.datagram.payload[2] |= 0x02;  // TC
      // Zero the section counts: the records were dropped.
      for (std::size_t i = 4; i < 12; ++i) event.datagram.payload[i] = 0;
      ++truncated_;
    }
    ++delivered_;
    ++count;
    it->second(event.datagram, now_);
  }
  now_ = std::max(now_, deadline);
  return count;
}

}  // namespace netclients::netsim
