#include "netsim/bus.h"

#include <algorithm>

#include "core/obs/obs.h"

namespace netclients::netsim {

void BusStats::publish() const {
  obs::Registry& registry = obs::Registry::global();
  registry.counter("netsim.bus.sent").add(sent);
  registry.counter("netsim.bus.delivered").add(delivered);
  registry.counter("netsim.bus.dropped").add(dropped);
  registry.counter("netsim.bus.truncated").add(truncated);
  registry.counter("netsim.bus.lost").add(lost);
  registry.counter("netsim.bus.blackholed").add(blackholed);
  registry.counter("netsim.bus.outage_dropped").add(outage_dropped);
  registry.counter("netsim.bus.reordered").add(reordered);
}

void MessageBus::attach(net::Ipv4Addr address, Handler handler) {
  handlers_.insert_or_assign(address, std::move(handler));
}

void MessageBus::detach(net::Ipv4Addr address) { handlers_.erase(address); }

void MessageBus::send(net::Ipv4Addr src, net::Ipv4Addr dst, Proto proto,
                      std::vector<std::uint8_t> payload, net::SimTime now,
                      double latency) {
  ++stats_.sent;
  // The sequence number is consumed before the fault verdict so a dropped
  // datagram still advances the stream: verdicts stay keyed to the same
  // identities whether or not earlier datagrams survived.
  const std::uint64_t sequence = sequence_++;
  const net::SimTime send_time = std::max(now, now_);
  double extra_latency = 0;
  if (faults_.enabled()) {
    const FaultDecision verdict =
        faults_.decide(src, dst, sequence, send_time);
    if (verdict.drop) {
      switch (verdict.cause) {
        case FaultDecision::Cause::kLoss: ++stats_.lost; break;
        case FaultDecision::Cause::kBlackhole: ++stats_.blackholed; break;
        case FaultDecision::Cause::kOutage: ++stats_.outage_dropped; break;
        case FaultDecision::Cause::kNone: break;
      }
      return;
    }
    if (verdict.reordered) ++stats_.reordered;
    extra_latency = verdict.extra_latency;
  }
  Event event;
  event.datagram.src = src;
  event.datagram.dst = dst;
  event.datagram.proto = proto;
  event.datagram.payload = std::move(payload);
  event.datagram.deliver_at =
      send_time + std::max(0.0, latency) + extra_latency;
  event.sequence = sequence;
  queue_.push(std::move(event));
}

std::size_t MessageBus::run_until(net::SimTime deadline) {
  std::size_t count = 0;
  while (!queue_.empty() &&
         queue_.top().datagram.deliver_at <= deadline) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.datagram.deliver_at;
    auto it = handlers_.find(event.datagram.dst);
    if (it == handlers_.end()) {
      ++stats_.dropped;
      continue;
    }
    // DNS-over-UDP truncation: keep the 12-byte header, set TC (bit 9 of
    // the flags word), drop the rest. The receiver sees a valid but
    // truncated message and retries over TCP.
    if (event.datagram.proto == Proto::kUdp &&
        event.datagram.payload.size() > udp_mtu_) {
      event.datagram.payload.resize(12);
      event.datagram.payload[2] |= 0x02;  // TC
      // Zero the section counts: the records were dropped.
      for (std::size_t i = 4; i < 12; ++i) event.datagram.payload[i] = 0;
      ++stats_.truncated;
    }
    ++stats_.delivered;
    ++count;
    it->second(event.datagram, now_);
  }
  now_ = std::max(now_, deadline);
  return count;
}

}  // namespace netclients::netsim
