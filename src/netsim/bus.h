#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "net/sim_time.h"

namespace netclients::netsim {

/// Transport of a datagram on the bus.
enum class Proto : std::uint8_t { kUdp, kTcp };

/// A datagram in flight: raw bytes between two IPv4 endpoints. The bus is
/// deliberately minimal — enough to exercise the DNS wire codec end to end
/// (prober ↔ resolver ↔ authoritative) with realistic latency ordering and
/// the classic UDP 512-byte truncation rule.
struct Datagram {
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  Proto proto = Proto::kUdp;
  std::vector<std::uint8_t> payload;
  net::SimTime deliver_at = 0;
};

/// A discrete-event message bus connecting endpoints by IPv4 address.
///
/// Endpoints register a handler; `send` enqueues a datagram with a caller-
/// chosen latency; `run_until` delivers events in timestamp order (FIFO on
/// ties). Handlers may send further datagrams (replies). Classic DNS UDP
/// semantics are applied on delivery: payloads over `udp_mtu` bytes are
/// truncated to the 12-byte header with the TC bit set, signalling the
/// sender to retry over TCP — exactly the dance a real stub performs.
class MessageBus {
 public:
  using Handler = std::function<void(const Datagram&, net::SimTime now)>;

  explicit MessageBus(std::size_t udp_mtu = 512) : udp_mtu_(udp_mtu) {}

  /// Registers (or replaces) the handler for an address.
  void attach(net::Ipv4Addr address, Handler handler);
  void detach(net::Ipv4Addr address);

  /// Enqueues a datagram for delivery `latency` seconds from `now`.
  void send(net::Ipv4Addr src, net::Ipv4Addr dst, Proto proto,
            std::vector<std::uint8_t> payload, net::SimTime now,
            double latency);

  /// Delivers all events with timestamp <= deadline; returns the number
  /// delivered. Datagrams to unattached addresses are counted as dropped.
  std::size_t run_until(net::SimTime deadline);

  /// True when no events remain queued.
  bool idle() const { return queue_.empty(); }
  net::SimTime now() const { return now_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t truncated() const { return truncated_; }

 private:
  struct Event {
    Datagram datagram;
    std::uint64_t sequence;  // FIFO tie-break
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.datagram.deliver_at != b.datagram.deliver_at) {
        return a.datagram.deliver_at > b.datagram.deliver_at;
      }
      return a.sequence > b.sequence;
    }
  };

  std::size_t udp_mtu_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_map<net::Ipv4Addr, Handler> handlers_;
  net::SimTime now_ = 0;
  std::uint64_t sequence_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t truncated_ = 0;
};

}  // namespace netclients::netsim
