#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "net/sim_time.h"
#include "netsim/fault.h"

namespace netclients::netsim {

/// Transport of a datagram on the bus.
enum class Proto : std::uint8_t { kUdp, kTcp };

/// A datagram in flight: raw bytes between two IPv4 endpoints. The bus is
/// deliberately minimal — enough to exercise the DNS wire codec end to end
/// (prober ↔ resolver ↔ authoritative) with realistic latency ordering and
/// the classic UDP 512-byte truncation rule.
struct Datagram {
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  Proto proto = Proto::kUdp;
  std::vector<std::uint8_t> payload;
  net::SimTime deliver_at = 0;
};

/// One snapshot of everything the bus has counted. Replaces the old
/// delivered()/dropped()/truncated() getters: a single struct callers can
/// diff across run_until calls and publish to the metrics registry.
struct BusStats {
  std::uint64_t sent = 0;        // send() calls, faulted or not
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;     // no handler attached at the destination
  std::uint64_t truncated = 0;   // UDP > MTU, TC bit set
  std::uint64_t lost = 0;        // FaultPlane packet loss
  std::uint64_t blackholed = 0;  // FaultPlane endpoint blackhole
  std::uint64_t outage_dropped = 0;  // FaultPlane scheduled outage
  std::uint64_t reordered = 0;   // held back by a reorder window

  /// Registers the snapshot's values as `netsim.bus.*` counters in the
  /// global obs registry. Opt-in (the bus never touches the registry
  /// itself) so pipelines that don't use the bus keep their exported
  /// metric name set unchanged. Call once per run.
  void publish() const;
};

/// A discrete-event message bus connecting endpoints by IPv4 address.
///
/// Endpoints register a handler; `send` enqueues a datagram with a caller-
/// chosen latency; `run_until` delivers events in timestamp order (FIFO on
/// ties). Handlers may send further datagrams (replies). Classic DNS UDP
/// semantics are applied on delivery: payloads over `udp_mtu` bytes are
/// truncated to the 12-byte header with the TC bit set, signalling the
/// sender to retry over TCP — exactly the dance a real stub performs.
///
/// An optional FaultPlane sits at the send edge: loss, jitter, reordering,
/// blackholes and outage windows, each verdict keyed by (seed, src, dst,
/// sequence) so a faulty run replays byte-identically.
class MessageBus {
 public:
  using Handler = std::function<void(const Datagram&, net::SimTime now)>;

  explicit MessageBus(std::size_t udp_mtu = 512) : udp_mtu_(udp_mtu) {}

  /// Registers (or replaces) the handler for an address.
  void attach(net::Ipv4Addr address, Handler handler);
  void detach(net::Ipv4Addr address);

  /// Installs (or replaces) the fault plane. A default FaultConfig — all
  /// rates zero — restores perfect delivery.
  void set_faults(FaultConfig config) { faults_ = FaultPlane(std::move(config)); }
  const FaultPlane& faults() const { return faults_; }

  /// Enqueues a datagram for delivery `latency` seconds from `now`.
  void send(net::Ipv4Addr src, net::Ipv4Addr dst, Proto proto,
            std::vector<std::uint8_t> payload, net::SimTime now,
            double latency);

  /// Delivers all events with timestamp <= deadline; returns the number
  /// delivered. Datagrams to unattached addresses are counted as dropped.
  std::size_t run_until(net::SimTime deadline);

  /// True when no events remain queued.
  bool idle() const { return queue_.empty(); }
  /// Delivery time of the earliest queued event (nullopt when idle). Lets
  /// a synchronous caller pump the bus event-by-event —
  /// `run_until(*next_event_time())` — without overshooting its virtual
  /// clock past the arrival it is waiting for.
  std::optional<net::SimTime> next_event_time() const {
    if (queue_.empty()) return std::nullopt;
    return queue_.top().datagram.deliver_at;
  }
  net::SimTime now() const { return now_; }
  const BusStats& stats() const { return stats_; }

 private:
  struct Event {
    Datagram datagram;
    std::uint64_t sequence;  // FIFO tie-break
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.datagram.deliver_at != b.datagram.deliver_at) {
        return a.datagram.deliver_at > b.datagram.deliver_at;
      }
      return a.sequence > b.sequence;
    }
  };

  std::size_t udp_mtu_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_map<net::Ipv4Addr, Handler> handlers_;
  FaultPlane faults_;
  net::SimTime now_ = 0;
  std::uint64_t sequence_ = 0;
  BusStats stats_;
};

}  // namespace netclients::netsim
