#pragma once

// Shared bus-attachment plumbing for request/reply endpoints.
//
// Every datagram service on the bus — the two DNS front ends in
// dns_endpoint.h and the netsvc query server — follows the same shape:
// receive a datagram, compute an optional reply payload, and send it back
// to the source over the transport the request arrived on, after a fixed
// service latency. `attach_payload_endpoint` is that shape, factored out
// once: the per-service code shrinks to a pure bytes-in/bytes-out
// function, and the reply-routing rules (same proto, back to d.src, empty
// payload means drop) live in a single place.

#include <cstdint>
#include <functional>
#include <span>

#include "net/ipv4.h"
#include "netsim/bus.h"

namespace netclients::netsim {

/// What a payload endpoint's handler returns for one request datagram.
struct PayloadReply {
  /// Reply bytes; empty means no reply (the request is silently dropped).
  /// The span must stay valid until the handler returns — the bus copies
  /// it into the outgoing datagram — so arena-backed storage recycled on
  /// the *next* request is fine.
  std::span<const std::uint8_t> payload;
  /// Seconds between receiving the request and the reply leaving.
  double latency = 0.01;
};

/// Bytes-in/bytes-out service function: one request datagram, one
/// optional reply.
using PayloadHandler =
    std::function<PayloadReply(const Datagram& request, net::SimTime now)>;

/// Attaches `handler` to the bus at `address`. Replies ride the incoming
/// datagram's transport back to its source. Everything the handler
/// captures must outlive the bus registration.
void attach_payload_endpoint(MessageBus& bus, net::Ipv4Addr address,
                             PayloadHandler handler);

}  // namespace netclients::netsim
