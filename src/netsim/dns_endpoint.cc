#include "netsim/dns_endpoint.h"

#include <cassert>
#include <memory>
#include <utility>

#include "dns/packet.h"
#include "dns/wire.h"
#include "netsim/endpoint.h"

namespace netclients::netsim {
namespace {

googledns::Transport transport_of(Proto proto) {
  return proto == Proto::kTcp ? googledns::Transport::kTcp
                              : googledns::Transport::kUdp;
}

}  // namespace

void attach_google_dns(MessageBus& bus, net::Ipv4Addr address,
                       googledns::GooglePublicDns& server,
                       GoogleEndpointOptions options) {
  assert(options.locate);
  // The bus delivers on one thread; the arena lives with the handler and
  // is recycled across every packet this endpoint answers. The structured
  // path materializes into it too, so both modes return arena-backed
  // spans.
  auto arena = std::make_shared<dns::WireArena>();
  attach_payload_endpoint(
      bus, address,
      [&server, arena, options = std::move(options)](
          const Datagram& d, net::SimTime now) -> PayloadReply {
        const net::LatLon where = options.locate(d.src);
        if (options.mode == DnsWireMode::kWire) {
          const auto reply =
              server.handle_wire(d.payload, where, d.src.value(), now,
                                 transport_of(d.proto), *arena,
                                 options.vp_id);
          return {reply, options.reply_latency};  // empty: dropped
        }
        const auto query = dns::decode(d.payload);
        if (!query.ok) return {};
        const auto response =
            server.handle(query.message, where, d.src.value(), now,
                          transport_of(d.proto), options.vp_id);
        return {dns::encode_into(response, *arena), options.reply_latency};
      });
}

void attach_authoritative(MessageBus& bus, net::Ipv4Addr address,
                          const dnssrv::AuthoritativeServer& server,
                          AuthoritativeEndpointOptions options) {
  auto arena = std::make_shared<dns::WireArena>();
  attach_payload_endpoint(
      bus, address,
      [&server, arena, options](const Datagram& d,
                                net::SimTime now) -> PayloadReply {
        (void)now;
        if (options.mode == DnsWireMode::kWire) {
          const auto reply =
              server.handle_wire(d.payload, options.epoch, *arena);
          return {reply, options.reply_latency};  // empty: dropped
        }
        const auto query = dns::decode(d.payload);
        if (!query.ok) return {};
        return {dns::encode_into(server.handle(query.message, options.epoch),
                                 *arena),
                options.reply_latency};
      });
}

}  // namespace netclients::netsim
