#include "netsim/dns_endpoint.h"

#include <cassert>
#include <memory>
#include <utility>

#include "dns/packet.h"
#include "dns/wire.h"

namespace netclients::netsim {
namespace {

googledns::Transport transport_of(Proto proto) {
  return proto == Proto::kTcp ? googledns::Transport::kTcp
                              : googledns::Transport::kUdp;
}

}  // namespace

void attach_google_dns(MessageBus& bus, net::Ipv4Addr address,
                       googledns::GooglePublicDns& server,
                       GoogleEndpointOptions options) {
  assert(options.locate);
  // The bus delivers on one thread; the arena lives with the handler and
  // is recycled across every packet this endpoint answers.
  auto arena = std::make_shared<dns::WireArena>();
  bus.attach(address, [&bus, &server, address, arena,
                       options = std::move(options)](const Datagram& d,
                                                     net::SimTime now) {
    const net::LatLon where = options.locate(d.src);
    if (options.mode == DnsWireMode::kWire) {
      const auto reply =
          server.handle_wire(d.payload, where, d.src.value(), now,
                             transport_of(d.proto), *arena, options.vp_id);
      if (reply.empty()) return;  // unparseable query: dropped
      bus.send(address, d.src, d.proto, {reply.begin(), reply.end()}, now,
               options.reply_latency);
      return;
    }
    const auto query = dns::decode(d.payload);
    if (!query.ok) return;
    const auto response =
        server.handle(query.message, where, d.src.value(), now,
                      transport_of(d.proto), options.vp_id);
    bus.send(address, d.src, d.proto, dns::encode(response), now,
             options.reply_latency);
  });
}

void attach_authoritative(MessageBus& bus, net::Ipv4Addr address,
                          const dnssrv::AuthoritativeServer& server,
                          AuthoritativeEndpointOptions options) {
  auto arena = std::make_shared<dns::WireArena>();
  bus.attach(address, [&bus, &server, address, arena,
                       options](const Datagram& d, net::SimTime now) {
    if (options.mode == DnsWireMode::kWire) {
      const auto reply = server.handle_wire(d.payload, options.epoch, *arena);
      if (reply.empty()) return;  // unparseable query: dropped
      bus.send(address, d.src, d.proto, {reply.begin(), reply.end()}, now,
               options.reply_latency);
      return;
    }
    const auto query = dns::decode(d.payload);
    if (!query.ok) return;
    bus.send(address, d.src, d.proto,
             dns::encode(server.handle(query.message, options.epoch)), now,
             options.reply_latency);
  });
}

}  // namespace netclients::netsim
