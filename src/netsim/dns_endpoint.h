#pragma once

// DNS services as bus endpoints. The bus has always carried raw bytes;
// these helpers put the two resolver front ends behind addresses so that
// every query/response crosses the wire as an RFC 1035 packet. Each
// endpoint runs in one of two modes, byte-identical on the wire:
//
//  * kWire — the zero-copy path: MessageView parse of the incoming packet,
//    arena-backed encode of the reply (no per-message codec allocation;
//    the bus still owns its payload copies).
//  * kStructured — the legacy compatibility path: decode → handle →
//    encode, materializing a DnsMessage both ways.
//
// Unparseable queries are dropped (no reply) in both modes — the same
// packets, since both paths share one validation pass.

#include <cstdint>
#include <functional>

#include "dnssrv/authoritative.h"
#include "googledns/google_dns.h"
#include "net/ipv4.h"
#include "netsim/bus.h"

namespace netclients::netsim {

/// Codec path an attached DNS endpoint uses (wire-identical either way).
enum class DnsWireMode : std::uint8_t { kWire, kStructured };

/// Options for a Google Public DNS bus endpoint.
struct GoogleEndpointOptions {
  DnsWireMode mode = DnsWireMode::kWire;
  int vp_id = 0;
  /// Seconds between receiving a query and the reply leaving.
  double reply_latency = 0.01;
  /// Maps a datagram's source address to the client's location — the
  /// anycast ingress signal. Required.
  std::function<net::LatLon(net::Ipv4Addr)> locate;
};

/// Attaches `server` to the bus at `address`. Replies ride the incoming
/// datagram's transport back to its source. The server must outlive the
/// bus registration.
void attach_google_dns(MessageBus& bus, net::Ipv4Addr address,
                       googledns::GooglePublicDns& server,
                       GoogleEndpointOptions options);

/// Options for an authoritative-server bus endpoint.
struct AuthoritativeEndpointOptions {
  DnsWireMode mode = DnsWireMode::kWire;
  std::uint32_t epoch = 0;
  double reply_latency = 0.01;
};

/// Attaches `server` to the bus at `address` (outliving the registration).
void attach_authoritative(MessageBus& bus, net::Ipv4Addr address,
                          const dnssrv::AuthoritativeServer& server,
                          AuthoritativeEndpointOptions options = {});

}  // namespace netclients::netsim
