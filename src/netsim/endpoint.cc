#include "netsim/endpoint.h"

#include <utility>
#include <vector>

namespace netclients::netsim {

void attach_payload_endpoint(MessageBus& bus, net::Ipv4Addr address,
                             PayloadHandler handler) {
  bus.attach(address, [&bus, address, handler = std::move(handler)](
                          const Datagram& d, net::SimTime now) {
    const PayloadReply reply = handler(d, now);
    if (reply.payload.empty()) return;
    bus.send(address, d.src, d.proto,
             std::vector<std::uint8_t>(reply.payload.begin(),
                                       reply.payload.end()),
             now, reply.latency);
  });
}

}  // namespace netclients::netsim
