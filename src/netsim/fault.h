#pragma once

// Deterministic fault-injection plane for the message bus.
//
// Every decision is a pure function of (seed, src, dst, sequence) — never
// of wall clock, thread identity, or delivery order — so a faulty run is
// byte-identical at any REPRO_THREADS, composing with the exec engine's
// shard-RNG discipline (DESIGN.md "Concurrency model").

#include <cstdint>
#include <vector>

#include "net/ipv4.h"
#include "net/sim_time.h"

namespace netclients::netsim {

/// A scheduled window of total failure on matching traffic. With a zero
/// address the outage is global; otherwise it applies to datagrams whose
/// source or destination equals the address (a link/endpoint outage).
struct OutageWindow {
  net::SimTime begin = 0;
  net::SimTime end = 0;
  net::Ipv4Addr address{0};

  bool contains(net::SimTime t) const { return t >= begin && t < end; }
  bool matches(net::Ipv4Addr src, net::Ipv4Addr dst) const {
    return address.value() == 0 || address == src || address == dst;
  }
};

struct FaultConfig {
  std::uint64_t seed = 0xFA17;
  /// Independent per-datagram drop probability.
  double loss_probability = 0;
  /// Extra delivery latency, uniform in [0, jitter_max_seconds).
  double jitter_max_seconds = 0;
  /// Chance a datagram is additionally held back — delivered up to
  /// `reorder_window_seconds` late, letting later sends overtake it.
  double reorder_probability = 0;
  double reorder_window_seconds = 0;
  /// Endpoints that silently eat all traffic to or from them.
  std::vector<net::Ipv4Addr> blackholes;
  std::vector<OutageWindow> outages;

  bool enabled() const {
    return loss_probability > 0 || jitter_max_seconds > 0 ||
           reorder_probability > 0 || !blackholes.empty() ||
           !outages.empty();
  }
};

/// Verdict for one datagram.
struct FaultDecision {
  enum class Cause : std::uint8_t { kNone, kLoss, kBlackhole, kOutage };

  bool drop = false;
  Cause cause = Cause::kNone;
  double extra_latency = 0;  // jitter plus any reorder hold-back
  bool reordered = false;
};

/// The fault oracle the bus consults once per send. Stateless beyond its
/// config: two planes with the same config give identical verdicts, and a
/// datagram's verdict never depends on any other datagram.
class FaultPlane {
 public:
  FaultPlane() = default;
  explicit FaultPlane(FaultConfig config) : config_(std::move(config)) {}

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  /// Decides the fate of datagram `sequence` from `src` to `dst` entering
  /// the network at `send_time` (outage windows are tested against the
  /// send time: a datagram sent into an outage is lost).
  FaultDecision decide(net::Ipv4Addr src, net::Ipv4Addr dst,
                       std::uint64_t sequence,
                       net::SimTime send_time) const;

 private:
  FaultConfig config_;
};

}  // namespace netclients::netsim
