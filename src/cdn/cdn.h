#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "anycast/pop.h"
#include "sim/world.h"

namespace netclients::cdn {

/// Options for one simulated observation window at the Microsoft-style CDN.
struct CdnOptions {
  std::uint64_t seed = 0xCD4;
  double days = 1.0;  // the paper compares "a full day" of each dataset
};

/// The three privileged validation datasets of §4, as the CDN would collect
/// them:
///  * `client_volume` (Microsoft clients): HTTP(S) requests per client /24;
///  * `resolver_clients` (Microsoft resolvers): distinct client addresses
///    observed behind each recursive-resolver /24 (plus the per-address
///    map used for Google PoP verification, Appendix A.1);
///  * `ecs_prefixes` (cloud ECS prefixes): client /24s appearing as ECS in
///    queries to the Traffic Manager authoritative (only resolvers that
///    forward ECS — i.e. Google Public DNS — contribute).
struct CdnObservation {
  std::unordered_map<std::uint32_t, double> client_volume;
  std::unordered_map<std::uint32_t, double> resolver_clients;
  std::unordered_map<std::uint32_t, double> resolver_addr_clients;  // by addr
  std::unordered_set<std::uint32_t> ecs_prefixes;
  /// Distinct client-IP count per Google PoP egress (Appendix A.1's
  /// "which unprobed PoPs actually serve users" check).
  std::unordered_map<anycast::PopId, double> google_pop_clients;
};

CdnObservation observe_cdn(const sim::World& world, const CdnOptions& options);

}  // namespace netclients::cdn
