#include "cdn/cdn.h"

#include <cmath>

#include "net/rng.h"
#include "sim/domains.h"

namespace netclients::cdn {

using sim::Slash24Block;

CdnObservation observe_cdn(const sim::World& world,
                           const CdnOptions& options) {
  CdnObservation obs;
  const sim::WorldConfig& cfg = world.config();

  for (const Slash24Block& block : world.blocks()) {
    if (block.as_index == Slash24Block::kNoAs) continue;
    const sim::AsEntry& as = world.ases()[block.as_index];
    const double mult =
        world.country_domain_multiplier(block.country, sim::kDomainMsCdn);
    net::Rng rng(net::stable_seed(options.seed, 0xCD40u, block.index));

    // ---- Microsoft clients: HTTP request volume per /24 -----------------
    const double http_rate =
        (block.users * cfg.ms_cdn_http_per_user_per_day * mult +
         block.bot_users * cfg.ms_cdn_http_per_user_per_day) *
        options.days;
    if (http_rate > 0) {
      const double observed = http_rate < 50
                                  ? static_cast<double>(rng.poisson(http_rate))
                                  : http_rate * rng.uniform(0.9, 1.1);
      if (observed >= 1) obs.client_volume.emplace(block.index, observed);
    }

    // ---- cloud ECS prefixes: /24s surfacing as ECS at the authoritative -
    // Only Google Public DNS forwards ECS; a /24 appears if at least one of
    // its Google-DNS clients resolved the Traffic Manager domain.
    const double ecs_rate =
        (block.users * as.google_dns_share + block.bot_users * 0.45) *
        cfg.ms_cdn_dns_per_user_per_day * mult * options.days;
    if (ecs_rate > 0 && rng.uniform() < -std::expm1(-ecs_rate)) {
      obs.ecs_prefixes.insert(block.index);
    }

    // ---- Microsoft resolvers: block-level visible resolvers --------------
    if (block.ms_visible_resolver) {
      const double isp_share = std::max(
          0.0, 1.0 - as.google_dns_share - as.other_public_share);
      const double local_users = block.users * isp_share;
      const double query_rate = local_users *
                                cfg.ms_cdn_dns_per_user_per_day * mult *
                                options.days;
      if (query_rate > 0 && rng.uniform() < -std::expm1(-query_rate)) {
        // Distinct clients ≈ users who queried at least once.
        const double clients =
            local_users * -std::expm1(-cfg.ms_cdn_dns_per_user_per_day *
                                      mult * options.days);
        const std::uint32_t addr = (block.index << 8) + 1;
        obs.resolver_clients[block.index] += std::max(1.0, clients);
        obs.resolver_addr_clients[addr] += std::max(1.0, clients);
      }
    }
  }

  // ---- Central resolver endpoints + public DNS front ends ----------------
  for (const sim::ResolverEndpoint& ep : world.resolver_endpoints()) {
    // The CDN authoritative sees the endpoint if any served user resolved
    // the CDN domain — near-certain except for minuscule resolvers.
    net::Rng rng(net::stable_seed(options.seed, 0xCD41u,
                                  ep.address.value()));
    const double query_rate = (ep.served_users + 1e-9) *
                              cfg.ms_cdn_dns_per_user_per_day * options.days;
    if (rng.uniform() >= -std::expm1(-query_rate)) continue;
    const double clients =
        ep.served_users *
        -std::expm1(-cfg.ms_cdn_dns_per_user_per_day * options.days);
    const std::uint32_t slash24 = ep.address.slash24_index();
    obs.resolver_clients[slash24] += std::max(1.0, clients);
    obs.resolver_addr_clients[ep.address.value()] += std::max(1.0, clients);
    if (ep.pop != anycast::kNoPop) {
      obs.google_pop_clients[ep.pop] += std::max(1.0, clients);
    }
  }
  return obs;
}

}  // namespace netclients::cdn
