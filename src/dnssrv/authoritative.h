#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "dns/message.h"
#include "dns/packet.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"
#include "net/rng.h"

namespace netclients::dnssrv {

/// Configuration of one ECS-aware zone served by an authoritative server.
///
/// Scope behaviour models what the paper measured on real authoritatives
/// (§3.1.1, Appendix A.2): responses carry a scope that is often *less
/// specific* than the /24 query scope (Wikipedia answers /16–/18, Google/
/// YouTube/Facebook /20–/24), scopes are consistent across queries within
/// the same scope block, and they are *mostly* stable over time — an epoch
/// re-roll with probability `scope_drift_probability` reproduces the ~10%
/// of hits whose response scope differs from the discovered query scope
/// (Table 2).
struct ZoneConfig {
  dns::DnsName name;
  std::uint32_t ttl_seconds = 300;
  bool supports_ecs = true;
  std::uint8_t min_scope = 16;  // least specific scope the zone ever returns
  std::uint8_t max_scope = 24;  // most specific
  double stop_probability = 0.45;  // per-level chance the scope stops early
  double scope_drift_probability = 0.0;
  std::uint64_t seed = 0;
};

/// The answer an authoritative gives for an ECS query, in direct-API form.
struct EcsAnswer {
  net::Ipv4Addr address;      // the A record (synthetic, scope-dependent)
  std::uint8_t scope_length;  // RFC 7871 scope the answer is valid for
  std::uint32_t ttl;
};

/// Outcome of one query attempt against the server's front end.
enum class QueryOutcome : std::uint8_t { kOk, kServfail, kTimeout };

/// Deterministic failure injection at the server's query edge. Outcomes
/// are pure functions of (seed, zone, prefix, epoch, attempt) — the zone
/// data and the scope computation stay untouched, so a retry (a new
/// attempt number) can deterministically succeed where the first try
/// failed, and runs stay byte-identical at any REPRO_THREADS. All-zero
/// defaults mean every query succeeds, exactly as before.
struct UpstreamFaults {
  double servfail_probability = 0;
  double timeout_probability = 0;
  std::uint64_t seed = 0x5EFA11;

  bool enabled() const {
    return servfail_probability > 0 || timeout_probability > 0;
  }
};

/// An ECS-enabled authoritative DNS server for a set of zones.
///
/// Deterministic: the scope returned for a given (zone, prefix, epoch) is a
/// pure function of the zone seed, so the scope-discovery pass of the
/// cache-probing pipeline sees exactly what Google Public DNS caches later
/// (minus deliberate drift).
class AuthoritativeServer {
 public:
  void add_zone(ZoneConfig config);
  bool serves(const dns::DnsName& name) const;
  const ZoneConfig* zone(const dns::DnsName& name) const;

  /// Heterogeneous lookup straight from packet bytes: hashes/compares the
  /// in-packet name (lowercasing on the fly) without materializing a
  /// DnsName — the zero-copy front door for wire-mode consumers.
  const ZoneConfig* zone(const dns::NameView& name) const;

  /// Injectable failure modes (SERVFAIL / timeout) applied at the query
  /// edge. Consumers ask `query_outcome` before resolve/scope_for; a
  /// default-constructed UpstreamFaults restores perfect service.
  void set_faults(UpstreamFaults faults) { faults_ = faults; }
  const UpstreamFaults& faults() const { return faults_; }

  /// The fate of attempt `attempt` of a query for (name, prefix) in
  /// `epoch`. Pure function of the fault seed and its arguments.
  QueryOutcome query_outcome(const dns::DnsName& name,
                             net::Prefix client_prefix, std::uint32_t epoch,
                             std::uint64_t attempt) const;

  /// Optional BGP topology (announced prefix → opaque value). Real CDN
  /// mapping systems derive ECS scopes from routing aggregates, so a scope
  /// never spans multiple announcements: when set, response scopes are
  /// clamped to be at least as specific as the announced prefix containing
  /// the client. The pointee must outlive the server.
  void set_topology(const net::PrefixTrie<std::uint32_t>* topology) {
    topology_ = topology;
  }

  /// Direct-API resolution used by the resolver front ends and at bench
  /// scale. `epoch` distinguishes the scope-discovery pass from the probing
  /// campaign (Table 2 measures the drift between them). Returns nullopt
  /// for unknown zones.
  std::optional<EcsAnswer> resolve(const dns::DnsName& name,
                                   net::Prefix client_prefix,
                                   std::uint32_t epoch = 0) const;

  /// The scope length the zone would assign to `client_prefix` (without the
  /// synthetic answer). Exposed separately because scope discovery is a
  /// first-class pipeline stage.
  std::optional<std::uint8_t> scope_for(const dns::DnsName& name,
                                        net::Prefix client_prefix,
                                        std::uint32_t epoch = 0) const;

  /// Wire-level entry point: parses nothing itself (callers decode), takes
  /// a query message and produces the authoritative response, including the
  /// echoed ECS option with the assigned scope.
  dns::DnsMessage handle(const dns::DnsMessage& query,
                         std::uint32_t epoch = 0) const;

  /// RFC 1035 wire front end: parses the query packet in place, answers via
  /// `handle`, and encodes the response into `arena` (no allocation at
  /// steady state). Returns an empty span for unparseable queries — the
  /// same packets a structured-mode caller would have dropped at decode.
  /// The result borrows the arena and is invalidated by the next encode
  /// into it. Byte-identical to encode(handle(decode(wire))) by
  /// construction: the response depends only on the query's header,
  /// questions, and EDNS state, so the query's RR sections stay unread.
  std::span<const std::uint8_t> handle_wire(
      std::span<const std::uint8_t> query_wire, std::uint32_t epoch,
      dns::WireArena& arena) const;

 private:
  /// Transparent hashing so `zones_` accepts both owning DnsName keys and
  /// borrowed NameView probes (which canonicalize raw packet bytes on the
  /// fly to the identical hash).
  struct ZoneKeyHash {
    using is_transparent = void;
    std::size_t operator()(const dns::DnsName& name) const {
      return static_cast<std::size_t>(name.hash());
    }
    std::size_t operator()(const dns::NameView& name) const {
      return static_cast<std::size_t>(name.canonical_hash());
    }
  };
  struct ZoneKeyEq {
    using is_transparent = void;
    bool operator()(const dns::DnsName& a, const dns::DnsName& b) const {
      return a == b;
    }
    bool operator()(const dns::NameView& a, const dns::DnsName& b) const {
      return a.equals(b);
    }
    bool operator()(const dns::DnsName& a, const dns::NameView& b) const {
      return b.equals(a);
    }
  };

  std::uint8_t base_scope(const ZoneConfig& zone,
                          net::Prefix client_prefix) const;
  std::uint8_t scoped(const ZoneConfig& zone, net::Prefix client_prefix,
                      std::uint32_t epoch) const;

  std::unordered_map<dns::DnsName, ZoneConfig, ZoneKeyHash, ZoneKeyEq> zones_;
  const net::PrefixTrie<std::uint32_t>* topology_ = nullptr;
  UpstreamFaults faults_;
};

}  // namespace netclients::dnssrv
