#include "dnssrv/cache.h"

namespace netclients::dnssrv {

const CacheEntry* DnsCache::lookup(const CacheKey& key, net::SimTime now) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second.entry.expires_at <= now) {
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return &it->second.entry;
}

void DnsCache::insert(const CacheKey& key, CacheEntry entry) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  if (map_.size() >= capacity_ && !lru_.empty()) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(key);
  map_.emplace(key, Slot{std::move(entry), lru_.begin()});
}

void DnsCache::clear() {
  map_.clear();
  lru_.clear();
}

}  // namespace netclients::dnssrv
