#include "dnssrv/cache.h"

#include "core/obs/obs.h"

namespace netclients::dnssrv {

namespace {

// Fleet-wide cache telemetry, aggregated across every DnsCache instance
// (each Google PoP pool, each ISP resolver). Integer counters only, so
// concurrent bumps from distinct PoP shards stay deterministic in total.
struct CacheMetrics {
  obs::Counter& hits = obs::Registry::global().counter("dnssrv.cache.hit");
  obs::Counter& misses = obs::Registry::global().counter("dnssrv.cache.miss");
  obs::Counter& expirations =
      obs::Registry::global().counter("dnssrv.cache.expired");
  obs::Counter& inserts =
      obs::Registry::global().counter("dnssrv.cache.insert");
  obs::Counter& evictions =
      obs::Registry::global().counter("dnssrv.cache.evicted");

  static CacheMetrics& get() {
    static CacheMetrics metrics;
    return metrics;
  }
};

}  // namespace

const CacheEntry* DnsCache::lookup(const CacheKey& key, net::SimTime now) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    CacheMetrics::get().misses.add();
    return nullptr;
  }
  if (it->second.entry.expires_at <= now) {
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    ++misses_;
    CacheMetrics::get().misses.add();
    CacheMetrics::get().expirations.add();
    return nullptr;
  }
  ++hits_;
  CacheMetrics::get().hits.add();
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return &it->second.entry;
}

void DnsCache::insert(const CacheKey& key, CacheEntry entry) {
  CacheMetrics::get().inserts.add();
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  if (map_.size() >= capacity_ && !lru_.empty()) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    CacheMetrics::get().evictions.add();
  }
  lru_.push_front(key);
  map_.emplace(key, Slot{std::move(entry), lru_.begin()});
}

void DnsCache::clear() {
  map_.clear();
  lru_.clear();
}

}  // namespace netclients::dnssrv
