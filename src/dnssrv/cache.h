#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "dns/message.h"
#include "net/prefix.h"
#include "net/rng.h"
#include "net/sim_time.h"

namespace netclients::dnssrv {

/// Cache key for an ECS-aware resolver cache: Google Public DNS keeps one
/// entry per (name, type, ECS scope prefix) — the property that makes cache
/// probing possible at all, since a hit proves someone *in that prefix*
/// asked recently.
struct CacheKey {
  dns::DnsName name;
  dns::RecordType type = dns::RecordType::kA;
  net::Prefix scope;  // 0.0.0.0/0 for non-ECS entries

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept {
    std::uint64_t h = std::hash<dns::DnsName>{}(key.name);
    h = net::hash_combine(h, static_cast<std::uint64_t>(key.type));
    h = net::hash_combine(h, std::hash<net::Prefix>{}(key.scope));
    return static_cast<std::size_t>(h);
  }
};

struct CacheEntry {
  dns::RData rdata;
  std::uint8_t scope_length = 0;
  std::uint32_t original_ttl = 0;
  net::SimTime expires_at = 0;

  /// Remaining TTL a resolver reports when serving this entry at `now`.
  std::uint32_t remaining_ttl(net::SimTime now) const {
    return expires_at <= now
               ? 0
               : static_cast<std::uint32_t>(expires_at - now);
  }
};

/// A TTL + LRU cache, the building block of every recursive-resolver model
/// in the library (ISP resolvers and each Google Public DNS cache pool).
class DnsCache {
 public:
  explicit DnsCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the live entry or nullptr; expired entries are dropped on
  /// access. A successful lookup refreshes LRU position.
  const CacheEntry* lookup(const CacheKey& key, net::SimTime now);

  /// Inserts/overwrites; evicts the least-recently-used entry when full.
  void insert(const CacheKey& key, CacheEntry entry);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  void clear();

 private:
  using LruList = std::list<CacheKey>;
  struct Slot {
    CacheEntry entry;
    LruList::iterator lru_it;
  };

  std::size_t capacity_;
  LruList lru_;  // front = most recent
  std::unordered_map<CacheKey, Slot, CacheKeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace netclients::dnssrv
