#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "core/obs/obs.h"
#include "net/sim_time.h"

namespace netclients::dnssrv {

/// Token-bucket rate limiter in simulated time.
///
/// Google Public DNS rate-limits clients at ~1,500 QPS normally, but the
/// paper found repeated UDP queries for the same domains trip a much lower
/// limit — which is why the probing campaign uses TCP (§3.1.1). The Google
/// front end instantiates one limiter per (transport, vantage point).
class TokenBucket {
 public:
  TokenBucket(double rate_per_second, double burst)
      : rate_(rate_per_second), burst_(burst), tokens_(burst) {}

  TokenBucket(const TokenBucket& other)
      : rate_(other.rate_),
        burst_(other.burst_),
        tokens_(other.tokens_),
        last_(other.last_),
        allowed_(other.allowed_.load(std::memory_order_relaxed)),
        rejected_(other.rejected_.load(std::memory_order_relaxed)) {}

  /// Consumes one token if available. Callers must pass non-decreasing
  /// times. The bucket state is thread-confined to the flow's shard;
  /// only the diagnostic counters are safe to read from elsewhere.
  bool allow(net::SimTime now) {
    // Fleet-wide limiter telemetry across every flow's bucket (integer
    // counters: deterministic in total from concurrent shards).
    static obs::Counter& allowed_total =
        obs::Registry::global().counter("dnssrv.ratelimiter.allowed");
    static obs::Counter& dropped_total =
        obs::Registry::global().counter("dnssrv.ratelimiter.dropped");
    refill(now);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      allowed_.fetch_add(1, std::memory_order_relaxed);
      allowed_total.add();
      return true;
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    dropped_total.add();
    return false;
  }

  double tokens(net::SimTime now) {
    refill(now);
    return tokens_;
  }

  std::uint64_t allowed() const {
    return allowed_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  double rate() const { return rate_; }

 private:
  void refill(net::SimTime now) {
    if (now > last_) {
      tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
      last_ = now;
    } else if (now < last_) {
      // Campaign stages restart their schedule clocks (a new connection /
      // measurement phase); carry the token balance forward and resume
      // refilling from the new epoch.
      last_ = now;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  net::SimTime last_ = 0;
  std::atomic<std::uint64_t> allowed_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace netclients::dnssrv
