#include "dnssrv/authoritative.h"

#include <algorithm>

namespace netclients::dnssrv {

void AuthoritativeServer::add_zone(ZoneConfig config) {
  zones_.insert_or_assign(config.name, std::move(config));
}

bool AuthoritativeServer::serves(const dns::DnsName& name) const {
  return zones_.contains(name);
}

const ZoneConfig* AuthoritativeServer::zone(const dns::DnsName& name) const {
  auto it = zones_.find(name);
  return it == zones_.end() ? nullptr : &it->second;
}

const ZoneConfig* AuthoritativeServer::zone(const dns::NameView& name) const {
  auto it = zones_.find(name);
  return it == zones_.end() ? nullptr : &it->second;
}

QueryOutcome AuthoritativeServer::query_outcome(const dns::DnsName& name,
                                                net::Prefix client_prefix,
                                                std::uint32_t epoch,
                                                std::uint64_t attempt) const {
  if (!faults_.enabled()) return QueryOutcome::kOk;
  net::Rng rng(net::stable_seed(
      faults_.seed, name.hash(), std::uint64_t{client_prefix.base().value()},
      std::uint64_t{client_prefix.length()}, std::uint64_t{epoch}, attempt));
  const double draw = rng.uniform();
  if (draw < faults_.timeout_probability) return QueryOutcome::kTimeout;
  if (draw < faults_.timeout_probability + faults_.servfail_probability) {
    return QueryOutcome::kServfail;
  }
  return QueryOutcome::kOk;
}

std::uint8_t AuthoritativeServer::base_scope(const ZoneConfig& zone,
                                             net::Prefix prefix) const {
  // Hierarchical stop-walk: starting at the least specific scope the zone
  // uses, each enclosing block decides (deterministically, keyed by its own
  // identity) whether the scope "stops" at its level. Because the decision
  // for level L depends only on the level-L block containing the client
  // prefix, every /24 inside a returned scope block maps to the same scope —
  // the consistency property the probe-reduction preprocessing relies on.
  for (std::uint8_t level = zone.min_scope; level < zone.max_scope; ++level) {
    const std::uint32_t block =
        prefix.base().value() & net::Prefix::mask(level);
    const std::uint64_t h =
        net::stable_seed(zone.seed, std::uint64_t{block}, std::uint64_t{level});
    net::Rng rng(h);
    if (rng.uniform() < zone.stop_probability) return level;
  }
  return zone.max_scope;
}

std::uint8_t AuthoritativeServer::scoped(const ZoneConfig& zone,
                                         net::Prefix prefix,
                                         std::uint32_t epoch) const {
  std::uint8_t scope = base_scope(zone, prefix);
  if (zone.scope_drift_probability > 0 && epoch != 0) {
    // Occasionally the authoritative re-assigns a block's scope between
    // epochs. The drift magnitude is geometric-ish: mostly ±1..2, rarely
    // more — matching Table 2 where 90% of hits match exactly, 97% are
    // within 2, and 99% within 4.
    const std::uint32_t block =
        prefix.base().value() & net::Prefix::mask(scope);
    net::Rng rng(net::stable_seed(zone.seed ^ 0xd1f7u, std::uint64_t{block},
                                  std::uint64_t{epoch}));
    if (rng.uniform() < zone.scope_drift_probability) {
      int delta = 1 + static_cast<int>(rng.exponential(0.9));
      if (rng.bernoulli(0.5)) delta = -delta;
      int drifted = std::clamp<int>(scope + delta, zone.min_scope, 24);
      scope = static_cast<std::uint8_t>(drifted);
    }
  }
  if (topology_) {
    // Scopes follow routing aggregates: never wider than the announcement
    // containing the client prefix.
    if (auto match = topology_->longest_match(prefix.base())) {
      scope = std::max(scope, match->first.length());
    }
  }
  return scope;
}

std::optional<std::uint8_t> AuthoritativeServer::scope_for(
    const dns::DnsName& name, net::Prefix client_prefix,
    std::uint32_t epoch) const {
  const ZoneConfig* z = zone(name);
  if (!z) return std::nullopt;
  if (!z->supports_ecs) return 0;
  return scoped(*z, client_prefix, epoch);
}

std::optional<EcsAnswer> AuthoritativeServer::resolve(
    const dns::DnsName& name, net::Prefix client_prefix,
    std::uint32_t epoch) const {
  const ZoneConfig* z = zone(name);
  if (!z) return std::nullopt;
  EcsAnswer answer;
  answer.ttl = z->ttl_seconds;
  answer.scope_length = z->supports_ecs ? scoped(*z, client_prefix, epoch) : 0;
  // Synthetic CDN mapping: the answer address is a deterministic function of
  // the zone and the scope block, mimicking per-region CDN front ends.
  const std::uint32_t block =
      client_prefix.base().value() & net::Prefix::mask(answer.scope_length);
  answer.address = net::Ipv4Addr(static_cast<std::uint32_t>(
      net::stable_seed(z->seed ^ 0xA0u, std::uint64_t{block})));
  return answer;
}

dns::DnsMessage AuthoritativeServer::handle(const dns::DnsMessage& query,
                                            std::uint32_t epoch) const {
  if (query.questions.empty()) {
    return dns::make_response(query, dns::RCode::kFormErr);
  }
  const dns::Question& q = query.questions.front();
  const ZoneConfig* z = zone(q.name);
  if (!z) return dns::make_response(query, dns::RCode::kNxDomain);

  net::Prefix client_prefix;  // 0.0.0.0/0 when no ECS attached
  if (query.edns && query.edns->ecs) {
    client_prefix = query.edns->ecs->source_prefix();
  }
  auto answer = resolve(q.name, client_prefix, epoch);
  dns::DnsMessage response = dns::make_response(query, dns::RCode::kNoError);
  response.header.aa = true;
  if (q.type == dns::RecordType::kA) {
    response.answers.push_back(dns::ResourceRecord{
        q.name, dns::RecordType::kA, dns::kClassIn, answer->ttl,
        dns::AData{answer->address}});
  }
  if (response.edns && response.edns->ecs) {
    response.edns->ecs->scope_prefix_length = answer->scope_length;
  }
  return response;
}

std::span<const std::uint8_t> AuthoritativeServer::handle_wire(
    std::span<const std::uint8_t> query_wire, std::uint32_t epoch,
    dns::WireArena& arena) const {
  auto view = dns::MessageView::parse(query_wire);
  if (!view) return {};
  // handle() and make_response() read only the header, the questions, and
  // the EDNS state, so the query's RR sections are never materialized —
  // the reduced message below yields the exact response a full
  // materialize() would.
  dns::DnsMessage query;
  query.header = view->header();
  query.questions.reserve(view->question_count());
  view->for_each_question([&query](const dns::MessageView::QuestionView& q) {
    query.questions.push_back(
        dns::Question{q.name.materialize(), q.type, q.qclass});
  });
  query.edns = view->edns();
  return dns::encode_into(handle(query, epoch), arena);
}

}  // namespace netclients::dnssrv
