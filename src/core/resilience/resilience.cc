#include "core/resilience/resilience.h"

#include <algorithm>
#include <cmath>

#include "core/obs/obs.h"
#include "net/rng.h"

namespace netclients::core::resilience {

double RetryPolicy::backoff_before(int retry, std::uint64_t key) const {
  const int exponent = std::max(0, retry - 1);
  double backoff = initial_backoff_seconds *
                   std::pow(backoff_multiplier, static_cast<double>(exponent));
  backoff = std::min(backoff, max_backoff_seconds);
  const double f = std::clamp(jitter_fraction, 0.0, 1.0);
  if (f <= 0 || backoff <= 0) return backoff;
  net::Rng rng(
      net::stable_seed(seed, key, static_cast<std::uint64_t>(retry)));
  return backoff * (1.0 - f + f * rng.uniform());
}

bool CircuitBreaker::allow(net::SimTime now) {
  if (policy_.failure_threshold <= 0 || !open_) return true;
  if (now >= open_until_) return true;  // half-open: admit a trial probe
  ++skipped_;
  return false;
}

void CircuitBreaker::record_success() {
  consecutive_failures_ = 0;
  open_ = false;
}

void CircuitBreaker::record_failure(net::SimTime now) {
  if (policy_.failure_threshold <= 0) return;
  ++consecutive_failures_;
  if (open_) {
    if (now >= open_until_) {
      // The trial probe failed: re-open for a fresh window.
      open_until_ = now + policy_.open_seconds;
      ++opened_;
    }
    return;
  }
  if (consecutive_failures_ >= policy_.failure_threshold) {
    open_ = true;
    open_until_ = now + policy_.open_seconds;
    ++opened_;
  }
}

CircuitBreaker::State CircuitBreaker::state(net::SimTime now) const {
  if (!open_) return State::kClosed;
  return now >= open_until_ ? State::kHalfOpen : State::kOpen;
}

void RetryStats::merge(const RetryStats& other) {
  retries += other.retries;
  timeouts += other.timeouts;
  servfails += other.servfails;
  exhausted += other.exhausted;
  escalations += other.escalations;
  breaker_opened += other.breaker_opened;
  breaker_skipped += other.breaker_skipped;
  requeued += other.requeued;
  upstream_failures += other.upstream_failures;
  waited_ms += other.waited_ms;
}

RetryStats RetryStats::merge_shards(const std::vector<RetryStats>& shards) {
  RetryStats total;
  for (const RetryStats& shard : shards) total.merge(shard);
  return total;
}

void RetryStats::publish() const {
  const auto bump = [](const char* name, std::uint64_t value) {
    if (value) obs::Registry::global().counter(name).add(value);
  };
  bump("resilience.retry.retries", retries);
  bump("resilience.retry.timeouts", timeouts);
  bump("resilience.retry.servfails", servfails);
  bump("resilience.retry.exhausted", exhausted);
  bump("resilience.escalations.udp_to_tcp", escalations);
  bump("resilience.breaker.opened", breaker_opened);
  bump("resilience.breaker.skipped", breaker_skipped);
  bump("resilience.campaign.requeued", requeued);
  bump("resilience.upstream.failures", upstream_failures);
  bump("resilience.retry.waited_ms", waited_ms);
}

}  // namespace netclients::core::resilience
