#pragma once

// Retry/timeout/backoff policy and per-PoP circuit breaking for the probe
// pipelines. The paper's campaign only worked because it survived a
// hostile substrate — timeouts, SERVFAIL spells, and an undocumented UDP
// rate limit that forced the whole pipeline onto TCP (§3.1.1); this module
// makes that resilience an explicit, tunable policy.
//
// Determinism contract: backoff jitter is keyed by (policy seed, query
// identity, attempt) through net::stable_seed — never by wall clock or
// thread identity — and each CircuitBreaker is confined to one pipeline
// shard, so faulty runs are byte-identical at any REPRO_THREADS.

#include <cstdint>
#include <vector>

#include "googledns/google_dns.h"
#include "net/sim_time.h"

namespace netclients::core::resilience {

/// Bounded attempts with exponential backoff and deterministic jitter,
/// plus the per-transport timeouts the backoff waits out.
struct RetryPolicy {
  /// Total tries per query, the first attempt included. <= 1 disables
  /// retries entirely.
  int max_attempts = 3;
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  /// Fraction of each backoff replaced by deterministic jitter: the wait
  /// is backoff * (1 - f + f * u) with u drawn from the query's key.
  double jitter_fraction = 0.5;
  /// How long a probe waits before declaring a timeout, per transport
  /// (UDP answers fast or never; TCP rides a handshake).
  double udp_timeout_seconds = 2.0;
  double tcp_timeout_seconds = 4.0;
  /// Mirror the paper's forced migration: after `escalation_threshold`
  /// consecutive rate-limited or timed-out UDP answers on one flow, the
  /// flow switches to TCP for the rest of the run. Off by default so the
  /// stock UDP-vs-TCP ablation keeps its meaning; the operator opts in.
  bool escalate_udp_to_tcp = false;
  int escalation_threshold = 3;
  std::uint64_t seed = 0x7E7271;

  double timeout_for(googledns::Transport transport) const {
    return transport == googledns::Transport::kTcp ? tcp_timeout_seconds
                                                   : udp_timeout_seconds;
  }

  /// Backoff before retry `retry` (1 = first retry) of the query
  /// identified by `key`. Pure function of (seed, key, retry).
  double backoff_before(int retry, std::uint64_t key) const;
};

struct BreakerPolicy {
  /// Consecutive hard failures (timeout/SERVFAIL) that trip the breaker.
  /// <= 0 disables circuit breaking.
  int failure_threshold = 8;
  /// Sim-time the breaker stays open before admitting a trial probe.
  double open_seconds = 30.0;
};

/// Per-PoP circuit breaker. Single-threaded by design: each instance is
/// owned by the pipeline shard driving one PoP, so state transitions are
/// a pure function of that shard's (deterministic) probe sequence.
class CircuitBreaker {
 public:
  CircuitBreaker() = default;
  explicit CircuitBreaker(BreakerPolicy policy) : policy_(policy) {}

  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  /// Whether a probe may go out at `now`. While open, refusals are
  /// counted in skipped(); once the open window has elapsed, a trial
  /// probe is admitted (half-open).
  bool allow(net::SimTime now);
  void record_success();
  void record_failure(net::SimTime now);

  State state(net::SimTime now) const;
  std::uint64_t opened() const { return opened_; }
  std::uint64_t skipped() const { return skipped_; }

 private:
  BreakerPolicy policy_;
  int consecutive_failures_ = 0;
  bool open_ = false;
  net::SimTime open_until_ = 0;
  std::uint64_t opened_ = 0;
  std::uint64_t skipped_ = 0;
};

/// Integer tallies of resilience events in one pipeline shard. Merged
/// across shards (commutative integer sums) and published to the obs
/// registry only when nonzero — a fault-free run registers no
/// `resilience.*` names at all, keeping its metrics export byte-identical
/// to a build without this layer.
struct RetryStats {
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t servfails = 0;
  std::uint64_t exhausted = 0;     // gave up after max_attempts
  std::uint64_t escalations = 0;   // UDP flows forced onto TCP
  std::uint64_t breaker_opened = 0;
  std::uint64_t breaker_skipped = 0;
  std::uint64_t requeued = 0;      // prefixes left for a later loop
  std::uint64_t upstream_failures = 0;  // scope-discovery edge
  /// Wall-clock the vantage points spent waiting out timeouts + backoff
  /// before retries. Reporting only: the simulation treats a retry as
  /// instantaneous on the cache clock (cache dynamics are pinned to the
  /// campaign schedule, not to per-probe stalls).
  std::uint64_t waited_ms = 0;

  void merge(const RetryStats& other);
  /// Folds per-shard tallies, walking `shards` in shard order. Every field
  /// is a commutative integer sum, so the total is independent of shard
  /// count and order — test_resilience asserts that independence; the
  /// campaign's merge is explicit about it by going through here.
  static RetryStats merge_shards(const std::vector<RetryStats>& shards);
  /// Registers `resilience.*` counters for the nonzero fields only.
  void publish() const;

  bool operator==(const RetryStats&) const = default;
};

}  // namespace netclients::core::resilience
