#pragma once

// Mixed-workload driver for the serving tier: replays millions of
// simulated users against a `serve::Service` — with zipf query skew
// (heavy networks and heavy users dominate, net::ZipfSampler) and bursty
// batch arrivals following the sim layer's diurnal shape
// `1 + A·cos(ω(t − peak))` (sim/activity.cc, WorldConfig::
// diurnal_amplitude / diurnal_peak_local_hour) — optionally while a
// publisher rolls new epochs in underneath the readers.
//
// Two run modes, one generated workload:
//
//  * `replay` — the deterministic schedule: a single logical publisher,
//    reader batches issued strictly *between* publishes. Results (and
//    the returned digest) are a pure function of (epoch sets, workload
//    options, publish cadence) — byte-identical at any REPRO_THREADS,
//    and elementwise identical to running the same epoch sets through
//    `ClientIndex` directly. This is the serving tier's determinism
//    contract, and what test_serve pins.
//  * `run_under_churn` — the measured concurrent mode: real reader
//    threads acquire handles and look batches up while a real publisher
//    thread publishes concurrently. Wall-clock QPS and per-batch
//    latency percentiles (p50/p99/p999) are reported for a steady phase
//    (no publisher) and a churn phase (publisher live); timing is
//    inherently nondeterministic, but every batch is answered by exactly
//    one pinned snapshot version.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/serve/service.h"
#include "core/snapshot/snapshot.h"
#include "net/ipv4.h"

namespace netclients::core::serve {

struct WorkloadOptions {
  /// Simulated client population. Each user gets a home address inside
  /// an active prefix chosen by zipf rank over prefix volume (or a
  /// uniform background address, see miss_fraction).
  std::size_t users = 1 << 20;
  /// Total lookups in the generated stream.
  std::size_t queries = 1 << 20;
  /// Mean queries per batch (one acquire + one lookup_many per batch).
  std::size_t batch = 256;
  /// Zipf exponent of per-user query skew (1.0 ≈ classic web skew).
  double user_zipf = 1.0;
  /// Zipf exponent ranking active prefixes by volume for user homes.
  double prefix_zipf = 1.0;
  /// Fraction of users whose home address is uniform background traffic
  /// (mostly misses) instead of inside the active set.
  double miss_fraction = 0.25;
  /// Diurnal burst model for batch sizes: batch sizes swing by
  /// ±amplitude around `batch` over a simulated day.
  double burst_amplitude = 0.6;
  /// Batches per simulated day (the ω of the diurnal cosine).
  double batches_per_day = 4096;
  /// Peak local hour of the burst cycle (matches WorldConfig's default).
  double burst_peak_hour = 20.0;
  std::uint64_t seed = 0x5EEDF00DULL;
  /// Reader threads for run_under_churn. <= 0: exec::thread_count() − 1
  /// (one core left for the publisher), clamped to [1, 16].
  int reader_threads = 0;
  /// Minimum pause between publishes in the churn phase. Epochs swap
  /// per measurement window, not back-to-back; an unpaced publisher
  /// would measure index-build memory bandwidth, not reader behaviour.
  double publish_pause_us = 500;
  /// Cap on the publisher's CPU duty cycle: after each publish it sleeps
  /// at least `build_time × (1/duty − 1)`, so on a machine where the
  /// publisher must share cores with readers (CI runners, nproc == 1)
  /// churn costs at most ~`duty` of one core and the churn/steady QPS
  /// ratio stays a read-path property, not a core-count artifact.
  double publish_duty = 0.05;
};

/// Outcome of the deterministic interleaving-free schedule.
struct ReplayResult {
  /// Order-dependent digest over every (version, lookup result) in query
  /// order — byte-identical at any REPRO_THREADS.
  std::uint64_t digest = 0;
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
  std::uint64_t publishes = 0;
  std::uint64_t final_version = 0;

  friend bool operator==(const ReplayResult&, const ReplayResult&) = default;
};

struct LatencySummary {
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;
};

struct PhaseStats {
  std::string name;
  std::uint64_t queries = 0;
  std::uint64_t batches = 0;
  std::uint64_t hits = 0;
  double seconds = 0;  // wall clock, spawn to join
  double qps = 0;
  /// Per-batch latency (acquire + lookup_many + hit scan).
  LatencySummary latency;
  std::uint64_t version_min = 0;  // snapshot versions observed by readers
  std::uint64_t version_max = 0;
  std::uint64_t publishes = 0;  // publishes completed during the phase
};

struct WorkloadReport {
  PhaseStats steady;
  PhaseStats churn;
  /// churn QPS / steady QPS — the "readers are never blocked" headline;
  /// bench_serve gates this ≥ 0.9 in CI.
  double churn_ratio = 0;
};

class WorkloadDriver {
 public:
  /// Generates the full query stream up front (deterministic in
  /// (options, epochs); no generation cost inside timed loops): user
  /// home addresses from the union of `epochs`' active prefixes, then
  /// `options.queries` zipf-skewed lookups cut into diurnal-bursty
  /// batches.
  WorkloadDriver(WorkloadOptions options,
                 std::span<const snapshot::EpochRecord> epochs);

  std::size_t query_count() const { return queries_.size(); }
  std::size_t batch_count() const { return offsets_.size() - 1; }
  std::size_t max_batch() const { return max_batch_; }
  std::span<const net::Ipv4Addr> batch(std::size_t b) const {
    return std::span<const net::Ipv4Addr>(queries_)
        .subspan(offsets_[b], offsets_[b + 1] - offsets_[b]);
  }
  const WorkloadOptions& options() const { return options_; }

  /// Deterministic schedule: batches run in order; after every
  /// `publish_every` batches (0 = never) the next epoch of `publishes`
  /// is published — strictly between batches, never concurrently.
  /// `lookup_threads` is the intra-batch parallelism (<= 0 =
  /// REPRO_THREADS); the digest is identical for every value.
  ReplayResult replay(Service& service,
                      std::span<const snapshot::EpochRecord> publishes,
                      std::size_t publish_every, int lookup_threads = 0) const;

  /// Measured concurrent mode: a steady phase (readers only), then a
  /// churn phase with a live publisher cycling `churn_epochs` (re-keyed
  /// epoch ids) for the whole phase. Each phase replays the full
  /// generated stream once.
  WorkloadReport run_under_churn(
      Service& service,
      std::span<const snapshot::EpochRecord> churn_epochs) const;

 private:
  PhaseStats run_phase(Service& service, std::string name,
                       std::span<const snapshot::EpochRecord> churn_epochs)
      const;

  WorkloadOptions options_;
  std::vector<net::Ipv4Addr> queries_;
  std::vector<std::size_t> offsets_;  // batch b = [offsets_[b], offsets_[b+1])
  std::size_t max_batch_ = 0;
};

}  // namespace netclients::core::serve
