#include "core/serve/workload.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "core/exec/exec.h"
#include "core/obs/obs.h"
#include "net/rng.h"
#include "net/zipf.h"

namespace netclients::core::serve {
namespace {

constexpr double kPi = 3.14159265358979323846;

std::uint64_t fold_result(std::uint64_t digest, const LookupResult& r) {
  digest = net::hash_combine(
      digest, (std::uint64_t{r.active} << 32) | std::uint64_t{r.asn});
  digest = net::hash_combine(
      digest, std::uint64_t{r.prefix.base().value()} |
                  (std::uint64_t{r.prefix.length()} << 32));
  digest = net::hash_combine(digest, std::bit_cast<std::uint64_t>(r.volume));
  digest = net::hash_combine(
      digest,
      (std::uint64_t{r.country} << 32) | std::uint64_t{r.domain_mask});
  return digest;
}

LatencySummary summarize(std::vector<double>& latencies_us) {
  LatencySummary summary;
  if (latencies_us.empty()) return summary;
  std::sort(latencies_us.begin(), latencies_us.end());
  const auto pick = [&](double q) {
    const auto n = latencies_us.size();
    const std::size_t i = static_cast<std::size_t>(
        std::llround(q * static_cast<double>(n - 1)));
    return latencies_us[std::min(i, n - 1)];
  };
  summary.p50_us = pick(0.50);
  summary.p99_us = pick(0.99);
  summary.p999_us = pick(0.999);
  summary.max_us = latencies_us.back();
  return summary;
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

WorkloadDriver::WorkloadDriver(WorkloadOptions options,
                               std::span<const snapshot::EpochRecord> epochs)
    : options_(std::move(options)) {
  // ---- Active-set ranking ---------------------------------------------
  // Union the epochs' prefixes (duplicates combine volume) and rank by
  // volume descending — the zipf head lands on the heaviest networks.
  struct Active {
    net::Prefix prefix;
    double volume = 0;
  };
  std::vector<Active> actives;
  {
    struct Keyed {
      std::uint64_t key;
      std::uint32_t seq;
      const snapshot::PrefixEntry* entry;
    };
    std::vector<Keyed> keyed;
    std::size_t total = 0;
    for (const auto& epoch : epochs) total += epoch.prefixes.size();
    keyed.reserve(total);
    std::uint32_t seq = 0;
    for (const auto& epoch : epochs) {
      for (const auto& entry : epoch.prefixes) {
        keyed.push_back(
            Keyed{(std::uint64_t{entry.prefix.base().value()} << 8) |
                      entry.prefix.length(),
                  seq++, &entry});
      }
    }
    std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
      if (a.key != b.key) return a.key < b.key;
      return a.seq < b.seq;
    });
    actives.reserve(keyed.size());
    for (std::size_t i = 0; i < keyed.size();) {
      Active a{keyed[i].entry->prefix, keyed[i].entry->volume};
      for (++i; i < keyed.size() && keyed[i].key == keyed[i - 1].key; ++i) {
        a.volume += keyed[i].entry->volume;
      }
      actives.push_back(a);
    }
  }
  std::vector<std::uint32_t> rank_to_active(actives.size());
  for (std::uint32_t i = 0; i < rank_to_active.size(); ++i) {
    rank_to_active[i] = i;
  }
  std::sort(rank_to_active.begin(), rank_to_active.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (actives[a].volume != actives[b].volume) {
                return actives[a].volume > actives[b].volume;
              }
              return actives[a].prefix < actives[b].prefix;
            });

  // ---- Simulated users -------------------------------------------------
  // A user's home: zipf rank over the active prefixes, uniform inside the
  // chosen prefix; a miss_fraction slice gets uniform background
  // addresses over the whole space instead.
  net::Rng user_rng(net::stable_seed(options_.seed, 0x55534552u /* USER */));
  std::vector<net::Ipv4Addr> user_addr;
  user_addr.reserve(options_.users);
  if (!actives.empty() && options_.users > 0) {
    const net::ZipfSampler prefix_zipf(actives.size(), options_.prefix_zipf);
    for (std::size_t u = 0; u < options_.users; ++u) {
      if (user_rng.uniform() < options_.miss_fraction) {
        user_addr.push_back(
            net::Ipv4Addr(static_cast<std::uint32_t>(user_rng())));
        continue;
      }
      const Active& home =
          actives[rank_to_active[prefix_zipf.sample(user_rng)]];
      const std::uint32_t span = ~net::Prefix::mask(home.prefix.length());
      user_addr.push_back(net::Ipv4Addr(
          home.prefix.base().value() +
          static_cast<std::uint32_t>(user_rng()) % (span + 1u)));
    }
  } else {
    for (std::size_t u = 0; u < std::max<std::size_t>(options_.users, 1);
         ++u) {
      user_addr.push_back(
          net::Ipv4Addr(static_cast<std::uint32_t>(user_rng())));
    }
  }

  // ---- Query stream ----------------------------------------------------
  net::Rng query_rng(net::stable_seed(options_.seed, 0x51555259u /* QURY */));
  const net::ZipfSampler user_zipf(user_addr.size(), options_.user_zipf);
  queries_.reserve(options_.queries);
  for (std::size_t q = 0; q < options_.queries; ++q) {
    queries_.push_back(user_addr[user_zipf.sample(query_rng)]);
  }

  // ---- Bursty batch boundaries ----------------------------------------
  // Batch sizes follow the sim layer's diurnal shape (activity.cc):
  // intensity(h) = 1 + A·cos(2π (h − peak)/24), with batch index mapped
  // onto simulated hours via batches_per_day. Boundaries are a pure
  // function of the options — never of thread count or timing.
  offsets_.push_back(0);
  const double mean = static_cast<double>(std::max<std::size_t>(
      std::min(options_.batch, queries_.size()), 1));
  const double day = std::max(options_.batches_per_day, 1.0);
  std::size_t b = 0;
  while (offsets_.back() < queries_.size()) {
    const double hour =
        std::fmod(24.0 * static_cast<double>(b) / day, 24.0);
    const double intensity =
        1.0 + options_.burst_amplitude *
                  std::cos(2.0 * kPi * (hour - options_.burst_peak_hour) /
                           24.0);
    const auto size = static_cast<std::size_t>(std::max<long long>(
        1, std::llround(mean * std::max(intensity, 0.0))));
    offsets_.push_back(
        std::min(queries_.size(), offsets_.back() + size));
    max_batch_ = std::max(max_batch_, offsets_.back() - offsets_[b]);
    ++b;
  }
  if (offsets_.size() == 1) offsets_.push_back(0);  // zero-query stream
}

ReplayResult WorkloadDriver::replay(
    Service& service, std::span<const snapshot::EpochRecord> publishes,
    std::size_t publish_every, int lookup_threads) const {
  ReplayResult result;
  std::vector<LookupResult> out(std::max<std::size_t>(max_batch_, 1));
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  std::size_t next_publish = 0;
  for (std::size_t b = 0; b < batch_count(); ++b) {
    if (publish_every > 0 && b > 0 && b % publish_every == 0 &&
        next_publish < publishes.size()) {
      service.publish(publishes[next_publish++]);
      ++result.publishes;
    }
    const SnapshotHandle handle = service.acquire();
    const auto batch_queries = batch(b);
    handle->lookup_many(batch_queries, out.data(), lookup_threads);
    digest = net::hash_combine(digest, handle->version());
    for (std::size_t i = 0; i < batch_queries.size(); ++i) {
      digest = fold_result(digest, out[i]);
      result.hits += out[i].active;
    }
    result.queries += batch_queries.size();
  }
  result.digest = digest;
  result.final_version = service.version();
  return result;
}

PhaseStats WorkloadDriver::run_phase(
    Service& service, std::string name,
    std::span<const snapshot::EpochRecord> churn_epochs) const {
  PhaseStats phase;
  phase.name = std::move(name);

  int readers = options_.reader_threads;
  if (readers <= 0) readers = std::clamp(exec::thread_count() - 1, 1, 16);
  const std::size_t batches = batch_count();

  struct ReaderStats {
    std::vector<double> latency_us;
    std::uint64_t queries = 0;
    std::uint64_t batches = 0;
    std::uint64_t hits = 0;
    std::uint64_t version_min = ~std::uint64_t{0};
    std::uint64_t version_max = 0;
  };
  std::vector<ReaderStats> stats(static_cast<std::size_t>(readers));

  const auto phase_start = std::chrono::steady_clock::now();

  // The churn publisher starts *before* the readers and publishes
  // immediately, so even the first batches overlap a swap; it then keeps
  // rolling (re-keyed) epochs in, paced by publish_pause_us, until the
  // readers drain. Pacing matters: epochs swap per measurement window in
  // a deployment, and an unpaced publisher would turn the phase into an
  // index-build memory-bandwidth benchmark.
  std::atomic<bool> readers_done{false};
  std::thread publisher;
  std::uint64_t publishes = 0;
  if (!churn_epochs.empty()) {
    publisher = std::thread([&] {
      std::uint32_t max_id = 0;
      for (const auto& epoch : churn_epochs) {
        max_id = std::max(max_id, epoch.epoch_id);
      }
      const double min_pause_s =
          std::max(options_.publish_pause_us, 0.0) * 1e-6;
      const double duty = std::clamp(options_.publish_duty, 0.001, 1.0);
      std::uint64_t k = 0;
      while (!readers_done.load(std::memory_order_acquire)) {
        snapshot::EpochRecord next = churn_epochs[k % churn_epochs.size()];
        next.epoch_id = max_id + 1 + static_cast<std::uint32_t>(k);
        const auto publish_start = std::chrono::steady_clock::now();
        service.publish(std::move(next));
        const double busy_s =
            seconds_between(publish_start, std::chrono::steady_clock::now());
        ++k;
        const double pause_s =
            std::max(min_pause_s, busy_s * (1.0 / duty - 1.0));
        if (pause_s > 0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(pause_s));
        }
      }
      publishes = k;
    });
  }

  std::vector<std::thread> reader_threads;
  reader_threads.reserve(static_cast<std::size_t>(readers));
  for (int t = 0; t < readers; ++t) {
    reader_threads.emplace_back([&, t] {
      ReaderStats& s = stats[static_cast<std::size_t>(t)];
      s.latency_us.reserve(batches / static_cast<std::size_t>(readers) + 1);
      std::vector<LookupResult> out(std::max<std::size_t>(max_batch_, 1));
      for (std::size_t b = static_cast<std::size_t>(t); b < batches;
           b += static_cast<std::size_t>(readers)) {
        const auto batch_start = std::chrono::steady_clock::now();
        const SnapshotHandle handle = service.acquire();
        const auto batch_queries = batch(b);
        // Intra-batch parallelism is 1: the reader thread *is* the
        // parallelism; the front end scales by adding readers.
        handle->lookup_many(batch_queries, out.data(), 1);
        std::uint64_t hits = 0;
        for (std::size_t i = 0; i < batch_queries.size(); ++i) {
          hits += out[i].active;
        }
        const auto batch_end = std::chrono::steady_clock::now();
        s.latency_us.push_back(1e6 *
                               seconds_between(batch_start, batch_end));
        s.queries += batch_queries.size();
        s.batches += 1;
        s.hits += hits;
        s.version_min = std::min(s.version_min, handle->version());
        s.version_max = std::max(s.version_max, handle->version());
      }
    });
  }

  for (auto& thread : reader_threads) thread.join();
  const auto phase_end = std::chrono::steady_clock::now();
  readers_done.store(true, std::memory_order_release);
  if (publisher.joinable()) publisher.join();

  // Merge per-reader stats in thread order (single-threaded, so the
  // histogram's double accumulation replays a fixed sequence).
  static obs::Histogram& latency_histogram =
      obs::Registry::global().histogram(
          "serve.workload.batch_latency_us",
          {10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000});
  std::vector<double> all_latencies;
  phase.version_min = ~std::uint64_t{0};
  for (ReaderStats& s : stats) {
    phase.queries += s.queries;
    phase.batches += s.batches;
    phase.hits += s.hits;
    phase.version_min = std::min(phase.version_min, s.version_min);
    phase.version_max = std::max(phase.version_max, s.version_max);
    for (const double us : s.latency_us) latency_histogram.observe(us);
    all_latencies.insert(all_latencies.end(), s.latency_us.begin(),
                         s.latency_us.end());
  }
  if (phase.version_min == ~std::uint64_t{0}) phase.version_min = 0;
  phase.seconds = seconds_between(phase_start, phase_end);
  phase.qps = phase.seconds > 0
                  ? static_cast<double>(phase.queries) / phase.seconds
                  : 0;
  phase.latency = summarize(all_latencies);
  phase.publishes = publishes;

  static obs::Counter& queries_metric =
      obs::Registry::global().counter("serve.workload.queries");
  static obs::Counter& batches_metric =
      obs::Registry::global().counter("serve.workload.batches");
  queries_metric.add(phase.queries);
  batches_metric.add(phase.batches);
  return phase;
}

WorkloadReport WorkloadDriver::run_under_churn(
    Service& service,
    std::span<const snapshot::EpochRecord> churn_epochs) const {
  WorkloadReport report;
  report.steady = run_phase(service, "steady", {});
  report.churn = run_phase(service, "churn", churn_epochs);
  report.churn_ratio =
      report.steady.qps > 0 ? report.churn.qps / report.steady.qps : 0;
  obs::Registry::global()
      .gauge("serve.workload.churn_publishes")
      .set(static_cast<double>(report.churn.publishes));
  return report;
}

}  // namespace netclients::core::serve
