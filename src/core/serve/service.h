#pragma once

// Concurrent epoch-swap serving tier: `serve::Service`.
//
// The paper's end product is a continuously refreshed map of client
// networks; serving it means answering "is this address in a client
// network" at millions of QPS *while new campaign epochs roll in
// underneath the readers*. `ClientIndex` (serve.h) stays the immutable
// build artifact; this layer makes it hot-swappable:
//
//  * `Service::acquire()` returns a `SnapshotHandle` — a cheap
//    `shared_ptr` pin of the current `ServingSnapshot`. A handle is an
//    immutable view: every lookup through one handle answers from one
//    consistent epoch set, no matter how many publishes happen while it
//    is held.
//  * `Service::publish(EpochRecord)` appends the epoch to the service's
//    delta chain (optionally a sliding window of the last `max_epochs`),
//    builds the next `ClientIndex` on the *publisher's* thread — readers
//    never pay for an index build — and swaps it in with an RCU-style
//    pointer store. Readers are never stalled by a build: acquire is one
//    pinned-pointer copy, and a publish holds a shard's writer lock only
//    for the pointer assignment itself, never while building.
//  * Retirement is reference-driven: a superseded snapshot stays alive
//    exactly as long as the last handle pinning it, then its deleter
//    runs (bumping `serve.service.retired` and the optional `on_retire`
//    instrumentation hook) on whichever thread dropped the last pin.
//
// The front end is *sharded*: the service keeps one cache-line-padded
// atomic snapshot pointer per shard, and `acquire()` spreads callers
// across shards (stable per-thread slot). All shards always point at the
// same snapshot between publishes — sharding only spreads the shared_ptr
// refcount traffic, it never changes answers. A publish stores the new
// pointer shard by shard in shard order; a reader that re-acquires from
// its own shard therefore observes versions in monotonic order.
//
// Determinism contract under churn: on any interleaving-free schedule —
// a single publisher, with reader batches issued *between* publishes
// (WorkloadDriver::replay is the canonical driver) — lookup results are
// a pure function of (published epochs, query list) and byte-identical
// at any REPRO_THREADS. Under truly concurrent publish/read (the
// tsan-labelled stress tests, bench_serve's churn phases) each
// *individual* batch is still answered by exactly one snapshot version;
// only which version a batch lands on is timing-dependent.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/serve/serve.h"
#include "core/snapshot/snapshot.h"

namespace netclients::core::serve {

/// One immutable published state of the serving tier: the index built
/// from the service's epoch chain at publish time, plus provenance.
/// Reachable only through `SnapshotHandle`s; never mutated after publish.
class ServingSnapshot {
 public:
  const ClientIndex& index() const { return index_; }
  /// Publish sequence number: 0 is the empty pre-publish snapshot, the
  /// n-th publish creates version n.
  std::uint64_t version() const { return version_; }
  /// Epochs in the chain this snapshot serves (the union ClientIndex
  /// merged).
  std::size_t epoch_count() const { return epoch_count_; }
  /// epoch_id of the newest chained epoch (0 when empty).
  std::uint32_t latest_epoch() const { return latest_epoch_; }

  // Lookup passthroughs, so handle->lookup(...) reads naturally.
  LookupResult lookup(net::Ipv4Addr addr) const { return index_.lookup(addr); }
  void lookup_many(std::span<const net::Ipv4Addr> addrs, LookupResult* out,
                   int threads = 0) const {
    index_.lookup_many(addrs, out, threads);
  }
  std::vector<LookupResult> lookup_many(std::span<const net::Ipv4Addr> addrs,
                                        int threads = 0) const {
    return index_.lookup_many(addrs, threads);
  }

 private:
  friend class Service;
  ServingSnapshot() = default;

  ClientIndex index_;
  std::uint64_t version_ = 0;
  std::size_t epoch_count_ = 0;
  std::uint32_t latest_epoch_ = 0;
};

/// A pinned, immutable view of the serving state. Copy/hold freely;
/// the pinned snapshot (and the epoch memory backing it) outlives every
/// handle pointing at it and is freed when the last one drops.
using SnapshotHandle = std::shared_ptr<const ServingSnapshot>;

struct ServiceOptions {
  /// Front-end shards (refcount spreading). <= 0: one per
  /// exec::thread_count(), clamped to [1, 64].
  int shards = 0;
  /// Sliding epoch window: publishes beyond this many epochs age the
  /// oldest out of the chain (0 = unbounded union of everything ever
  /// published — the Trufflehunter-style longitudinal view).
  std::size_t max_epochs = 0;
  /// Test instrumentation: called with the retiring snapshot's version
  /// when its last handle drops (from whichever thread drops it). The
  /// callable is copied into each snapshot's deleter, so it must stay
  /// valid until every handle ever issued is gone — including past the
  /// Service's own destruction.
  std::function<void(std::uint64_t version)> on_retire;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Pins the current snapshot: one shared_ptr copy from this thread's
  /// shard. Never waits on an index build; never returns null (before
  /// the first publish it pins the empty version-0 snapshot).
  SnapshotHandle acquire() const;
  /// Same, from an explicit shard (stress tests pin readers to shards).
  SnapshotHandle acquire(std::size_t shard_hint) const;

  /// Appends one epoch to the delta chain, builds the successor index on
  /// the calling thread, and swaps it into every shard. Returns the new
  /// version. Publishers serialise against each other; readers never
  /// wait.
  std::uint64_t publish(snapshot::EpochRecord epoch);
  /// Bulk form: appends every epoch, then builds + swaps once. Seeding a
  /// service from a loaded snapshot chain is one index build, not one
  /// per epoch.
  std::uint64_t publish(std::span<const snapshot::EpochRecord> epochs);

  /// Version of the most recently completed publish (0 = none yet).
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  std::size_t shard_count() const { return shards_.size(); }
  /// Epochs currently in the chain (publisher's view).
  std::size_t chain_length() const;

 private:
  // Each shard guards its snapshot pointer with a shared_mutex rather
  // than std::atomic<shared_ptr>: libstdc++'s _Sp_atomic is itself a
  // per-object spinlock (same cost profile), but its raw-pointer member
  // trips tsan in GCC 12. The reader critical section is one shared_ptr
  // copy; the writer's is one pointer assignment — the index build
  // never happens under a shard lock.
  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    std::shared_ptr<const ServingSnapshot> snap;
  };

  /// Builds the snapshot for the current chain and stores it into every
  /// shard. Caller holds publish_mu_.
  std::uint64_t swap_in_locked();

  ServiceOptions options_;
  mutable std::vector<Shard> shards_;

  std::atomic<std::uint64_t> version_{0};
  mutable std::mutex publish_mu_;  // serialises publishers; readers never take it
  std::vector<snapshot::EpochRecord> chain_;
};

}  // namespace netclients::core::serve
