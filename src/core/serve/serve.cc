#include "core/serve/serve.h"

#include <algorithm>
#include <map>

#include "core/exec/exec.h"
#include "core/obs/obs.h"

namespace netclients::core::serve {
namespace {

std::uint64_t prefix_key(net::Prefix p) {
  return (std::uint64_t{p.base().value()} << 8) | p.length();
}

LookupResult result_of(const snapshot::PrefixEntry& entry) {
  LookupResult r;
  r.active = true;
  r.prefix = entry.prefix;
  r.volume = entry.volume;
  r.asn = entry.asn;
  r.country = entry.country;
  r.domain_mask = entry.domain_mask;
  return r;
}

}  // namespace

ClientIndex ClientIndex::build(std::span<const snapshot::EpochRecord> epochs) {
  static obs::Counter& builds_metric =
      obs::Registry::global().counter("serve.index.builds");
  static obs::Counter& prefixes_metric =
      obs::Registry::global().counter("serve.index.prefixes");

  ClientIndex index;
  index.epoch_count_ = epochs.size();

  // Union the epochs' active sets. Entries are referenced in place and
  // sorted by (prefix key, arrival sequence): ascending key is exactly
  // prefix order, and the sequence tiebreak replays epoch order within a
  // key — the same deterministic accumulation sequence a key-ordered map
  // walk over epoch-ordered inserts produces, without a node allocation
  // per entry.
  struct Keyed {
    std::uint64_t key;
    std::uint32_t seq;
    const snapshot::PrefixEntry* entry;
  };
  std::size_t total = 0;
  for (const auto& epoch : epochs) total += epoch.prefixes.size();
  std::vector<Keyed> keyed;
  keyed.reserve(total);
  std::uint32_t seq = 0;
  for (const auto& epoch : epochs) {
    for (const auto& entry : epoch.prefixes) {
      keyed.push_back(Keyed{prefix_key(entry.prefix), seq++, &entry});
    }
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  });
  index.entries_.reserve(total);
  for (std::size_t i = 0; i < keyed.size();) {
    // First occurrence wins attribution (asn/country come from the same
    // public tables in every epoch); later epochs of the same prefix add
    // volume and OR domain masks, in epoch order.
    snapshot::PrefixEntry merged = *keyed[i].entry;
    for (++i; i < keyed.size() && keyed[i].key == keyed[i - 1].key; ++i) {
      merged.volume += keyed[i].entry->volume;
      merged.domain_mask |= keyed[i].entry->domain_mask;
    }
    index.total_volume_ += merged.volume;
    index.entries_.push_back(merged);
  }

  // Trie for the single-query path.
  for (std::size_t i = 0; i < index.entries_.size(); ++i) {
    index.trie_.insert(index.entries_[i].prefix,
                       static_cast<std::uint32_t>(i));
  }

  // Flat LPM projection for the batched path: sweep the prefix-sorted
  // entries with a nesting stack, emitting disjoint [begin, last] ranges
  // owned by their most specific covering prefix. A covering prefix sorts
  // immediately before its covered sub-prefixes (net::Prefix ordering),
  // so the stack invariant holds by construction.
  std::vector<std::uint32_t> stack;  // indices into entries_, outermost first
  std::uint64_t pos = 0;
  auto emit = [&](std::uint32_t entry, std::uint64_t begin,
                  std::uint64_t last) {
    if (begin > last) return;
    index.flat_.push_back(Interval{static_cast<std::uint32_t>(begin),
                                   static_cast<std::uint32_t>(last), entry});
  };
  for (std::size_t i = 0; i < index.entries_.size(); ++i) {
    const net::Prefix p = index.entries_[i].prefix;
    const std::uint64_t begin = p.base().value();
    while (!stack.empty()) {
      const std::uint64_t top_last =
          index.entries_[stack.back()].prefix.last_address().value();
      if (top_last >= begin) break;
      emit(stack.back(), pos, top_last);
      pos = top_last + 1;
      stack.pop_back();
    }
    if (!stack.empty()) emit(stack.back(), pos, begin - 1);
    pos = begin;
    stack.push_back(static_cast<std::uint32_t>(i));
  }
  while (!stack.empty()) {
    const std::uint64_t top_last =
        index.entries_[stack.back()].prefix.last_address().value();
    emit(stack.back(), pos, top_last);
    pos = top_last + 1;
    stack.pop_back();
  }

  // Page the intervals into the direct-mapped /24 slot table. A slot
  // whose /24 is wholly inside one interval stores that interval's entry
  // directly; a /24 with partial coverage or several intervals becomes
  // kMixedSlot (binary search of flat_ at query time). Intervals are
  // disjoint, so a full-coverage slot can never see a second interval.
  if (!index.flat_.empty()) {
    const std::uint32_t first = index.flat_.front().begin >> 8;
    const std::uint32_t last = index.flat_.back().last >> 8;
    index.slot_base_ = first;
    index.slots_.assign(std::size_t{last - first} + 1, kEmptySlot);
    for (const Interval& iv : index.flat_) {
      for (std::uint32_t s = iv.begin >> 8; s <= iv.last >> 8; ++s) {
        const bool whole = iv.begin <= (s << 8) && iv.last >= ((s << 8) | 0xFF);
        std::uint32_t& slot = index.slots_[s - first];
        slot = (whole && slot == kEmptySlot) ? iv.entry + 1 : kMixedSlot;
      }
    }
  }
  index.canned_.reserve(index.entries_.size() + 1);
  index.canned_.push_back(LookupResult{});  // canned_[0]: the miss answer
  for (const auto& entry : index.entries_) {
    index.canned_.push_back(result_of(entry));
  }

  // Aggregates over the merged entries (volumes accumulate in entry
  // order; keys ascend by construction of the maps).
  std::map<std::uint32_t, snapshot::AsAggregate> by_as;
  std::map<std::uint16_t, snapshot::CountryAggregate> by_country;
  for (const auto& entry : index.entries_) {
    if (entry.asn != 0) {
      auto& agg = by_as[entry.asn];
      agg.asn = entry.asn;
      agg.volume += entry.volume;
      ++agg.prefixes;
    }
    if (entry.country != snapshot::kNoCountry) {
      auto& agg = by_country[entry.country];
      agg.country = entry.country;
      agg.volume += entry.volume;
      ++agg.prefixes;
    }
  }
  index.as_.reserve(by_as.size());
  for (const auto& [asn, agg] : by_as) index.as_.push_back(agg);
  index.countries_.reserve(by_country.size());
  for (const auto& [c, agg] : by_country) index.countries_.push_back(agg);

  builds_metric.add(1);
  prefixes_metric.add(index.entries_.size());
  return index;
}

LookupResult ClientIndex::lookup(net::Ipv4Addr addr) const {
  static obs::Counter& single_metric =
      obs::Registry::global().counter("serve.lookup.single");
  single_metric.add(1);
  // Same chunk kernel as the batched path: shared slot table, shared
  // serve.lookup.hits accounting — single and batched answers cannot
  // diverge by construction.
  LookupResult result;
  lookup_chunk(&addr, 1, &result);
  return result;
}

LookupResult ClientIndex::lookup_reference(net::Ipv4Addr addr) const {
  const auto match = trie_.longest_match(addr);
  if (!match) return LookupResult{};
  return result_of(entries_[*match->second]);
}

void ClientIndex::lookup_chunk(const net::Ipv4Addr* addrs, std::size_t count,
                               LookupResult* out) const {
  static obs::Counter& hits_metric =
      obs::Registry::global().counter("serve.lookup.hits");

  const std::uint32_t* slots = slots_.data();
  const LookupResult* canned = canned_.data();
  const std::size_t slot_count = slots_.size();
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t addr = addrs[i].value();
    const std::uint32_t s = (addr >> 8) - slot_base_;  // may wrap: checked next
    std::uint32_t slot = s < slot_count ? slots[s] : kEmptySlot;
    if (slot == kMixedSlot) {
      // Sub-/24 structure: resolve against the disjoint interval table.
      const auto it = std::lower_bound(
          flat_.begin(), flat_.end(), addr,
          [](const Interval& iv, std::uint32_t a) { return iv.last < a; });
      slot =
          (it != flat_.end() && it->begin <= addr) ? it->entry + 1 : kEmptySlot;
    }
    out[i] = canned[slot];       // unconditional copy: no hit/miss branch
    hits += slot != kEmptySlot;  // branchless tally
  }
  hits_metric.add(hits);  // commutative integer add: shard-safe
}

std::vector<LookupResult> ClientIndex::lookup_many(
    std::span<const net::Ipv4Addr> addrs, int threads) const {
  std::vector<LookupResult> results(addrs.size());
  lookup_many(addrs, results.data(), threads);
  return results;
}

void ClientIndex::lookup_many(std::span<const net::Ipv4Addr> addrs,
                              LookupResult* out, int threads) const {
  static obs::Counter& batched_metric =
      obs::Registry::global().counter("serve.lookup.batched");
  batched_metric.add(addrs.size());

  exec::parallel_for_chunks(
      0, addrs.size(), kChunkQueries, threads, [&](exec::ChunkRange range) {
        lookup_chunk(addrs.data() + range.begin, range.end - range.begin,
                     out + range.begin);
        return 0;
      });
}

double ClientIndex::as_volume(std::uint32_t asn) const {
  const auto it = std::lower_bound(
      as_.begin(), as_.end(), asn,
      [](const snapshot::AsAggregate& a, std::uint32_t key) {
        return a.asn < key;
      });
  return it != as_.end() && it->asn == asn ? it->volume : 0;
}

double ClientIndex::country_volume(std::uint16_t country) const {
  const auto it = std::lower_bound(
      countries_.begin(), countries_.end(), country,
      [](const snapshot::CountryAggregate& a, std::uint16_t key) {
        return a.country < key;
      });
  return it != countries_.end() && it->country == country ? it->volume : 0;
}

std::vector<snapshot::AsAggregate> ClientIndex::top_as(std::size_t n) const {
  std::vector<snapshot::AsAggregate> top = as_;
  std::sort(top.begin(), top.end(),
            [](const snapshot::AsAggregate& a,
               const snapshot::AsAggregate& b) {
              if (a.volume != b.volume) return a.volume > b.volume;
              return a.asn < b.asn;
            });
  if (top.size() > n) top.resize(n);
  return top;
}

namespace {

/// Rank positions (0 = most active) for an epoch's prefix entries:
/// volume descending, ties by prefix order. rank[i] is the rank of
/// epoch.prefixes[i].
std::vector<std::uint32_t> volume_ranks(const snapshot::EpochRecord& epoch) {
  std::vector<std::uint32_t> order(epoch.prefixes.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double va = epoch.prefixes[a].volume;
    const double vb = epoch.prefixes[b].volume;
    if (va != vb) return va > vb;
    return a < b;  // prefix order (entries are prefix-sorted)
  });
  std::vector<std::uint32_t> rank(order.size());
  for (std::uint32_t pos = 0; pos < order.size(); ++pos) {
    rank[order[pos]] = pos;
  }
  return rank;
}

}  // namespace

EpochDiff diff_epochs(const snapshot::EpochRecord& from,
                      const snapshot::EpochRecord& to) {
  static obs::Counter& diffs_metric =
      obs::Registry::global().counter("serve.diff.runs");
  diffs_metric.add(1);

  EpochDiff diff;
  diff.from_epoch = from.epoch_id;
  diff.to_epoch = to.epoch_id;

  const auto from_ranks = volume_ranks(from);
  const auto to_ranks = volume_ranks(to);

  double drift_sum = 0;
  std::size_t i = 0, j = 0;
  while (i < from.prefixes.size() || j < to.prefixes.size()) {
    const bool take_from =
        j >= to.prefixes.size() ||
        (i < from.prefixes.size() &&
         from.prefixes[i].prefix < to.prefixes[j].prefix);
    const bool take_to =
        i >= from.prefixes.size() ||
        (j < to.prefixes.size() &&
         to.prefixes[j].prefix < from.prefixes[i].prefix);
    if (take_from) {
      diff.lost.push_back(from.prefixes[i].prefix);
      diff.lost_volume += from.prefixes[i].volume;
      diff.volume_from += from.prefixes[i].volume;
      ++i;
    } else if (take_to) {
      diff.gained.push_back(to.prefixes[j].prefix);
      diff.gained_volume += to.prefixes[j].volume;
      diff.volume_to += to.prefixes[j].volume;
      ++j;
    } else {  // same prefix in both epochs
      ++diff.persisting;
      diff.volume_from += from.prefixes[i].volume;
      diff.volume_to += to.prefixes[j].volume;
      const double delta = static_cast<double>(from_ranks[i]) -
                           static_cast<double>(to_ranks[j]);
      drift_sum += delta < 0 ? -delta : delta;
      ++i;
      ++j;
    }
  }

  if (diff.persisting > 0) {
    diff.mean_rank_drift = drift_sum / static_cast<double>(diff.persisting);
    const std::size_t span =
        std::max(from.prefixes.size(), to.prefixes.size());
    if (span > 1) {
      diff.normalized_rank_drift =
          diff.mean_rank_drift / static_cast<double>(span - 1);
    }
  }
  return diff;
}

}  // namespace netclients::core::serve
