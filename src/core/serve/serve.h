#pragma once

// Client-activity serving layer: an immutable in-memory index built from
// persisted campaign epochs (src/core/snapshot) that answers "does this
// address sit in a network with client activity, and how much" at high
// QPS, plus churn analytics between epochs.
//
// One lookup code path, two entry shapes:
//
//  * `lookup_many` — THE serving path (span-style core): queries are
//    processed in fixed-size chunks (optionally in parallel via
//    core/exec) against a direct-mapped /24 slot table built by
//    projecting the prefix set to disjoint intervals (LPM projection)
//    and paging those intervals into one uint32 slot per /24. A query is
//    one array read; only slots with sub-/24 structure fall back to a
//    binary search of the interval table.
//  * `lookup` — the single-query convenience: a count-1 call through the
//    same chunk kernel (same slot table, same hit metrics), so per-call
//    metrics and answers cannot drift from the batched path.
//  * `lookup_reference` — the independent oracle: longest-prefix match
//    through the src/net radix trie, kept solely so tests and benches
//    can cross-check the slot table against a structurally different
//    implementation.
//
// Determinism contract (the repo-wide rule): results are a pure function
// of (index contents, query list). Chunk boundaries depend only on the
// query count, each chunk's answers are written into its own output
// range, and the slot table answers exactly what the trie answers — so
// `lookup_many` output is byte-identical at any REPRO_THREADS, and
// identical to calling `lookup` (or `lookup_reference`) per query.
//
// `ClientIndex` is the *internal build artifact* of the serving tier:
// consumers outside src/core/serve reach it through `serve::Service`
// snapshot handles (service.h), never by constructing one directly.

#include <cstdint>
#include <span>
#include <vector>

#include "core/snapshot/snapshot.h"
#include "net/ipv4.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"

namespace netclients::core::serve {

/// Answer for one address.
struct LookupResult {
  bool active = false;
  net::Prefix prefix;  // the matched (most specific) active prefix
  double volume = 0;
  std::uint32_t asn = 0;
  std::uint16_t country = snapshot::kNoCountry;
  std::uint32_t domain_mask = 0;

  friend bool operator==(const LookupResult&, const LookupResult&) = default;
};

/// Immutable serving index over one or more snapshot epochs.
///
/// When several epochs are given, their active sets are unioned: volumes
/// of a prefix present in multiple epochs are summed and domain masks
/// OR-ed (serving the longitudinal union, Trufflehunter-style); epochs
/// contribute in epoch order, so the merge is deterministic. Overlapping
/// prefixes from different epochs keep longest-prefix-match semantics.
class ClientIndex {
 public:
  /// Queries per lookup_many chunk. Fixed (never derived from the thread
  /// count) so the partition — and therefore the output — is identical
  /// for every REPRO_THREADS value.
  static constexpr std::size_t kChunkQueries = std::size_t{1} << 16;

  /// Builds the index from a contiguous run of epochs (a std::vector
  /// converts implicitly). Entry storage is reserved up front from the
  /// summed epoch sizes; per-epoch aggregates are merged by reference,
  /// never copied per epoch.
  static ClientIndex build(std::span<const snapshot::EpochRecord> epochs);

  /// Single-query convenience: a count-1 pass through the same chunk
  /// kernel as `lookup_many` (shared slot table and hit metrics).
  LookupResult lookup(net::Ipv4Addr addr) const;

  /// Oracle path: longest-prefix match via the radix trie. Structurally
  /// independent of the slot table — determinism tests and benches assert
  /// it agrees with `lookup`/`lookup_many` answer for answer.
  LookupResult lookup_reference(net::Ipv4Addr addr) const;

  /// THE batched entry point: writes one result per query into `out`
  /// (which must hold `addrs.size()` slots), in query order. The
  /// steady-state serving path — callers reuse the output buffer across
  /// batches. `threads <= 0` means exec::thread_count() (the
  /// REPRO_THREADS env var); 1 is serial.
  void lookup_many(std::span<const net::Ipv4Addr> addrs, LookupResult* out,
                   int threads = 0) const;

  /// Thin allocating convenience over the span core: one result per
  /// query, in query order.
  std::vector<LookupResult> lookup_many(std::span<const net::Ipv4Addr> addrs,
                                        int threads = 0) const;

  // Aggregate views (keyed lookups are binary search).
  double as_volume(std::uint32_t asn) const;
  double country_volume(std::uint16_t country) const;
  const std::vector<snapshot::AsAggregate>& as_aggregates() const {
    return as_;
  }
  const std::vector<snapshot::CountryAggregate>& country_aggregates() const {
    return countries_;
  }
  /// The `n` highest-volume ASes, volume-descending (ties by ASN).
  std::vector<snapshot::AsAggregate> top_as(std::size_t n) const;

  std::size_t prefix_count() const { return entries_.size(); }
  std::size_t epoch_count() const { return epoch_count_; }
  double total_volume() const { return total_volume_; }
  /// Size of the flat LPM-projected interval table (diagnostics/bench).
  std::size_t interval_count() const { return flat_.size(); }

 private:
  /// One disjoint address range [begin, last] answered by entries_[entry]
  /// — the LPM projection of the (possibly nested) prefix set.
  struct Interval {
    std::uint32_t begin = 0;
    std::uint32_t last = 0;  // inclusive: avoids overflow at 255.255.255.255
    std::uint32_t entry = 0;
  };

  /// Slot values for the direct-mapped /24 table: an index into canned_
  /// (0 = the miss result, k+1 = entries_[k]'s result) or the mixed
  /// sentinel. Canned indices stay far below the sentinel.
  static constexpr std::uint32_t kEmptySlot = 0;            // canned_[0]
  static constexpr std::uint32_t kMixedSlot = 0xFFFFFFFEu;  // sub-/24 detail

  void lookup_chunk(const net::Ipv4Addr* addrs, std::size_t count,
                    LookupResult* out) const;

  std::vector<snapshot::PrefixEntry> entries_;  // merged, prefix-sorted
  net::PrefixTrie<std::uint32_t> trie_;         // prefix -> entries_ index
  std::vector<Interval> flat_;                  // sorted, disjoint
  /// Direct map: slots_[s - slot_base_] answers /24 index s. Holds the
  /// canned_ index when the whole /24 has one answer (including "none":
  /// kEmptySlot), or kMixedSlot when the /24 has sub-/24 structure
  /// (resolved by binary search of flat_).
  std::vector<std::uint32_t> slots_;
  std::uint32_t slot_base_ = 0;  // /24 index of slots_[0]
  /// canned_[0] is the miss result; canned_[k + 1] == the LookupResult
  /// for entries_[k]. Lets the batched loop answer every query with one
  /// unconditional 32-byte copy.
  std::vector<LookupResult> canned_;
  std::vector<snapshot::AsAggregate> as_;       // sorted by asn
  std::vector<snapshot::CountryAggregate> countries_;  // sorted by country
  std::size_t epoch_count_ = 0;
  double total_volume_ = 0;
};

/// Churn between two epochs (§6's longitudinal view): which prefixes
/// appeared, which aged out, and how much the activity ranking moved.
/// Prefixes match on exact (base, length) equality; a prefix whose scope
/// changed between epochs counts as lost + gained.
struct EpochDiff {
  std::uint32_t from_epoch = 0;
  std::uint32_t to_epoch = 0;

  std::vector<net::Prefix> gained;  // in `to` only, address order
  std::vector<net::Prefix> lost;    // in `from` only, address order
  std::uint64_t persisting = 0;

  double volume_from = 0;
  double volume_to = 0;
  double gained_volume = 0;  // volume of gained prefixes (in `to`)
  double lost_volume = 0;    // volume of lost prefixes (in `from`)

  /// Rank drift over persisting prefixes: each epoch ranks its prefixes
  /// by volume descending (ties by prefix order — the same ordering
  /// core/rank's estimated_rate sort would induce on equal estimates);
  /// `mean_rank_drift` is the mean |rank_from − rank_to|, and
  /// `normalized_rank_drift` divides by the largest possible displacement
  /// (0 = stable ranking, → 1 = fully reshuffled).
  double mean_rank_drift = 0;
  double normalized_rank_drift = 0;
};

EpochDiff diff_epochs(const snapshot::EpochRecord& from,
                      const snapshot::EpochRecord& to);

}  // namespace netclients::core::serve
