#include "core/serve/service.h"

#include <algorithm>
#include <utility>

#include "core/exec/exec.h"
#include "core/obs/obs.h"

namespace netclients::core::serve {
namespace {

int clamp_shards(int requested) {
  if (requested <= 0) requested = exec::thread_count();
  return std::clamp(requested, 1, 64);
}

/// Deleter attached to every published ServingSnapshot: retirement is
/// *observed* at the moment the last handle (or shard slot) drops. The
/// obs Counter lives in the process-wide registry, so the pointer stays
/// valid however long handles outlive the Service.
struct Retirer {
  obs::Counter* retired;
  std::function<void(std::uint64_t)> on_retire;
  std::uint64_t version;

  void operator()(const ServingSnapshot* snapshot) const {
    retired->add(1);
    if (on_retire) on_retire(version);
    delete snapshot;
  }
};

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      shards_(static_cast<std::size_t>(clamp_shards(options_.shards))) {
  // Pre-publish state: every shard pins the empty version-0 snapshot, so
  // acquire() never sees a null and lookups before the first publish are
  // well-defined misses.
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto* raw = new ServingSnapshot();
  raw->index_ = ClientIndex::build({});
  std::shared_ptr<const ServingSnapshot> empty(
      raw, Retirer{&obs::Registry::global().counter("serve.service.retired"),
                   options_.on_retire, 0});
  for (Shard& shard : shards_) {
    shard.snap = empty;
  }
}

SnapshotHandle Service::acquire() const {
  // Stable per-thread shard slot: spreads the shared_ptr refcount
  // traffic of concurrent readers across cache lines. Which shard a
  // thread lands on never affects answers — all shards point at the same
  // snapshot between publishes.
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return acquire(slot);
}

SnapshotHandle Service::acquire(std::size_t shard_hint) const {
  static obs::Counter& acquires_metric =
      obs::Registry::global().counter("serve.service.acquires");
  acquires_metric.add(1);
  const Shard& shard = shards_[shard_hint % shards_.size()];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.snap;
}

std::uint64_t Service::publish(snapshot::EpochRecord epoch) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  chain_.push_back(std::move(epoch));
  return swap_in_locked();
}

std::uint64_t Service::publish(std::span<const snapshot::EpochRecord> epochs) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  chain_.insert(chain_.end(), epochs.begin(), epochs.end());
  return swap_in_locked();
}

std::uint64_t Service::swap_in_locked() {
  static obs::Counter& publishes_metric =
      obs::Registry::global().counter("serve.service.publishes");
  static obs::Counter& aged_metric =
      obs::Registry::global().counter("serve.service.epochs_aged_out");

  if (options_.max_epochs > 0 && chain_.size() > options_.max_epochs) {
    const std::size_t drop = chain_.size() - options_.max_epochs;
    chain_.erase(chain_.begin(),
                 chain_.begin() + static_cast<std::ptrdiff_t>(drop));
    aged_metric.add(drop);
  }

  // The expensive part — building the successor index from the delta
  // chain — happens here, on the publisher's thread, while every reader
  // keeps serving from the still-pinned predecessor.
  const std::uint64_t version = version_.load(std::memory_order_relaxed) + 1;
  auto* raw = new ServingSnapshot();
  {
    obs::StageSpan span("serve.service.publish_build");
    raw->index_ = ClientIndex::build(chain_);
  }
  raw->version_ = version;
  raw->epoch_count_ = chain_.size();
  raw->latest_epoch_ = chain_.empty() ? 0 : chain_.back().epoch_id;
  std::shared_ptr<const ServingSnapshot> next(
      raw,
      Retirer{&obs::Registry::global().counter("serve.service.retired"),
              options_.on_retire, version});

  // RCU swap: one pointer store per shard, in shard order, each under
  // that shard's writer lock for just the assignment. Readers keep
  // whatever they already pinned; new acquires see the new snapshot. The
  // predecessor's shard pins drop here — it retires the instant its last
  // reader handle does.
  for (Shard& shard : shards_) {
    std::shared_ptr<const ServingSnapshot> previous;
    {
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      previous = std::exchange(shard.snap, next);
    }
    // `previous`'s pin drops outside the lock: if this store released
    // the predecessor's last reference, its Retirer (and the user's
    // on_retire hook) must not run under a shard lock readers take.
  }
  version_.store(version, std::memory_order_release);
  publishes_metric.add(1);
  obs::Registry::global()
      .gauge("serve.service.version")
      .set(static_cast<double>(version));
  obs::Registry::global()
      .gauge("serve.service.chain_epochs")
      .set(static_cast<double>(chain_.size()));
  return version;
}

std::size_t Service::chain_length() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return chain_.size();
}

}  // namespace netclients::core::serve
