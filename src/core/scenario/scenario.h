#pragma once

// One-stop wiring of a measurement scenario: the synthetic world plus the
// substrate a campaign probes (activity model, Google Public DNS front
// end, probe environment). bench/common.cc and every example used to
// duplicate this fifteen-line block; the builder owns it once, with
// paper-parameter defaults.

#include <cstdint>
#include <memory>
#include <optional>

#include "core/cacheprobe/cacheprobe.h"
#include "core/serve/service.h"
#include "core/snapshot/snapshot.h"
#include "dnssrv/authoritative.h"
#include "googledns/google_dns.h"
#include "sim/activity.h"
#include "sim/config.h"
#include "sim/world.h"

namespace netclients::core {

/// A fully wired scenario. The world lives on the heap so the raw
/// pointers inside `env` stay valid when the Scenario itself is moved.
struct Scenario {
  std::unique_ptr<sim::World> world_ptr;
  std::unique_ptr<sim::WorldActivityModel> activity;
  std::unique_ptr<googledns::GooglePublicDns> google_dns;
  ProbeEnvironment env;
  CacheProbeOptions options;
  /// The front-end config the builder wired; run_epochs re-keys it per
  /// epoch to give each measurement window its own cache timeline.
  googledns::GoogleDnsConfig google_config;
  /// Default epoch count for run_epochs (ScenarioBuilder::epochs).
  int epoch_count = 1;

  sim::World& world() { return *world_ptr; }
  const sim::World& world() const { return *world_ptr; }

  /// A campaign handle over this scenario's environment and options.
  CacheProbeCampaign campaign() const {
    return CacheProbeCampaign(env, options);
  }

  /// Runs the full campaign `epochs` times (0 = the builder's epoch
  /// count) and persists each run as a snapshot EpochRecord. Epoch 0
  /// probes the scenario's own front end with the scenario's seed —
  /// run_epochs(1) reproduces a plain campaign().run() — and each later epoch
  /// re-keys both the probe RNG streams and the Google-DNS cache
  /// timeline (fresh GooglePublicDns with a re-keyed seed and an
  /// advanced authoritative epoch), modelling independent measurement
  /// windows over the same world: marginally active blocks drop in and
  /// out and scope drift shifts attribution, so the inferred active
  /// sets overlap heavily but not exactly — exactly the churn the
  /// analytics in core/serve quantify.
  std::vector<snapshot::EpochRecord> run_epochs(int epochs = 0) const;

  /// run_epochs, served: runs the campaign epochs and publishes each
  /// record into a fresh serving tier in epoch order — the end-to-end
  /// "measure, then serve through snapshot handles" path. `options`
  /// configures the tier (shard count, epoch window, instrumentation).
  std::unique_ptr<serve::Service> serve_epochs(
      int epochs = 0, serve::ServiceOptions options = {}) const;
};

/// Fluent assembly of a Scenario. Defaults are the paper's parameters at
/// the examples' 1/256 world scale; benches pass their REPRO_SCALE.
class ScenarioBuilder {
 public:
  /// World size as the denominator of the scale fraction.
  ScenarioBuilder& scale_denominator(double denominator) {
    scale_denominator_ = denominator;
    return *this;
  }
  /// Full world-config override (wins over scale_denominator).
  ScenarioBuilder& world_config(const sim::WorldConfig& config) {
    config_ = config;
    config_set_ = true;
    return *this;
  }
  ScenarioBuilder& probe_options(const CacheProbeOptions& options) {
    options_ = options;
    return *this;
  }
  /// Parallelism for the sharded stages; overrides probe_options.threads.
  ScenarioBuilder& threads(int n) {
    threads_ = n;
    return *this;
  }
  ScenarioBuilder& google_config(const googledns::GoogleDnsConfig& config) {
    google_config_ = config;
    return *this;
  }
  /// Deterministic fault injection on the scope-discovery edge.
  ScenarioBuilder& authoritative_faults(const dnssrv::UpstreamFaults& faults) {
    auth_faults_ = faults;
    return *this;
  }
  /// Skip the analytic activity model (explicit-cache-only scenarios).
  ScenarioBuilder& without_activity_model() {
    with_activity_ = false;
    return *this;
  }
  /// Default campaign-epoch count for Scenario::run_epochs.
  ScenarioBuilder& epochs(int count) {
    epochs_ = count;
    return *this;
  }

  Scenario build() const;

 private:
  sim::WorldConfig config_{};
  bool config_set_ = false;
  double scale_denominator_ = 256;
  CacheProbeOptions options_{};
  googledns::GoogleDnsConfig google_config_{};
  std::optional<dnssrv::UpstreamFaults> auth_faults_;
  bool with_activity_ = true;
  int threads_ = -1;  // < 0: leave options.threads as given
  int epochs_ = 1;
};

}  // namespace netclients::core
