#include "core/scenario/scenario.h"

#include "anycast/vantage.h"

namespace netclients::core {

Scenario ScenarioBuilder::build() const {
  Scenario scenario;
  sim::WorldConfig config = config_;
  if (!config_set_) config.scale = 1.0 / scale_denominator_;
  scenario.world_ptr =
      std::make_unique<sim::World>(sim::World::generate(config));
  sim::World& world = *scenario.world_ptr;
  if (auth_faults_) {
    world.authoritative_mutable().set_faults(*auth_faults_);
  }
  if (with_activity_) {
    scenario.activity = std::make_unique<sim::WorldActivityModel>(&world);
  }
  scenario.google_dns = std::make_unique<googledns::GooglePublicDns>(
      &world.pops(), &world.catchment(), &world.authoritative(),
      google_config_, scenario.activity.get());
  scenario.env.authoritative = &world.authoritative();
  scenario.env.google_dns = scenario.google_dns.get();
  scenario.env.geodb = &world.geodb();
  scenario.env.vantage_points = anycast::default_vantage_fleet();
  scenario.env.domains = world.domains();
  scenario.env.slash24_begin = 1u << 16;
  scenario.env.slash24_end = world.address_space_end();
  scenario.options = options_;
  if (threads_ >= 0) scenario.options.threads = threads_;
  return scenario;
}

}  // namespace netclients::core
