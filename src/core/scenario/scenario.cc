#include "core/scenario/scenario.h"

#include <algorithm>

#include "anycast/vantage.h"
#include "net/rng.h"

namespace netclients::core {

std::vector<snapshot::EpochRecord> Scenario::run_epochs(int epochs) const {
  if (epochs <= 0) epochs = std::max(1, epoch_count);
  std::vector<snapshot::EpochRecord> records;
  records.reserve(epochs);
  for (int e = 0; e < epochs; ++e) {
    CacheProbeOptions epoch_options = options;
    ProbeEnvironment epoch_env = env;
    std::unique_ptr<googledns::GooglePublicDns> epoch_dns;
    // Epoch 0 keeps the scenario's seed and front end (run_epochs(1) ==
    // campaign().run()); each later epoch re-keys the probe streams AND stands
    // up its own Google-DNS front end with a re-keyed cache timeline and
    // an advanced authoritative epoch. The world's mean activity is
    // unchanged, but which marginal blocks happen to hold a cache entry
    // during the window differs — that sampling noise plus scope drift
    // is the churn diff_epochs measures.
    if (e > 0) {
      epoch_options.seed = net::stable_seed(
          options.seed, 0x45504F43u /* "EPOC" */, static_cast<uint64_t>(e));
      googledns::GoogleDnsConfig epoch_config = google_config;
      epoch_config.seed = net::stable_seed(
          google_config.seed, 0x45504F43u, static_cast<uint64_t>(e));
      epoch_config.epoch += static_cast<std::uint32_t>(e);
      epoch_dns = std::make_unique<googledns::GooglePublicDns>(
          &world().pops(), &world().catchment(), &world().authoritative(),
          epoch_config, activity.get());
      epoch_env.google_dns = epoch_dns.get();
    }
    const CampaignResult result = run_full_campaign(epoch_env, epoch_options);
    records.push_back(snapshot::make_epoch(
        result, world(), static_cast<std::uint32_t>(e), epoch_options));
  }
  return records;
}

std::unique_ptr<serve::Service> Scenario::serve_epochs(
    int epochs, serve::ServiceOptions options) const {
  auto service = std::make_unique<serve::Service>(std::move(options));
  // Epoch-by-epoch publishes (not the bulk seed): the serving tier sees
  // the same rolling sequence of swaps a live deployment would.
  for (auto& record : run_epochs(epochs)) {
    service->publish(std::move(record));
  }
  return service;
}

Scenario ScenarioBuilder::build() const {
  Scenario scenario;
  sim::WorldConfig config = config_;
  if (!config_set_) config.scale = 1.0 / scale_denominator_;
  scenario.world_ptr =
      std::make_unique<sim::World>(sim::World::generate(config));
  sim::World& world = *scenario.world_ptr;
  if (auth_faults_) {
    world.authoritative_mutable().set_faults(*auth_faults_);
  }
  if (with_activity_) {
    scenario.activity = std::make_unique<sim::WorldActivityModel>(&world);
  }
  scenario.google_dns = std::make_unique<googledns::GooglePublicDns>(
      &world.pops(), &world.catchment(), &world.authoritative(),
      google_config_, scenario.activity.get());
  scenario.env.authoritative = &world.authoritative();
  scenario.env.google_dns = scenario.google_dns.get();
  scenario.env.geodb = &world.geodb();
  scenario.env.vantage_points = anycast::default_vantage_fleet();
  scenario.env.domains = world.domains();
  scenario.env.slash24_begin = 1u << 16;
  scenario.env.slash24_end = world.address_space_end();
  scenario.options = options_;
  if (threads_ >= 0) scenario.options.threads = threads_;
  scenario.google_config = google_config_;
  scenario.epoch_count = epochs_;
  return scenario;
}

}  // namespace netclients::core
