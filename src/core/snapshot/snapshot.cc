#include "core/snapshot/snapshot.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "core/obs/obs.h"
#include "net/crc32.h"
#include "net/rng.h"

namespace netclients::core::snapshot {
namespace {

// ------------------------------------------------------------ wire basics

enum SectionKind : std::uint32_t {
  kEpochHeader = 1,
  kPrefixes = 2,
  kAsAggregates = 3,
  kCountries = 4,
};

/// Epoch-header flag: this epoch's keyed sections are delta-encoded
/// against the immediately preceding epoch in the file.
constexpr std::uint32_t kFlagDelta = 1;

/// Frame: kind (4) + epoch_id (4) + payload_size (8) + crc (4).
constexpr std::size_t kFrameBytes = 20;

/// Upper bound on a sane section payload; a declared size beyond this is
/// frame corruption, not a huge section.
constexpr std::uint64_t kMaxPayload = std::uint64_t{1} << 40;

using net::crc32;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}
void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Bounded little-endian reader over a section payload. Every accessor
/// sets ok=false instead of reading past the end; callers check `ok`
/// once per logical record, not per byte.
struct Cursor {
  const unsigned char* p = nullptr;
  const unsigned char* end = nullptr;
  bool ok = true;

  explicit Cursor(std::string_view bytes)
      : p(reinterpret_cast<const unsigned char*>(bytes.data())),
        end(p + bytes.size()) {}

  std::size_t remaining() const { return static_cast<std::size_t>(end - p); }
  bool at_end() const { return p == end; }

  std::uint8_t u8() {
    if (remaining() < 1) {
      ok = false;
      return 0;
    }
    return *p++;
  }
  std::uint32_t u32() {
    if (remaining() < 4) {
      ok = false;
      p = end;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
    p += 4;
    return v;
  }
  std::uint64_t u64() {
    if (remaining() < 8) {
      ok = false;
      p = end;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    p += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (at_end()) {
        ok = false;
        return 0;
      }
      const unsigned char byte = *p++;
      v |= std::uint64_t{byte & 0x7F} << shift;
      if (!(byte & 0x80)) return v;
    }
    ok = false;  // > 10 bytes: not a valid LEB128 u64
    return 0;
  }
};

// ------------------------------------------------- keyed-section codecs
//
// Each keyed section serialises a vector sorted by a u64 key. The codec
// structs supply the key mapping and the value encoding; full and delta
// payloads share one grammar (a full payload is a delta with an empty
// removed list applied to an empty base).

struct PrefixCodec {
  using Entry = PrefixEntry;
  static constexpr SectionKind kind = kPrefixes;
  static std::uint64_t key(const Entry& e) {
    return (std::uint64_t{e.prefix.base().value()} << 8) | e.prefix.length();
  }
  static void put_value(std::string& out, const Entry& e) {
    put_f64(out, e.volume);
    put_varint(out, e.asn);
    put_varint(out, e.country);
    put_varint(out, e.domain_mask);
  }
  static bool get(Cursor& c, std::uint64_t key, Entry* out) {
    const std::uint8_t length = static_cast<std::uint8_t>(key & 0xFF);
    const std::uint32_t base = static_cast<std::uint32_t>(key >> 8);
    if (length > 32 || (key >> 40) != 0) return false;
    out->prefix = net::Prefix(net::Ipv4Addr(base), length);
    if (out->prefix.base().value() != base) return false;  // host bits set
    out->volume = c.f64();
    const std::uint64_t asn = c.varint();
    const std::uint64_t country = c.varint();
    const std::uint64_t mask = c.varint();
    if (!c.ok || asn > 0xFFFFFFFFu || country > 0xFFFF ||
        mask > 0xFFFFFFFFu) {
      return false;
    }
    out->asn = static_cast<std::uint32_t>(asn);
    out->country = static_cast<std::uint16_t>(country);
    out->domain_mask = static_cast<std::uint32_t>(mask);
    return true;
  }
};

struct AsCodec {
  using Entry = AsAggregate;
  static constexpr SectionKind kind = kAsAggregates;
  static std::uint64_t key(const Entry& e) { return e.asn; }
  static void put_value(std::string& out, const Entry& e) {
    put_f64(out, e.volume);
    put_varint(out, e.prefixes);
  }
  static bool get(Cursor& c, std::uint64_t key, Entry* out) {
    if (key > 0xFFFFFFFFu) return false;
    out->asn = static_cast<std::uint32_t>(key);
    out->volume = c.f64();
    const std::uint64_t prefixes = c.varint();
    if (!c.ok || prefixes > 0xFFFFFFFFu) return false;
    out->prefixes = static_cast<std::uint32_t>(prefixes);
    return true;
  }
};

struct CountryCodec {
  using Entry = CountryAggregate;
  static constexpr SectionKind kind = kCountries;
  static std::uint64_t key(const Entry& e) { return e.country; }
  static void put_value(std::string& out, const Entry& e) {
    put_f64(out, e.volume);
    put_varint(out, e.prefixes);
  }
  static bool get(Cursor& c, std::uint64_t key, Entry* out) {
    if (key > 0xFFFF) return false;
    out->country = static_cast<std::uint16_t>(key);
    out->volume = c.f64();
    const std::uint64_t prefixes = c.varint();
    if (!c.ok || prefixes > 0xFFFFFFFFu) return false;
    out->prefixes = static_cast<std::uint32_t>(prefixes);
    return true;
  }
};

template <typename Codec>
std::string encode_keyed(const std::vector<typename Codec::Entry>* prev,
                         const std::vector<typename Codec::Entry>& cur) {
  std::string payload;
  put_u8(payload, prev ? 1 : 0);

  // Removed keys: in prev but absent from cur.
  std::string removed;
  std::uint64_t removed_count = 0;
  std::uint64_t last_removed = 0;
  if (prev) {
    std::size_t j = 0;
    for (const auto& entry : *prev) {
      const std::uint64_t key = Codec::key(entry);
      while (j < cur.size() && Codec::key(cur[j]) < key) ++j;
      if (j < cur.size() && Codec::key(cur[j]) == key) continue;
      put_varint(removed, removed_count == 0 ? key : key - last_removed);
      last_removed = key;
      ++removed_count;
    }
  }
  put_varint(payload, removed_count);
  payload += removed;

  // Upserts: new entries, plus entries whose value changed.
  std::string upserts;
  std::uint64_t upsert_count = 0;
  std::uint64_t last_key = 0;
  std::size_t j = 0;
  for (const auto& entry : cur) {
    const std::uint64_t key = Codec::key(entry);
    if (prev) {
      while (j < prev->size() && Codec::key((*prev)[j]) < key) ++j;
      if (j < prev->size() && Codec::key((*prev)[j]) == key &&
          (*prev)[j] == entry) {
        continue;  // unchanged: the delta omits it
      }
    }
    put_varint(upserts, upsert_count == 0 ? key : key - last_key);
    Codec::put_value(upserts, entry);
    last_key = key;
    ++upsert_count;
  }
  put_varint(payload, upsert_count);
  payload += upserts;
  return payload;
}

/// Decodes a keyed payload into `out`. `prev` is the predecessor epoch's
/// vector (required by delta payloads). Returns false on any structural
/// problem; `problem` (when non-null) gets the strict-mode description.
template <typename Codec>
bool decode_keyed(std::string_view payload,
                  const std::vector<typename Codec::Entry>* prev,
                  std::vector<typename Codec::Entry>* out,
                  std::string* problem = nullptr) {
  using Entry = typename Codec::Entry;
  auto fail = [&](const char* what) {
    if (problem) *problem = what;
    return false;
  };
  Cursor c(payload);
  const std::uint8_t encoding = c.u8();
  if (!c.ok || encoding > 1) return fail("bad keyed-section encoding byte");
  if (encoding == 1 && !prev) {
    return fail("delta-encoded section without a usable base epoch");
  }

  const std::uint64_t removed_count = c.varint();
  if (!c.ok || removed_count > c.remaining()) {
    return fail("removed-key count exceeds section bytes");
  }
  std::vector<std::uint64_t> removed;
  // Reserve clamp: never trust the declared count beyond what the bytes
  // on hand could possibly encode (>= 1 byte per key).
  removed.reserve(std::min<std::uint64_t>(removed_count, c.remaining()));
  std::uint64_t key = 0;
  for (std::uint64_t i = 0; i < removed_count; ++i) {
    const std::uint64_t delta = c.varint();
    if (!c.ok) return fail("truncated removed-key list");
    if (i > 0 && delta == 0) return fail("removed keys not ascending");
    key = i == 0 ? delta : key + delta;
    removed.push_back(key);
  }

  const std::uint64_t upsert_count = c.varint();
  if (!c.ok || upsert_count > c.remaining()) {
    return fail("upsert count exceeds section bytes");
  }
  std::vector<Entry> upserts;
  upserts.reserve(std::min<std::uint64_t>(
      upsert_count, c.remaining() / 9 + 1));  // >= key + f64 per upsert
  key = 0;
  for (std::uint64_t i = 0; i < upsert_count; ++i) {
    const std::uint64_t delta = c.varint();
    if (!c.ok) return fail("truncated upsert list");
    if (i > 0 && delta == 0) return fail("upsert keys not ascending");
    key = i == 0 ? delta : key + delta;
    Entry entry;
    if (!Codec::get(c, key, &entry)) return fail("malformed upsert value");
    upserts.push_back(entry);
  }
  if (!c.at_end()) return fail("trailing bytes after keyed payload");

  if (encoding == 0) {
    if (removed_count != 0) return fail("full section with removed keys");
    *out = std::move(upserts);
    return true;
  }

  // Apply the delta: three-way sorted merge of (prev - removed) + upserts.
  out->clear();
  out->reserve(prev->size() + upserts.size());
  std::size_t r = 0, u = 0;
  for (const auto& entry : *prev) {
    const std::uint64_t k = Codec::key(entry);
    while (u < upserts.size() && Codec::key(upserts[u]) < k) {
      out->push_back(upserts[u++]);
    }
    while (r < removed.size() && removed[r] < k) ++r;
    const bool is_removed = r < removed.size() && removed[r] == k;
    const bool is_upserted = u < upserts.size() && Codec::key(upserts[u]) == k;
    if (is_upserted) {
      out->push_back(upserts[u++]);
    } else if (!is_removed) {
      out->push_back(entry);
    }
  }
  while (u < upserts.size()) out->push_back(upserts[u++]);
  return true;
}

void append_section(std::string& out, SectionKind kind,
                    std::uint32_t epoch_id, std::string_view payload) {
  put_u32(out, kind);
  put_u32(out, epoch_id);
  put_u64(out, payload.size());
  put_u32(out, crc32(payload));
  out += payload;
}

std::string encode_header_payload(const EpochRecord& epoch, bool delta) {
  std::string payload;
  put_u32(payload, delta ? kFlagDelta : 0);
  put_u64(payload, epoch.world_seed);
  put_u64(payload, epoch.options_digest);
  put_u8(payload, epoch.domain_count);
  put_u64(payload, epoch.totals.probes_sent);
  put_u64(payload, epoch.totals.cache_hits);
  put_u64(payload, epoch.totals.slash24_lower);
  put_u64(payload, epoch.totals.slash24_upper);
  return payload;
}

bool decode_header_payload(std::string_view payload, EpochRecord* out,
                           bool* delta, std::string* problem = nullptr) {
  Cursor c(payload);
  const std::uint32_t flags = c.u32();
  out->world_seed = c.u64();
  out->options_digest = c.u64();
  out->domain_count = c.u8();
  out->totals.probes_sent = c.u64();
  out->totals.cache_hits = c.u64();
  out->totals.slash24_lower = c.u64();
  out->totals.slash24_upper = c.u64();
  if (!c.ok || !c.at_end() || (flags & ~kFlagDelta)) {
    if (problem) *problem = "malformed epoch header payload";
    return false;
  }
  *delta = flags & kFlagDelta;
  return true;
}

// ----------------------------------------------------------- parse driver

/// One decoded section frame (payload still raw).
struct Frame {
  SectionKind kind;
  std::uint32_t epoch_id = 0;
  std::string_view payload;
};

/// The predecessor epoch's reconstructed vectors, per keyed kind — the
/// delta bases. A kind is nullopt when the predecessor's section was
/// damaged (its chain is broken until the next full encoding).
struct DeltaBase {
  std::optional<std::vector<PrefixEntry>> prefixes;
  std::optional<std::vector<AsAggregate>> as_aggregates;
  std::optional<std::vector<CountryAggregate>> countries;

  void reset() {
    prefixes.reset();
    as_aggregates.reset();
    countries.reset();
  }
};

/// In-flight epoch assembly state.
struct Pending {
  bool active = false;
  bool delta = false;
  EpochRecord rec;
  bool got_prefixes = false;
  bool got_as = false;
  bool got_countries = false;
  bool damaged = false;  // some section skipped: drop at finalize

  bool complete() const {
    return active && !damaged && got_prefixes && got_as && got_countries;
  }
};

}  // namespace

const PrefixEntry* EpochRecord::covering(net::Ipv4Addr addr) const {
  auto it = std::upper_bound(
      prefixes.begin(), prefixes.end(), addr.value(),
      [](std::uint32_t value, const PrefixEntry& e) {
        return value < e.prefix.base().value();
      });
  if (it == prefixes.begin()) return nullptr;
  --it;
  return it->prefix.contains(addr) ? &*it : nullptr;
}

std::string encode(const std::vector<EpochRecord>& epochs) {
  static obs::Counter& epochs_metric =
      obs::Registry::global().counter("snapshot.write.epochs");
  static obs::Counter& bytes_metric =
      obs::Registry::global().counter("snapshot.write.bytes");

  std::string out(kMagic, sizeof(kMagic));
  const EpochRecord* prev = nullptr;
  for (const auto& epoch : epochs) {
    const bool delta = prev != nullptr;
    append_section(out, kEpochHeader, epoch.epoch_id,
                   encode_header_payload(epoch, delta));
    append_section(out, kPrefixes, epoch.epoch_id,
                   encode_keyed<PrefixCodec>(prev ? &prev->prefixes : nullptr,
                                             epoch.prefixes));
    append_section(
        out, kAsAggregates, epoch.epoch_id,
        encode_keyed<AsCodec>(prev ? &prev->as_aggregates : nullptr,
                              epoch.as_aggregates));
    append_section(
        out, kCountries, epoch.epoch_id,
        encode_keyed<CountryCodec>(prev ? &prev->countries : nullptr,
                                   epoch.countries));
    prev = &epoch;
  }
  epochs_metric.add(epochs.size());
  bytes_metric.add(out.size());
  return out;
}

std::string_view section_kind_name(std::uint32_t kind) {
  switch (kind) {
    case kEpochHeader:
      return "epoch_header";
    case kPrefixes:
      return "prefixes";
    case kAsAggregates:
      return "as_aggregates";
    case kCountries:
      return "countries";
    default:
      return "unknown";
  }
}

std::optional<std::vector<SectionInfo>> section_sizes(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::vector<SectionInfo> sections;
  std::size_t pos = sizeof(kMagic);
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameBytes) break;
    Cursor frame(bytes.substr(pos, kFrameBytes));
    SectionInfo info;
    info.kind = frame.u32();
    info.epoch_id = frame.u32();
    const std::uint64_t payload_size = frame.u64();
    const std::uint32_t crc = frame.u32();
    if (payload_size > kMaxPayload ||
        payload_size > bytes.size() - pos - kFrameBytes) {
      break;
    }
    info.payload_bytes = payload_size;
    info.crc_ok = crc32(bytes.substr(pos + kFrameBytes, payload_size)) == crc;
    sections.push_back(info);
    pos += kFrameBytes + payload_size;
  }
  return sections;
}

std::optional<SnapshotFile> decode(std::string_view bytes) {
  static obs::Counter& sections_metric =
      obs::Registry::global().counter("snapshot.read.sections");
  static obs::Counter& skipped_metric =
      obs::Registry::global().counter("snapshot.read.sections_skipped");
  static obs::Counter& crc_metric =
      obs::Registry::global().counter("snapshot.read.crc_failures");
  static obs::Counter& epochs_metric =
      obs::Registry::global().counter("snapshot.read.epochs");
  static obs::Counter& epochs_skipped_metric =
      obs::Registry::global().counter("snapshot.read.epochs_skipped");

  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }

  SnapshotFile out;
  DeltaBase base;
  Pending pending;

  auto finalize = [&] {
    if (!pending.active) return;
    if (pending.complete()) {
      base.prefixes = pending.rec.prefixes;
      base.as_aggregates = pending.rec.as_aggregates;
      base.countries = pending.rec.countries;
      out.epochs.push_back(std::move(pending.rec));
      ++out.stats.epochs_read;
    } else {
      // Partial epochs are dropped whole (section damage is detected per
      // section, but the epoch is the unit of data integrity) and cannot
      // serve as a delta base.
      base.reset();
      ++out.stats.epochs_skipped;
    }
    pending = Pending{};
  };

  std::size_t pos = sizeof(kMagic);
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameBytes) {
      out.stats.truncated = true;
      break;
    }
    Cursor frame(bytes.substr(pos, kFrameBytes));
    const std::uint32_t kind = frame.u32();
    const std::uint32_t epoch_id = frame.u32();
    const std::uint64_t payload_size = frame.u64();
    const std::uint32_t crc = frame.u32();
    if (payload_size > kMaxPayload ||
        payload_size > bytes.size() - pos - kFrameBytes) {
      out.stats.truncated = true;
      break;
    }
    const std::string_view payload =
        bytes.substr(pos + kFrameBytes, payload_size);
    pos += kFrameBytes + payload_size;

    if (crc32(payload) != crc) {
      ++out.stats.crc_failures;
      ++out.stats.sections_skipped;
      if (kind == kEpochHeader) {
        // The epoch's identity is lost; its keyed sections that follow
        // become orphans (skipped below) and the delta chain breaks.
        finalize();
        pending.active = true;
        pending.damaged = true;
        pending.rec.epoch_id = epoch_id;
      } else if (pending.active && pending.rec.epoch_id == epoch_id) {
        pending.damaged = true;
      }
      continue;
    }

    switch (kind) {
      case kEpochHeader: {
        finalize();
        pending.active = true;
        pending.rec.epoch_id = epoch_id;
        if (!decode_header_payload(payload, &pending.rec, &pending.delta)) {
          ++out.stats.sections_skipped;
          pending.damaged = true;
        } else {
          ++out.stats.sections_read;
        }
        break;
      }
      case kPrefixes:
      case kAsAggregates:
      case kCountries: {
        if (!pending.active || pending.rec.epoch_id != epoch_id) {
          ++out.stats.sections_skipped;  // orphan section
          break;
        }
        bool ok = false;
        if (kind == kPrefixes) {
          ok = decode_keyed<PrefixCodec>(
              payload, pending.delta && base.prefixes ? &*base.prefixes
                                                      : nullptr,
              &pending.rec.prefixes);
          pending.got_prefixes = ok;
        } else if (kind == kAsAggregates) {
          ok = decode_keyed<AsCodec>(
              payload,
              pending.delta && base.as_aggregates ? &*base.as_aggregates
                                                  : nullptr,
              &pending.rec.as_aggregates);
          pending.got_as = ok;
        } else {
          ok = decode_keyed<CountryCodec>(
              payload,
              pending.delta && base.countries ? &*base.countries : nullptr,
              &pending.rec.countries);
          pending.got_countries = ok;
        }
        if (ok) {
          ++out.stats.sections_read;
        } else {
          ++out.stats.sections_skipped;
          pending.damaged = true;
        }
        break;
      }
      default:
        ++out.stats.sections_skipped;  // unknown kind: forward compatible
        break;
    }
  }
  if (pending.active && !pending.complete()) {
    // Truncation (or damage) mid-epoch: the partial epoch is dropped.
    out.stats.truncated = out.stats.truncated || !pending.damaged;
  }
  finalize();

  sections_metric.add(out.stats.sections_read);
  skipped_metric.add(out.stats.sections_skipped);
  crc_metric.add(out.stats.crc_failures);
  epochs_metric.add(out.stats.epochs_read);
  epochs_skipped_metric.add(out.stats.epochs_skipped);
  return out;
}

std::string validate(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return "bad magic (not a netclients.snap.v1 file)";
  }
  auto at = [](std::size_t pos, const std::string& what) {
    std::ostringstream msg;
    msg << what << " at byte " << pos;
    return msg.str();
  };

  EpochRecord prev_rec;
  bool have_prev = false;
  Pending pending;
  bool have_epoch_id = false;
  std::uint32_t last_epoch_id = 0;

  auto finalize = [&]() -> std::string {
    if (!pending.active) return "";
    if (!pending.got_prefixes || !pending.got_as || !pending.got_countries) {
      std::ostringstream msg;
      msg << "epoch " << pending.rec.epoch_id << " is missing a section";
      return msg.str();
    }
    prev_rec = std::move(pending.rec);
    have_prev = true;
    pending = Pending{};
    return "";
  };

  std::size_t pos = sizeof(kMagic);
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameBytes) {
      return at(pos, "truncated section frame");
    }
    Cursor frame(bytes.substr(pos, kFrameBytes));
    const std::uint32_t kind = frame.u32();
    const std::uint32_t epoch_id = frame.u32();
    const std::uint64_t payload_size = frame.u64();
    const std::uint32_t crc = frame.u32();
    if (payload_size > kMaxPayload) {
      return at(pos, "implausible section payload size");
    }
    if (payload_size > bytes.size() - pos - kFrameBytes) {
      return at(pos, "section payload extends past end of file");
    }
    const std::string_view payload =
        bytes.substr(pos + kFrameBytes, payload_size);
    if (crc32(payload) != crc) {
      return at(pos, "section CRC mismatch");
    }

    std::string problem;
    switch (kind) {
      case kEpochHeader: {
        if (std::string p = finalize(); !p.empty()) return p;
        if (have_epoch_id && epoch_id <= last_epoch_id) {
          return at(pos, "epoch ids not strictly increasing");
        }
        last_epoch_id = epoch_id;
        have_epoch_id = true;
        pending.active = true;
        pending.rec.epoch_id = epoch_id;
        if (!decode_header_payload(payload, &pending.rec, &pending.delta,
                                   &problem)) {
          return at(pos, problem);
        }
        if (pending.delta && !have_prev) {
          return at(pos, "delta epoch with no predecessor");
        }
        break;
      }
      case kPrefixes:
      case kAsAggregates:
      case kCountries: {
        if (!pending.active) {
          return at(pos, "keyed section before any epoch header");
        }
        if (pending.rec.epoch_id != epoch_id) {
          return at(pos, "section epoch id does not match its header");
        }
        bool ok;
        if (kind == kPrefixes) {
          ok = decode_keyed<PrefixCodec>(
              payload, pending.delta ? &prev_rec.prefixes : nullptr,
              &pending.rec.prefixes, &problem);
          pending.got_prefixes = ok;
        } else if (kind == kAsAggregates) {
          ok = decode_keyed<AsCodec>(
              payload, pending.delta ? &prev_rec.as_aggregates : nullptr,
              &pending.rec.as_aggregates, &problem);
          pending.got_as = ok;
        } else {
          ok = decode_keyed<CountryCodec>(
              payload, pending.delta ? &prev_rec.countries : nullptr,
              &pending.rec.countries, &problem);
          pending.got_countries = ok;
        }
        if (!ok) return at(pos, problem);
        break;
      }
      default:
        return at(pos, "unknown section kind");
    }
    pos += kFrameBytes + payload_size;
  }
  return finalize();
}

// ---------------------------------------------------------- epoch builders

std::uint64_t options_digest(const CacheProbeOptions& options) {
  const ProbePolicy& policy = options.probe;
  std::uint64_t h = net::stable_hash("cacheprobe.options");
  auto mix_f = [&](double v) {
    h = net::hash_combine(h, std::bit_cast<std::uint64_t>(v));
  };
  auto mix_u = [&](std::uint64_t v) { h = net::hash_combine(h, v); };
  mix_f(options.duration_hours);
  mix_f(options.prefixes_per_second_per_domain);
  mix_u(static_cast<std::uint64_t>(policy.transport));
  mix_u(static_cast<std::uint64_t>(policy.redundant_queries));
  mix_u(static_cast<std::uint64_t>(policy.retry.max_attempts));
  mix_u(static_cast<std::uint64_t>(options.max_loops));
  mix_u(options.calibration_sample_target);
  mix_f(options.calibration_max_error_radius_km);
  mix_f(options.service_radius_percentile);
  mix_f(options.default_service_radius_km);
  mix_u(options.use_max_radius_everywhere ? 1 : 0);
  return h;
}

std::uint64_t options_digest(const ChromiumOptions& options) {
  std::uint64_t h = net::stable_hash("chromium.options");
  auto mix_f = [&](double v) {
    h = net::hash_combine(h, std::bit_cast<std::uint64_t>(v));
  };
  auto mix_u = [&](std::uint64_t v) { h = net::hash_combine(h, v); };
  mix_u(options.daily_collision_threshold);
  mix_f(options.sample_rate);
  mix_f(options.trace_days);
  mix_u(options.sketch_width);
  mix_u(static_cast<std::uint64_t>(options.sketch_depth));
  return h;
}

namespace {

/// Origin AS (real ASN) and country of a /24, from the world's public-data
/// tables (Routeviews-style prefix→AS trie; MaxMind-style geo database).
std::pair<std::uint32_t, std::uint16_t> attribute_slash24(
    const sim::World& world, std::uint32_t slash24_index) {
  std::uint32_t asn = 0;
  const auto match =
      world.prefix2as().longest_match(net::Ipv4Addr(slash24_index << 8));
  if (match) asn = world.ases()[*match->second].asn;
  std::uint16_t country = kNoCountry;
  if (const auto geo = world.geodb().lookup(slash24_index)) {
    country = geo->country;
  }
  return {asn, country};
}

/// Fills as_aggregates/countries from the (already sorted) prefix entries.
void fill_aggregates(EpochRecord* epoch) {
  std::map<std::uint32_t, AsAggregate> by_as;
  std::map<std::uint16_t, CountryAggregate> by_country;
  for (const auto& entry : epoch->prefixes) {
    if (entry.asn != 0) {
      auto& agg = by_as[entry.asn];
      agg.asn = entry.asn;
      agg.volume += entry.volume;
      ++agg.prefixes;
    }
    if (entry.country != kNoCountry) {
      auto& agg = by_country[entry.country];
      agg.country = entry.country;
      agg.volume += entry.volume;
      ++agg.prefixes;
    }
  }
  epoch->as_aggregates.reserve(by_as.size());
  for (const auto& [asn, agg] : by_as) epoch->as_aggregates.push_back(agg);
  epoch->countries.reserve(by_country.size());
  for (const auto& [c, agg] : by_country) epoch->countries.push_back(agg);
}

}  // namespace

EpochRecord make_epoch(const CampaignResult& result, const sim::World& world,
                       std::uint32_t epoch_id,
                       const CacheProbeOptions& options) {
  EpochRecord epoch;
  epoch.epoch_id = epoch_id;
  epoch.world_seed = world.config().seed;
  epoch.options_digest = options_digest(options);
  epoch.domain_count =
      static_cast<std::uint8_t>(result.active_by_domain.size());
  epoch.totals.probes_sent = result.probes_sent;
  epoch.totals.cache_hits = result.hits.size();
  epoch.totals.slash24_lower = result.slash24_lower_bound();
  epoch.totals.slash24_upper = result.slash24_upper_bound();

  epoch.prefixes.reserve(result.active.size());
  result.active.for_each([&](net::Prefix p) {
    PrefixEntry entry;
    entry.prefix = p;
    const auto [asn, country] =
        attribute_slash24(world, p.first_slash24_index());
    entry.asn = asn;
    entry.country = country;
    for (std::size_t d = 0; d < result.active_by_domain.size() && d < 32;
         ++d) {
      if (result.active_by_domain[d].intersects(p)) {
        entry.domain_mask |= 1u << d;
      }
    }
    epoch.prefixes.push_back(entry);
  });

  // Volume: cache hits attributed to the covering active prefix, counted
  // in hit order (integer counts — addition order cannot matter).
  for (const auto& hit : result.hits) {
    const net::Ipv4Addr addr = hit.query_scope.base();
    auto it = std::upper_bound(
        epoch.prefixes.begin(), epoch.prefixes.end(), addr.value(),
        [](std::uint32_t value, const PrefixEntry& e) {
          return value < e.prefix.base().value();
        });
    if (it == epoch.prefixes.begin()) continue;
    --it;
    if (it->prefix.contains(addr)) it->volume += 1.0;
  }

  fill_aggregates(&epoch);
  return epoch;
}

EpochRecord make_epoch(const ChromiumResult& result, const sim::World& world,
                       std::uint32_t epoch_id, std::uint64_t opts_digest) {
  EpochRecord epoch;
  epoch.epoch_id = epoch_id;
  epoch.world_seed = world.config().seed;
  epoch.options_digest = opts_digest;
  epoch.domain_count = 0;
  epoch.totals.probes_sent = result.records_scanned;
  epoch.totals.cache_hits = result.signature_matches;

  // probes_by_resolver iterates in unordered (hash) order; sort by address
  // first so per-/24 volume accumulation is deterministic.
  std::vector<std::pair<std::uint32_t, double>> resolvers(
      result.probes_by_resolver.begin(), result.probes_by_resolver.end());
  std::sort(resolvers.begin(), resolvers.end());
  for (const auto& [addr, count] : resolvers) {
    const std::uint32_t slash24 = addr >> 8;
    if (!epoch.prefixes.empty() &&
        epoch.prefixes.back().prefix.first_slash24_index() == slash24) {
      epoch.prefixes.back().volume += count;
      continue;
    }
    PrefixEntry entry;
    entry.prefix = net::Prefix::from_slash24_index(slash24);
    entry.volume = count;
    const auto [asn, country] = attribute_slash24(world, slash24);
    entry.asn = asn;
    entry.country = country;
    epoch.prefixes.push_back(entry);
  }
  epoch.totals.slash24_lower = epoch.prefixes.size();
  epoch.totals.slash24_upper = epoch.prefixes.size();

  fill_aggregates(&epoch);
  return epoch;
}

// -------------------------------------------------------------- file layer

bool write(const std::string& path, const std::vector<EpochRecord>& epochs) {
  const std::string bytes = encode(epochs);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !out.write(bytes.data(),
                         static_cast<std::streamsize>(bytes.size()))) {
    std::fprintf(stderr, "snapshot: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

namespace {
std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}
}  // namespace

std::optional<SnapshotFile> read(const std::string& path) {
  const auto bytes = slurp(path);
  if (!bytes) return std::nullopt;
  return decode(*bytes);
}

std::string validate_file(const std::string& path) {
  const auto bytes = slurp(path);
  if (!bytes) return "cannot open " + path;
  return validate(*bytes);
}

}  // namespace netclients::core::snapshot
