#pragma once

// Snapshot store for campaign epochs: the `netclients.snap.v1` on-disk
// format. A campaign (or Chromium scan) run is a one-shot process; the
// paper's end product is a *dataset* — which prefixes/ASes host clients —
// and §6 points at longitudinal use. A snapshot file persists a sequence
// of epochs so that dataset survives the process and can be served,
// diffed, and aged (src/core/serve).
//
// File layout (all integers little-endian):
//
//   magic "NCSNAPV1" (8 bytes)
//   Section*
//
//   Section := u32 kind | u32 epoch_id | u64 payload_size
//            | u32 crc32(payload) | payload
//
// Section kinds per epoch (an epoch = header section + keyed sections
// sharing its epoch_id, in file order):
//
//   kEpochHeader   provenance (world seed, options digest), flags,
//                  campaign totals, domain count
//   kPrefixes      keyed by (base << 8 | length): the disjoint active
//                  prefixes with volume / origin AS / country / domain
//                  hit mask
//   kAsAggregates  keyed by ASN: per-AS volume + prefix count
//   kCountries     keyed by country index: per-country volume + count
//
// Keyed-section payload:
//
//   u8 encoding (0 = full, 1 = delta vs the previous epoch)
//   varint removed_count, removed keys (ascending, delta-varint)
//   varint upsert_count, upserts (ascending key delta-varint + value)
//
// Epoch 0 is always full; subsequent epochs are delta-encoded against
// their predecessor (consecutive epochs of the same campaign share most
// of their active set, so deltas are small). Values use fixed 8-byte
// IEEE doubles and LEB128 varints, so identical epochs serialise to
// identical bytes — the determinism tests compare encodings produced at
// different REPRO_THREADS values byte for byte.
//
// The reader is *tolerant*, mirroring roots::TraceFile::read_tolerant:
// a section whose CRC or structure is damaged is skipped and counted,
// never fatal; truncation mid-section keeps everything before it;
// declared counts are clamped against the bytes actually present before
// any reserve. Damage to an epoch a later delta chains from marks the
// dependent epochs skipped (the chain cannot be reconstructed). decode()
// fails outright only when the magic itself is wrong. `validate()` is
// the strict complement CI gates artifacts with: any framing, CRC, or
// chain problem is reported, not tolerated.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cacheprobe/cacheprobe.h"
#include "core/chromium/chromium.h"
#include "net/prefix.h"
#include "sim/world.h"

namespace netclients::core::snapshot {

inline constexpr std::string_view kSchemaName = "netclients.snap.v1";
inline constexpr char kMagic[8] = {'N', 'C', 'S', 'N', 'A', 'P', 'V', '1'};

/// Country index marking "geolocation unavailable" (index 0 is a real
/// country in the world's table).
inline constexpr std::uint16_t kNoCountry = 0xFFFF;

/// One disjoint active prefix with everything the serving layer needs.
struct PrefixEntry {
  net::Prefix prefix;
  /// Observed activity volume: cache hits attributed to the prefix
  /// (campaign epochs) or scaled Chromium probe count (DNS-log epochs).
  double volume = 0;
  std::uint32_t asn = 0;  // longest-match origin AS; 0 = unrouted
  std::uint16_t country = kNoCountry;
  /// Bit d set when domain d's probing hit this prefix.
  std::uint32_t domain_mask = 0;

  friend bool operator==(const PrefixEntry&, const PrefixEntry&) = default;
};

struct AsAggregate {
  std::uint32_t asn = 0;
  double volume = 0;
  std::uint32_t prefixes = 0;

  friend bool operator==(const AsAggregate&, const AsAggregate&) = default;
};

struct CountryAggregate {
  std::uint16_t country = kNoCountry;
  double volume = 0;
  std::uint32_t prefixes = 0;

  friend bool operator==(const CountryAggregate&,
                         const CountryAggregate&) = default;
};

struct EpochTotals {
  std::uint64_t probes_sent = 0;
  std::uint64_t cache_hits = 0;
  /// The paper's §4 bounds on active /24s for this epoch.
  std::uint64_t slash24_lower = 0;
  std::uint64_t slash24_upper = 0;

  friend bool operator==(const EpochTotals&, const EpochTotals&) = default;
};

/// One persisted campaign epoch: the inferred active set plus provenance.
struct EpochRecord {
  std::uint32_t epoch_id = 0;
  std::uint64_t world_seed = 0;
  std::uint64_t options_digest = 0;
  std::uint8_t domain_count = 0;

  std::vector<PrefixEntry> prefixes;        // sorted by prefix, disjoint
  std::vector<AsAggregate> as_aggregates;   // sorted by asn
  std::vector<CountryAggregate> countries;  // sorted by country
  EpochTotals totals;

  /// The entry covering `addr`, or nullptr (binary search; entries are
  /// disjoint, so at most one can cover any address).
  const PrefixEntry* covering(net::Ipv4Addr addr) const;

  friend bool operator==(const EpochRecord&, const EpochRecord&) = default;
};

/// Stable digest of the campaign-shaping option fields (the probe seed is
/// excluded: epochs of one series intentionally vary it). Same options ⇒
/// same digest across runs and platforms.
std::uint64_t options_digest(const CacheProbeOptions& options);
std::uint64_t options_digest(const ChromiumOptions& options);

/// Builds an epoch from a completed cache-probing campaign. `world`
/// supplies only its public-data tables (the Routeviews-style prefix→AS
/// trie, the MaxMind-style geo database, and the generation seed as
/// provenance) — never ground truth.
EpochRecord make_epoch(const CampaignResult& result, const sim::World& world,
                       std::uint32_t epoch_id,
                       const CacheProbeOptions& options);

/// Builds an epoch from a Chromium DNS-log scan (per-resolver /24s with
/// scaled probe counts).
EpochRecord make_epoch(const ChromiumResult& result, const sim::World& world,
                       std::uint32_t epoch_id, std::uint64_t opts_digest);

struct ReadStats {
  std::uint64_t sections_read = 0;
  std::uint64_t sections_skipped = 0;  // bad CRC or unparseable payload
  std::uint64_t crc_failures = 0;
  std::uint64_t epochs_read = 0;
  std::uint64_t epochs_skipped = 0;  // header lost, or delta chain broken
  bool truncated = false;            // stream ended mid-section

  friend bool operator==(const ReadStats&, const ReadStats&) = default;
};

struct SnapshotFile {
  std::vector<EpochRecord> epochs;
  ReadStats stats;
};

/// Per-section framing facts surfaced by section_sizes(): enough to render
/// a footprint breakdown (`snapctl inspect`) without decoding payloads.
struct SectionInfo {
  std::uint32_t kind = 0;
  std::uint32_t epoch_id = 0;
  std::uint64_t payload_bytes = 0;  // payload only; the frame adds 20 bytes
  bool crc_ok = true;

  friend bool operator==(const SectionInfo&, const SectionInfo&) = default;
};

/// Stable display name for a section kind ("epoch_header", "prefixes",
/// "as_aggregates", "countries", or "unknown").
std::string_view section_kind_name(std::uint32_t kind);

/// Walks the section frames of a v1 snapshot without decoding payloads,
/// returning one entry per well-framed section in file order. Tolerant the
/// same way decode() is — stops at truncation, flags bad CRCs — and
/// returns nullopt only when the magic is wrong.
std::optional<std::vector<SectionInfo>> section_sizes(std::string_view bytes);

/// Serialises epochs to the v1 wire bytes (epoch 0 full, the rest
/// delta-encoded against their predecessor). Deterministic: equal inputs
/// encode to equal bytes.
std::string encode(const std::vector<EpochRecord>& epochs);

/// Tolerant decode (see the header comment for the contract). Returns
/// nullopt only when `bytes` does not start with the v1 magic.
std::optional<SnapshotFile> decode(std::string_view bytes);

/// Strict structural validation: magic, section framing, CRCs, payload
/// grammar, delta-chain integrity. Empty string when the bytes are a
/// well-formed v1 snapshot, else a description of the first problem.
std::string validate(std::string_view bytes);

/// File wrappers. `write` returns false (after printing to stderr) when
/// the file cannot be written; `read` additionally returns nullopt when
/// the file cannot be opened; `validate_file` reports open failures as
/// validation problems.
bool write(const std::string& path, const std::vector<EpochRecord>& epochs);
std::optional<SnapshotFile> read(const std::string& path);
std::string validate_file(const std::string& path);

}  // namespace netclients::core::snapshot
