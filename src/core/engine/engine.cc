#include "core/engine/engine.h"

#include <algorithm>
#include <queue>
#include <tuple>
#include <utility>

#include "core/engine/timeline.h"
#include "net/rng.h"

namespace netclients::core::engine {

void EngineStats::merge(const EngineStats& other) {
  virtual_elapsed_seconds =
      std::max(virtual_elapsed_seconds, other.virtual_elapsed_seconds);
  evaluations += other.evaluations;
  window_stalls += other.window_stalls;
  breaker_drained += other.breaker_drained;
  peak_in_flight = std::max(peak_in_flight, other.peak_in_flight);
}

namespace {

/// The decision plane, shared by both prober implementations: evaluates
/// one chain's probes in canonical order through the retry/timeout/breaker
/// policy — the exact oracle-call sequence the legacy blocking prober
/// produced — and models the chain's virtual latency on the side. Oracle
/// results are order-sensitive (per-flow token buckets) and the breaker is
/// sequential, which is why decisions cannot ride the event clock: only
/// timing may.
class ChainEvaluator {
 public:
  explicit ChainEvaluator(const ProberContext& context)
      : context_(context),
        breaker_(context.breaker),
        transport_(context.transport) {}

  struct Evaluation {
    bool admitted = true;  // false: the open breaker refused the chain
    bool hit = false;
    std::uint8_t return_scope = 0;
    int domain_index = -1;
    std::uint64_t rate_limited = 0;
    bool hard_failure = false;
    /// Modeled service time of the whole chain: per-probe RTTs, waited-out
    /// timeouts, and retry backoffs.
    double latency_seconds = 0;
  };

  /// Evaluates loop `loop` of `request` with the oracle clock at `t`
  /// (`schedule_time + loop * loop_stride_seconds`).
  Evaluation evaluate(const ProbeRequest& request, int loop, double t) {
    Evaluation out;
    // Breaker gate, once per (chain, loop). While the PoP's breaker is
    // open the chain is skipped-and-counted; it stays un-hit, so a later
    // loop re-queues it within the loop budget.
    if (!breaker_.allow(t)) {
      ++stats_.breaker_skipped;
      out.admitted = false;
      return out;
    }
    for (int domain_index : request.domain_indices) {
      const dns::DnsName& domain =
          (*context_.domains)[static_cast<std::size_t>(domain_index)].name;
      for (int attempt = 0; attempt < request.redundancy; ++attempt) {
        const auto probe = probe_with_retries(
            domain, request.scope, t + attempt * request.attempt_spacing_seconds,
            loop * request.attempt_loop_stride + attempt, &out.latency_seconds);
        if (probe.rate_limited) {
          ++out.rate_limited;
          continue;
        }
        if (probe.failed()) {
          out.hard_failure = true;
          continue;
        }
        if (probe.cache_hit && probe.return_scope > 0) {
          out.hit = true;
          out.return_scope = probe.return_scope;
          out.domain_index = domain_index;
          break;
        }
      }
      if (out.hit) break;
    }
    return out;
  }

  /// A chain whose attempts all failed this loop but which a later loop
  /// revisits (skip-and-count bookkeeping).
  void note_requeued() { ++stats_.requeued; }

  std::uint64_t probes_sent() const { return probes_sent_; }

  /// Shard tallies with the breaker's trip count folded in.
  resilience::RetryStats stats() const {
    resilience::RetryStats out = stats_;
    out.breaker_opened = breaker_.opened();
    return out;
  }

 private:
  /// One redundancy attempt (original timing and attempt id); injected
  /// timeouts/SERVFAILs are retried with per-transport timeout plus
  /// jittered exponential backoff, up to the policy's attempt budget.
  googledns::ProbeResult probe_with_retries(const dns::DnsName& domain,
                                            net::Prefix scope, double t,
                                            int attempt_id,
                                            double* latency_seconds) {
    const int max_attempts = std::max(1, context_.retry.max_attempts);
    googledns::ProbeResult result;
    for (int try_index = 0;; ++try_index) {
      ++probes_sent_;
      // Retries keep the attempt id AND the timestamp: the flow hashes to
      // the same cache pool (5-tuple stickiness) and samples the same
      // cache snapshot, so a retry can only recover the answer the fault
      // masked — it never probes extra pools or a newer cache, either of
      // which would let injected loss *increase* recall. The fault oracle
      // re-rolls via `try_index`.
      result = context_.dns->probe(context_.pop, domain, scope, t, transport_,
                                   context_.vp_id, attempt_id, try_index);
      // Timing plane: an answered (or refused) probe costs its transport
      // RTT; a timed-out probe costs the timeout the VP waits out.
      *latency_seconds +=
          result.status == googledns::ProbeStatus::kTimeout
              ? context_.retry.timeout_for(transport_)
              : result.rtt_seconds;
      if (result.status == googledns::ProbeStatus::kOk) {
        consecutive_soft_failures_ = 0;
        breaker_.record_success();
        return result;
      }
      if (result.status == googledns::ProbeStatus::kRateLimited) {
        // Normal operation (the token buckets), not a fault: no retry —
        // the paper's answer to rate limiting was transport choice, so it
        // only feeds the optional UDP→TCP escalation.
        note_soft_failure();
        return result;
      }
      // Hard failure: timeout or SERVFAIL.
      if (result.status == googledns::ProbeStatus::kTimeout) {
        ++stats_.timeouts;
        note_soft_failure();
      } else {
        ++stats_.servfails;
      }
      if (try_index + 1 >= max_attempts) {
        ++stats_.exhausted;
        // Only an exhausted chain counts against the breaker: a probe
        // that eventually succeeds is healthy, and per-attempt accounting
        // would make a bigger retry budget trip the breaker *more* often
        // under uniform loss.
        breaker_.record_failure(t);
        return result;
      }
      ++stats_.retries;
      const std::uint64_t key = net::stable_seed(
          domain.hash(), std::uint64_t{scope.base().value()},
          std::uint64_t{scope.length()},
          static_cast<std::uint64_t>(context_.pop),
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(attempt_id)));
      const double backoff =
          context_.retry.backoff_before(try_index + 1, key);
      *latency_seconds += backoff;
      stats_.waited_ms += static_cast<std::uint64_t>(
          (context_.retry.timeout_for(transport_) + backoff) * 1000.0);
    }
  }

  /// Escalation is a re-submission concern: after enough consecutive
  /// rate-limited/timed-out UDP answers, every later chain re-submits over
  /// TCP (the paper's forced migration).
  void note_soft_failure() {
    if (transport_ != googledns::Transport::kUdp ||
        !context_.retry.escalate_udp_to_tcp) {
      return;
    }
    if (++consecutive_soft_failures_ >= context_.retry.escalation_threshold) {
      transport_ = googledns::Transport::kTcp;
      ++stats_.escalations;
      consecutive_soft_failures_ = 0;
    }
  }

  ProberContext context_;
  resilience::CircuitBreaker breaker_;
  googledns::Transport transport_;
  int consecutive_soft_failures_ = 0;
  std::uint64_t probes_sent_ = 0;
  resilience::RetryStats stats_;
};

/// Common state both prober implementations share.
class ProberBase : public Prober {
 public:
  ProberBase(const ProberContext& context, CompletionFn on_complete)
      : context_(context), evaluator_(context) {
    complete_ = std::move(on_complete);
  }

  resilience::RetryStats stats() const override { return evaluator_.stats(); }
  std::uint64_t probes_sent() const override {
    return evaluator_.probes_sent();
  }
  const EngineStats& engine_stats() const override { return engine_stats_; }

 protected:
  void observe_latency(double latency_seconds) {
    if (context_.metrics && context_.completion_latency_ms) {
      context_.metrics->observe(*context_.completion_latency_ms,
                                latency_seconds * 1000.0);
    }
  }

  ProberContext context_;
  ChainEvaluator evaluator_;
  EngineStats engine_stats_;
};

/// The legacy-sync adapter: chains evaluated one at a time in (loop,
/// submission) order, the virtual clock a serial accumulation — exactly
/// the timeline the old blocking prober implied (window of one).
class SyncProber final : public ProberBase {
 public:
  using ProberBase::ProberBase;

  void submit(const ProbeRequest& request) override {
    queue_.push_back(Pending{request, 0, 0});
  }

  void drain() override {
    std::vector<Pending> round = std::move(queue_);
    queue_.clear();
    while (!round.empty()) {
      std::vector<Pending> next;
      for (Pending& pending : round) {
        const double t = pending.request.schedule_time +
                         pending.loop * pending.request.loop_stride_seconds;
        const auto evaluation =
            evaluator_.evaluate(pending.request, pending.loop, t);
        ++engine_stats_.evaluations;
        if (!evaluation.admitted) ++engine_stats_.breaker_drained;
        const double issued_at = std::max(clock_, t);
        clock_ = issued_at + evaluation.latency_seconds;
        observe_latency(evaluation.latency_seconds);
        pending.rate_limited += evaluation.rate_limited;
        if (!evaluation.hit &&
            pending.loop + 1 < pending.request.max_loops) {
          if (evaluation.hard_failure) evaluator_.note_requeued();
          ++pending.loop;
          next.push_back(std::move(pending));
          continue;
        }
        ProbeOutcome outcome;
        outcome.tag = pending.request.tag;
        outcome.hit = evaluation.hit;
        outcome.return_scope = evaluation.return_scope;
        outcome.domain_index = evaluation.domain_index;
        outcome.loop = pending.loop;
        outcome.when = t;
        outcome.rate_limited = pending.rate_limited;
        outcome.hard_failure = evaluation.hard_failure;
        outcome.issued_at = issued_at;
        outcome.completed_at = clock_;
        deliver(outcome);
      }
      round = std::move(next);
    }
    engine_stats_.peak_in_flight = std::max(engine_stats_.peak_in_flight, 1);
    engine_stats_.virtual_elapsed_seconds = clock_;
  }

 private:
  struct Pending {
    ProbeRequest request;
    int loop = 0;
    std::uint64_t rate_limited = 0;
  };

  std::vector<Pending> queue_;
  double clock_ = 0;
};

/// The event-driven engine. Pending chains are popped in (loop, sequence)
/// order — the canonical decision order — the moment a window slot frees;
/// each evaluation becomes an in-flight entry whose completion event fires
/// at `issue + latency`, in (virtual_deadline, sequence) order. Requeues
/// enter the pending queue at their parent's evaluation (the outcome is
/// known then) but may not issue before the parent's virtual completion.
class EventProber final : public ProberBase {
 public:
  EventProber(const ProberContext& context, int window,
              CompletionFn on_complete)
      : ProberBase(context, std::move(on_complete)),
        window_(std::max(1, window)) {}

  void submit(const ProbeRequest& request) override {
    pending_.push(Chain{request, 0, next_chain_seq_++, 0, 0});
  }

  void drain() override {
    refill();
    while (!events_.empty()) {
      clock_ = std::max(clock_, events_.next_deadline());
      const Completion event = events_.pop();
      --in_flight_;
      if (event.resolved) deliver(event.outcome);
      refill();
    }
    engine_stats_.virtual_elapsed_seconds = clock_;
  }

 private:
  struct Chain {
    ProbeRequest request;
    int loop = 0;
    std::uint64_t seq = 0;  // submission sequence, stable across loops
    /// Parent evaluation's virtual completion: loop L+1 of a chain may not
    /// issue before loop L completed.
    double not_before = 0;
    std::uint64_t rate_limited = 0;
  };
  struct PendingAfter {
    bool operator()(const Chain& a, const Chain& b) const {
      return std::tie(a.loop, a.seq) > std::tie(b.loop, b.seq);
    }
  };
  struct Completion {
    bool resolved = false;
    ProbeOutcome outcome;
  };

  void refill() {
    while (in_flight_ < window_ && !pending_.empty()) {
      Chain chain = pending_.top();
      pending_.pop();
      issue(std::move(chain));
    }
  }

  void issue(Chain chain) {
    const double t = chain.request.schedule_time +
                     chain.loop * chain.request.loop_stride_seconds;
    // Decision plane: evaluate now, in canonical pop order.
    const auto evaluation =
        evaluator_.evaluate(chain.request, chain.loop, t);
    ++engine_stats_.evaluations;
    if (!evaluation.admitted) ++engine_stats_.breaker_drained;
    chain.rate_limited += evaluation.rate_limited;
    // Timing plane: issue when schedule, parent completion, and a window
    // slot all allow.
    const double ready = std::max(t, chain.not_before);
    if (clock_ > ready) ++engine_stats_.window_stalls;
    const double issued_at = std::max(ready, clock_);
    const double deadline = issued_at + evaluation.latency_seconds;
    observe_latency(evaluation.latency_seconds);
    ++in_flight_;
    engine_stats_.peak_in_flight =
        std::max(engine_stats_.peak_in_flight, in_flight_);

    Completion completion;
    if (evaluation.hit || chain.loop + 1 >= chain.request.max_loops) {
      completion.resolved = true;
      ProbeOutcome& outcome = completion.outcome;
      outcome.tag = chain.request.tag;
      outcome.hit = evaluation.hit;
      outcome.return_scope = evaluation.return_scope;
      outcome.domain_index = evaluation.domain_index;
      outcome.loop = chain.loop;
      outcome.when = t;
      outcome.rate_limited = chain.rate_limited;
      outcome.hard_failure = evaluation.hard_failure;
      outcome.issued_at = issued_at;
      outcome.completed_at = deadline;
    } else {
      // Un-hit with budget left: the re-submission (next loop, same
      // sequence) enters pending now so decisions stay in canonical
      // order; `not_before` keeps its timing honest.
      if (evaluation.hard_failure) evaluator_.note_requeued();
      ++chain.loop;
      chain.not_before = deadline;
      pending_.push(std::move(chain));
    }
    events_.push(deadline, std::move(completion));
  }

  const int window_;
  std::priority_queue<Chain, std::vector<Chain>, PendingAfter> pending_;
  Timeline<Completion> events_;
  int in_flight_ = 0;
  double clock_ = 0;
  std::uint64_t next_chain_seq_ = 0;
};

}  // namespace

std::unique_ptr<Prober> make_prober(const ProberContext& context,
                                    const EngineOptions& options,
                                    Prober::CompletionFn on_complete) {
  if (options.mode == EngineOptions::Mode::kSync) {
    return std::make_unique<SyncProber>(context, std::move(on_complete));
  }
  return std::make_unique<EventProber>(context, options.window,
                                       std::move(on_complete));
}

}  // namespace netclients::core::engine
