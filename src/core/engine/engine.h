#pragma once

// Deterministic, virtual-time, event-driven probe engine.
//
// The paper's campaign fans out across 22 PoPs, but inside one PoP a
// blocking prober is throughput-bound by chain latency: every redundancy
// chain waits out its own RTTs, timeouts and backoffs before the next one
// starts. ZDNS-style measurement gets its speed from keeping thousands of
// queries outstanding; this engine reproduces that architecture in virtual
// time — a bounded in-flight window per PoP, an event loop ordered by
// (virtual_deadline, sequence), and completion-driven requeues — without
// giving up the repo's determinism contract.
//
// Determinism model (see DESIGN.md "Event-driven probe engine"): the
// engine separates the *decision plane* from the *timing plane*. Oracle
// calls against GooglePublicDns are order-sensitive (per-flow token
// buckets) and the circuit breaker is sequential, so the engine evaluates
// every chain's probes in canonical (loop, submission) order — exactly the
// sequence the legacy blocking prober produced — the moment the chain is
// popped from the pending queue. Only the *clock* is event-driven: each
// evaluation is assigned a virtual issue time (when a window slot and its
// schedule allow) and a virtual completion deadline (issue + modeled chain
// latency), and completions fire in (deadline, sequence) order. Results
// are therefore byte-identical to the sync adapter at any window size and
// any REPRO_THREADS, while the modeled wall clock — and the probes/sec the
// benches report — pipelines up to `window` chains deep.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "anycast/pop.h"
#include "core/obs/obs.h"
#include "core/resilience/resilience.h"
#include "googledns/google_dns.h"
#include "net/prefix.h"
#include "sim/domains.h"

namespace netclients::core::engine {

/// How a prober executes submitted chains.
struct EngineOptions {
  enum class Mode {
    /// Event-driven virtual-time engine: up to `window` chains in flight.
    kEvent,
    /// Legacy-sync adapter: one chain at a time, serial virtual clock.
    kSync,
  };
  Mode mode = Mode::kEvent;
  /// Bound on outstanding chains per PoP prober (event mode). Changing it
  /// reshapes the virtual timeline only — results are byte-identical.
  int window = 64;
};

/// One submitted unit of probing work: a redundancy chain for a single
/// query scope — `redundancy` attempts against each listed domain, stopping
/// at the first cache hit — re-queued up to `max_loops` times while un-hit
/// (the campaign's continuous looping; calibration submits max_loops = 1).
struct ProbeRequest {
  /// Caller correlation id, echoed on the outcome (callers index arrays
  /// with it, so delivery order never influences their results).
  std::uint64_t tag = 0;
  net::Prefix scope;
  /// Campaign-schedule time of the chain's first evaluation; evaluation
  /// `loop` is scheduled at `schedule_time + loop * loop_stride_seconds`.
  double schedule_time = 0;
  /// Domains tried in order until one hits (calibration walks the four
  /// Alexa domains; the campaign submits one chain per domain).
  std::vector<int> domain_indices;
  int redundancy = 1;
  /// Gap between redundancy attempts on the oracle clock (the campaign's
  /// back-to-back 2 ms; calibration probes all attempts at one timestamp).
  double attempt_spacing_seconds = 0;
  /// Attempt-id stride per loop (the campaign's `loop * 131 + attempt`).
  int attempt_loop_stride = 0;
  int max_loops = 1;
  double loop_stride_seconds = 0;
};

/// Final outcome of a chain, delivered to the completion callback once it
/// resolves (first hit, or the loop budget exhausted).
struct ProbeOutcome {
  std::uint64_t tag = 0;
  bool hit = false;
  std::uint8_t return_scope = 0;  // valid when hit
  /// Domain that hit (index into the request's domain_indices target set).
  int domain_index = -1;
  /// Loop index of the resolving evaluation.
  int loop = 0;
  /// Schedule time of the resolving evaluation — the `when` a CacheHit
  /// records.
  double when = 0;
  /// Rate-limited attempts across every evaluation of this chain.
  std::uint64_t rate_limited = 0;
  /// The final evaluation still ended in a hard failure (timeout/SERVFAIL
  /// after retries).
  bool hard_failure = false;
  double issued_at = 0;     // virtual issue time of the final evaluation
  double completed_at = 0;  // virtual completion of the final evaluation
};

/// Virtual-time telemetry of one prober. Merged across PoP shards in shard
/// order: durations and the in-flight peak take the max (PoPs probe
/// concurrently), event counts sum.
struct EngineStats {
  /// Virtual clock after the last drain — the modeled wall time this PoP
  /// spent probing. probes/sec = probes_sent / this.
  double virtual_elapsed_seconds = 0;
  std::uint64_t evaluations = 0;
  /// Evaluations whose issue waited on a free window slot.
  std::uint64_t window_stalls = 0;
  /// Evaluations refused by an open breaker — they complete instantly, so
  /// a tripped breaker drains the PoP's window instead of clogging it.
  std::uint64_t breaker_drained = 0;
  int peak_in_flight = 0;

  void merge(const EngineStats& other);
};

/// Everything a prober needs about its PoP shard. All engine state is
/// confined to the shard, so REPRO_THREADS determinism is inherited from
/// the per-PoP fan-out.
struct ProberContext {
  googledns::GooglePublicDns* dns = nullptr;
  const std::vector<sim::DomainInfo>* domains = nullptr;
  anycast::PopId pop = anycast::kNoPop;
  int vp_id = 0;
  googledns::Transport transport = googledns::Transport::kTcp;
  resilience::RetryPolicy retry;
  resilience::BreakerPolicy breaker;
  /// Optional per-shard sink for completion-latency observations; merged
  /// by the caller in shard order (the obs determinism contract).
  obs::ShardDelta* metrics = nullptr;
  obs::Histogram* completion_latency_ms = nullptr;
};

/// The unified prober surface: submit chains, drain, receive completions.
/// Both the event engine and the legacy-sync adapter implement it, so the
/// calibrate/run_campaign stages drive one API.
class Prober {
 public:
  using CompletionFn = std::function<void(const ProbeOutcome&)>;

  virtual ~Prober() = default;

  virtual void submit(const ProbeRequest& request) = 0;
  /// Runs until every submitted chain has resolved and delivered its
  /// outcome. May be called repeatedly (the campaign drains per domain);
  /// the virtual clock, breaker and escalation state persist across
  /// drains.
  virtual void drain() = 0;

  void on_complete(CompletionFn fn) { complete_ = std::move(fn); }

  /// Shard resilience tallies with the breaker's trip count folded in.
  virtual resilience::RetryStats stats() const = 0;
  virtual std::uint64_t probes_sent() const = 0;
  virtual const EngineStats& engine_stats() const = 0;

 protected:
  void deliver(const ProbeOutcome& outcome) {
    if (complete_) complete_(outcome);
  }

  CompletionFn complete_;
};

std::unique_ptr<Prober> make_prober(const ProberContext& context,
                                    const EngineOptions& options,
                                    Prober::CompletionFn on_complete = {});

}  // namespace netclients::core::engine
