#pragma once

// The (deadline, sequence) event queue every virtual-time loop in the
// repo shares. The probe engine's completion events, the netsvc server's
// service-slot completions, and anything else that models time as "fire
// events in deadline order, FIFO on ties" use this one primitive, so the
// ordering rule — and therefore the determinism argument — lives in one
// place: pop order is a pure function of the push sequence and the
// deadlines, never of wall clock or thread identity.

#include <cassert>
#include <cstdint>
#include <queue>
#include <tuple>
#include <utility>
#include <vector>

namespace netclients::core::engine {

/// Min-queue of timed events: `pop` yields the event with the smallest
/// deadline, ties broken by push order (FIFO). Deadlines are the caller's
/// virtual clock — seconds of modeled time, netsim::SimTime, anything
/// monotone — the queue only compares them.
template <typename T>
class Timeline {
 public:
  void push(double deadline, T value) {
    heap_.push(Entry{deadline, sequence_++, std::move(value)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Deadline of the next event. Precondition: !empty().
  double next_deadline() const {
    assert(!heap_.empty());
    return heap_.top().deadline;
  }

  /// Removes and returns the next event's value. Precondition: !empty().
  T pop() {
    assert(!heap_.empty());
    // priority_queue::top() is const; the entry is moved out immediately
    // before the pop, which is safe because the heap never reads the
    // moved-from value again.
    T value = std::move(const_cast<Entry&>(heap_.top()).value);
    heap_.pop();
    return value;
  }

  /// Pops every event with deadline <= `now` (events already in the
  /// past), calling `fn(deadline, value)` in (deadline, sequence) order.
  template <typename Fn>
  void drain_until(double now, Fn&& fn) {
    while (!heap_.empty() && heap_.top().deadline <= now) {
      const double deadline = heap_.top().deadline;
      fn(deadline, pop());
    }
  }

 private:
  struct Entry {
    double deadline = 0;
    std::uint64_t sequence = 0;
    T value;
  };
  struct After {
    bool operator()(const Entry& a, const Entry& b) const {
      return std::tie(a.deadline, a.sequence) >
             std::tie(b.deadline, b.sequence);
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, After> heap_;
  std::uint64_t sequence_ = 0;
};

}  // namespace netclients::core::engine
