#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/datasets/datasets.h"
#include "net/prefix_set.h"
#include "sim/world.h"

namespace netclients::core {

/// Pairwise intersection sizes between datasets; the diagonal holds the
/// dataset sizes. Rendered as Tables 1 and 3.
struct OverlapMatrix {
  std::vector<std::string> names;
  std::vector<std::vector<std::uint64_t>> cells;

  double row_pct(std::size_t row, std::size_t col) const {
    return cells[row][row] == 0
               ? 0
               : 100.0 * static_cast<double>(cells[row][col]) /
                     static_cast<double>(cells[row][row]);
  }
};

OverlapMatrix prefix_overlap(const std::vector<const PrefixDataset*>& sets);
OverlapMatrix as_overlap(const std::vector<const AsDataset*>& sets);

/// Table 4: percent of each row dataset's activity volume contained in the
/// ASes of each column dataset.
std::vector<std::vector<double>> as_volume_overlap(
    const std::vector<const AsDataset*>& rows,
    const std::vector<const AsDataset*>& cols);

/// Percent of `volumes`'s total volume whose /24s appear in `presence`.
double prefix_volume_share(const PrefixDataset& volumes,
                           const PrefixDataset& presence);

/// Empirical CDF helper for the figure benches.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);
  double quantile(double p) const;  // p in [0, 1]
  std::size_t size() const { return samples_.size(); }
  /// `n` evenly spaced (value, cumulative fraction) points.
  std::vector<std::pair<double, double>> points(std::size_t n) const;

 private:
  std::vector<double> samples_;  // sorted
};

/// Figure 3: per-country fraction of APNIC-estimated users that sit in
/// ASes detected by a technique.
struct CountryCoverageRow {
  std::string code;
  std::string name;
  double apnic_users = 0;
  double covered_fraction = 0;
};
std::vector<CountryCoverageRow> country_coverage(
    const sim::World& world,
    const std::unordered_map<std::uint32_t, double>& apnic_users_by_as,
    const AsDataset& detected);

/// Figure 4: per-AS active-/24 bounds implied by scope-level cache hits.
/// `lower` counts disjoint hit prefixes whose base /24 the AS announces;
/// `upper` counts every announced /24 inside any hit prefix.
struct ActiveFractionBounds {
  std::uint32_t asn = 0;
  std::uint64_t announced_slash24 = 0;
  std::uint64_t lower = 0;
  std::uint64_t upper = 0;
};
std::vector<ActiveFractionBounds> per_as_active_fraction(
    const sim::World& world, const net::DisjointPrefixSet& active);

/// Figures 6/7: per-AS share of a dataset's total volume.
std::unordered_map<std::uint32_t, double> relative_volumes(
    const AsDataset& dataset);

/// Per-AS difference a−b over the union of keys (Figure 7's samples).
std::vector<double> volume_differences(
    const std::unordered_map<std::uint32_t, double>& a,
    const std::unordered_map<std::uint32_t, double>& b);

}  // namespace netclients::core
