#include "core/compare/compare.h"

#include <algorithm>
#include <cmath>

namespace netclients::core {
namespace {

template <typename Dataset>
OverlapMatrix overlap_impl(const std::vector<const Dataset*>& sets) {
  OverlapMatrix matrix;
  const std::size_t n = sets.size();
  matrix.names.reserve(n);
  for (const Dataset* ds : sets) matrix.names.push_back(ds->name());
  matrix.cells.assign(n, std::vector<std::uint64_t>(n, 0));
  for (std::size_t row = 0; row < n; ++row) {
    matrix.cells[row][row] = sets[row]->size();
    for (std::size_t col = 0; col < n; ++col) {
      if (row == col) continue;
      // Iterate the smaller set for the intersection count.
      const Dataset* small = sets[row];
      const Dataset* large = sets[col];
      if (small->size() > large->size()) std::swap(small, large);
      std::uint64_t common = 0;
      for (const auto& [key, volume] : small->entries()) {
        if (large->contains(key)) ++common;
      }
      matrix.cells[row][col] = common;
    }
  }
  return matrix;
}

}  // namespace

OverlapMatrix prefix_overlap(const std::vector<const PrefixDataset*>& sets) {
  return overlap_impl(sets);
}

OverlapMatrix as_overlap(const std::vector<const AsDataset*>& sets) {
  return overlap_impl(sets);
}

std::vector<std::vector<double>> as_volume_overlap(
    const std::vector<const AsDataset*>& rows,
    const std::vector<const AsDataset*>& cols) {
  std::vector<std::vector<double>> out(
      rows.size(), std::vector<double>(cols.size(), 0));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const double total = rows[r]->total_volume();
    if (total <= 0) continue;
    for (std::size_t c = 0; c < cols.size(); ++c) {
      double covered = 0;
      for (const auto& [asn, volume] : rows[r]->entries()) {
        if (cols[c]->contains(asn)) covered += volume;
      }
      out[r][c] = 100.0 * covered / total;
    }
  }
  return out;
}

double prefix_volume_share(const PrefixDataset& volumes,
                           const PrefixDataset& presence) {
  const double total = volumes.total_volume();
  if (total <= 0) return 0;
  double covered = 0;
  for (const auto& [slash24, volume] : volumes.entries()) {
    if (presence.contains(slash24)) covered += volume;
  }
  return 100.0 * covered / total;
}

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

double Cdf::quantile(double p) const {
  if (samples_.empty()) return 0;
  const double clamped = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      clamped * static_cast<double>(samples_.size() - 1));
  return samples_[rank];
}

std::vector<std::pair<double, double>> Cdf::points(std::size_t n) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || n == 0) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double p = static_cast<double>(i) / static_cast<double>(n - 1);
    out.emplace_back(quantile(p), p);
  }
  return out;
}

std::vector<CountryCoverageRow> country_coverage(
    const sim::World& world,
    const std::unordered_map<std::uint32_t, double>& apnic_users_by_as,
    const AsDataset& detected) {
  std::unordered_map<std::uint32_t, std::uint16_t> as_country;
  as_country.reserve(world.ases().size());
  for (const sim::AsEntry& as : world.ases()) {
    as_country.emplace(as.asn, as.country);
  }
  std::vector<double> total(world.countries().size(), 0);
  std::vector<double> covered(world.countries().size(), 0);
  for (const auto& [asn, users] : apnic_users_by_as) {
    auto it = as_country.find(asn);
    if (it == as_country.end()) continue;
    total[it->second] += users;
    if (detected.contains(asn)) covered[it->second] += users;
  }
  std::vector<CountryCoverageRow> rows;
  for (std::size_t c = 0; c < world.countries().size(); ++c) {
    if (total[c] <= 0) continue;
    CountryCoverageRow row;
    row.code = world.countries()[c].code;
    row.name = world.countries()[c].name;
    row.apnic_users = total[c];
    row.covered_fraction = covered[c] / total[c];
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) {
              return a.apnic_users > b.apnic_users;
            });
  return rows;
}

std::vector<ActiveFractionBounds> per_as_active_fraction(
    const sim::World& world, const net::DisjointPrefixSet& active) {
  std::vector<ActiveFractionBounds> out(world.ases().size());
  for (std::size_t i = 0; i < world.ases().size(); ++i) {
    out[i].asn = world.ases()[i].asn;
    for (const net::Prefix& p : world.ases()[i].announced) {
      out[i].announced_slash24 += p.slash24_count();
    }
  }
  const auto& trie = world.prefix2as();
  active.for_each([&](net::Prefix hit) {
    // Lower bound: one active /24, attributed to the announcer of the hit
    // prefix's base.
    if (auto match = trie.longest_match(hit.base())) {
      out[*match->second].lower += 1;
    }
    // Upper bound: every /24 in the hit prefix, attributed per announcer.
    const std::uint32_t first = hit.first_slash24_index();
    const std::uint64_t count = hit.slash24_count();
    for (std::uint64_t k = 0; k < count; ++k) {
      if (auto match = trie.longest_match(
              net::Ipv4Addr((first + static_cast<std::uint32_t>(k)) << 8))) {
        out[*match->second].upper += 1;
      }
    }
  });
  // Clamp to announced counts (a hit prefix wider than the announcement
  // must not imply more active space than the AS announces).
  std::vector<ActiveFractionBounds> filtered;
  for (auto& row : out) {
    if (row.announced_slash24 == 0) continue;
    row.upper = std::min(row.upper, row.announced_slash24);
    row.lower = std::min(row.lower, row.upper);
    filtered.push_back(row);
  }
  return filtered;
}

std::unordered_map<std::uint32_t, double> relative_volumes(
    const AsDataset& dataset) {
  std::unordered_map<std::uint32_t, double> out;
  const double total = dataset.total_volume();
  if (total <= 0) return out;
  out.reserve(dataset.entries().size());
  for (const auto& [asn, volume] : dataset.entries()) {
    out.emplace(asn, volume / total);
  }
  return out;
}

std::vector<double> volume_differences(
    const std::unordered_map<std::uint32_t, double>& a,
    const std::unordered_map<std::uint32_t, double>& b) {
  std::vector<double> out;
  out.reserve(a.size() + b.size());
  for (const auto& [asn, share] : a) {
    auto it = b.find(asn);
    out.push_back(share - (it == b.end() ? 0.0 : it->second));
  }
  for (const auto& [asn, share] : b) {
    if (!a.contains(asn)) out.push_back(-share);
  }
  return out;
}

}  // namespace netclients::core
