#include "core/report/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace netclients::core {

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out += cell;
      out.append(widths[i] - cell.size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  };
  emit(header_);
  std::size_t total = widths.empty() ? 0 : 2 * (widths.size() - 1);
  for (auto w : widths) total += w;
  out.append(total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string human_count(double value) {
  char buffer[32];
  if (value >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.1fM", value / 1e6);
  } else if (value >= 1e4) {
    std::snprintf(buffer, sizeof(buffer), "%.1fK", value / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  }
  return buffer;
}

std::string pct(double percent, int digits) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", digits, percent);
  return buffer;
}

std::string fixed(double value, int digits) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string render_overlap(const OverlapMatrix& matrix, bool human) {
  TextTable table;
  std::vector<std::string> header{""};
  for (const auto& name : matrix.names) header.push_back(name);
  table.set_header(std::move(header));
  for (std::size_t r = 0; r < matrix.names.size(); ++r) {
    std::vector<std::string> row{matrix.names[r]};
    for (std::size_t c = 0; c < matrix.names.size(); ++c) {
      const double count = static_cast<double>(matrix.cells[r][c]);
      const std::string value =
          human ? human_count(count) : fixed(count, 0);
      row.push_back(value + " (" + pct(matrix.row_pct(r, c)) + ")");
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

bool write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out << ',';
      out << cells[i];
    }
    out << '\n';
  };
  emit(header);
  for (const auto& row : rows) emit(row);
  return static_cast<bool>(out);
}

}  // namespace netclients::core
