#pragma once

#include <string>
#include <vector>

#include "core/compare/compare.h"

namespace netclients::core {

/// Fixed-width text table renderer for the bench binaries' paper-style
/// output.
class TextTable {
 public:
  void set_header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "9712.2K"-style compact counts, as the paper prints Table 1.
std::string human_count(double value);

/// Fixed-precision percentage, e.g. "68.1%".
std::string pct(double percent, int digits = 1);

std::string fixed(double value, int digits);

/// Renders an overlap matrix the way Tables 1 and 3 are printed: each cell
/// "count (row-%)", diagonal "count (100.0%)".
std::string render_overlap(const OverlapMatrix& matrix, bool human = true);

/// Writes a CSV file (used by the figure benches to dump plottable
/// series). Returns false on I/O failure.
bool write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace netclients::core
