#include "core/datasets/datasets.h"

namespace netclients::core {

AsDataset to_as_dataset(std::string name, const PrefixDataset& prefixes,
                        const sim::World& world) {
  AsDataset out(std::move(name));
  for (const auto& [slash24, volume] : prefixes.entries()) {
    auto match = world.prefix2as().longest_match(
        net::Ipv4Addr(slash24 << 8));
    if (!match) continue;  // unrouted space maps to no AS
    out.add(world.ases()[*match->second].asn, volume);
  }
  return out;
}

}  // namespace netclients::core
