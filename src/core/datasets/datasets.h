#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/prefix_trie.h"
#include "sim/world.h"

namespace netclients::core {

/// A named activity dataset keyed by /24 index, with an optional volume per
/// entry (0-volume entries are presence-only). This is the common currency
/// of §4's cross-comparisons: every source — cache probing, DNS logs, CDN
/// logs, Traffic Manager ECS — reduces to one of these.
class PrefixDataset {
 public:
  explicit PrefixDataset(std::string name) : name_(std::move(name)) {}

  void add(std::uint32_t slash24_index, double volume = 0) {
    auto [it, inserted] = entries_.try_emplace(slash24_index, volume);
    if (!inserted) it->second += volume;
    total_volume_ += volume;
  }

  bool contains(std::uint32_t slash24_index) const {
    return entries_.contains(slash24_index);
  }
  double volume_of(std::uint32_t slash24_index) const {
    auto it = entries_.find(slash24_index);
    return it == entries_.end() ? 0 : it->second;
  }

  std::size_t size() const { return entries_.size(); }
  double total_volume() const { return total_volume_; }
  const std::string& name() const { return name_; }
  const std::unordered_map<std::uint32_t, double>& entries() const {
    return entries_;
  }

  static PrefixDataset union_of(std::string name, const PrefixDataset& a,
                                const PrefixDataset& b) {
    PrefixDataset out(std::move(name));
    for (const auto& [k, v] : a.entries()) out.add(k, v);
    for (const auto& [k, v] : b.entries()) {
      if (!a.contains(k)) out.add(k, v);
    }
    return out;
  }

 private:
  std::string name_;
  std::unordered_map<std::uint32_t, double> entries_;
  double total_volume_ = 0;
};

/// A named activity dataset keyed by ASN.
class AsDataset {
 public:
  explicit AsDataset(std::string name) : name_(std::move(name)) {}

  void add(std::uint32_t asn, double volume = 0) {
    auto [it, inserted] = entries_.try_emplace(asn, volume);
    if (!inserted) it->second += volume;
    total_volume_ += volume;
  }

  bool contains(std::uint32_t asn) const { return entries_.contains(asn); }
  double volume_of(std::uint32_t asn) const {
    auto it = entries_.find(asn);
    return it == entries_.end() ? 0 : it->second;
  }

  std::size_t size() const { return entries_.size(); }
  double total_volume() const { return total_volume_; }
  const std::string& name() const { return name_; }
  const std::unordered_map<std::uint32_t, double>& entries() const {
    return entries_;
  }

  static AsDataset union_of(std::string name, const AsDataset& a,
                            const AsDataset& b) {
    AsDataset out(std::move(name));
    for (const auto& [k, v] : a.entries()) out.add(k, v);
    for (const auto& [k, v] : b.entries()) {
      if (!a.contains(k)) out.add(k, v);
    }
    return out;
  }

 private:
  std::string name_;
  std::unordered_map<std::uint32_t, double> entries_;
  double total_volume_ = 0;
};

/// Aggregates a /24 dataset to ASes using the world's Routeviews-style
/// prefix→AS table (volume sums per AS).
AsDataset to_as_dataset(std::string name, const PrefixDataset& prefixes,
                        const sim::World& world);

}  // namespace netclients::core
