#include "core/rank/activity_rank.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace netclients::core {

ActivityRanker::ActivityRanker(googledns::GooglePublicDns* google_dns,
                               std::vector<sim::DomainInfo> domains,
                               RankOptions options)
    : google_dns_(google_dns),
      domains_(std::move(domains)),
      options_(options) {}

PrefixActivity ActivityRanker::rank_prefix(net::Prefix prefix,
                                           anycast::PopId pop,
                                           int vp_id) const {
  PrefixActivity out;
  out.prefix = prefix;
  out.pop = pop;
  out.hit_rate.assign(domains_.size(), 0.0);

  const int pools = google_dns_->config().pools_per_pop;
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    const double ttl = domains_[d].ttl_seconds;
    int hits = 0;
    double age_total = 0;
    for (int round = 0; round < options_.rounds; ++round) {
      const double t = options_.start_time +
                       round * ttl * options_.round_spacing_ttls +
                       static_cast<double>(d) * 0.05;
      for (int attempt = 0; attempt < options_.redundant_queries; ++attempt) {
        const auto probe = google_dns_->probe(
            pop, domains_[d].name, prefix, t + attempt * 0.002,
            options_.transport, vp_id, 977 * round + attempt);
        if (probe.cache_hit && probe.return_scope > 0) {
          ++hits;
          age_total += std::max(0.5, ttl - probe.remaining_ttl);
          break;
        }
      }
    }
    const double rate =
        static_cast<double>(hits) / static_cast<double>(options_.rounds);
    out.hit_rate[d] = rate;
    if (hits == 0) continue;
    const double saturation = 1.0 - 0.5 / static_cast<double>(options_.rounds);
    double lambda_d = 0;
    if (rate >= saturation) {
      // Busy prefixes are always cached, so the hit rate stops carrying
      // signal; the *age* of the record still does (a Trufflehunter-style
      // estimate [31]): at λ_pool·T >> 1 the expected age of a live entry
      // approaches 1/λ_pool.
      const double mean_age = age_total / hits;
      lambda_d = pools / mean_age;
    } else {
      // A round's redundant attempts cover ~k of the P pools, so the
      // round-level hit probability is h ≈ 1 - exp(-λ k T / P) and
      // λ̂ = -(P / (k T)) ln(1 - h).
      const double k = std::min<double>(pools, options_.redundant_queries);
      lambda_d = -(pools / (k * ttl)) * std::log1p(-rate);
    }
    out.estimated_rate += lambda_d / static_cast<double>(domains_.size());
  }
  return out;
}

double ActivityRanker::estimate_at(net::Prefix prefix, anycast::PopId pop,
                                   int vp_id, net::SimTime start, int rounds,
                                   double round_spacing_seconds) const {
  const int pools = google_dns_->config().pools_per_pop;
  double estimate = 0;
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    const double ttl = domains_[d].ttl_seconds;
    int hits = 0;
    double age_total = 0;
    for (int round = 0; round < rounds; ++round) {
      const double t = start + round * round_spacing_seconds +
                       static_cast<double>(d) * 0.05;
      for (int attempt = 0; attempt < options_.redundant_queries; ++attempt) {
        const auto probe = google_dns_->probe(
            pop, domains_[d].name, prefix, t + attempt * 0.002,
            options_.transport, vp_id, 1583 * round + attempt);
        if (probe.cache_hit && probe.return_scope > 0) {
          ++hits;
          age_total += std::max(0.5, ttl - probe.remaining_ttl);
          break;
        }
      }
    }
    if (hits == 0) continue;
    const double rate = static_cast<double>(hits) / rounds;
    if (rate >= 1.0 - 0.5 / rounds) {
      estimate += pools / (age_total / hits);
    } else {
      const double k = std::min<double>(pools, options_.redundant_queries);
      estimate += -(pools / (k * ttl)) * std::log1p(-rate);
    }
  }
  return estimate / static_cast<double>(domains_.size());
}

ActivityRanker::DiurnalProfile ActivityRanker::diurnal_profile(
    net::Prefix prefix, anycast::PopId pop, int vp_id, int slots,
    int days) const {
  DiurnalProfile profile;
  profile.prefix = prefix;
  profile.rate_by_slot.assign(static_cast<std::size_t>(slots), 0.0);
  // For each time-of-day slot, probe `days` rounds exactly one day apart —
  // independent cache windows that all sample the same local phase.
  for (int slot = 0; slot < slots; ++slot) {
    const double slot_start =
        options_.start_time + slot * (net::kDay / slots);
    profile.rate_by_slot[static_cast<std::size_t>(slot)] =
        estimate_at(prefix, pop, vp_id, slot_start, days, net::kDay);
  }
  double lo = profile.rate_by_slot[0], hi = profile.rate_by_slot[0];
  double mean = 0;
  for (double r : profile.rate_by_slot) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    mean += r;
  }
  mean /= static_cast<double>(slots);
  profile.swing = mean > 0 ? (hi - lo) / mean : 0;
  return profile;
}

double ActivityRanker::day_night_contrast(net::Prefix prefix,
                                          anycast::PopId pop, int vp_id,
                                          double longitude_deg,
                                          int days) const {
  // Local time leads UTC by longitude/15 hours; sample the local evening
  // peak (20:00) and pre-dawn trough (08:00 opposite phase).
  const double lead = longitude_deg / 360.0 * 86400.0;
  // Absolute simulated time is phase-aligned to UTC midnight at t = 0, so
  // anchor the schedule at the first day boundary after start_time.
  const double day_base =
      std::ceil(options_.start_time / 86400.0) * 86400.0;
  auto utc_of_local_hour = [&](double hour) {
    double t = hour * 3600.0 - lead;
    while (t < 0) t += 86400.0;
    return t;
  };
  const double evening = estimate_at(
      prefix, pop, vp_id, day_base + utc_of_local_hour(20.0), days, 86400.0);
  const double dawn = estimate_at(
      prefix, pop, vp_id, day_base + utc_of_local_hour(8.0), days, 86400.0);
  const double total = evening + dawn;
  return total > 0 ? (evening - dawn) / total : 0.0;
}

std::vector<PrefixActivity> ActivityRanker::rank(
    const CampaignResult& campaign, const PopDiscoveryResult& pops) const {
  // Representative VP per probed PoP.
  std::unordered_map<anycast::PopId, int> vp_of;
  for (const auto& [pop, vp_id] : pops.probed_pops) vp_of.emplace(pop, vp_id);

  // Serving PoP per active prefix: from the campaign's hits.
  std::unordered_map<std::uint32_t, anycast::PopId> pop_of;
  for (const CacheHit& hit : campaign.hits) {
    pop_of.emplace(hit.query_scope.base().value(), hit.pop);
  }

  std::vector<PrefixActivity> out;
  campaign.active.for_each([&](net::Prefix prefix) {
    const auto pop_it = pop_of.find(prefix.base().value());
    if (pop_it == pop_of.end()) return;
    const auto vp_it = vp_of.find(pop_it->second);
    if (vp_it == vp_of.end()) return;
    out.push_back(rank_prefix(prefix, pop_it->second, vp_it->second));
  });
  std::sort(out.begin(), out.end(),
            [](const PrefixActivity& a, const PrefixActivity& b) {
              return a.estimated_rate > b.estimated_rate;
            });
  return out;
}

}  // namespace netclients::core
