#pragma once

#include <cstdint>
#include <vector>

#include "core/cacheprobe/cacheprobe.h"
#include "googledns/google_dns.h"
#include "sim/domains.h"

namespace netclients::core {

/// Options for the activity-ranking pass (§6 / the contemporaneous
/// traffic-map workshop paper [20]).
struct RankOptions {
  /// Probe rounds per prefix. Rounds are spaced several TTLs apart so each
  /// samples an independent cache window.
  int rounds = 24;
  double round_spacing_ttls = 3.0;
  int redundant_queries = 5;
  googledns::Transport transport = googledns::Transport::kTcp;
  net::SimTime start_time = 1.0e6;  // after the discovery campaign
  std::uint64_t seed = 0x4A4E4B;
};

/// Relative-activity estimate for one active prefix.
struct PrefixActivity {
  net::Prefix prefix;
  anycast::PopId pop = anycast::kNoPop;
  /// Fraction of probe rounds with a cache hit, per domain index.
  std::vector<double> hit_rate;
  /// Combined client query-rate estimate (queries/sec toward Google
  /// Public DNS), inverted from the renewal model.
  double estimated_rate = 0;
};

/// The paper's §6 roadmap, implemented: turn the binary active/inactive
/// signal into a *relative activity ranking* by probing each active prefix
/// repeatedly over time and across domains.
///
/// For Poisson client arrivals at rate λ into P independent cache pools
/// with record TTL T, the per-probe hit probability is
///   h = 1 - exp(-λ T / P),
/// so the observed hit rate across independent windows inverts to
///   λ̂ = -(P / T) · ln(1 - h).
/// Estimates are combined across domains (each domain's TTL and popularity
/// differ, so each contributes an independent view of the same underlying
/// client population).
class ActivityRanker {
 public:
  ActivityRanker(googledns::GooglePublicDns* google_dns,
                 std::vector<sim::DomainInfo> domains,
                 RankOptions options = {});

  /// Ranks the hit prefixes of a completed campaign. `pops` supplies the
  /// vantage that reaches each serving PoP. Output is sorted by
  /// estimated_rate descending.
  std::vector<PrefixActivity> rank(const CampaignResult& campaign,
                                   const PopDiscoveryResult& pops) const;

  /// Ranks one prefix at one PoP (building block, also used by tests).
  PrefixActivity rank_prefix(net::Prefix prefix, anycast::PopId pop,
                             int vp_id) const;

  /// §6's "infer which prefixes with client activity likely include
  /// (human) user activity, using ... patterns over time (e.g., diurnal
  /// patterns)": estimates the prefix's activity at several times of day
  /// and scores the relative swing. Human populations show a strong
  /// day/night cycle; bot farms are flat.
  struct DiurnalProfile {
    net::Prefix prefix;
    std::vector<double> rate_by_slot;  // λ̂ per time-of-day slot
    /// (max - min) / mean across slots; ~0 for bots.
    double swing = 0;
  };
  DiurnalProfile diurnal_profile(net::Prefix prefix, anycast::PopId pop,
                                 int vp_id, int slots = 6,
                                 int days = 12) const;

  /// Phase-locked variant: using the prefix's (geolocated) longitude, the
  /// prober knows *when* its local evening and pre-dawn are, and contrasts
  /// activity estimates at exactly those phases:
  ///   contrast = (λ̂_evening − λ̂_dawn) / (λ̂_evening + λ̂_dawn).
  /// Far more noise-robust than the unlocked swing: human prefixes score
  /// strongly positive, bots near zero.
  double day_night_contrast(net::Prefix prefix, anycast::PopId pop,
                            int vp_id, double longitude_deg,
                            int days = 12) const;

 private:
  double estimate_at(net::Prefix prefix, anycast::PopId pop, int vp_id,
                     net::SimTime start, int rounds,
                     double round_spacing_seconds) const;

  googledns::GooglePublicDns* google_dns_;
  std::vector<sim::DomainInfo> domains_;
  RankOptions options_;
};

}  // namespace netclients::core
