#include "core/exec/exec.h"

#include <algorithm>
#include <cstdlib>

namespace netclients::core::exec {

int thread_count() {
  if (const char* value = std::getenv("REPRO_THREADS")) {
    const int parsed = std::atoi(value);
    if (parsed >= 1) return parsed;
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || next_ < queue_.size(); });
      if (next_ >= queue_.size()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_[next_++]);
      if (next_ == queue_.size()) {
        queue_.clear();
        next_ = 0;
      }
    }
    task();
  }
}

ThreadPool& shared_pool() {
  // Sized for the hardware (floor 4 so TSan runs on small CI boxes still
  // get real interleaving); REPRO_THREADS only selects how many worker
  // tasks each parallel_map submits.
  static ThreadPool pool(
      std::max(4, static_cast<int>(std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace netclients::core::exec
