#include "core/exec/steal.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace netclients::core::exec::detail {
namespace {

/// One worker's task store. Tasks are coarse (a record chunk is tens of
/// thousands of records), so a plain mutex-guarded deque costs noise next
/// to the work it hands out; the lock-free Chase-Lev structure would buy
/// nothing measurable here.
struct WorkerDeque {
  std::mutex mu;
  std::deque<std::size_t> tasks;
};

void record_metrics(std::size_t tasks, const StealTelemetry& t) {
  // Task count depends only on the input, so it is safe to always record.
  static obs::Counter& tasks_metric =
      obs::Registry::global().counter("exec.steal.tasks");
  tasks_metric.add(tasks);
  // Steal tallies are scheduling noise: lazily instantiated so they never
  // appear in serial runs, keeping REPRO_THREADS=1 exports byte-stable.
  if (t.steals > 0) {
    obs::Registry::global().counter("exec.steal.steals").add(t.steals);
    obs::Registry::global()
        .counter("exec.steal.stolen_tasks")
        .add(t.stolen_tasks);
  }
  if (t.attempts > 0) {
    obs::Registry::global().counter("exec.steal.attempts").add(t.attempts);
  }
}

}  // namespace

void steal_run(std::size_t n, int threads,
               const std::function<void(std::size_t)>& task,
               StealTelemetry* telemetry) {
  StealTelemetry local;
  local.tasks = n;
  if (n == 0) {
    if (telemetry) *telemetry = local;
    return;
  }
  if (threads <= 0) threads = thread_count();
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads), n);
  local.workers = workers;

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) task(i);
    record_metrics(n, local);
    if (telemetry) *telemetry = local;
    return;
  }

  std::vector<WorkerDeque> deques(workers);
  // Initial block partition: contiguous index runs so each owner walks its
  // slice in order (cache-friendly for chunk scans) before stealing.
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = n * w / workers;
    const std::size_t end = n * (w + 1) / workers;
    for (std::size_t i = begin; i < end; ++i) deques[w].tasks.push_back(i);
  }

  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> steals{0};
  std::atomic<std::size_t> stolen_tasks{0};
  std::atomic<std::size_t> attempts{0};
  std::atomic<std::size_t> remaining{workers};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::mutex error_mu;
  std::exception_ptr error;

  auto run_one = [&](std::size_t i) {
    try {
      task(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
    }
    executed.fetch_add(1, std::memory_order_acq_rel);
  };

  auto body = [&](std::size_t self) {
    WorkerDeque& mine = deques[self];
    std::vector<std::size_t> grabbed;
    while (executed.load(std::memory_order_acquire) < n) {
      // Drain the local deque from the back (most recently acquired).
      bool ran = false;
      for (;;) {
        std::size_t i;
        {
          std::lock_guard<std::mutex> lock(mine.mu);
          if (mine.tasks.empty()) break;
          i = mine.tasks.back();
          mine.tasks.pop_back();
        }
        run_one(i);
        ran = true;
      }
      if (executed.load(std::memory_order_acquire) >= n) break;
      // Local deque dry: probe the other workers and steal half of the
      // first non-empty deque, from the *front* (the victim works from
      // the back, so fronts are the coldest tasks — least contended).
      grabbed.clear();
      for (std::size_t step = 1; step < workers && grabbed.empty(); ++step) {
        const std::size_t victim = (self + step) % workers;
        attempts.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(deques[victim].mu);
        auto& vt = deques[victim].tasks;
        const std::size_t take = (vt.size() + 1) / 2;
        for (std::size_t k = 0; k < take; ++k) {
          grabbed.push_back(vt.front());
          vt.pop_front();
        }
      }
      if (grabbed.empty()) {
        // Everything is either done or in flight on another worker; yield
        // until the stragglers finish (or push new... they won't — the
        // task set is fixed, so this loop exits as soon as executed == n).
        if (!ran) std::this_thread::yield();
        continue;
      }
      steals.fetch_add(1, std::memory_order_relaxed);
      stolen_tasks.fetch_add(grabbed.size(), std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(mine.mu);
        for (std::size_t i : grabbed) mine.tasks.push_back(i);
      }
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu);
      done_cv.notify_all();
    }
  };

  for (std::size_t w = 1; w < workers; ++w) {
    shared_pool().submit([&body, w] { body(w); });
  }
  body(0);  // the calling thread is worker 0
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] {
      return remaining.load(std::memory_order_acquire) == 0;
    });
  }

  local.steals = steals.load(std::memory_order_relaxed);
  local.stolen_tasks = stolen_tasks.load(std::memory_order_relaxed);
  local.attempts = attempts.load(std::memory_order_relaxed);
  record_metrics(n, local);
  if (telemetry) *telemetry = local;
  if (error) std::rethrow_exception(error);
}

}  // namespace netclients::core::exec::detail
