#pragma once

// Deterministic parallel-execution layer for the probe/scan pipelines.
//
// Every construct here preserves the repo's core invariant: same seed ⇒
// byte-identical output regardless of thread count. The rules that make
// that hold:
//
//  * Work is split into *shards* whose boundaries depend only on the input
//    size (fixed chunk sizes), never on the thread count or scheduling.
//  * Results are collected *by shard index* and merged in shard order —
//    an ordered merge, not first-come-first-served.
//  * Any randomness a shard needs comes from `shard_seed(seed, shard_id)`
//    — a stable hash of the logical shard, never of thread identity.
//  * Shared accumulators are either commutative over integers (atomic
//    counter increments, count-min sketch cells) or per-shard partials
//    merged in shard order.
//
// `REPRO_THREADS` (env) selects the parallelism degree; `1` forces the
// serial path (the shard loop runs inline on the calling thread, visiting
// shards in index order — which is exactly the order the merge replays, so
// serial and parallel runs are identical by construction).

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/obs/obs.h"
#include "net/rng.h"

namespace netclients::core::exec {

/// Parallelism degree: REPRO_THREADS when set (clamped to >= 1), otherwise
/// std::thread::hardware_concurrency. Re-read on every call so tests can
/// flip the env var in-process.
int thread_count();

/// Fixed-size thread pool. Workers are started once and run until
/// destruction; tasks are plain fire-and-forget closures (parallel_map
/// layers its own completion tracking on top).
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::function<void()>> queue_;
  std::size_t next_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// The process-wide pool the pipelines share. Sized once at first use;
/// parallel_map caps its effective parallelism at pool size + 1 (the
/// calling thread participates), so REPRO_THREADS larger than the pool
/// still runs — just with less actual concurrency, and identical results.
ThreadPool& shared_pool();

/// Seed for the RNG stream of shard `shard_id` under master `seed`.
/// Derived by stable hashing of the logical shard id — never by thread
/// identity — so a shard's stream is the same whichever thread runs it.
constexpr std::uint64_t shard_seed(std::uint64_t seed,
                                   std::uint64_t shard_id) {
  return net::stable_seed(seed ^ 0x5AADD5EEDULL, shard_id);
}

/// Ready-made per-shard generator.
inline net::Rng shard_rng(std::uint64_t seed, std::uint64_t shard_id) {
  return net::Rng(shard_seed(seed, shard_id));
}

/// Runs fn(i) for every i in [0, n) across `threads` workers and returns
/// the results *in index order*. `threads <= 0` means thread_count();
/// 1 (or n <= 1) runs inline, in index order, on the calling thread.
///
/// fn must not itself call parallel_map/parallel_for_chunks: nested waits
/// could exhaust the fixed pool. The pipelines parallelise one stage at a
/// time, sequentially.
template <typename Fn>
auto parallel_map(std::size_t n, int threads, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  // Fan-out telemetry. Only the total shard count is recorded: it depends
  // on the input size alone. Neither the worker split nor the number of
  // parallel_map *calls* qualifies — batching callers (ChunkedScatter)
  // legally flush in thread-count-sized groups — and recording either
  // would break the byte-identical-export-at-any-REPRO_THREADS contract.
  static obs::Counter& shards_metric =
      obs::Registry::global().counter("exec.parallel_map.shards");
  shards_metric.add(n);
  std::vector<R> results(n);
  if (n == 0) return results;
  if (threads <= 0) threads = thread_count();
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{workers};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::mutex error_mu;
  std::exception_ptr error;

  auto body = [&] {
    std::size_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) {
      try {
        results[i] = fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu);
      done_cv.notify_all();
    }
  };

  for (std::size_t w = 1; w < workers; ++w) shared_pool().submit(body);
  body();  // the calling thread is worker 0
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] {
      return remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (error) std::rethrow_exception(error);
  return results;
}

/// A contiguous shard of an index range.
struct ChunkRange {
  std::size_t index = 0;  // shard id — feed this to shard_seed, not a tid
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// A record-aligned shard of a byte stream: `[begin, end)` are byte
/// offsets cut exactly at record boundaries, `first_record`/`records` the
/// corresponding record range. Produced by RecordChunker; consumed by
/// scans that fan chunks out via parallel_map and merge per-chunk partials
/// in chunk order.
struct RecordChunk {
  std::size_t index = 0;  // shard id — feed this to shard_seed, not a tid
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint64_t first_record = 0;
  std::uint64_t records = 0;
};

/// Builds a record-aligned chunk partition of a variable-length-record
/// byte stream during one serial boundary scan: call note() once per
/// record (in stream order) with the record's begin offset, then finish()
/// with the end offset of the last record. A boundary is cut every
/// `records_per_chunk` records, so the partition depends only on the
/// record stream and the chunk size — never on the thread count — and a
/// chunk-ordered merge of per-chunk partials is byte-identical at any
/// REPRO_THREADS. (parallel_for_chunks covers fixed-size elements, where
/// offsets are index arithmetic; this is its variable-length sibling.)
class RecordChunker {
 public:
  explicit RecordChunker(std::size_t records_per_chunk)
      : per_chunk_(records_per_chunk == 0 ? 1 : records_per_chunk) {}

  void note(std::size_t begin_offset) {
    if (records_ % per_chunk_ == 0) starts_.push_back(begin_offset);
    ++records_;
  }

  std::uint64_t records() const { return records_; }

  std::vector<RecordChunk> finish(std::size_t end_offset) const {
    std::vector<RecordChunk> chunks;
    chunks.reserve(starts_.size());
    for (std::size_t i = 0; i < starts_.size(); ++i) {
      RecordChunk chunk;
      chunk.index = i;
      chunk.begin = starts_[i];
      chunk.end = i + 1 < starts_.size() ? starts_[i + 1] : end_offset;
      chunk.first_record = static_cast<std::uint64_t>(i) * per_chunk_;
      chunk.records =
          std::min<std::uint64_t>(per_chunk_, records_ - chunk.first_record);
      chunks.push_back(chunk);
    }
    return chunks;
  }

 private:
  std::size_t per_chunk_;
  std::uint64_t records_ = 0;
  std::vector<std::size_t> starts_;
};

/// Splits [begin, end) into chunks of `chunk_size` (the last may be
/// short), runs fn(ChunkRange) on each, and returns the per-chunk results
/// in chunk order. Chunk boundaries depend only on (begin, end,
/// chunk_size) — the same partition for any thread count.
template <typename Fn>
auto parallel_for_chunks(std::size_t begin, std::size_t end,
                         std::size_t chunk_size, int threads, Fn&& fn)
    -> std::vector<decltype(fn(ChunkRange{}))> {
  if (chunk_size == 0) chunk_size = 1;
  const std::size_t span = end > begin ? end - begin : 0;
  const std::size_t chunks = (span + chunk_size - 1) / chunk_size;
  return parallel_map(chunks, threads, [&](std::size_t i) {
    ChunkRange range;
    range.index = i;
    range.begin = begin + i * chunk_size;
    range.end = std::min(end, range.begin + chunk_size);
    return fn(range);
  });
}

}  // namespace netclients::core::exec
