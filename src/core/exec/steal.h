#pragma once

// Work-stealing task scheduler for uneven shard streams.
//
// `parallel_map` hands shards out through one shared atomic counter, which
// is fair when every shard costs about the same. A multi-file trace corpus
// breaks that assumption: files differ in size, chunks differ in record
// mix, and a straggler file serialises the tail of the scan. `steal_map`
// keeps the same external contract as `parallel_map` — results returned
// *by task index*, so the caller's canonical-order merge is untouched —
// but schedules through per-worker deques with steal-half rebalancing.
//
// Determinism: execution order is intentionally racy (who steals what
// depends on timing), and that is fine *because nothing observable depends
// on it*. Each task writes only results[i]; shared accumulators a task
// touches must be commutative (atomic integer adds, sketch cells), exactly
// the parallel_map rules. The caller merges results in task-index order,
// so `ChromiumResult` and friends stay byte-identical at any REPRO_THREADS
// and any steal interleaving.
//
// Telemetry: `exec.steal.tasks` counts scheduled tasks and is a function
// of the input alone, so it is always recorded. Steal tallies
// (`exec.steal.steals`, `.stolen_tasks`, `.attempts`) are scheduling
// noise — different on every run — and are recorded *lazily*: the metric
// is only instantiated once a steal actually happens. Serial runs (and
// any REPRO_THREADS=1 determinism harness diffing metric exports) never
// see the keys; multi-threaded callers that want them accept that they
// sit outside the byte-identical-export contract, like timing gauges.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/exec/exec.h"

namespace netclients::core::exec {

/// Per-call scheduling telemetry, for callers (bench_scan) that want to
/// derive a steal ratio without reading global metrics.
struct StealTelemetry {
  std::size_t tasks = 0;        // tasks scheduled (== n)
  std::size_t workers = 0;      // workers that participated
  std::size_t steals = 0;       // successful steal-half operations
  std::size_t stolen_tasks = 0; // tasks moved by those steals
  std::size_t attempts = 0;     // steal probes, successful or not
};

namespace detail {

/// Type-erased core: runs task(i) for i in [0, n) over `threads` workers
/// using per-worker deques with steal-half. The callable is invoked for
/// each index exactly once; index-order result collection is layered on
/// top by steal_map.
void steal_run(std::size_t n, int threads,
               const std::function<void(std::size_t)>& task,
               StealTelemetry* telemetry);

}  // namespace detail

/// Work-stealing sibling of parallel_map: runs fn(i) for every i in
/// [0, n) and returns the results *in index order*. `threads <= 0` means
/// thread_count(); 1 (or n <= 1) runs inline in index order on the
/// calling thread. Same nesting rule as parallel_map: fn must not itself
/// fan out through the shared pool.
template <typename Fn>
auto steal_map(std::size_t n, int threads, Fn&& fn,
               StealTelemetry* telemetry = nullptr)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> results(n);
  detail::steal_run(
      n, threads, [&](std::size_t i) { results[i] = fn(i); }, telemetry);
  return results;
}

}  // namespace netclients::core::exec
