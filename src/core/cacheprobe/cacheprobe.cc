#include "core/cacheprobe/cacheprobe.h"

#include <algorithm>
#include <cmath>

#include "core/engine/engine.h"
#include "core/exec/exec.h"
#include "core/obs/obs.h"
#include "net/rng.h"

namespace netclients::core {

using anycast::PopId;

namespace {

// Campaign-stage telemetry. Counters are bumped post-merge (the merged
// totals are already deterministic); double-valued histograms are fed by
// per-shard ShardDeltas merged in shard order, so their sums replay the
// serial accumulation sequence at any REPRO_THREADS.
struct CampaignMetrics {
  obs::Counter& scope_candidates =
      obs::Registry::global().counter("cacheprobe.scopes.candidates");
  obs::Counter& pops_probed =
      obs::Registry::global().counter("cacheprobe.pops.probed");
  obs::Counter& calibration_sampled =
      obs::Registry::global().counter("cacheprobe.calibration.sampled");
  obs::Counter& campaign_hits =
      obs::Registry::global().counter("cacheprobe.campaign.hits");
  obs::Counter& campaign_probes =
      obs::Registry::global().counter("cacheprobe.campaign.probes_sent");
  obs::Counter& campaign_rate_limited =
      obs::Registry::global().counter("cacheprobe.campaign.rate_limited");
  obs::Counter& campaign_assigned =
      obs::Registry::global().counter("cacheprobe.campaign.assigned");
  obs::Histogram& hit_distance_km = obs::Registry::global().histogram(
      "cacheprobe.calibration.hit_distance_km",
      {100, 250, 500, 1000, 2000, 4000, 8000, 16000});
  obs::Histogram& assigned_per_pop_domain = obs::Registry::global().histogram(
      "cacheprobe.campaign.assigned_per_pop_domain",
      {0, 10, 100, 1000, 10000, 100000, 1000000});
  // Probe-engine telemetry (`engine.*`): per-evaluation chain latencies on
  // the virtual clock, plus per-stage event-loop counters and gauges
  // published by publish_engine_stats below.
  obs::Histogram& engine_latency_ms = obs::Registry::global().histogram(
      "engine.completion.latency_ms",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000});

  static CampaignMetrics& get() {
    static CampaignMetrics metrics;
    return metrics;
  }
};

/// Registers the merged event-loop tallies of one stage. Counter names
/// register only when nonzero (totals are REPRO_THREADS-independent, so
/// the exported name set stays deterministic); the virtual-elapsed gauge
/// is per stage, the in-flight peak a process-wide high-water mark.
void publish_engine_stats(const engine::EngineStats& merged,
                          const char* virtual_gauge_name) {
  auto& registry = obs::Registry::global();
  const auto bump = [&](const char* name, std::uint64_t value) {
    if (value) registry.counter(name).add(value);
  };
  bump("engine.evaluations", merged.evaluations);
  bump("engine.window.stalls", merged.window_stalls);
  bump("engine.breaker.drained", merged.breaker_drained);
  registry.gauge(virtual_gauge_name).set(merged.virtual_elapsed_seconds);
  auto& peak = registry.gauge("engine.inflight.peak");
  peak.set(std::max(peak.value(),
                    static_cast<double>(merged.peak_in_flight)));
}

/// The per-shard prober for one (PoP, vantage) pair, built from the probe
/// policy. All engine state (window, event heap, breaker, escalation) is
/// confined to the shard.
std::unique_ptr<engine::Prober> make_shard_prober(
    const ProbeEnvironment& env, const ProbePolicy& policy, anycast::PopId pop,
    int vp_id, obs::ShardDelta* metrics,
    engine::Prober::CompletionFn on_complete) {
  engine::ProberContext context;
  context.dns = env.google_dns;
  context.domains = &env.domains;
  context.pop = pop;
  context.vp_id = vp_id;
  context.transport = policy.transport;
  context.retry = policy.retry;
  context.breaker = policy.breaker;
  context.metrics = metrics;
  context.completion_latency_ms = &CampaignMetrics::get().engine_latency_ms;
  return engine::make_prober(context, policy.engine, std::move(on_complete));
}

}  // namespace

PrefixDataset CampaignResult::to_prefix_dataset(std::string name) const {
  PrefixDataset out(std::move(name));
  active.for_each([&](net::Prefix p) {
    const std::uint32_t first = p.first_slash24_index();
    const std::uint64_t count = p.slash24_count();
    for (std::uint64_t i = 0; i < count; ++i) {
      out.add(first + static_cast<std::uint32_t>(i));
    }
  });
  return out;
}

double mean_assigned_per_pop(std::uint64_t total_assigned, std::size_t pops,
                             std::size_t domains) {
  const double cells = static_cast<double>(pops) * static_cast<double>(domains);
  return cells > 0 ? static_cast<double>(total_assigned) / cells : 0.0;
}

namespace {

/// /24s per scope-discovery shard. Fixed (never derived from the thread
/// count) so the shard partition — and therefore the merged candidate
/// list — is identical for every REPRO_THREADS value.
constexpr std::size_t kScopeScanChunk = 1 << 14;

}  // namespace

std::vector<ProbeCandidate> discover_scopes(const ProbeEnvironment& env,
                                            const CacheProbeOptions& options,
                                            int domain_index) {
  obs::StageSpan span("cacheprobe.discover_scopes");
  const sim::DomainInfo& domain =
      env.domains[static_cast<std::size_t>(domain_index)];
  const int max_attempts = std::max(1, options.probe.retry.max_attempts);

  // Each shard runs the serial scan over its own /24 range. A shard's
  // first candidate may also be covered by the previous shard's final
  // candidate (scopes are not aligned to shard seams) — the ordered merge
  // below drops those, mirroring the slight overlaps real unaligned
  // authoritative scopes produce anyway.
  struct ChunkScan {
    std::vector<ProbeCandidate> out;
    resilience::RetryStats stats;
    std::uint64_t skipped = 0;  // /24s abandoned after exhausted retries
  };
  const auto chunks = exec::parallel_for_chunks(
      env.slash24_begin, env.slash24_end, kScopeScanChunk, options.threads,
      [&](exec::ChunkRange range) {
        ChunkScan scan;
        std::uint32_t idx = static_cast<std::uint32_t>(range.begin);
        while (idx < range.end) {
          const net::Prefix slash24 = net::Prefix::from_slash24_index(idx);
          // The authoritative edge can SERVFAIL or time out under injected
          // faults; retry within the attempt budget, then skip-and-count
          // the /24 (a fault-free server answers the first attempt, with
          // no extra calls and no RNG draws).
          bool answered = true;
          for (int attempt = 0;; ++attempt) {
            const dnssrv::QueryOutcome outcome = env.authoritative->query_outcome(
                domain.name, slash24, /*epoch=*/0,
                static_cast<std::uint64_t>(attempt));
            if (outcome == dnssrv::QueryOutcome::kOk) break;
            ++scan.stats.upstream_failures;
            if (outcome == dnssrv::QueryOutcome::kTimeout) {
              ++scan.stats.timeouts;
            } else {
              ++scan.stats.servfails;
            }
            if (attempt + 1 >= max_attempts) {
              ++scan.stats.exhausted;
              answered = false;
              break;
            }
            ++scan.stats.retries;
          }
          if (!answered) {
            ++scan.skipped;
            ++idx;
            continue;
          }
          const auto scope = env.authoritative->scope_for(domain.name, slash24,
                                                          /*epoch=*/0);
          if (!scope || *scope == 0) {
            // Non-ECS answer: the whole address space shares one cache
            // entry, so there is nothing prefix-specific to learn — skip
            // the domain's /24.
            ++idx;
            continue;
          }
          const std::uint8_t scope_len = std::min<std::uint8_t>(*scope, 24);
          const net::Prefix candidate = slash24.widen_to(scope_len);
          scan.out.push_back(ProbeCandidate{candidate});
          // All /24s inside the returned scope share the cache entry.
          idx = candidate.first_slash24_index() +
                static_cast<std::uint32_t>(candidate.slash24_count());
        }
        return scan;
      });

  std::vector<ProbeCandidate> candidates;
  resilience::RetryStats edge_stats;
  std::uint64_t skipped = 0;
  std::uint32_t covered_to = 0;
  for (const ChunkScan& chunk : chunks) {
    edge_stats.merge(chunk.stats);
    skipped += chunk.skipped;
    for (const ProbeCandidate& candidate : chunk.out) {
      const std::uint32_t end =
          candidate.scope.first_slash24_index() +
          static_cast<std::uint32_t>(candidate.scope.slash24_count());
      if (end <= covered_to) continue;  // seam overlap: already covered
      candidates.push_back(candidate);
      covered_to = end;
    }
  }
  CampaignMetrics::get().scope_candidates.add(candidates.size());
  edge_stats.publish();
  if (skipped) {
    obs::Registry::global().counter("cacheprobe.scopes.skipped").add(skipped);
  }
  return candidates;
}

PopDiscoveryResult discover_pops(const ProbeEnvironment& env) {
  obs::StageSpan span("cacheprobe.discover_pops");
  PopDiscoveryResult result;
  result.vp_pop.reserve(env.vantage_points.size());
  for (const auto& vp : env.vantage_points) {
    // Equivalent of `dig @8.8.8.8 o-o.myaddr.l.google.com -t TXT`.
    const PopId pop =
        env.google_dns->pop_for(vp.location, vp.address.value());
    result.vp_pop.push_back(pop);
    const bool seen =
        std::any_of(result.probed_pops.begin(), result.probed_pops.end(),
                    [&](const auto& entry) { return entry.first == pop; });
    if (!seen) result.probed_pops.emplace_back(pop, vp.id);
  }
  std::sort(result.probed_pops.begin(), result.probed_pops.end());
  CampaignMetrics::get().pops_probed.add(result.probed_pops.size());
  return result;
}

CalibrationResult calibrate(const ProbeEnvironment& env,
                            const CacheProbeOptions& options,
                            const PopDiscoveryResult& pops) {
  obs::StageSpan span("cacheprobe.calibrate");
  CalibrationResult result;
  // Random sample of geolocatable /24s with tight error radius. The target
  // count scales with the address space so the density matches the paper's
  // 78,637-of-15.5M sample. Drawn once, serially, before the fan-out: all
  // PoP shards probe the same sample.
  const double space_fraction =
      static_cast<double>(env.slash24_end - env.slash24_begin) / 15527909.0;
  const double target =
      std::max(64.0, options.calibration_sample_target * space_fraction);

  std::vector<std::pair<std::uint32_t, net::LatLon>> sample;
  {
    std::size_t eligible = 0;
    env.geodb->for_each([&](std::uint32_t, const geo::GeoRecord& rec) {
      if (rec.error_radius_km < options.calibration_max_error_radius_km) {
        ++eligible;
      }
    });
    if (eligible == 0) return result;
    const double p = std::min(1.0, target / static_cast<double>(eligible));
    net::Rng rng(net::stable_seed(options.seed, 0xCA11u));
    env.geodb->for_each([&](std::uint32_t idx, const geo::GeoRecord& rec) {
      if (rec.error_radius_km < options.calibration_max_error_radius_km &&
          rng.bernoulli(p)) {
        sample.emplace_back(idx, rec.location);
      }
    });
  }
  result.sampled_prefixes = sample.size();
  CampaignMetrics::get().calibration_sampled.add(sample.size());

  // Calibration probes the four Alexa domains (§3.1.1); the Microsoft CDN
  // domain is reserved for validation.
  std::vector<int> calibration_domains;
  for (std::size_t d = 0; d < env.domains.size(); ++d) {
    if (!env.domains[d].is_microsoft_cdn) {
      calibration_domains.push_back(static_cast<int>(d));
    }
  }

  // One shard per PoP: each shard drives its own vantage point's flows and
  // its own PoP's cache pools, so shards never contend on substrate state.
  // Every sample becomes one submitted chain (the four domains at one
  // schedule slot, first hit wins); outcomes land in a tag-indexed slot
  // array, so the post-drain walk reproduces the serial sample order
  // whatever order completions fired in.
  const ProbePolicy& policy = options.probe;
  struct PopCalibration {
    std::vector<double> distances;
    double radius = 0;
    resilience::RetryStats retry_stats;
    engine::EngineStats engine_stats;
    obs::ShardDelta metrics;  // merged in PoP order below
  };
  std::vector<PopCalibration> shards = exec::parallel_map(
      pops.probed_pops.size(), options.threads, [&](std::size_t i) {
        const auto& [pop, vp_id] = pops.probed_pops[i];
        PopCalibration shard;
        std::vector<engine::ProbeOutcome> outcomes(sample.size());
        auto prober = make_shard_prober(
            env, policy, pop, vp_id, &shard.metrics,
            [&](const engine::ProbeOutcome& outcome) {
              outcomes[outcome.tag] = outcome;
            });
        engine::ProbeRequest request;
        request.domain_indices = calibration_domains;
        request.redundancy = policy.redundant_queries;
        double t = 0;
        for (std::size_t s = 0; s < sample.size(); ++s) {
          request.tag = s;
          request.scope = net::Prefix::from_slash24_index(sample[s].first);
          request.schedule_time = t;
          prober->submit(request);
          t += 1.0 / options.prefixes_per_second_per_domain;
        }
        prober->drain();
        for (std::size_t s = 0; s < sample.size(); ++s) {
          if (!outcomes[s].hit) continue;
          shard.distances.push_back(net::haversine_km(
              sample[s].second, env.google_dns->pops().site(pop).location));
          shard.metrics.observe(CampaignMetrics::get().hit_distance_km,
                                shard.distances.back());
        }
        shard.retry_stats = prober->stats();
        shard.engine_stats = prober->engine_stats();
        if (shard.distances.size() >= 10) {
          std::vector<double> sorted = shard.distances;
          std::sort(sorted.begin(), sorted.end());
          const std::size_t rank = static_cast<std::size_t>(
              options.service_radius_percentile *
              static_cast<double>(sorted.size() - 1));
          shard.radius = sorted[rank];
        } else {
          shard.radius = options.default_service_radius_km;
        }
        return shard;
      });

  // Ordered merge in PoP order (probed_pops is sorted).
  std::vector<resilience::RetryStats> shard_stats;
  shard_stats.reserve(shards.size());
  engine::EngineStats engine_stats;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const PopId pop = pops.probed_pops[i].first;
    result.hit_distances_km[pop] = std::move(shards[i].distances);
    result.service_radius_km[pop] = shards[i].radius;
    shard_stats.push_back(shards[i].retry_stats);
    engine_stats.merge(shards[i].engine_stats);
    shards[i].metrics.merge();
  }
  resilience::RetryStats::merge_shards(shard_stats).publish();
  publish_engine_stats(engine_stats, "engine.calibration.virtual_seconds");
  return result;
}

CampaignResult run_campaign(
    const ProbeEnvironment& env, const CacheProbeOptions& options,
    const PopDiscoveryResult& pops, const CalibrationResult& calibration,
    const std::vector<std::vector<ProbeCandidate>>* scopes_by_domain) {
  obs::StageSpan span("cacheprobe.run_campaign");
  CampaignResult result;
  result.active_by_domain.resize(env.domains.size());
  const double duration = options.duration_hours * net::kHour;

  // Scope discovery once per domain (itself sharded over /24 ranges)
  // unless the caller passed a prior kStageScopes artifact; the per-PoP
  // assignment below reuses the lists read-only.
  std::vector<std::vector<ProbeCandidate>> discovered;
  if (scopes_by_domain == nullptr) {
    discovered.reserve(env.domains.size());
    for (std::size_t d = 0; d < env.domains.size(); ++d) {
      discovered.push_back(discover_scopes(env, options, static_cast<int>(d)));
    }
    scopes_by_domain = &discovered;
  }
  const auto& candidates_by_domain = *scopes_by_domain;

  // One shard per PoP — the paper's own fan-out unit (22 PoPs probed at
  // once). Probe outcomes are pure functions of (entry, time) oracles, a
  // PoP's cache pools and its VP's rate-limiter flows are confined to its
  // shard, so shard results are independent of interleaving. Within a
  // shard the probe engine pipelines each domain's chain list; outcomes
  // land in a tag-indexed slot array and the post-drain walk emits hits in
  // (loop, submission) order — the exact sequence the blocking prober
  // recorded them in — so results are byte-identical at any window size.
  const ProbePolicy& policy = options.probe;
  struct PopShard {
    std::vector<CacheHit> hits;
    std::uint64_t probes_sent = 0;
    std::uint64_t rate_limited = 0;
    std::uint64_t assigned = 0;
    resilience::RetryStats retry_stats;
    engine::EngineStats engine_stats;
    obs::ShardDelta metrics;  // merged in PoP order below
  };
  std::vector<PopShard> shards = exec::parallel_map(
      pops.probed_pops.size(), options.threads, [&](std::size_t i) {
        const auto& [pop, vp_id] = pops.probed_pops[i];
        PopShard shard;
        std::vector<engine::ProbeOutcome> outcomes;
        auto prober = make_shard_prober(
            env, policy, pop, vp_id, &shard.metrics,
            [&](const engine::ProbeOutcome& outcome) {
              outcomes[outcome.tag] = outcome;
            });
        const net::LatLon pop_location =
            env.google_dns->pops().site(pop).location;
        const double radius =
            !options.use_max_radius_everywhere &&
                    calibration.service_radius_km.contains(pop)
                ? calibration.service_radius_km.at(pop)
                : options.default_service_radius_km;
        for (std::size_t d = 0; d < env.domains.size(); ++d) {
          // Assign this PoP the candidates MaxMind places possibly within
          // its service radius (location + reported error radius).
          std::vector<net::Prefix> assigned;
          for (const ProbeCandidate& candidate : candidates_by_domain[d]) {
            const auto rec =
                env.geodb->lookup(candidate.scope.first_slash24_index());
            if (!rec) continue;  // not geolocatable: not assigned anywhere
            if (net::haversine_km(rec->location, pop_location) <=
                radius + rec->error_radius_km) {
              assigned.push_back(candidate.scope);
            }
          }
          shard.assigned += assigned.size();
          shard.metrics.observe(
              CampaignMetrics::get().assigned_per_pop_domain,
              static_cast<double>(assigned.size()));
          if (assigned.empty()) continue;

          const double cycle_seconds =
              static_cast<double>(assigned.size()) /
              options.prefixes_per_second_per_domain;
          const int loops =
              std::clamp(static_cast<int>(duration / cycle_seconds), 1,
                         options.max_loops);
          // One chain per assigned candidate: `redundant_queries` attempts
          // back-to-back (2 ms apart, keeping the flow's timestamps
          // monotone within the 20 ms per-prefix budget of the 50 pps
          // loop), re-queued every cycle until it hits or the loop budget
          // runs out. The engine owns the loops; drain per domain, since
          // the serial order probed one domain's list to completion before
          // the next.
          outcomes.assign(assigned.size(), {});
          engine::ProbeRequest request;
          request.domain_indices = {static_cast<int>(d)};
          request.redundancy = policy.redundant_queries;
          request.attempt_spacing_seconds = 0.002;
          request.attempt_loop_stride = 131;
          request.max_loops = loops;
          request.loop_stride_seconds = cycle_seconds;
          for (std::size_t j = 0; j < assigned.size(); ++j) {
            request.tag = j;
            request.scope = assigned[j];
            request.schedule_time =
                static_cast<double>(j) /
                options.prefixes_per_second_per_domain;
            prober->submit(request);
          }
          prober->drain();
          for (int loop = 0; loop < loops; ++loop) {
            for (std::size_t j = 0; j < assigned.size(); ++j) {
              const engine::ProbeOutcome& outcome = outcomes[j];
              if (!outcome.hit || outcome.loop != loop) continue;
              CacheHit hit;
              hit.domain_index = static_cast<int>(d);
              hit.query_scope = assigned[j];
              hit.return_scope = outcome.return_scope;
              hit.pop = pop;
              hit.when = outcome.when;
              shard.hits.push_back(hit);
            }
          }
          for (const engine::ProbeOutcome& outcome : outcomes) {
            shard.rate_limited += outcome.rate_limited;
          }
        }
        shard.probes_sent = prober->probes_sent();
        shard.retry_stats = prober->stats();
        shard.engine_stats = prober->engine_stats();
        return shard;
      });

  // Ordered merge in PoP order — the exact sequence a serial run visits,
  // so hit vectors and prefix-set insertions are byte-identical for any
  // thread count. The retry merge is explicitly shard-order independent
  // (commutative integer sums — see RetryStats::merge_shards).
  std::uint64_t total_assigned = 0;
  std::vector<resilience::RetryStats> shard_stats;
  shard_stats.reserve(shards.size());
  engine::EngineStats engine_stats;
  for (PopShard& shard : shards) {
    result.probes_sent += shard.probes_sent;
    result.rate_limited += shard.rate_limited;
    total_assigned += shard.assigned;
    shard_stats.push_back(shard.retry_stats);
    engine_stats.merge(shard.engine_stats);
    shard.metrics.merge();
    for (CacheHit& hit : shard.hits) {
      const net::Prefix active_prefix(
          hit.query_scope.base(),
          std::min<std::uint8_t>(hit.return_scope, 24));
      result.active.insert(active_prefix);
      result.active_by_domain[static_cast<std::size_t>(hit.domain_index)]
          .insert(active_prefix);
      result.hits.push_back(hit);
    }
  }
  result.retry_stats = resilience::RetryStats::merge_shards(shard_stats);
  result.virtual_duration_seconds = engine_stats.virtual_elapsed_seconds;
  if (!pops.probed_pops.empty()) {
    result.average_assigned_per_pop = mean_assigned_per_pop(
        total_assigned, pops.probed_pops.size(), env.domains.size());
  }
  CampaignMetrics& metrics = CampaignMetrics::get();
  metrics.campaign_hits.add(result.hits.size());
  metrics.campaign_probes.add(result.probes_sent);
  metrics.campaign_rate_limited.add(result.rate_limited);
  metrics.campaign_assigned.add(total_assigned);
  result.retry_stats.publish();
  publish_engine_stats(engine_stats, "engine.campaign.virtual_seconds");
  return result;
}

CampaignResult run_full_campaign(const ProbeEnvironment& env,
                                 const CacheProbeOptions& options) {
  const PopDiscoveryResult pops = discover_pops(env);
  const CalibrationResult calibration = calibrate(env, options, pops);
  return run_campaign(env, options, pops, calibration);
}

CampaignArtifacts CacheProbeCampaign::run(unsigned stages,
                                          CampaignArtifacts reuse) const {
  CampaignArtifacts artifacts = std::move(reuse);
  if (stages & kStageScopes) {
    artifacts.scopes_by_domain.clear();
    artifacts.scopes_by_domain.reserve(env_.domains.size());
    for (std::size_t d = 0; d < env_.domains.size(); ++d) {
      artifacts.scopes_by_domain.push_back(
          discover_scopes(env_, options_, static_cast<int>(d)));
    }
  }
  if (stages & kStagePops) {
    artifacts.pops = discover_pops(env_);
  }
  if (stages & kStageCalibration) {
    artifacts.calibration = calibrate(env_, options_, artifacts.pops);
  }
  if (stages & kStageCampaign) {
    // A prior kStageScopes artifact saves the campaign its internal scope
    // discovery; a partial list (domain set changed between runs) is not
    // reusable.
    const bool scopes_usable =
        artifacts.scopes_by_domain.size() == env_.domains.size();
    artifacts.result =
        run_campaign(env_, options_, artifacts.pops, artifacts.calibration,
                     scopes_usable ? &artifacts.scopes_by_domain : nullptr);
  }
  return artifacts;
}

}  // namespace netclients::core
