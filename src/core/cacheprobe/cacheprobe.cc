#include "core/cacheprobe/cacheprobe.h"

#include <algorithm>
#include <cmath>

#include "core/exec/exec.h"
#include "core/obs/obs.h"
#include "net/rng.h"

namespace netclients::core {

using anycast::PopId;

namespace {

// Campaign-stage telemetry. Counters are bumped post-merge (the merged
// totals are already deterministic); double-valued histograms are fed by
// per-shard ShardDeltas merged in shard order, so their sums replay the
// serial accumulation sequence at any REPRO_THREADS.
struct CampaignMetrics {
  obs::Counter& scope_candidates =
      obs::Registry::global().counter("cacheprobe.scopes.candidates");
  obs::Counter& pops_probed =
      obs::Registry::global().counter("cacheprobe.pops.probed");
  obs::Counter& calibration_sampled =
      obs::Registry::global().counter("cacheprobe.calibration.sampled");
  obs::Counter& campaign_hits =
      obs::Registry::global().counter("cacheprobe.campaign.hits");
  obs::Counter& campaign_probes =
      obs::Registry::global().counter("cacheprobe.campaign.probes_sent");
  obs::Counter& campaign_rate_limited =
      obs::Registry::global().counter("cacheprobe.campaign.rate_limited");
  obs::Counter& campaign_assigned =
      obs::Registry::global().counter("cacheprobe.campaign.assigned");
  obs::Histogram& hit_distance_km = obs::Registry::global().histogram(
      "cacheprobe.calibration.hit_distance_km",
      {100, 250, 500, 1000, 2000, 4000, 8000, 16000});
  obs::Histogram& assigned_per_pop_domain = obs::Registry::global().histogram(
      "cacheprobe.campaign.assigned_per_pop_domain",
      {0, 10, 100, 1000, 10000, 100000, 1000000});

  static CampaignMetrics& get() {
    static CampaignMetrics metrics;
    return metrics;
  }
};

}  // namespace

ProbePolicy CacheProbeOptions::effective_policy() const {
  ProbePolicy policy = probe;
  // The deprecated loose fields win when a caller moved them off their
  // defaults — pre-ProbePolicy call sites keep their meaning unchanged.
  if (redundant_queries != 5) policy.redundant_queries = redundant_queries;
  if (transport != googledns::Transport::kTcp) policy.transport = transport;
  return policy;
}

PrefixDataset CampaignResult::to_prefix_dataset(std::string name) const {
  PrefixDataset out(std::move(name));
  active.for_each([&](net::Prefix p) {
    const std::uint32_t first = p.first_slash24_index();
    const std::uint64_t count = p.slash24_count();
    for (std::uint64_t i = 0; i < count; ++i) {
      out.add(first + static_cast<std::uint32_t>(i));
    }
  });
  return out;
}

double mean_assigned_per_pop(std::uint64_t total_assigned, std::size_t pops,
                             std::size_t domains) {
  const double cells = static_cast<double>(pops) * static_cast<double>(domains);
  return cells > 0 ? static_cast<double>(total_assigned) / cells : 0.0;
}

namespace {

/// /24s per scope-discovery shard. Fixed (never derived from the thread
/// count) so the shard partition — and therefore the merged candidate
/// list — is identical for every REPRO_THREADS value.
constexpr std::size_t kScopeScanChunk = 1 << 14;

/// Drives every probe of one PoP shard through the retry/timeout/breaker
/// policy. Thread-confined to its shard; every extra decision (backoff
/// jitter, retry pool choice) is keyed by query identity, so results are
/// independent of interleaving. On a fault-free substrate it issues
/// exactly one probe per call, with exactly the pre-resilience arguments.
class ResilientProber {
 public:
  ResilientProber(const ProbeEnvironment& env, const ProbePolicy& policy)
      : env_(env),
        policy_(policy),
        breaker_(policy.breaker),
        transport_(policy.transport) {}

  /// Breaker gate, checked once per (prefix, loop). While the PoP's
  /// breaker is open the caller skips the prefix — it stays un-hit, so a
  /// later loop re-queues it within the loop budget.
  bool admit(double t) {
    if (breaker_.allow(t)) return true;
    ++stats_.breaker_skipped;
    return false;
  }

  /// One redundancy attempt (original timing and attempt id); injected
  /// timeouts/SERVFAILs are retried with per-transport timeout plus
  /// jittered exponential backoff, up to the policy's attempt budget.
  googledns::ProbeResult probe(anycast::PopId pop,
                               const dns::DnsName& domain, net::Prefix scope,
                               double t, int vp_id, int attempt_id) {
    const int max_attempts = std::max(1, policy_.retry.max_attempts);
    googledns::ProbeResult result;
    for (int try_index = 0;; ++try_index) {
      ++probes_sent_;
      // Retries keep the attempt id AND the timestamp: the flow hashes to
      // the same cache pool (5-tuple stickiness) and samples the same
      // cache snapshot, so a retry can only recover the answer the fault
      // masked — it never probes extra pools or a newer cache, either of
      // which would let injected loss *increase* recall. The timeout +
      // backoff the VP actually waits out is pure wall clock, tallied in
      // waited_ms below; the fault oracle re-rolls via `try_index`.
      result = env_.google_dns->probe(pop, domain, scope, t, transport_,
                                      vp_id, attempt_id, try_index);
      if (result.status == googledns::ProbeStatus::kOk) {
        consecutive_soft_failures_ = 0;
        breaker_.record_success();
        return result;
      }
      if (result.status == googledns::ProbeStatus::kRateLimited) {
        // Normal operation (the token buckets), not a fault: no retry —
        // the paper's answer to rate limiting was transport choice, so it
        // only feeds the optional UDP→TCP escalation.
        note_soft_failure();
        return result;
      }
      // Hard failure: timeout or SERVFAIL.
      if (result.status == googledns::ProbeStatus::kTimeout) {
        ++stats_.timeouts;
        note_soft_failure();
      } else {
        ++stats_.servfails;
      }
      if (try_index + 1 >= max_attempts) {
        ++stats_.exhausted;
        // Only an exhausted chain counts against the breaker: a probe
        // that eventually succeeds is healthy, and per-attempt accounting
        // would make a bigger retry budget trip the breaker *more* often
        // under uniform loss.
        breaker_.record_failure(t);
        return result;
      }
      ++stats_.retries;
      const std::uint64_t key = net::stable_seed(
          domain.hash(), std::uint64_t{scope.base().value()},
          std::uint64_t{scope.length()}, static_cast<std::uint64_t>(pop),
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(attempt_id)));
      stats_.waited_ms += static_cast<std::uint64_t>(
          (policy_.retry.timeout_for(transport_) +
           policy_.retry.backoff_before(try_index + 1, key)) *
          1000.0);
    }
  }

  /// A prefix whose attempts all failed this loop but which a later loop
  /// will revisit (skip-and-count bookkeeping).
  void note_requeued() { ++stats_.requeued; }

  std::uint64_t probes_sent() const { return probes_sent_; }

  /// Shard tallies with the breaker's trip count folded in.
  resilience::RetryStats stats() const {
    resilience::RetryStats out = stats_;
    out.breaker_opened = breaker_.opened();
    return out;
  }

 private:
  void note_soft_failure() {
    if (transport_ != googledns::Transport::kUdp ||
        !policy_.retry.escalate_udp_to_tcp) {
      return;
    }
    if (++consecutive_soft_failures_ >= policy_.retry.escalation_threshold) {
      transport_ = googledns::Transport::kTcp;
      ++stats_.escalations;
      consecutive_soft_failures_ = 0;
    }
  }

  const ProbeEnvironment& env_;
  const ProbePolicy& policy_;
  resilience::CircuitBreaker breaker_;
  googledns::Transport transport_;
  int consecutive_soft_failures_ = 0;
  std::uint64_t probes_sent_ = 0;
  resilience::RetryStats stats_;
};

}  // namespace

std::vector<ProbeCandidate> discover_scopes(const ProbeEnvironment& env,
                                            const CacheProbeOptions& options,
                                            int domain_index) {
  obs::StageSpan span("cacheprobe.discover_scopes");
  const sim::DomainInfo& domain =
      env.domains[static_cast<std::size_t>(domain_index)];
  const ProbePolicy policy = options.effective_policy();
  const int max_attempts = std::max(1, policy.retry.max_attempts);

  // Each shard runs the serial scan over its own /24 range. A shard's
  // first candidate may also be covered by the previous shard's final
  // candidate (scopes are not aligned to shard seams) — the ordered merge
  // below drops those, mirroring the slight overlaps real unaligned
  // authoritative scopes produce anyway.
  struct ChunkScan {
    std::vector<ProbeCandidate> out;
    resilience::RetryStats stats;
    std::uint64_t skipped = 0;  // /24s abandoned after exhausted retries
  };
  const auto chunks = exec::parallel_for_chunks(
      env.slash24_begin, env.slash24_end, kScopeScanChunk, options.threads,
      [&](exec::ChunkRange range) {
        ChunkScan scan;
        std::uint32_t idx = static_cast<std::uint32_t>(range.begin);
        while (idx < range.end) {
          const net::Prefix slash24 = net::Prefix::from_slash24_index(idx);
          // The authoritative edge can SERVFAIL or time out under injected
          // faults; retry within the attempt budget, then skip-and-count
          // the /24 (a fault-free server answers the first attempt, with
          // no extra calls and no RNG draws).
          bool answered = true;
          for (int attempt = 0;; ++attempt) {
            const dnssrv::QueryOutcome outcome = env.authoritative->query_outcome(
                domain.name, slash24, /*epoch=*/0,
                static_cast<std::uint64_t>(attempt));
            if (outcome == dnssrv::QueryOutcome::kOk) break;
            ++scan.stats.upstream_failures;
            if (outcome == dnssrv::QueryOutcome::kTimeout) {
              ++scan.stats.timeouts;
            } else {
              ++scan.stats.servfails;
            }
            if (attempt + 1 >= max_attempts) {
              ++scan.stats.exhausted;
              answered = false;
              break;
            }
            ++scan.stats.retries;
          }
          if (!answered) {
            ++scan.skipped;
            ++idx;
            continue;
          }
          const auto scope = env.authoritative->scope_for(domain.name, slash24,
                                                          /*epoch=*/0);
          if (!scope || *scope == 0) {
            // Non-ECS answer: the whole address space shares one cache
            // entry, so there is nothing prefix-specific to learn — skip
            // the domain's /24.
            ++idx;
            continue;
          }
          const std::uint8_t scope_len = std::min<std::uint8_t>(*scope, 24);
          const net::Prefix candidate = slash24.widen_to(scope_len);
          scan.out.push_back(ProbeCandidate{candidate});
          // All /24s inside the returned scope share the cache entry.
          idx = candidate.first_slash24_index() +
                static_cast<std::uint32_t>(candidate.slash24_count());
        }
        return scan;
      });

  std::vector<ProbeCandidate> candidates;
  resilience::RetryStats edge_stats;
  std::uint64_t skipped = 0;
  std::uint32_t covered_to = 0;
  for (const ChunkScan& chunk : chunks) {
    edge_stats.merge(chunk.stats);
    skipped += chunk.skipped;
    for (const ProbeCandidate& candidate : chunk.out) {
      const std::uint32_t end =
          candidate.scope.first_slash24_index() +
          static_cast<std::uint32_t>(candidate.scope.slash24_count());
      if (end <= covered_to) continue;  // seam overlap: already covered
      candidates.push_back(candidate);
      covered_to = end;
    }
  }
  CampaignMetrics::get().scope_candidates.add(candidates.size());
  edge_stats.publish();
  if (skipped) {
    obs::Registry::global().counter("cacheprobe.scopes.skipped").add(skipped);
  }
  return candidates;
}

PopDiscoveryResult discover_pops(const ProbeEnvironment& env) {
  obs::StageSpan span("cacheprobe.discover_pops");
  PopDiscoveryResult result;
  result.vp_pop.reserve(env.vantage_points.size());
  for (const auto& vp : env.vantage_points) {
    // Equivalent of `dig @8.8.8.8 o-o.myaddr.l.google.com -t TXT`.
    const PopId pop =
        env.google_dns->pop_for(vp.location, vp.address.value());
    result.vp_pop.push_back(pop);
    const bool seen =
        std::any_of(result.probed_pops.begin(), result.probed_pops.end(),
                    [&](const auto& entry) { return entry.first == pop; });
    if (!seen) result.probed_pops.emplace_back(pop, vp.id);
  }
  std::sort(result.probed_pops.begin(), result.probed_pops.end());
  CampaignMetrics::get().pops_probed.add(result.probed_pops.size());
  return result;
}

CalibrationResult calibrate(const ProbeEnvironment& env,
                            const CacheProbeOptions& options,
                            const PopDiscoveryResult& pops) {
  obs::StageSpan span("cacheprobe.calibrate");
  CalibrationResult result;
  // Random sample of geolocatable /24s with tight error radius. The target
  // count scales with the address space so the density matches the paper's
  // 78,637-of-15.5M sample. Drawn once, serially, before the fan-out: all
  // PoP shards probe the same sample.
  const double space_fraction =
      static_cast<double>(env.slash24_end - env.slash24_begin) / 15527909.0;
  const double target =
      std::max(64.0, options.calibration_sample_target * space_fraction);

  std::vector<std::pair<std::uint32_t, net::LatLon>> sample;
  {
    std::size_t eligible = 0;
    env.geodb->for_each([&](std::uint32_t, const geo::GeoRecord& rec) {
      if (rec.error_radius_km < options.calibration_max_error_radius_km) {
        ++eligible;
      }
    });
    if (eligible == 0) return result;
    const double p = std::min(1.0, target / static_cast<double>(eligible));
    net::Rng rng(net::stable_seed(options.seed, 0xCA11u));
    env.geodb->for_each([&](std::uint32_t idx, const geo::GeoRecord& rec) {
      if (rec.error_radius_km < options.calibration_max_error_radius_km &&
          rng.bernoulli(p)) {
        sample.emplace_back(idx, rec.location);
      }
    });
  }
  result.sampled_prefixes = sample.size();
  CampaignMetrics::get().calibration_sampled.add(sample.size());

  // Calibration probes the four Alexa domains (§3.1.1); the Microsoft CDN
  // domain is reserved for validation.
  std::vector<int> calibration_domains;
  for (std::size_t d = 0; d < env.domains.size(); ++d) {
    if (!env.domains[d].is_microsoft_cdn) {
      calibration_domains.push_back(static_cast<int>(d));
    }
  }

  // One shard per PoP: each shard drives its own vantage point's flows and
  // its own PoP's cache pools, so shards never contend on substrate state.
  const ProbePolicy policy = options.effective_policy();
  struct PopCalibration {
    std::vector<double> distances;
    double radius = 0;
    resilience::RetryStats retry_stats;
    obs::ShardDelta metrics;  // merged in PoP order below
  };
  std::vector<PopCalibration> shards = exec::parallel_map(
      pops.probed_pops.size(), options.threads, [&](std::size_t i) {
        const auto& [pop, vp_id] = pops.probed_pops[i];
        PopCalibration shard;
        ResilientProber prober(env, policy);
        double t = 0;
        for (const auto& [idx, location] : sample) {
          const net::Prefix query = net::Prefix::from_slash24_index(idx);
          bool hit = false;
          if (prober.admit(t)) {
            for (int d : calibration_domains) {
              for (int attempt = 0;
                   attempt < policy.redundant_queries && !hit; ++attempt) {
                auto probe = prober.probe(
                    pop, env.domains[static_cast<std::size_t>(d)].name, query,
                    t, vp_id, attempt);
                hit = probe.cache_hit && probe.return_scope > 0;
              }
              if (hit) break;
            }
          }
          t += 1.0 / options.prefixes_per_second_per_domain;
          if (hit) {
            shard.distances.push_back(net::haversine_km(
                location, env.google_dns->pops().site(pop).location));
            shard.metrics.observe(CampaignMetrics::get().hit_distance_km,
                                  shard.distances.back());
          }
        }
        shard.retry_stats = prober.stats();
        if (shard.distances.size() >= 10) {
          std::vector<double> sorted = shard.distances;
          std::sort(sorted.begin(), sorted.end());
          const std::size_t rank = static_cast<std::size_t>(
              options.service_radius_percentile *
              static_cast<double>(sorted.size() - 1));
          shard.radius = sorted[rank];
        } else {
          shard.radius = options.default_service_radius_km;
        }
        return shard;
      });

  // Ordered merge in PoP order (probed_pops is sorted).
  resilience::RetryStats calibration_stats;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const PopId pop = pops.probed_pops[i].first;
    result.hit_distances_km[pop] = std::move(shards[i].distances);
    result.service_radius_km[pop] = shards[i].radius;
    calibration_stats.merge(shards[i].retry_stats);
    shards[i].metrics.merge();
  }
  calibration_stats.publish();
  return result;
}

CampaignResult run_campaign(const ProbeEnvironment& env,
                            const CacheProbeOptions& options,
                            const PopDiscoveryResult& pops,
                            const CalibrationResult& calibration) {
  obs::StageSpan span("cacheprobe.run_campaign");
  CampaignResult result;
  result.active_by_domain.resize(env.domains.size());
  const double duration = options.duration_hours * net::kHour;

  // Scope discovery once per domain (itself sharded over /24 ranges);
  // the per-PoP assignment below reuses the lists read-only.
  std::vector<std::vector<ProbeCandidate>> candidates_by_domain;
  candidates_by_domain.reserve(env.domains.size());
  for (std::size_t d = 0; d < env.domains.size(); ++d) {
    candidates_by_domain.push_back(
        discover_scopes(env, options, static_cast<int>(d)));
  }

  // One shard per PoP — the paper's own fan-out unit (22 PoPs probed at
  // once). Probe outcomes are pure functions of (entry, time) oracles, a
  // PoP's cache pools and its VP's rate-limiter flows are confined to its
  // shard, so shard results are independent of interleaving.
  const ProbePolicy policy = options.effective_policy();
  struct PopShard {
    std::vector<CacheHit> hits;
    std::uint64_t probes_sent = 0;
    std::uint64_t rate_limited = 0;
    std::uint64_t assigned = 0;
    resilience::RetryStats retry_stats;
    obs::ShardDelta metrics;  // merged in PoP order below
  };
  std::vector<PopShard> shards = exec::parallel_map(
      pops.probed_pops.size(), options.threads, [&](std::size_t i) {
        const auto& [pop, vp_id] = pops.probed_pops[i];
        PopShard shard;
        ResilientProber prober(env, policy);
        const net::LatLon pop_location =
            env.google_dns->pops().site(pop).location;
        const double radius =
            !options.use_max_radius_everywhere &&
                    calibration.service_radius_km.contains(pop)
                ? calibration.service_radius_km.at(pop)
                : options.default_service_radius_km;
        for (std::size_t d = 0; d < env.domains.size(); ++d) {
          // Assign this PoP the candidates MaxMind places possibly within
          // its service radius (location + reported error radius).
          std::vector<net::Prefix> assigned;
          for (const ProbeCandidate& candidate : candidates_by_domain[d]) {
            const auto rec =
                env.geodb->lookup(candidate.scope.first_slash24_index());
            if (!rec) continue;  // not geolocatable: not assigned anywhere
            if (net::haversine_km(rec->location, pop_location) <=
                radius + rec->error_radius_km) {
              assigned.push_back(candidate.scope);
            }
          }
          shard.assigned += assigned.size();
          shard.metrics.observe(
              CampaignMetrics::get().assigned_per_pop_domain,
              static_cast<double>(assigned.size()));
          if (assigned.empty()) continue;

          const double cycle_seconds =
              static_cast<double>(assigned.size()) /
              options.prefixes_per_second_per_domain;
          const int loops =
              std::clamp(static_cast<int>(duration / cycle_seconds), 1,
                         options.max_loops);
          std::vector<bool> already_hit(assigned.size(), false);
          for (int loop = 0; loop < loops; ++loop) {
            for (std::size_t j = 0; j < assigned.size(); ++j) {
              if (already_hit[j]) continue;
              const double t =
                  loop * cycle_seconds +
                  static_cast<double>(j) /
                      options.prefixes_per_second_per_domain;
              // Breaker gate: while the PoP's breaker is open the prefix
              // is skipped-and-counted; it stays un-hit, so a later loop
              // re-queues it within the loop budget.
              if (!prober.admit(t)) continue;
              bool hard_failure = false;
              for (int attempt = 0; attempt < policy.redundant_queries;
                   ++attempt) {
                // Redundant queries go out back-to-back (2 ms apart),
                // keeping the flow's timestamps monotone within the 20 ms
                // per-prefix budget of the 50 pps loop.
                auto probe = prober.probe(pop, env.domains[d].name,
                                          assigned[j], t + attempt * 0.002,
                                          vp_id, loop * 131 + attempt);
                if (probe.rate_limited) {
                  ++shard.rate_limited;
                  continue;
                }
                if (probe.failed()) {
                  hard_failure = true;
                  continue;
                }
                if (probe.cache_hit && probe.return_scope > 0) {
                  CacheHit hit;
                  hit.domain_index = static_cast<int>(d);
                  hit.query_scope = assigned[j];
                  hit.return_scope = probe.return_scope;
                  hit.pop = pop;
                  hit.when = t;
                  shard.hits.push_back(hit);
                  already_hit[j] = true;
                  break;
                }
              }
              if (hard_failure && !already_hit[j] && loop + 1 < loops) {
                prober.note_requeued();
              }
            }
          }
        }
        shard.probes_sent = prober.probes_sent();
        shard.retry_stats = prober.stats();
        return shard;
      });

  // Ordered merge in PoP order — the exact sequence a serial run visits,
  // so hit vectors and prefix-set insertions are byte-identical for any
  // thread count.
  std::uint64_t total_assigned = 0;
  for (PopShard& shard : shards) {
    result.probes_sent += shard.probes_sent;
    result.rate_limited += shard.rate_limited;
    total_assigned += shard.assigned;
    result.retry_stats.merge(shard.retry_stats);
    shard.metrics.merge();
    for (CacheHit& hit : shard.hits) {
      const net::Prefix active_prefix(
          hit.query_scope.base(),
          std::min<std::uint8_t>(hit.return_scope, 24));
      result.active.insert(active_prefix);
      result.active_by_domain[static_cast<std::size_t>(hit.domain_index)]
          .insert(active_prefix);
      result.hits.push_back(hit);
    }
  }
  if (!pops.probed_pops.empty()) {
    result.average_assigned_per_pop = mean_assigned_per_pop(
        total_assigned, pops.probed_pops.size(), env.domains.size());
  }
  CampaignMetrics& metrics = CampaignMetrics::get();
  metrics.campaign_hits.add(result.hits.size());
  metrics.campaign_probes.add(result.probes_sent);
  metrics.campaign_rate_limited.add(result.rate_limited);
  metrics.campaign_assigned.add(total_assigned);
  result.retry_stats.publish();
  return result;
}

CampaignResult run_full_campaign(const ProbeEnvironment& env,
                                 const CacheProbeOptions& options) {
  const PopDiscoveryResult pops = discover_pops(env);
  const CalibrationResult calibration = calibrate(env, options, pops);
  return run_campaign(env, options, pops, calibration);
}

}  // namespace netclients::core
