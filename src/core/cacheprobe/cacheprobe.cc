#include "core/cacheprobe/cacheprobe.h"

#include <algorithm>
#include <cmath>

#include "net/rng.h"

namespace netclients::core {

using anycast::PopId;

PrefixDataset CampaignResult::to_prefix_dataset(std::string name) const {
  PrefixDataset out(std::move(name));
  active.for_each([&](net::Prefix p) {
    const std::uint32_t first = p.first_slash24_index();
    const std::uint64_t count = p.slash24_count();
    for (std::uint64_t i = 0; i < count; ++i) {
      out.add(first + static_cast<std::uint32_t>(i));
    }
  });
  return out;
}

CacheProbeCampaign::CacheProbeCampaign(
    const dnssrv::AuthoritativeServer* authoritative,
    googledns::GooglePublicDns* google_dns, const geo::GeoDatabase* geodb,
    std::vector<anycast::VantagePoint> vantage_points,
    std::vector<sim::DomainInfo> domains, std::uint32_t slash24_begin,
    std::uint32_t slash24_end, CacheProbeOptions options)
    : authoritative_(authoritative),
      google_dns_(google_dns),
      geodb_(geodb),
      vantage_points_(std::move(vantage_points)),
      domains_(std::move(domains)),
      slash24_begin_(slash24_begin),
      slash24_end_(slash24_end),
      options_(options) {}

std::vector<ProbeCandidate> CacheProbeCampaign::discover_scopes(
    int domain_index) const {
  const sim::DomainInfo& domain =
      domains_[static_cast<std::size_t>(domain_index)];
  std::vector<ProbeCandidate> candidates;
  std::uint32_t idx = slash24_begin_;
  while (idx < slash24_end_) {
    const net::Prefix slash24 = net::Prefix::from_slash24_index(idx);
    const auto scope = authoritative_->scope_for(domain.name, slash24,
                                                 /*epoch=*/0);
    if (!scope || *scope == 0) {
      // Non-ECS answer: the whole address space shares one cache entry, so
      // there is nothing prefix-specific to learn — skip the domain's /24.
      ++idx;
      continue;
    }
    const std::uint8_t scope_len = std::min<std::uint8_t>(*scope, 24);
    const net::Prefix candidate = slash24.widen_to(scope_len);
    candidates.push_back(ProbeCandidate{candidate});
    // All /24s inside the returned scope share the cache entry: skip them.
    idx = candidate.first_slash24_index() +
          static_cast<std::uint32_t>(candidate.slash24_count());
  }
  return candidates;
}

PopDiscoveryResult CacheProbeCampaign::discover_pops() const {
  PopDiscoveryResult result;
  result.vp_pop.reserve(vantage_points_.size());
  for (const auto& vp : vantage_points_) {
    // Equivalent of `dig @8.8.8.8 o-o.myaddr.l.google.com -t TXT`.
    const PopId pop =
        google_dns_->pop_for(vp.location, vp.address.value());
    result.vp_pop.push_back(pop);
    const bool seen =
        std::any_of(result.probed_pops.begin(), result.probed_pops.end(),
                    [&](const auto& entry) { return entry.first == pop; });
    if (!seen) result.probed_pops.emplace_back(pop, vp.id);
  }
  std::sort(result.probed_pops.begin(), result.probed_pops.end());
  return result;
}

CalibrationResult CacheProbeCampaign::calibrate(
    const PopDiscoveryResult& pops) const {
  CalibrationResult result;
  // Random sample of geolocatable /24s with tight error radius. The target
  // count scales with the address space so the density matches the paper's
  // 78,637-of-15.5M sample.
  const double space_fraction =
      static_cast<double>(slash24_end_ - slash24_begin_) / 15527909.0;
  const double target =
      std::max(64.0, options_.calibration_sample_target * space_fraction);

  std::vector<std::pair<std::uint32_t, net::LatLon>> sample;
  {
    std::size_t eligible = 0;
    geodb_->for_each([&](std::uint32_t, const geo::GeoRecord& rec) {
      if (rec.error_radius_km < options_.calibration_max_error_radius_km) {
        ++eligible;
      }
    });
    if (eligible == 0) return result;
    const double p = std::min(1.0, target / static_cast<double>(eligible));
    net::Rng rng(net::stable_seed(options_.seed, 0xCA11u));
    geodb_->for_each([&](std::uint32_t idx, const geo::GeoRecord& rec) {
      if (rec.error_radius_km < options_.calibration_max_error_radius_km &&
          rng.bernoulli(p)) {
        sample.emplace_back(idx, rec.location);
      }
    });
  }
  result.sampled_prefixes = sample.size();

  // Calibration probes the four Alexa domains (§3.1.1); the Microsoft CDN
  // domain is reserved for validation.
  std::vector<int> calibration_domains;
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    if (!domains_[d].is_microsoft_cdn) {
      calibration_domains.push_back(static_cast<int>(d));
    }
  }

  for (const auto& [pop, vp_id] : pops.probed_pops) {
    std::vector<double>& distances = result.hit_distances_km[pop];
    double t = 0;
    for (const auto& [idx, location] : sample) {
      const net::Prefix query = net::Prefix::from_slash24_index(idx);
      bool hit = false;
      for (int d : calibration_domains) {
        for (int attempt = 0;
             attempt < options_.redundant_queries && !hit; ++attempt) {
          auto probe = google_dns_->probe(pop, domains_[d].name, query, t,
                                          options_.transport, vp_id, attempt);
          hit = probe.cache_hit && probe.return_scope > 0;
        }
        if (hit) break;
      }
      t += 1.0 / options_.prefixes_per_second_per_domain;
      if (hit) {
        distances.push_back(net::haversine_km(
            location, google_dns_->pops().site(pop).location));
      }
    }
    if (distances.size() >= 10) {
      std::vector<double> sorted = distances;
      std::sort(sorted.begin(), sorted.end());
      const std::size_t rank = static_cast<std::size_t>(
          options_.service_radius_percentile *
          static_cast<double>(sorted.size() - 1));
      result.service_radius_km[pop] = sorted[rank];
    } else {
      result.service_radius_km[pop] = options_.default_service_radius_km;
    }
  }
  return result;
}

CampaignResult CacheProbeCampaign::run(
    const PopDiscoveryResult& pops,
    const CalibrationResult& calibration) const {
  CampaignResult result;
  result.active_by_domain.resize(domains_.size());
  const double duration = options_.duration_hours * net::kHour;

  // Scope discovery once per domain; assignment reuses the lists.
  std::vector<std::vector<ProbeCandidate>> candidates_by_domain;
  candidates_by_domain.reserve(domains_.size());
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    candidates_by_domain.push_back(discover_scopes(static_cast<int>(d)));
  }

  std::uint64_t total_assigned = 0;
  for (const auto& [pop, vp_id] : pops.probed_pops) {
    const net::LatLon pop_location = google_dns_->pops().site(pop).location;
    const double radius =
        !options_.use_max_radius_everywhere &&
                calibration.service_radius_km.contains(pop)
            ? calibration.service_radius_km.at(pop)
            : options_.default_service_radius_km;
    for (std::size_t d = 0; d < domains_.size(); ++d) {
      // Assign this PoP the candidates MaxMind places possibly within its
      // service radius (location + reported error radius).
      std::vector<net::Prefix> assigned;
      for (const ProbeCandidate& candidate : candidates_by_domain[d]) {
        const auto rec =
            geodb_->lookup(candidate.scope.first_slash24_index());
        if (!rec) continue;  // not geolocatable: not assigned anywhere
        if (net::haversine_km(rec->location, pop_location) <=
            radius + rec->error_radius_km) {
          assigned.push_back(candidate.scope);
        }
      }
      total_assigned += assigned.size();
      if (assigned.empty()) continue;

      const double cycle_seconds =
          static_cast<double>(assigned.size()) /
          options_.prefixes_per_second_per_domain;
      const int loops = std::clamp(
          static_cast<int>(duration / cycle_seconds), 1, options_.max_loops);
      std::vector<bool> already_hit(assigned.size(), false);
      for (int loop = 0; loop < loops; ++loop) {
        for (std::size_t j = 0; j < assigned.size(); ++j) {
          if (already_hit[j]) continue;
          const double t =
              loop * cycle_seconds +
              static_cast<double>(j) /
                  options_.prefixes_per_second_per_domain;
          for (int attempt = 0; attempt < options_.redundant_queries;
               ++attempt) {
            ++result.probes_sent;
            // Redundant queries go out back-to-back (2 ms apart), keeping
            // the flow's timestamps monotone within the 20 ms per-prefix
            // budget of the 50 pps loop.
            auto probe = google_dns_->probe(
                pop, domains_[d].name, assigned[j], t + attempt * 0.002,
                options_.transport, vp_id, loop * 131 + attempt);
            if (probe.rate_limited) {
              ++result.rate_limited;
              continue;
            }
            if (probe.cache_hit && probe.return_scope > 0) {
              CacheHit hit;
              hit.domain_index = static_cast<int>(d);
              hit.query_scope = assigned[j];
              hit.return_scope = probe.return_scope;
              hit.pop = pop;
              hit.when = t;
              result.hits.push_back(hit);
              const net::Prefix active_prefix(
                  assigned[j].base(),
                  std::min<std::uint8_t>(probe.return_scope, 24));
              result.active.insert(active_prefix);
              result.active_by_domain[d].insert(active_prefix);
              already_hit[j] = true;
              break;
            }
          }
        }
      }
    }
  }
  if (!pops.probed_pops.empty()) {
    result.average_assigned_per_pop =
        total_assigned / (pops.probed_pops.size() * domains_.size());
  }
  return result;
}

CampaignResult CacheProbeCampaign::run_full() {
  const PopDiscoveryResult pops = discover_pops();
  const CalibrationResult calibration = calibrate(pops);
  return run(pops, calibration);
}

}  // namespace netclients::core
