#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "anycast/pop.h"
#include "anycast/vantage.h"
#include "core/datasets/datasets.h"
#include "core/engine/engine.h"
#include "core/resilience/resilience.h"
#include "dnssrv/authoritative.h"
#include "geo/geodb.h"
#include "googledns/google_dns.h"
#include "net/prefix.h"
#include "net/prefix_set.h"
#include "sim/domains.h"

namespace netclients::core {

/// Everything the measurer has access to — the explicit substrate of the
/// campaign. The pipeline deliberately consumes only what a real measurer
/// has: query access to the domains' authoritatives (scope pre-pass), query
/// access to Google Public DNS, a MaxMind-style geolocation database, a
/// vantage-point fleet, and the public /24 space bounds. It never touches
/// the simulator's ground truth.
struct ProbeEnvironment {
  const dnssrv::AuthoritativeServer* authoritative = nullptr;
  googledns::GooglePublicDns* google_dns = nullptr;
  const geo::GeoDatabase* geodb = nullptr;
  std::vector<anycast::VantagePoint> vantage_points;
  std::vector<sim::DomainInfo> domains;
  std::uint32_t slash24_begin = 0;
  std::uint32_t slash24_end = 0;
};

/// Everything about how a single probe goes out: transport, redundancy,
/// per-transport timeouts with retry/backoff, circuit breaking, and the
/// execution engine that drives the chains. The single source of truth —
/// the loose `transport`/`redundant_queries` aliases that used to sit
/// directly in CacheProbeOptions are gone (§3.1.1 defaults).
struct ProbePolicy {
  googledns::Transport transport = googledns::Transport::kTcp;
  int redundant_queries = 5;  // cover multiple independent cache pools
  resilience::RetryPolicy retry;
  resilience::BreakerPolicy breaker;
  /// How chains execute: the event-driven virtual-time engine (default) or
  /// the legacy-sync adapter. Results are byte-identical either way; only
  /// the modeled wall clock differs.
  engine::EngineOptions engine;
};

/// Tuning of the cache-probing campaign; defaults are the paper's (§3.1.1).
struct CacheProbeOptions {
  double duration_hours = 120;
  double prefixes_per_second_per_domain = 50;
  /// Probe-level policy, consumed directly by the stage code.
  ProbePolicy probe;
  /// Cap on how many times the campaign loops over a PoP's assigned list
  /// (the paper loops continuously for 120h; the cap bounds simulation
  /// cost for small candidate lists).
  int max_loops = 6;

  // Calibration (service-radius estimation).
  std::uint32_t calibration_sample_target = 78637;
  double calibration_max_error_radius_km = 200;
  double service_radius_percentile = 0.90;
  /// Fallback radius when a PoP sees too few calibration hits.
  double default_service_radius_km = 5524;  // the paper's maximum (Zurich)
  /// Ablation switch: ignore calibration and assign every PoP the maximum
  /// radius (the paper's 4.4M-vs-2.4M candidates-per-PoP comparison).
  bool use_max_radius_everywhere = false;

  std::uint64_t seed = 0xCAFE;

  /// Parallelism degree for the sharded stages (scope discovery sharded
  /// over /24 ranges, calibration and the campaign sharded per PoP).
  /// 0 = exec::thread_count() (the REPRO_THREADS env var); 1 = serial.
  /// Same seed ⇒ byte-identical results for every value.
  int threads = 0;
};

/// A candidate probe target discovered by the scope pre-pass: one query per
/// authoritative-returned scope rather than per /24.
struct ProbeCandidate {
  net::Prefix scope;  // query scope (== discovered response scope)
};

/// One cache hit observed by the campaign.
struct CacheHit {
  int domain_index = 0;
  net::Prefix query_scope;
  std::uint8_t return_scope = 0;
  anycast::PopId pop = anycast::kNoPop;
  net::SimTime when = 0;
};

struct PopDiscoveryResult {
  /// vantage index → PoP it reaches.
  std::vector<anycast::PopId> vp_pop;
  /// Deduplicated reachable PoPs, each with one representative VP.
  std::vector<std::pair<anycast::PopId, int>> probed_pops;
};

struct CalibrationResult {
  /// PoP → estimated service radius (km).
  std::unordered_map<anycast::PopId, double> service_radius_km;
  /// PoP → distances (km) of calibration prefixes that returned hits — the
  /// raw series behind Figure 2.
  std::unordered_map<anycast::PopId, std::vector<double>> hit_distances_km;
  std::size_t sampled_prefixes = 0;
};

struct CampaignResult {
  std::vector<CacheHit> hits;
  /// Disjoint union of hit scopes with return scope > 0, across domains.
  net::DisjointPrefixSet active;
  /// Same, per domain (indexes align with the campaign's domain list).
  std::vector<net::DisjointPrefixSet> active_by_domain;
  std::uint64_t probes_sent = 0;
  std::uint64_t rate_limited = 0;
  double average_assigned_per_pop = 0;
  /// Resilience tallies (retries, timeouts, breaker trips, requeues)
  /// merged across PoP shards; all-zero on a fault-free substrate.
  resilience::RetryStats retry_stats;
  /// Modeled wall time of the campaign: max over PoP shards of the probe
  /// engine's virtual clock (PoPs probe concurrently). Independent of
  /// REPRO_THREADS; the engine/sync probes-per-second comparison in
  /// bench_faults is probes_sent over this.
  double virtual_duration_seconds = 0;

  double virtual_probes_per_second() const {
    return virtual_duration_seconds > 0
               ? static_cast<double>(probes_sent) / virtual_duration_seconds
               : 0.0;
  }

  /// Lower bound on active /24s: one per disjoint hit prefix (§4).
  std::uint64_t slash24_lower_bound() const { return active.size(); }
  /// Upper bound: every /24 inside every hit prefix.
  std::uint64_t slash24_upper_bound() const {
    return active.slash24_upper_bound();
  }

  /// Expands the upper bound into a /24 dataset (presence-only).
  PrefixDataset to_prefix_dataset(std::string name) const;
};

/// Mean candidates assigned per (PoP, domain) pair, in double — the
/// integer-division truncation this replaces underreported Figure 2's
/// 2.4M-vs-4.4M comparison at small scales.
double mean_assigned_per_pop(std::uint64_t total_assigned, std::size_t pops,
                             std::size_t domains);

// ---------------------------------------------------------------------------
// Stage API. Each stage is a pure function of its explicit inputs: what a
// stage learns travels only through its returned value, never through
// hidden mutable state — which is what lets shards run independently.
// (`env.google_dns` is the measured system; probing it is the measurement
// itself, not hidden pipeline state.)

/// Stage 1 — scope discovery (§3.1.1, validated in Appendix A.2): queries
/// the authoritative for every /24 in the environment's range and collapses
/// runs sharing a response scope into one candidate. Sharded over fixed
/// /24 chunks; the ordered merge drops candidates a preceding chunk's
/// final (overshooting) candidate already covers.
std::vector<ProbeCandidate> discover_scopes(const ProbeEnvironment& env,
                                            const CacheProbeOptions& options,
                                            int domain_index);

/// Stage 2 — PoP discovery: `dig @8.8.8.8 o-o.myaddr...` from every VP.
PopDiscoveryResult discover_pops(const ProbeEnvironment& env);

/// Stage 3 — service-radius calibration: probes a geolocated random sample
/// from each reached PoP and takes the 90th-percentile hit distance
/// (Figure 2). Sharded per PoP.
CalibrationResult calibrate(const ProbeEnvironment& env,
                            const CacheProbeOptions& options,
                            const PopDiscoveryResult& pops);

/// Stage 4 — the 120-hour campaign: each PoP probes the candidates whose
/// geolocation (+ error radius) falls within its service radius, with
/// redundant queries over TCP. Sharded per PoP (the paper fans out across
/// 22 PoPs at once); per-shard hit lists and counters are merged in PoP
/// order, so the result is byte-identical to a serial run. When
/// `scopes_by_domain` is non-null (one candidate list per domain, e.g. a
/// prior kStageScopes artifact) the internal scope discovery is skipped.
CampaignResult run_campaign(
    const ProbeEnvironment& env, const CacheProbeOptions& options,
    const PopDiscoveryResult& pops, const CalibrationResult& calibration,
    const std::vector<std::vector<ProbeCandidate>>* scopes_by_domain =
        nullptr);

/// Convenience: stages 2–4 (stage 1 runs inside stage 4).
CampaignResult run_full_campaign(const ProbeEnvironment& env,
                                 const CacheProbeOptions& options = {});

/// Which pipeline stages CacheProbeCampaign::run executes. Bits compose
/// with `|`; stages not selected read their prerequisites from the reused
/// artifacts argument instead of recomputing them.
enum StageMask : unsigned {
  kStageScopes = 1u << 0,       // scope discovery for every domain
  kStagePops = 1u << 1,         // PoP discovery
  kStageCalibration = 1u << 2,  // service-radius calibration
  kStageCampaign = 1u << 3,     // the probing campaign itself
  /// Stages 2–4, the old run_full: the campaign discovers scopes
  /// internally, so kStageScopes is only needed to *inspect* candidates.
  kStagesProbing = kStagePops | kStageCalibration | kStageCampaign,
  kStagesAll = kStageScopes | kStagesProbing,
};

/// Everything a campaign run produces, stage by stage. Benches reuse an
/// earlier run's artifacts (e.g. clean PoPs + calibration) by passing them
/// back into run() with a narrower stage mask.
struct CampaignArtifacts {
  /// Per-domain candidate lists (kStageScopes; indexes align with the
  /// environment's domain list).
  std::vector<std::vector<ProbeCandidate>> scopes_by_domain;
  PopDiscoveryResult pops;
  CalibrationResult calibration;
  CampaignResult result;
};

/// The paper's first technique: ECS cache probing of Google Public DNS.
/// A thin handle bundling a ProbeEnvironment with options; one `run`
/// entry point executes the selected stages via the functions above.
class CacheProbeCampaign {
 public:
  explicit CacheProbeCampaign(ProbeEnvironment env,
                              CacheProbeOptions options = {})
      : env_(std::move(env)), options_(options) {}

  /// Runs the stages in `stages` and returns everything they produced.
  /// Stages not selected pass `reuse`'s artifacts through unchanged and
  /// selected stages consume them as prerequisites — so
  /// `run(kStageCampaign, clean)` re-probes on top of clean PoPs and
  /// calibration.
  CampaignArtifacts run(unsigned stages = kStagesProbing,
                        CampaignArtifacts reuse = {}) const;

  const ProbeEnvironment& environment() const { return env_; }
  const std::vector<sim::DomainInfo>& domains() const { return env_.domains; }
  const CacheProbeOptions& options() const { return options_; }

 private:
  ProbeEnvironment env_;
  CacheProbeOptions options_;
};

}  // namespace netclients::core
