#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "anycast/pop.h"
#include "anycast/vantage.h"
#include "core/datasets/datasets.h"
#include "core/resilience/resilience.h"
#include "dnssrv/authoritative.h"
#include "geo/geodb.h"
#include "googledns/google_dns.h"
#include "net/prefix.h"
#include "net/prefix_set.h"
#include "sim/domains.h"

namespace netclients::core {

/// Everything the measurer has access to — the explicit substrate of the
/// campaign. The pipeline deliberately consumes only what a real measurer
/// has: query access to the domains' authoritatives (scope pre-pass), query
/// access to Google Public DNS, a MaxMind-style geolocation database, a
/// vantage-point fleet, and the public /24 space bounds. It never touches
/// the simulator's ground truth.
struct ProbeEnvironment {
  const dnssrv::AuthoritativeServer* authoritative = nullptr;
  googledns::GooglePublicDns* google_dns = nullptr;
  const geo::GeoDatabase* geodb = nullptr;
  std::vector<anycast::VantagePoint> vantage_points;
  std::vector<sim::DomainInfo> domains;
  std::uint32_t slash24_begin = 0;
  std::uint32_t slash24_end = 0;
};

/// Everything about how a single probe goes out: transport, redundancy,
/// per-transport timeouts with retry/backoff, and circuit breaking. The
/// consolidated replacement for the loose `transport`/`redundant_queries`
/// fields that used to sit directly in CacheProbeOptions (§3.1.1 defaults).
struct ProbePolicy {
  googledns::Transport transport = googledns::Transport::kTcp;
  int redundant_queries = 5;  // cover multiple independent cache pools
  resilience::RetryPolicy retry;
  resilience::BreakerPolicy breaker;
};

/// Tuning of the cache-probing campaign; defaults are the paper's (§3.1.1).
struct CacheProbeOptions {
  double duration_hours = 120;
  double prefixes_per_second_per_domain = 50;
  /// Probe-level policy. Stage code reads this through effective_policy(),
  /// which also honours the deprecated loose fields below.
  ProbePolicy probe;
  /// Deprecated: pre-ProbePolicy alias of probe.redundant_queries, honoured
  /// (and winning) when moved off its default so existing call sites keep
  /// their meaning. Prefer probe.redundant_queries.
  int redundant_queries = 5;
  /// Cap on how many times the campaign loops over a PoP's assigned list
  /// (the paper loops continuously for 120h; the cap bounds simulation
  /// cost for small candidate lists).
  int max_loops = 6;
  /// Deprecated: pre-ProbePolicy alias of probe.transport (same contract
  /// as redundant_queries above). Prefer probe.transport.
  googledns::Transport transport = googledns::Transport::kTcp;

  // Calibration (service-radius estimation).
  std::uint32_t calibration_sample_target = 78637;
  double calibration_max_error_radius_km = 200;
  double service_radius_percentile = 0.90;
  /// Fallback radius when a PoP sees too few calibration hits.
  double default_service_radius_km = 5524;  // the paper's maximum (Zurich)
  /// Ablation switch: ignore calibration and assign every PoP the maximum
  /// radius (the paper's 4.4M-vs-2.4M candidates-per-PoP comparison).
  bool use_max_radius_everywhere = false;

  std::uint64_t seed = 0xCAFE;

  /// Parallelism degree for the sharded stages (scope discovery sharded
  /// over /24 ranges, calibration and the campaign sharded per PoP).
  /// 0 = exec::thread_count() (the REPRO_THREADS env var); 1 = serial.
  /// Same seed ⇒ byte-identical results for every value.
  int threads = 0;

  /// The policy stage code actually runs: `probe`, overridden by whichever
  /// deprecated loose field a caller moved off its default.
  ProbePolicy effective_policy() const;
};

/// A candidate probe target discovered by the scope pre-pass: one query per
/// authoritative-returned scope rather than per /24.
struct ProbeCandidate {
  net::Prefix scope;  // query scope (== discovered response scope)
};

/// One cache hit observed by the campaign.
struct CacheHit {
  int domain_index = 0;
  net::Prefix query_scope;
  std::uint8_t return_scope = 0;
  anycast::PopId pop = anycast::kNoPop;
  net::SimTime when = 0;
};

struct PopDiscoveryResult {
  /// vantage index → PoP it reaches.
  std::vector<anycast::PopId> vp_pop;
  /// Deduplicated reachable PoPs, each with one representative VP.
  std::vector<std::pair<anycast::PopId, int>> probed_pops;
};

struct CalibrationResult {
  /// PoP → estimated service radius (km).
  std::unordered_map<anycast::PopId, double> service_radius_km;
  /// PoP → distances (km) of calibration prefixes that returned hits — the
  /// raw series behind Figure 2.
  std::unordered_map<anycast::PopId, std::vector<double>> hit_distances_km;
  std::size_t sampled_prefixes = 0;
};

struct CampaignResult {
  std::vector<CacheHit> hits;
  /// Disjoint union of hit scopes with return scope > 0, across domains.
  net::DisjointPrefixSet active;
  /// Same, per domain (indexes align with the campaign's domain list).
  std::vector<net::DisjointPrefixSet> active_by_domain;
  std::uint64_t probes_sent = 0;
  std::uint64_t rate_limited = 0;
  double average_assigned_per_pop = 0;
  /// Resilience tallies (retries, timeouts, breaker trips, requeues)
  /// merged across PoP shards; all-zero on a fault-free substrate.
  resilience::RetryStats retry_stats;

  /// Lower bound on active /24s: one per disjoint hit prefix (§4).
  std::uint64_t slash24_lower_bound() const { return active.size(); }
  /// Upper bound: every /24 inside every hit prefix.
  std::uint64_t slash24_upper_bound() const {
    return active.slash24_upper_bound();
  }

  /// Expands the upper bound into a /24 dataset (presence-only).
  PrefixDataset to_prefix_dataset(std::string name) const;
};

/// Mean candidates assigned per (PoP, domain) pair, in double — the
/// integer-division truncation this replaces underreported Figure 2's
/// 2.4M-vs-4.4M comparison at small scales.
double mean_assigned_per_pop(std::uint64_t total_assigned, std::size_t pops,
                             std::size_t domains);

// ---------------------------------------------------------------------------
// Stage API. Each stage is a pure function of its explicit inputs: what a
// stage learns travels only through its returned value, never through
// hidden mutable state — which is what lets shards run independently.
// (`env.google_dns` is the measured system; probing it is the measurement
// itself, not hidden pipeline state.)

/// Stage 1 — scope discovery (§3.1.1, validated in Appendix A.2): queries
/// the authoritative for every /24 in the environment's range and collapses
/// runs sharing a response scope into one candidate. Sharded over fixed
/// /24 chunks; the ordered merge drops candidates a preceding chunk's
/// final (overshooting) candidate already covers.
std::vector<ProbeCandidate> discover_scopes(const ProbeEnvironment& env,
                                            const CacheProbeOptions& options,
                                            int domain_index);

/// Stage 2 — PoP discovery: `dig @8.8.8.8 o-o.myaddr...` from every VP.
PopDiscoveryResult discover_pops(const ProbeEnvironment& env);

/// Stage 3 — service-radius calibration: probes a geolocated random sample
/// from each reached PoP and takes the 90th-percentile hit distance
/// (Figure 2). Sharded per PoP.
CalibrationResult calibrate(const ProbeEnvironment& env,
                            const CacheProbeOptions& options,
                            const PopDiscoveryResult& pops);

/// Stage 4 — the 120-hour campaign: each PoP probes the candidates whose
/// geolocation (+ error radius) falls within its service radius, with
/// redundant queries over TCP. Sharded per PoP (the paper fans out across
/// 22 PoPs at once); per-shard hit lists and counters are merged in PoP
/// order, so the result is byte-identical to a serial run.
CampaignResult run_campaign(const ProbeEnvironment& env,
                            const CacheProbeOptions& options,
                            const PopDiscoveryResult& pops,
                            const CalibrationResult& calibration);

/// Convenience: stages 2–4 (stage 1 runs inside stage 4).
CampaignResult run_full_campaign(const ProbeEnvironment& env,
                                 const CacheProbeOptions& options = {});

/// The paper's first technique: ECS cache probing of Google Public DNS.
/// A thin handle bundling a ProbeEnvironment with options; every method
/// delegates to the stage functions above.
class CacheProbeCampaign {
 public:
  explicit CacheProbeCampaign(ProbeEnvironment env,
                              CacheProbeOptions options = {})
      : env_(std::move(env)), options_(options) {}

  std::vector<ProbeCandidate> discover_scopes(int domain_index) const {
    return core::discover_scopes(env_, options_, domain_index);
  }
  PopDiscoveryResult discover_pops() const {
    return core::discover_pops(env_);
  }
  CalibrationResult calibrate(const PopDiscoveryResult& pops) const {
    return core::calibrate(env_, options_, pops);
  }
  CampaignResult run(const PopDiscoveryResult& pops,
                     const CalibrationResult& calibration) const {
    return core::run_campaign(env_, options_, pops, calibration);
  }
  CampaignResult run_full() const {
    return core::run_full_campaign(env_, options_);
  }

  const ProbeEnvironment& environment() const { return env_; }
  const std::vector<sim::DomainInfo>& domains() const { return env_.domains; }
  const CacheProbeOptions& options() const { return options_; }

 private:
  ProbeEnvironment env_;
  CacheProbeOptions options_;
};

}  // namespace netclients::core
