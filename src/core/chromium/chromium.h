#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/datasets/datasets.h"
#include "dns/name.h"
#include "roots/trace.h"

namespace netclients::roots {
class CorpusView;
class PacketTraceView;
class TraceView;
}  // namespace netclients::roots

namespace netclients::core::exec {
struct StealTelemetry;
}  // namespace netclients::core::exec

namespace netclients::core {

/// The Chromium DNS-interception-probe signature (§3.2.1): a single label
/// of 7–15 lowercase ASCII letters, no TLD.
bool matches_chromium_signature(const dns::DnsName& name);

/// Byte-wise fast path over a single label's raw bytes, for the zero-copy
/// scan: length 7–15 plus one 256-entry table lookup per byte instead of
/// the per-char compare chain. The caller has already established the name
/// is single-label. Accepts ASCII letters of either case — canonical
/// DnsName labels are always lowercase, but raw trace bytes need not be,
/// and materializing lowercases them — so the two matchers agree on every
/// input. `matches_chromium_signature` routes through this predicate; it
/// is the single source of truth for the label shape.
bool matches_chromium_signature_bytes(std::string_view label);

struct ChromiumOptions {
  /// Per-day occurrence threshold: names queried at least this often
  /// across all usable roots are considered colliding/manufactured, not
  /// Chromium (the paper's empirical simulation found random Chromium
  /// names collide fewer than 7 times per day w.p. 99%).
  std::uint32_t daily_collision_threshold = 7;
  /// Downsampling applied when the trace was generated; counts are scaled
  /// back by 1/sample_rate, and the collision threshold scales with it
  /// (a name sampled k times at rate s was queried ~k/s times in full).
  double sample_rate = 1.0;
  double trace_days = 2.0;
  std::size_t sketch_width = 1 << 22;
  int sketch_depth = 4;
  std::uint64_t seed = 0xC520;

  /// Parallelism degree for the chunked trace scan. 0 = exec::thread_count()
  /// (the REPRO_THREADS env var); 1 = serial. Same trace ⇒ identical
  /// counts for every value.
  int threads = 0;
  /// Records per scan shard. Fixed (never derived from the thread count)
  /// so the chunk partition — and the chunk-ordered merge — is identical
  /// for every REPRO_THREADS value.
  std::size_t chunk_records = 1 << 15;
};

struct ChromiumResult {
  /// resolver source address → Chromium probe count, scaled to the full
  /// (unsampled) trace.
  std::unordered_map<std::uint32_t, double> probes_by_resolver;

  std::uint64_t records_scanned = 0;
  std::uint64_t signature_matches = 0;
  std::uint64_t rejected_collisions = 0;
  /// Trace records declared by the file header but unparseable (only set
  /// by process_file, which reads tolerantly: skip-and-count, never crash).
  std::uint64_t records_skipped = 0;

  /// Aggregates resolvers by /24 into a dataset (volume = probe count).
  PrefixDataset to_prefix_dataset(std::string name) const;
};

/// The paper's second technique: counting Chromium interception probes in
/// root DITL traces, per recursive resolver.
///
/// Streaming, two-pass design: DITL-scale traces cannot be materialized, so
/// the pipeline takes a *replayable* record source. Pass 1 builds a
/// per-(name, day) frequency sketch; pass 2 attributes each surviving
/// signature match to its source address.
///
/// Both passes shard the stream into fixed-size record chunks processed in
/// parallel: pass 1 scatters into the shared sketch with commutative
/// atomic increments, pass 2 accumulates per-chunk integer partials merged
/// in chunk order — so counts are identical for every thread count.
class ChromiumCounter {
 public:
  /// Invokes `emit` once per trace record; must produce the identical
  /// stream each time it is called.
  using ReplayFn = std::function<void(
      const std::function<void(const roots::TraceRecord&)>& emit)>;

  explicit ChromiumCounter(ChromiumOptions options = {})
      : options_(options) {}

  ChromiumResult process(const ReplayFn& replay) const;

  /// Single-shot convenience over an in-memory trace.
  ChromiumResult process(const std::vector<roots::TraceRecord>& trace) const;

  /// Zero-copy streaming scan over an open TraceView: one serial boundary
  /// walk partitions the mapping into record-aligned chunks by offset
  /// (thread-count independent), then both passes fan the chunks out via
  /// exec::parallel_map — byte-wise signature matching on the mapped label
  /// bytes, per-shard open-addressing count tables merged in shard order.
  /// No per-record allocation anywhere. Result is byte-identical to
  /// materializing the same file and calling process(), at any
  /// REPRO_THREADS; damaged tails are skip-and-count
  /// (result.records_skipped), mirroring read_tolerant.
  ChromiumResult process_view(const roots::TraceView& view) const;

  /// Scans a binary trace file via the zero-copy view path (mmap with
  /// buffered fallback): damaged or truncated records are skipped and
  /// counted (result.records_skipped), never fatal. Returns nullopt only
  /// if the file itself is unreadable (missing, bad magic, bad header).
  std::optional<ChromiumResult> process_file(const std::string& path) const;

  /// The same two-pass chunked scan over a packet-framed (NCP1) trace:
  /// chunking walks the capture framing only, and each scan shard pays an
  /// honest zero-copy `dns::MessageView::parse` per packet. A framed but
  /// unparseable packet is a scanned non-match (records_scanned includes
  /// it), so chunk boundaries — and therefore results — stay independent
  /// of packet contents and thread count. Counts are identical to running
  /// process() over the records the packets were written from.
  ChromiumResult process_packets(const roots::PacketTraceView& view) const;

  /// process_file for NCP1 packet traces.
  std::optional<ChromiumResult> process_packet_file(
      const std::string& path) const;

  /// The cross-file scan over a sharded multi-file corpus. Member files
  /// are partitioned in parallel (one boundary walk each), the resulting
  /// (file, chunk) tasks — in canonical ascending order — are executed by
  /// the work-stealing scheduler (`exec::steal_map`), and per-task
  /// partials are merged back in that canonical order. The result is
  /// byte-identical to writing the same records into one file and calling
  /// process_view, at any REPRO_THREADS and any steal interleaving:
  /// determinism comes from merge order, not execution order. NCD1 and
  /// NCP1 members may be mixed. Unreadable members were already counted
  /// by CorpusView::open; their declared records land in records_skipped.
  /// `telemetry`, when non-null, receives the summed steal telemetry of
  /// both passes (for the bench's steal-ratio gauge).
  ChromiumResult process_corpus(const roots::CorpusView& corpus,
                                exec::StealTelemetry* telemetry
                                  = nullptr) const;

  /// process_file for a corpus manifest: opens the corpus (tolerantly)
  /// and scans it. Returns nullopt only when the manifest itself is
  /// unreadable or malformed.
  std::optional<ChromiumResult> process_corpus_file(
      const std::string& manifest_path,
      exec::StealTelemetry* telemetry = nullptr) const;

  const ChromiumOptions& options() const { return options_; }

 private:
  ChromiumOptions options_;
};

/// Monte-Carlo + analytic collision study backing the threshold choice
/// (§3.2.1): with `daily_queries` random signature names per day, the
/// probability that any given name is seen >= `threshold` times.
struct CollisionStudy {
  double expected_per_name = 0;      // mean occurrences of a specific name
  double p_name_below_threshold = 0; // P(one name's count < threshold)
  double observed_p_below = 0;       // Monte-Carlo check
};
CollisionStudy study_collisions(double daily_queries,
                                std::uint32_t threshold,
                                std::uint64_t monte_carlo_names,
                                std::uint64_t seed);

}  // namespace netclients::core
