#include "core/chromium/chromium.h"

#include <array>
#include <cmath>
#include <mutex>
#include <utility>

#include "core/chromium/count_table.h"
#include "core/chromium/sketch.h"
#include "core/exec/exec.h"
#include "core/exec/steal.h"
#include "core/obs/obs.h"
#include "dns/packet.h"
#include "net/rng.h"
#include "net/sim_time.h"
#include "roots/corpus.h"
#include "roots/packet_trace.h"
#include "roots/trace_view.h"

namespace netclients::core {
namespace {

/// Byte classes the signature accepts: lowercase ASCII letters, plus
/// uppercase (raw trace bytes are not canonicalized; materializing
/// lowercases them, so both matchers must treat 'A' like 'a').
constexpr std::array<bool, 256> kSignatureByte = [] {
  std::array<bool, 256> table{};
  for (int c = 'a'; c <= 'z'; ++c) table[static_cast<std::size_t>(c)] = true;
  for (int c = 'A'; c <= 'Z'; ++c) table[static_cast<std::size_t>(c)] = true;
  return table;
}();

}  // namespace

bool matches_chromium_signature_bytes(std::string_view label) {
  if (label.size() < 7 || label.size() > 15) return false;
  for (char c : label) {
    if (!kSignatureByte[static_cast<unsigned char>(c)]) return false;
  }
  return true;
}

bool matches_chromium_signature(const dns::DnsName& name) {
  // One fetch of the single label, then the shared byte predicate — the
  // DnsName and zero-copy matchers cannot drift.
  return name.is_single_label() &&
         matches_chromium_signature_bytes(name.labels().front());
}

namespace {

std::uint64_t name_day_key(const roots::TraceRecord& rec) {
  const auto day = static_cast<std::uint64_t>(rec.timestamp / net::kDay);
  return net::hash_combine(net::stable_hash(rec.qname.labels().front()), day);
}

/// stable_hash over the lowercased bytes of a raw trace label — equal to
/// stable_hash of the label's canonical (materialized) form. Only labels
/// that already matched the signature are hashed, so every byte is an
/// ASCII letter and the fold is a branchless OR.
std::uint64_t lower_stable_hash(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c) | 0x20u;
    h *= 0x100000001b3ULL;
  }
  return net::mix64(h);
}

std::uint64_t name_day_key(std::string_view first_label, net::SimTime ts) {
  const auto day = static_cast<std::uint64_t>(ts / net::kDay);
  return net::hash_combine(lower_stable_hash(first_label), day);
}

/// Record adapters for the shared view scan below: extract the sole label
/// of a single-label qname, or report that the record has no such label.
/// NCD1 refs read the label bytes straight out of the frame; NCP1 refs pay
/// a full zero-copy wire parse — a framed but unparseable packet simply
/// has no label (a scanned non-match), which keeps the scan's accept set a
/// property of the bytes, not of where chunk boundaries fell.
bool single_label_of(const roots::TraceRecordRef& ref,
                     std::string_view* label) {
  if (!ref.is_single_label()) return false;
  *label = ref.first_label();
  return true;
}

bool single_label_of(const roots::PacketRecordRef& ref,
                     std::string_view* label) {
  const auto view = dns::MessageView::parse(ref.wire());
  if (!view || view->question_count() == 0) return false;
  const dns::NameView& name = view->first_question().name;
  if (!name.is_single_label()) return false;
  *label = name.first_label();
  return true;
}

/// The collision threshold in the sampled domain: a name with the
/// full-trace threshold count is expected to appear threshold×rate times
/// after sampling. Keep at least 2 so single occurrences (the Chromium
/// common case) always survive. Shared by the materializing and view
/// scan paths so their filters are identical by construction.
std::uint32_t effective_threshold(const ChromiumOptions& options) {
  return std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(std::lround(
             options.daily_collision_threshold * options.sample_rate)));
}

/// Scan telemetry from the merged (already deterministic) totals. Shared
/// by both scan paths so exports stay comparable across them.
void record_scan_metrics(const ChromiumResult& result) {
  obs::Registry& registry = obs::Registry::global();
  registry.counter("chromium.records_scanned").add(result.records_scanned);
  registry.counter("chromium.signature_matches")
      .add(result.signature_matches);
  registry.counter("chromium.sketch.rejected_collisions")
      .add(result.rejected_collisions);
  registry.gauge("chromium.resolvers")
      .set(static_cast<double>(result.probes_by_resolver.size()));
}

/// Cuts a sequential stream of values into fixed-size chunks and hands
/// batches of chunks to the pool. The producer (the replay callback) stays
/// single-threaded; only chunk processing fans out. Chunk boundaries
/// depend on arrival order alone, so the partition is identical for every
/// thread count.
template <typename T>
class ChunkedScatter {
 public:
  using ChunkFn = std::function<void(std::size_t, const std::vector<T>&)>;

  ChunkedScatter(std::size_t chunk_size, int threads, ChunkFn fn)
      : chunk_size_(std::max<std::size_t>(1, chunk_size)),
        threads_(threads),
        fn_(std::move(fn)) {
    batch_limit_ = static_cast<std::size_t>(
        std::max(1, threads_ > 0 ? threads_ : exec::thread_count()) * 2);
  }

  void push(T value) {
    current_.push_back(std::move(value));
    if (current_.size() == chunk_size_) {
      batch_.push_back(std::move(current_));
      current_.clear();
      if (batch_.size() >= batch_limit_) flush();
    }
  }

  void finish() {
    if (!current_.empty()) {
      batch_.push_back(std::move(current_));
      current_.clear();
    }
    flush();
  }

 private:
  void flush() {
    if (batch_.empty()) return;
    exec::parallel_map(batch_.size(), threads_, [&](std::size_t i) {
      fn_(next_chunk_index_ + i, batch_[i]);
      return 0;
    });
    next_chunk_index_ += batch_.size();
    batch_.clear();
  }

  std::size_t chunk_size_;
  int threads_;
  ChunkFn fn_;
  std::size_t batch_limit_;
  std::size_t next_chunk_index_ = 0;
  std::vector<T> current_;
  std::vector<std::vector<T>> batch_;
};

}  // namespace

ChromiumResult ChromiumCounter::process(const ReplayFn& replay) const {
  ChromiumResult result;
  const std::uint32_t threshold = effective_threshold(options_);

  // Pass 1: per-(name, day) frequency sketch over signature matches only.
  // The producer extracts keys serially; shards scatter them into the
  // shared sketch with atomic (commutative) increments.
  CountMinSketch sketch(options_.sketch_width, options_.sketch_depth,
                        options_.seed);
  {
    obs::StageSpan span("chromium.pass1_sketch");
    ChunkedScatter<std::uint64_t> scatter(
        options_.chunk_records, options_.threads,
        [&](std::size_t, const std::vector<std::uint64_t>& keys) {
          for (std::uint64_t key : keys) sketch.add(key);
        });
    replay([&](const roots::TraceRecord& rec) {
      if (matches_chromium_signature(rec.qname)) {
        scatter.push(name_day_key(rec));
      }
    });
    scatter.finish();
  }

  // Pass 2: attribute surviving matches to their resolver source address.
  // Per-shard partials are integer counts merged in chunk order, then
  // scaled once — byte-identical totals for any thread count.
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  std::uint64_t rejected = 0;
  {
    obs::StageSpan span("chromium.pass2_attribute");
    struct Match {
      std::uint64_t key;
      std::uint32_t source;
    };
    std::mutex merge_mu;
    ChunkedScatter<Match> scatter(
        options_.chunk_records, options_.threads,
        [&](std::size_t, const std::vector<Match>& matches) {
          std::unordered_map<std::uint32_t, std::uint64_t> local;
          std::uint64_t local_rejected = 0;
          for (const Match& m : matches) {
            if (sketch.estimate(m.key) >= threshold) {
              ++local_rejected;
            } else {
              ++local[m.source];
            }
          }
          // Integer sums are order-independent, so merging under a plain
          // lock (rather than in chunk order) is still deterministic.
          std::lock_guard<std::mutex> lock(merge_mu);
          rejected += local_rejected;
          for (const auto& [source, count] : local) counts[source] += count;
        });
    replay([&](const roots::TraceRecord& rec) {
      ++result.records_scanned;
      if (!matches_chromium_signature(rec.qname)) return;
      ++result.signature_matches;
      scatter.push(Match{name_day_key(rec), rec.source.value()});
    });
    scatter.finish();
  }
  result.rejected_collisions = rejected;
  const double scale = 1.0 / options_.sample_rate;
  for (const auto& [source, count] : counts) {
    result.probes_by_resolver[source] = static_cast<double>(count) * scale;
  }
  record_scan_metrics(result);
  return result;
}

namespace {

constexpr std::size_t kPrefetchAhead = 8;

/// Per-chunk pass-2 partial: a flat open-addressing count table plus
/// integer tallies. Integer sums, so any canonical-order merge of partials
/// is thread-count independent.
struct ChunkPartial {
  ScanCountTable counts;
  std::uint64_t matches = 0;
  std::uint64_t rejected = 0;
};

/// Record-aligned partition of one view: a serial boundary walk validates
/// the declared records (bounds and label arithmetic only — no field
/// decode, no allocation) and cuts chunk boundaries by byte offset every
/// `chunk_records` records. The partition depends on the bytes and the
/// chunk size alone, so the parallel passes shard identically at every
/// thread count; the walk doubles as the tolerant skip-and-count
/// accounting.
template <typename RefT, typename ViewT>
std::vector<exec::RecordChunk> partition_view(const ViewT& view,
                                              std::size_t chunk_records,
                                              std::uint64_t* scanned,
                                              std::uint64_t* skipped) {
  exec::RecordChunker chunker(chunk_records);
  typename ViewT::Cursor cursor = view.cursor();
  RefT ref;
  while (true) {
    const std::size_t at = cursor.offset();
    if (!cursor.next(&ref)) break;
    chunker.note(at);
  }
  *scanned = cursor.index();
  *skipped = view.declared_count() - cursor.index();
  return chunker.finish(cursor.offset());
}

/// Pass-1 kernel for one chunk: decode, collect match keys into a flat
/// buffer (one allocation per chunk), then scatter the buffer into the
/// shared sketch. Two loops, not one fused loop: at DITL match rates the
/// sketch's random row accesses dominate the scan, and the tight scatter
/// loop lets the core overlap those misses across iterations — fusing the
/// decode into the same loop measurably serializes them. A short prefetch
/// distance covers hardware where the hint helps; reordering is
/// irrelevant either way (commutative adds). `serial` skips the atomic
/// RMW when the whole scan runs inline on one thread.
template <typename RefT, typename ViewT>
void pass1_chunk(const ViewT& view, const exec::RecordChunk& chunk,
                 CountMinSketch& sketch, bool serial) {
  typename ViewT::Cursor cursor = view.cursor_at(chunk.begin,
                                                 chunk.first_record);
  RefT ref;
  std::vector<std::uint64_t> keys;
  keys.reserve(static_cast<std::size_t>(chunk.records));
  for (std::uint64_t r = 0; r < chunk.records; ++r) {
    if (!cursor.next(&ref)) break;  // unreachable: chunk pre-validated
    std::string_view label;
    if (single_label_of(ref, &label) &&
        matches_chromium_signature_bytes(label)) {
      keys.push_back(name_day_key(label, ref.timestamp()));
    }
  }
  for (std::size_t j = 0; j < keys.size(); ++j) {
    if (j + kPrefetchAhead < keys.size()) {
      sketch.prefetch(keys[j + kPrefetchAhead]);
    }
    if (serial) {
      sketch.add_serial(keys[j]);
    } else {
      sketch.add(keys[j]);
    }
  }
}

/// Pass-2 kernel for one chunk: attribute surviving matches to their
/// resolver. Same two-loop shape as pass 1 (sketch estimates only read
/// here); the returned partial is merged by the caller in canonical chunk
/// order.
template <typename RefT, typename ViewT>
ChunkPartial pass2_chunk(const ViewT& view, const exec::RecordChunk& chunk,
                         const CountMinSketch& sketch,
                         std::uint32_t threshold) {
  ChunkPartial partial;
  typename ViewT::Cursor cursor = view.cursor_at(chunk.begin,
                                                 chunk.first_record);
  RefT ref;
  struct Match {
    std::uint64_t key;
    std::uint32_t source;
  };
  std::vector<Match> matches;
  matches.reserve(static_cast<std::size_t>(chunk.records));
  for (std::uint64_t r = 0; r < chunk.records; ++r) {
    if (!cursor.next(&ref)) break;  // unreachable, as above
    std::string_view label;
    if (single_label_of(ref, &label) &&
        matches_chromium_signature_bytes(label)) {
      matches.push_back(
          Match{name_day_key(label, ref.timestamp()), ref.source().value()});
    }
  }
  partial.matches = matches.size();
  for (std::size_t j = 0; j < matches.size(); ++j) {
    if (j + kPrefetchAhead < matches.size()) {
      sketch.prefetch(matches[j + kPrefetchAhead].key);
    }
    if (sketch.below(matches[j].key, threshold)) {
      partial.counts.add(matches[j].source);
    } else {
      ++partial.rejected;
    }
  }
  return partial;
}

/// Folds canonically-ordered pass-2 partials into the result and applies
/// the 1/sample_rate scaling once — the same integer-sums-then-scale
/// discipline as the materializing path, so results are byte-identical to
/// it at any thread count.
void merge_partials(const std::vector<ChunkPartial>& partials,
                    double sample_rate, ChromiumResult* result) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for (const ChunkPartial& partial : partials) {
    result->signature_matches += partial.matches;
    result->rejected_collisions += partial.rejected;
    partial.counts.for_each([&](std::uint32_t source, std::uint64_t count) {
      counts[source] += count;
    });
  }
  const double scale = 1.0 / sample_rate;
  for (const auto& [source, count] : counts) {
    result->probes_by_resolver[source] = static_cast<double>(count) * scale;
  }
}

/// True when the scan's shard loops run inline on one thread, so the
/// sketch scatter can skip the atomic RMW (a full fence per add on x86) —
/// same cells, same values, fraction of the cost.
bool serial_scan(const ChromiumOptions& options) {
  return (options.threads > 0 ? options.threads : exec::thread_count()) <= 1;
}

/// The zero-copy two-pass scan, shared by the record-framed (NCD1) and
/// packet-framed (NCP1) views. `RefT` only needs cursor traversal,
/// timestamp()/source(), and a `single_label_of` adapter overload; the
/// chunk partition, sketch pass, attribution pass, and merge discipline
/// are byte-for-byte the same machinery either way — and the same
/// per-chunk kernels serve the multi-file corpus scan, which is what
/// makes its results byte-identical to this path.
template <typename RefT, typename ViewT>
ChromiumResult scan_view(const ViewT& view, const ChromiumOptions& options_) {
  ChromiumResult result;
  const std::uint32_t threshold = effective_threshold(options_);

  std::vector<exec::RecordChunk> chunks;
  {
    obs::StageSpan span("chromium.scan.partition");
    chunks = partition_view<RefT>(view, options_.chunk_records,
                                  &result.records_scanned,
                                  &result.records_skipped);
  }

  // Pass 1: per-(name, day) frequency sketch over signature matches.
  // Sketch cells are atomic integer increments — commutative, so shards
  // scatter into the shared sketch directly.
  CountMinSketch sketch(options_.sketch_width, options_.sketch_depth,
                        options_.seed);
  const bool serial = serial_scan(options_);
  {
    obs::StageSpan span("chromium.scan.pass1_sketch");
    exec::parallel_map(chunks.size(), options_.threads, [&](std::size_t i) {
      pass1_chunk<RefT>(view, chunks[i], sketch, serial);
      return 0;
    });
  }

  // Pass 2: per-chunk partials merged in chunk order, then scaled once.
  std::vector<ChunkPartial> partials;
  {
    obs::StageSpan span("chromium.scan.pass2_attribute");
    partials =
        exec::parallel_map(chunks.size(), options_.threads, [&](std::size_t i) {
          return pass2_chunk<RefT>(view, chunks[i], sketch, threshold);
        });
  }
  merge_partials(partials, options_.sample_rate, &result);

  record_scan_metrics(result);
  obs::Registry& registry = obs::Registry::global();
  registry.counter("chromium.scan.records").add(result.records_scanned);
  registry.counter("chromium.scan.chunks").add(chunks.size());
  registry.counter("chromium.scan.bytes").add(view.payload_bytes());
  if (result.records_skipped > 0) {
    // Lazy, like the fault counters: a clean trace's export is identical
    // to one from a build that predates skip accounting.
    registry.counter("chromium.trace.records_skipped")
        .add(result.records_skipped);
  }
  return result;
}

}  // namespace

ChromiumResult ChromiumCounter::process_view(
    const roots::TraceView& view) const {
  return scan_view<roots::TraceRecordRef>(view, options_);
}

ChromiumResult ChromiumCounter::process_packets(
    const roots::PacketTraceView& view) const {
  return scan_view<roots::PacketRecordRef>(view, options_);
}

ChromiumResult ChromiumCounter::process_corpus(
    const roots::CorpusView& corpus, exec::StealTelemetry* telemetry) const {
  ChromiumResult result;
  const std::uint32_t threshold = effective_threshold(options_);
  const auto& members = corpus.members();

  // Phase A: partition every member in parallel. Each member's boundary
  // walk is the same serial walk scan_view does — but members are
  // independent byte streams, so the walks themselves fan out. This is the
  // structural win over a single concatenated file, where the partition is
  // one long serial pass.
  struct MemberPartition {
    std::vector<exec::RecordChunk> chunks;
    std::uint64_t scanned = 0;
    std::uint64_t skipped = 0;
  };
  std::vector<MemberPartition> partitions;
  {
    obs::StageSpan span("chromium.scan.partition");
    partitions =
        exec::parallel_map(members.size(), options_.threads, [&](std::size_t m) {
          MemberPartition p;
          if (members[m].trace) {
            p.chunks = partition_view<roots::TraceRecordRef>(
                *members[m].trace, options_.chunk_records, &p.scanned,
                &p.skipped);
          } else if (members[m].packets) {
            p.chunks = partition_view<roots::PacketRecordRef>(
                *members[m].packets, options_.chunk_records, &p.scanned,
                &p.skipped);
          }
          return p;
        });
  }
  // Canonical task order: (file, chunk) ascending. The steal scheduler may
  // execute tasks in any interleaving; every merge below replays this
  // order, which is what keeps the result byte-identical to the
  // single-file path at any REPRO_THREADS and any steal pattern.
  struct CorpusTask {
    std::size_t member = 0;
    exec::RecordChunk chunk;
  };
  std::vector<CorpusTask> tasks;
  for (std::size_t m = 0; m < partitions.size(); ++m) {
    result.records_scanned += partitions[m].scanned;
    result.records_skipped += partitions[m].skipped;
    for (const exec::RecordChunk& chunk : partitions[m].chunks) {
      tasks.push_back(CorpusTask{m, chunk});
    }
  }
  // Members the manifest promised but the open skipped entirely.
  result.records_skipped += corpus.stats().records_skipped;

  // Pass 1: one shared sketch across all files — commutative atomic adds,
  // so steal order is invisible. The same (name, day) keys go in as a
  // single-file scan of the same records would insert.
  CountMinSketch sketch(options_.sketch_width, options_.sketch_depth,
                        options_.seed);
  const bool serial = serial_scan(options_);
  exec::StealTelemetry pass1_telemetry;
  {
    obs::StageSpan span("chromium.scan.pass1_sketch");
    exec::steal_map(
        tasks.size(), options_.threads,
        [&](std::size_t t) {
          const CorpusTask& task = tasks[t];
          if (members[task.member].trace) {
            pass1_chunk<roots::TraceRecordRef>(*members[task.member].trace,
                                               task.chunk, sketch, serial);
          } else {
            pass1_chunk<roots::PacketRecordRef>(*members[task.member].packets,
                                                task.chunk, sketch, serial);
          }
          return 0;
        },
        &pass1_telemetry);
  }

  // Pass 2: per-task partials, returned by task index (canonical order)
  // regardless of who executed them, merged exactly like scan_view's.
  std::vector<ChunkPartial> partials;
  exec::StealTelemetry pass2_telemetry;
  {
    obs::StageSpan span("chromium.scan.pass2_attribute");
    partials = exec::steal_map(
        tasks.size(), options_.threads,
        [&](std::size_t t) {
          const CorpusTask& task = tasks[t];
          if (members[task.member].trace) {
            return pass2_chunk<roots::TraceRecordRef>(
                *members[task.member].trace, task.chunk, sketch, threshold);
          }
          return pass2_chunk<roots::PacketRecordRef>(
              *members[task.member].packets, task.chunk, sketch, threshold);
        },
        &pass2_telemetry);
  }
  merge_partials(partials, options_.sample_rate, &result);

  if (telemetry) {
    telemetry->tasks = pass1_telemetry.tasks + pass2_telemetry.tasks;
    telemetry->workers =
        std::max(pass1_telemetry.workers, pass2_telemetry.workers);
    telemetry->steals = pass1_telemetry.steals + pass2_telemetry.steals;
    telemetry->stolen_tasks =
        pass1_telemetry.stolen_tasks + pass2_telemetry.stolen_tasks;
    telemetry->attempts = pass1_telemetry.attempts + pass2_telemetry.attempts;
  }

  record_scan_metrics(result);
  obs::Registry& registry = obs::Registry::global();
  registry.counter("chromium.scan.records").add(result.records_scanned);
  registry.counter("chromium.scan.chunks").add(tasks.size());
  registry.counter("chromium.scan.bytes").add(corpus.payload_bytes());
  registry.counter("chromium.scan.files").add(corpus.stats().members_opened);
  if (result.records_skipped > 0) {
    registry.counter("chromium.trace.records_skipped")
        .add(result.records_skipped);
  }
  return result;
}

std::optional<ChromiumResult> ChromiumCounter::process_corpus_file(
    const std::string& manifest_path,
    exec::StealTelemetry* telemetry) const {
  const auto corpus = roots::CorpusView::open(manifest_path);
  if (!corpus) return std::nullopt;
  return process_corpus(*corpus, telemetry);
}

ChromiumResult ChromiumCounter::process(
    const std::vector<roots::TraceRecord>& trace) const {
  return process([&](const std::function<void(const roots::TraceRecord&)>&
                         emit) {
    for (const auto& rec : trace) emit(rec);
  });
}

std::optional<ChromiumResult> ChromiumCounter::process_file(
    const std::string& path) const {
  const auto view = roots::TraceView::open(path);
  if (!view) return std::nullopt;
  return process_view(*view);
}

std::optional<ChromiumResult> ChromiumCounter::process_packet_file(
    const std::string& path) const {
  const auto view = roots::PacketTraceView::open(path);
  if (!view) return std::nullopt;
  return process_packets(*view);
}

PrefixDataset ChromiumResult::to_prefix_dataset(std::string name) const {
  PrefixDataset out(std::move(name));
  for (const auto& [addr, count] : probes_by_resolver) {
    out.add(addr >> 8, count);
  }
  return out;
}

CollisionStudy study_collisions(double daily_queries, std::uint32_t threshold,
                                std::uint64_t monte_carlo_names,
                                std::uint64_t seed) {
  CollisionStudy study;
  // Chromium picks a length uniformly in [7, 15], then letters uniformly:
  // a specific name of length L collides with Poisson(rate) other probes
  // where rate = (daily_queries / 9) / 26^L.
  double expected = 0;
  double p_below = 0;
  for (int len = 7; len <= 15; ++len) {
    const double space = std::pow(26.0, len);
    const double rate = daily_queries / 9.0 / space;
    expected += rate / 9.0;
    // This probe's own occurrence plus Poisson(rate) others; below the
    // threshold means total < threshold.
    double p = 0;
    double term = std::exp(-rate);
    for (std::uint32_t k = 0; k + 1 < threshold; ++k) {
      p += term;
      term *= rate / (k + 1);
    }
    p_below += p / 9.0;
  }
  study.expected_per_name = expected;
  study.p_name_below_threshold = p_below;

  net::Rng rng(seed);
  std::uint64_t below = 0;
  for (std::uint64_t i = 0; i < monte_carlo_names; ++i) {
    const int len = 7 + static_cast<int>(rng.below(9));
    const double rate = daily_queries / 9.0 / std::pow(26.0, len);
    const std::uint64_t occurrences = 1 + rng.poisson(rate);
    if (occurrences < threshold) ++below;
  }
  study.observed_p_below =
      monte_carlo_names == 0
          ? 0
          : static_cast<double>(below) /
                static_cast<double>(monte_carlo_names);
  return study;
}

}  // namespace netclients::core
