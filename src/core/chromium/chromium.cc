#include "core/chromium/chromium.h"

#include <cmath>

#include "core/chromium/sketch.h"
#include "net/rng.h"
#include "net/sim_time.h"

namespace netclients::core {

bool matches_chromium_signature(const dns::DnsName& name) {
  if (!name.is_single_label()) return false;
  const std::string& label = name.labels().front();
  if (label.size() < 7 || label.size() > 15) return false;
  for (char c : label) {
    if (c < 'a' || c > 'z') return false;
  }
  return true;
}

namespace {

std::uint64_t name_day_key(const roots::TraceRecord& rec) {
  const auto day = static_cast<std::uint64_t>(rec.timestamp / net::kDay);
  return net::hash_combine(net::stable_hash(rec.qname.labels().front()), day);
}

}  // namespace

ChromiumResult ChromiumCounter::process(const ReplayFn& replay) const {
  ChromiumResult result;
  // The effective threshold in the sampled domain: a name with the
  // full-trace threshold count is expected to appear threshold×rate times
  // after sampling. Keep at least 2 so single occurrences (the Chromium
  // common case) always survive.
  const std::uint32_t threshold = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(std::lround(
             options_.daily_collision_threshold * options_.sample_rate)));

  // Pass 1: per-(name, day) frequency sketch over signature matches only.
  CountMinSketch sketch(options_.sketch_width, options_.sketch_depth,
                        options_.seed);
  replay([&](const roots::TraceRecord& rec) {
    if (matches_chromium_signature(rec.qname)) {
      sketch.add(name_day_key(rec));
    }
  });

  // Pass 2: attribute surviving matches to their resolver source address.
  replay([&](const roots::TraceRecord& rec) {
    ++result.records_scanned;
    if (!matches_chromium_signature(rec.qname)) return;
    ++result.signature_matches;
    if (sketch.estimate(name_day_key(rec)) >= threshold) {
      ++result.rejected_collisions;
      return;
    }
    result.probes_by_resolver[rec.source.value()] +=
        1.0 / options_.sample_rate;
  });
  return result;
}

ChromiumResult ChromiumCounter::process(
    const std::vector<roots::TraceRecord>& trace) const {
  return process([&](const std::function<void(const roots::TraceRecord&)>&
                         emit) {
    for (const auto& rec : trace) emit(rec);
  });
}

PrefixDataset ChromiumResult::to_prefix_dataset(std::string name) const {
  PrefixDataset out(std::move(name));
  for (const auto& [addr, count] : probes_by_resolver) {
    out.add(addr >> 8, count);
  }
  return out;
}

CollisionStudy study_collisions(double daily_queries, std::uint32_t threshold,
                                std::uint64_t monte_carlo_names,
                                std::uint64_t seed) {
  CollisionStudy study;
  // Chromium picks a length uniformly in [7, 15], then letters uniformly:
  // a specific name of length L collides with Poisson(rate) other probes
  // where rate = (daily_queries / 9) / 26^L.
  double expected = 0;
  double p_below = 0;
  for (int len = 7; len <= 15; ++len) {
    const double space = std::pow(26.0, len);
    const double rate = daily_queries / 9.0 / space;
    expected += rate / 9.0;
    // This probe's own occurrence plus Poisson(rate) others; below the
    // threshold means total < threshold.
    double p = 0;
    double term = std::exp(-rate);
    for (std::uint32_t k = 0; k + 1 < threshold; ++k) {
      p += term;
      term *= rate / (k + 1);
    }
    p_below += p / 9.0;
  }
  study.expected_per_name = expected;
  study.p_name_below_threshold = p_below;

  net::Rng rng(seed);
  std::uint64_t below = 0;
  for (std::uint64_t i = 0; i < monte_carlo_names; ++i) {
    const int len = 7 + static_cast<int>(rng.below(9));
    const double rate = daily_queries / 9.0 / std::pow(26.0, len);
    const std::uint64_t occurrences = 1 + rng.poisson(rate);
    if (occurrences < threshold) ++below;
  }
  study.observed_p_below =
      monte_carlo_names == 0
          ? 0
          : static_cast<double>(below) /
                static_cast<double>(monte_carlo_names);
  return study;
}

}  // namespace netclients::core
