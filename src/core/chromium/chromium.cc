#include "core/chromium/chromium.h"

#include <cmath>
#include <mutex>
#include <utility>

#include "core/chromium/sketch.h"
#include "core/exec/exec.h"
#include "core/obs/obs.h"
#include "net/rng.h"
#include "net/sim_time.h"

namespace netclients::core {

bool matches_chromium_signature(const dns::DnsName& name) {
  if (!name.is_single_label()) return false;
  const std::string& label = name.labels().front();
  if (label.size() < 7 || label.size() > 15) return false;
  for (char c : label) {
    if (c < 'a' || c > 'z') return false;
  }
  return true;
}

namespace {

std::uint64_t name_day_key(const roots::TraceRecord& rec) {
  const auto day = static_cast<std::uint64_t>(rec.timestamp / net::kDay);
  return net::hash_combine(net::stable_hash(rec.qname.labels().front()), day);
}

/// Cuts a sequential stream of values into fixed-size chunks and hands
/// batches of chunks to the pool. The producer (the replay callback) stays
/// single-threaded; only chunk processing fans out. Chunk boundaries
/// depend on arrival order alone, so the partition is identical for every
/// thread count.
template <typename T>
class ChunkedScatter {
 public:
  using ChunkFn = std::function<void(std::size_t, const std::vector<T>&)>;

  ChunkedScatter(std::size_t chunk_size, int threads, ChunkFn fn)
      : chunk_size_(std::max<std::size_t>(1, chunk_size)),
        threads_(threads),
        fn_(std::move(fn)) {
    batch_limit_ = static_cast<std::size_t>(
        std::max(1, threads_ > 0 ? threads_ : exec::thread_count()) * 2);
  }

  void push(T value) {
    current_.push_back(std::move(value));
    if (current_.size() == chunk_size_) {
      batch_.push_back(std::move(current_));
      current_.clear();
      if (batch_.size() >= batch_limit_) flush();
    }
  }

  void finish() {
    if (!current_.empty()) {
      batch_.push_back(std::move(current_));
      current_.clear();
    }
    flush();
  }

 private:
  void flush() {
    if (batch_.empty()) return;
    exec::parallel_map(batch_.size(), threads_, [&](std::size_t i) {
      fn_(next_chunk_index_ + i, batch_[i]);
      return 0;
    });
    next_chunk_index_ += batch_.size();
    batch_.clear();
  }

  std::size_t chunk_size_;
  int threads_;
  ChunkFn fn_;
  std::size_t batch_limit_;
  std::size_t next_chunk_index_ = 0;
  std::vector<T> current_;
  std::vector<std::vector<T>> batch_;
};

}  // namespace

ChromiumResult ChromiumCounter::process(const ReplayFn& replay) const {
  ChromiumResult result;
  // The effective threshold in the sampled domain: a name with the
  // full-trace threshold count is expected to appear threshold×rate times
  // after sampling. Keep at least 2 so single occurrences (the Chromium
  // common case) always survive.
  const std::uint32_t threshold = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(std::lround(
             options_.daily_collision_threshold * options_.sample_rate)));

  // Pass 1: per-(name, day) frequency sketch over signature matches only.
  // The producer extracts keys serially; shards scatter them into the
  // shared sketch with atomic (commutative) increments.
  CountMinSketch sketch(options_.sketch_width, options_.sketch_depth,
                        options_.seed);
  {
    obs::StageSpan span("chromium.pass1_sketch");
    ChunkedScatter<std::uint64_t> scatter(
        options_.chunk_records, options_.threads,
        [&](std::size_t, const std::vector<std::uint64_t>& keys) {
          for (std::uint64_t key : keys) sketch.add(key);
        });
    replay([&](const roots::TraceRecord& rec) {
      if (matches_chromium_signature(rec.qname)) {
        scatter.push(name_day_key(rec));
      }
    });
    scatter.finish();
  }

  // Pass 2: attribute surviving matches to their resolver source address.
  // Per-shard partials are integer counts merged in chunk order, then
  // scaled once — byte-identical totals for any thread count.
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  std::uint64_t rejected = 0;
  {
    obs::StageSpan span("chromium.pass2_attribute");
    struct Match {
      std::uint64_t key;
      std::uint32_t source;
    };
    std::mutex merge_mu;
    ChunkedScatter<Match> scatter(
        options_.chunk_records, options_.threads,
        [&](std::size_t, const std::vector<Match>& matches) {
          std::unordered_map<std::uint32_t, std::uint64_t> local;
          std::uint64_t local_rejected = 0;
          for (const Match& m : matches) {
            if (sketch.estimate(m.key) >= threshold) {
              ++local_rejected;
            } else {
              ++local[m.source];
            }
          }
          // Integer sums are order-independent, so merging under a plain
          // lock (rather than in chunk order) is still deterministic.
          std::lock_guard<std::mutex> lock(merge_mu);
          rejected += local_rejected;
          for (const auto& [source, count] : local) counts[source] += count;
        });
    replay([&](const roots::TraceRecord& rec) {
      ++result.records_scanned;
      if (!matches_chromium_signature(rec.qname)) return;
      ++result.signature_matches;
      scatter.push(Match{name_day_key(rec), rec.source.value()});
    });
    scatter.finish();
  }
  result.rejected_collisions = rejected;
  const double scale = 1.0 / options_.sample_rate;
  for (const auto& [source, count] : counts) {
    result.probes_by_resolver[source] = static_cast<double>(count) * scale;
  }
  // Scan telemetry from the merged (already deterministic) totals.
  obs::Registry& registry = obs::Registry::global();
  registry.counter("chromium.records_scanned").add(result.records_scanned);
  registry.counter("chromium.signature_matches")
      .add(result.signature_matches);
  registry.counter("chromium.sketch.rejected_collisions")
      .add(result.rejected_collisions);
  registry.gauge("chromium.resolvers")
      .set(static_cast<double>(result.probes_by_resolver.size()));
  return result;
}

ChromiumResult ChromiumCounter::process(
    const std::vector<roots::TraceRecord>& trace) const {
  return process([&](const std::function<void(const roots::TraceRecord&)>&
                         emit) {
    for (const auto& rec : trace) emit(rec);
  });
}

std::optional<ChromiumResult> ChromiumCounter::process_file(
    const std::string& path) const {
  std::vector<roots::TraceRecord> trace;
  roots::TraceFile::ReadStats stats;
  if (!roots::TraceFile::read_tolerant(path, &trace, &stats)) {
    return std::nullopt;
  }
  ChromiumResult result = process(trace);
  result.records_skipped = stats.records_skipped;
  if (stats.records_skipped > 0) {
    obs::Registry::global()
        .counter("chromium.trace.records_skipped")
        .add(stats.records_skipped);
  }
  return result;
}

PrefixDataset ChromiumResult::to_prefix_dataset(std::string name) const {
  PrefixDataset out(std::move(name));
  for (const auto& [addr, count] : probes_by_resolver) {
    out.add(addr >> 8, count);
  }
  return out;
}

CollisionStudy study_collisions(double daily_queries, std::uint32_t threshold,
                                std::uint64_t monte_carlo_names,
                                std::uint64_t seed) {
  CollisionStudy study;
  // Chromium picks a length uniformly in [7, 15], then letters uniformly:
  // a specific name of length L collides with Poisson(rate) other probes
  // where rate = (daily_queries / 9) / 26^L.
  double expected = 0;
  double p_below = 0;
  for (int len = 7; len <= 15; ++len) {
    const double space = std::pow(26.0, len);
    const double rate = daily_queries / 9.0 / space;
    expected += rate / 9.0;
    // This probe's own occurrence plus Poisson(rate) others; below the
    // threshold means total < threshold.
    double p = 0;
    double term = std::exp(-rate);
    for (std::uint32_t k = 0; k + 1 < threshold; ++k) {
      p += term;
      term *= rate / (k + 1);
    }
    p_below += p / 9.0;
  }
  study.expected_per_name = expected;
  study.p_name_below_threshold = p_below;

  net::Rng rng(seed);
  std::uint64_t below = 0;
  for (std::uint64_t i = 0; i < monte_carlo_names; ++i) {
    const int len = 7 + static_cast<int>(rng.below(9));
    const double rate = daily_queries / 9.0 / std::pow(26.0, len);
    const std::uint64_t occurrences = 1 + rng.poisson(rate);
    if (occurrences < threshold) ++below;
  }
  study.observed_p_below =
      monte_carlo_names == 0
          ? 0
          : static_cast<double>(below) /
                static_cast<double>(monte_carlo_names);
  return study;
}

}  // namespace netclients::core
