#pragma once

#include <cstdint>
#include <vector>

#include "net/rng.h"

namespace netclients::core {

/// Open-addressing (linear-probe) u32 -> u64 count table for per-shard
/// scan partials. The streaming DITL scan increments one counter per
/// surviving signature match; std::unordered_map's node-per-key heap
/// churn dominates that loop, so shards accumulate into this flat table
/// instead: power-of-two slot array, no per-insert allocation (one
/// doubling rehash amortized), keys hashed through the library's stable
/// mixer. Iteration order is slot order — not deterministic across
/// capacities — so callers fold shard tables into an ordered or
/// commutative merge (integer sums), exactly like the other per-shard
/// partials.
class ScanCountTable {
 public:
  explicit ScanCountTable(std::size_t expected = 0) {
    std::size_t capacity = 16;
    while (capacity * 7 < expected * 10) capacity <<= 1;
    slots_.resize(capacity);
  }

  void add(std::uint32_t key, std::uint64_t n = 1) {
    if ((size_ + 1) * 10 > slots_.size() * 7) grow();
    Slot& slot = find(key);
    if (slot.key_plus1 == 0) {
      slot.key_plus1 = std::uint64_t{key} + 1;
      ++size_;
    }
    slot.count += n;
  }

  /// Distinct keys stored.
  std::size_t size() const { return size_; }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key_plus1 != 0) {
        fn(static_cast<std::uint32_t>(slot.key_plus1 - 1), slot.count);
      }
    }
  }

 private:
  struct Slot {
    std::uint64_t key_plus1 = 0;  // 0 = empty (0 is a valid key)
    std::uint64_t count = 0;
  };

  Slot& find(std::uint32_t key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(net::mix64(key)) & mask;
    const std::uint64_t want = std::uint64_t{key} + 1;
    while (slots_[i].key_plus1 != 0 && slots_[i].key_plus1 != want) {
      i = (i + 1) & mask;
    }
    return slots_[i];
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (const Slot& slot : old) {
      if (slot.key_plus1 != 0) {
        Slot& dest = find(static_cast<std::uint32_t>(slot.key_plus1 - 1));
        dest.key_plus1 = slot.key_plus1;
        dest.count = slot.count;
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace netclients::core
