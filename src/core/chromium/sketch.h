#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "net/rng.h"

namespace netclients::core {

/// Count-min sketch over 64-bit keys: a fixed-memory frequency estimator
/// with one-sided (over-estimating) error.
///
/// The Chromium pipeline must know, for every signature-shaped name, how
/// often it was queried that day across all roots — on real DITL volumes
/// (tens of billions of queries, nearly all with unique names) an exact
/// name→count map does not fit in memory. The sketch bounds memory at
/// width × depth counters while keeping the collision filter conservative:
/// over-estimates can only cause a name to be *rejected* as a collision,
/// never accepted.
class CountMinSketch {
 public:
  CountMinSketch(std::size_t width, int depth, std::uint64_t seed)
      : width_(width),
        rows_(static_cast<std::size_t>(depth)),
        // Power-of-two widths (the default) reduce the per-row slot to a
        // mask; the 64-bit divide otherwise rivals the cache miss itself
        // on the scan's hot path. mask_ = 0 selects the modulo fallback.
        mask_((width & (width - 1)) == 0 ? width - 1 : 0) {
    counters_.assign(width_ * rows_, 0);
    seeds_.reserve(rows_);
    net::Rng rng(seed);
    for (std::size_t r = 0; r < rows_; ++r) seeds_.push_back(rng());
  }

  /// Safe to call concurrently: cell increments are atomic, and integer
  /// addition is commutative, so the final sketch is identical for any
  /// thread count or interleaving. (Estimates read during a concurrent add
  /// phase would be racy — the pipeline separates its passes.)
  void add(std::uint64_t key, std::uint32_t count = 1) {
    for (std::size_t r = 0; r < rows_; ++r) {
      std::atomic_ref<std::uint32_t>(counters_[slot(r, key)])
          .fetch_add(count, std::memory_order_relaxed);
    }
  }

  /// Hints `key`'s cells toward cache ahead of an add/estimate. The
  /// depth row accesses are independent DRAM misses; a scan that batches
  /// keys and prefetches a window ahead overlaps them instead of paying
  /// them serially per key. Pure hint: no observable effect on counts.
  void prefetch(std::uint64_t key) const {
#if defined(__GNUC__) || defined(__clang__)
    for (std::size_t r = 0; r < rows_; ++r) {
      __builtin_prefetch(&counters_[slot(r, key)], 1, 1);
    }
#else
    (void)key;
#endif
  }

  /// Serial-phase add: plain increments, no atomic RMW (each locked add
  /// is a full fence on x86, and the fences dominate a scatter loop).
  /// Only for callers that know no other thread touches the sketch —
  /// e.g. a scan shard loop running inline at parallelism 1. The cell
  /// values are identical to add()'s.
  void add_serial(std::uint64_t key, std::uint32_t count = 1) {
    for (std::size_t r = 0; r < rows_; ++r) counters_[slot(r, key)] += count;
  }

  /// Upper bound on the true count of `key`.
  std::uint32_t estimate(std::uint64_t key) const {
    std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t r = 0; r < rows_; ++r) {
      best = std::min(best, counters_[slot(r, key)]);
    }
    return best;
  }

  /// Exactly `estimate(key) < threshold`, with an early exit: the min
  /// over rows is below the threshold as soon as any row is, and in an
  /// under-loaded sketch most non-colliding keys decide on the first row
  /// — one cache miss instead of depth.
  bool below(std::uint64_t key, std::uint32_t threshold) const {
    for (std::size_t r = 0; r < rows_; ++r) {
      if (counters_[slot(r, key)] < threshold) return true;
    }
    return false;
  }

  void clear() { std::fill(counters_.begin(), counters_.end(), 0u); }

  std::size_t memory_bytes() const {
    return counters_.size() * sizeof(std::uint32_t);
  }

 private:
  std::size_t slot(std::size_t row, std::uint64_t key) const {
    const std::uint64_t h = net::hash_combine(seeds_[row], key);
    return row * width_ +
           static_cast<std::size_t>(mask_ ? (h & mask_) : (h % width_));
  }

  std::size_t width_;
  std::size_t rows_;
  std::uint64_t mask_;
  std::vector<std::uint32_t> counters_;
  std::vector<std::uint64_t> seeds_;
};

}  // namespace netclients::core
