#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "net/rng.h"

namespace netclients::core {

/// Count-min sketch over 64-bit keys: a fixed-memory frequency estimator
/// with one-sided (over-estimating) error.
///
/// The Chromium pipeline must know, for every signature-shaped name, how
/// often it was queried that day across all roots — on real DITL volumes
/// (tens of billions of queries, nearly all with unique names) an exact
/// name→count map does not fit in memory. The sketch bounds memory at
/// width × depth counters while keeping the collision filter conservative:
/// over-estimates can only cause a name to be *rejected* as a collision,
/// never accepted.
class CountMinSketch {
 public:
  CountMinSketch(std::size_t width, int depth, std::uint64_t seed)
      : width_(width), rows_(static_cast<std::size_t>(depth)) {
    counters_.assign(width_ * rows_, 0);
    seeds_.reserve(rows_);
    net::Rng rng(seed);
    for (std::size_t r = 0; r < rows_; ++r) seeds_.push_back(rng());
  }

  /// Safe to call concurrently: cell increments are atomic, and integer
  /// addition is commutative, so the final sketch is identical for any
  /// thread count or interleaving. (Estimates read during a concurrent add
  /// phase would be racy — the pipeline separates its passes.)
  void add(std::uint64_t key, std::uint32_t count = 1) {
    for (std::size_t r = 0; r < rows_; ++r) {
      std::atomic_ref<std::uint32_t>(counters_[slot(r, key)])
          .fetch_add(count, std::memory_order_relaxed);
    }
  }

  /// Upper bound on the true count of `key`.
  std::uint32_t estimate(std::uint64_t key) const {
    std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t r = 0; r < rows_; ++r) {
      best = std::min(best, counters_[slot(r, key)]);
    }
    return best;
  }

  void clear() { std::fill(counters_.begin(), counters_.end(), 0u); }

  std::size_t memory_bytes() const {
    return counters_.size() * sizeof(std::uint32_t);
  }

 private:
  std::size_t slot(std::size_t row, std::uint64_t key) const {
    return row * width_ +
           static_cast<std::size_t>(net::hash_combine(seeds_[row], key) %
                                    width_);
  }

  std::size_t width_;
  std::size_t rows_;
  std::vector<std::uint32_t> counters_;
  std::vector<std::uint64_t> seeds_;
};

}  // namespace netclients::core
