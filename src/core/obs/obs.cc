#include "core/obs/obs.h"

#include <algorithm>
#include <cassert>

namespace netclients::obs {

// ------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.assign(bounds_.size() + 1, 0);
}

std::size_t Histogram::bucket_index(double value) const {
  // First bucket whose inclusive upper edge admits the value; everything
  // above the last edge lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[bucket_index(value)];
  ++count_;
  sum_ += value;
}

std::vector<std::uint64_t> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
}

void Histogram::merge_delta(const std::vector<std::uint64_t>& buckets,
                            std::uint64_t count, double sum) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += buckets[i];
  count_ += count;
  sum_ += sum;
}

// --------------------------------------------------------------- Registry

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void Registry::record_span(std::string_view name, double elapsed_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(name);
  if (it == spans_.end()) {
    it = spans_.emplace(std::string(name), SpanStats{}).first;
  }
  ++it->second.count;
  it->second.total_ms += elapsed_ms;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.buckets = histogram->buckets();
    h.count = histogram->count();
    h.sum = histogram->sum();
    snap.histograms.push_back(std::move(h));
  }
  snap.spans.reserve(spans_.size());
  for (const auto& [name, stats] : spans_) {
    snap.spans.push_back(SpanSnapshot{name, stats.count, stats.total_ms});
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
  for (auto& [name, stats] : spans_) stats = SpanStats{};
}

// ------------------------------------------------------------- ShardDelta

void ShardDelta::add(Counter& counter, std::uint64_t n) {
  for (auto& [c, delta] : counters_) {
    if (c == &counter) {
      delta += n;
      return;
    }
  }
  counters_.emplace_back(&counter, n);
}

void ShardDelta::observe(Histogram& histogram, double value) {
  HistogramDelta* delta = nullptr;
  for (auto& h : histograms_) {
    if (h.histogram == &histogram) {
      delta = &h;
      break;
    }
  }
  if (!delta) {
    histograms_.push_back(HistogramDelta{});
    delta = &histograms_.back();
    delta->histogram = &histogram;
    delta->buckets.assign(histogram.bounds().size() + 1, 0);
  }
  ++delta->buckets[histogram.bucket_index(value)];
  ++delta->count;
  delta->sum += value;
}

void ShardDelta::merge() {
  for (const auto& [counter, delta] : counters_) counter->add(delta);
  for (const auto& h : histograms_) {
    h.histogram->merge_delta(h.buckets, h.count, h.sum);
  }
  counters_.clear();
  histograms_.clear();
}

// -------------------------------------------------------------- StageSpan

namespace {
SpanLogger& span_logger() {
  static SpanLogger logger;
  return logger;
}
}  // namespace

void set_span_logger(SpanLogger logger) { span_logger() = std::move(logger); }

StageSpan::StageSpan(std::string_view name, Registry& registry)
    : name_(name),
      registry_(&registry),
      start_(std::chrono::steady_clock::now()) {
  if (span_logger().on_begin) span_logger().on_begin(name_);
}

double StageSpan::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

StageSpan::~StageSpan() {
  const double ms = elapsed_ms();
  registry_->record_span(name_, ms);
  if (span_logger().on_end) span_logger().on_end(name_, ms);
}

}  // namespace netclients::obs
