#include "core/obs/export.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <variant>
#include <vector>

namespace netclients::obs {

namespace {

// Shortest decimal representation that round-trips through strtod —
// deterministic for a given double, so identical snapshots serialise to
// identical bytes.
std::string fmt_double(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string fmt_u64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string to_json(const Snapshot& snapshot, const ExportOptions& options) {
  std::string out;
  out += "{\n  \"schema\": \"netclients.metrics.v1\",\n";

  out += "  \"counters\": [";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": ";
    append_json_string(out, snapshot.counters[i].first);
    out += ", \"value\": " + fmt_u64(snapshot.counters[i].second) + "}";
  }
  out += snapshot.counters.empty() ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": ";
    append_json_string(out, snapshot.gauges[i].first);
    out += ", \"value\": " + fmt_double(snapshot.gauges[i].second) + "}";
  }
  out += snapshot.gauges.empty() ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": ";
    append_json_string(out, h.name);
    out += ", \"count\": " + fmt_u64(h.count);
    out += ", \"sum\": " + fmt_double(h.sum);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b) out += ", ";
      out += "{\"le\": ";
      out += b < h.bounds.size() ? fmt_double(h.bounds[b]) : "\"+inf\"";
      out += ", \"count\": " + fmt_u64(h.buckets[b]) + "}";
    }
    out += "]}";
  }
  out += snapshot.histograms.empty() ? "],\n" : "\n  ],\n";

  out += "  \"spans\": [";
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    const SpanSnapshot& s = snapshot.spans[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": ";
    append_json_string(out, s.name);
    out += ", \"count\": " + fmt_u64(s.count);
    if (options.include_timings) {
      out += ", \"total_ms\": " + fmt_double(s.total_ms);
    }
    out += "}";
  }
  out += snapshot.spans.empty() ? "]\n" : "\n  ]\n";

  out += "}\n";
  return out;
}

std::string to_csv(const Snapshot& snapshot, const ExportOptions& options) {
  // Flat rows: kind,name,field,value. Histogram buckets get one row per
  // bucket with the inclusive upper edge in `field` ("le=...").
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, value] : snapshot.counters) {
    out += "counter," + name + ",value," + fmt_u64(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += "gauge," + name + ",value," + fmt_double(value) + "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    out += "histogram," + h.name + ",count," + fmt_u64(h.count) + "\n";
    out += "histogram," + h.name + ",sum," + fmt_double(h.sum) + "\n";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      const std::string le =
          b < h.bounds.size() ? fmt_double(h.bounds[b]) : "+inf";
      out += "histogram," + h.name + ",le=" + le + "," +
             fmt_u64(h.buckets[b]) + "\n";
    }
  }
  for (const SpanSnapshot& s : snapshot.spans) {
    out += "span," + s.name + ",count," + fmt_u64(s.count) + "\n";
    if (options.include_timings) {
      out += "span," + s.name + ",total_ms," + fmt_double(s.total_ms) + "\n";
    }
  }
  return out;
}

// ------------------------------------------------------------ JSON parser
//
// Minimal recursive-descent parser for the exporter's own output (plus
// whitespace/field-order tolerance): objects, arrays, strings, numbers.
// Numbers keep their source text so 64-bit counters survive exactly.

namespace {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::monostate, std::string, JsonObject, JsonArray> value;
  std::string number;  // set instead of `value` for numeric literals

  bool is_string() const {
    return std::holds_alternative<std::string>(value);
  }
  bool is_number() const { return !number.empty(); }
  const std::string& str() const { return std::get<std::string>(value); }
  const JsonObject* object() const {
    return std::get_if<JsonObject>(&value);
  }
  const JsonArray* array() const { return std::get_if<JsonArray>(&value); }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse() {
    auto value = parse_value();
    skip_ws();
    if (!value || pos_ != text_.size()) return std::nullopt;
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc;
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) return std::nullopt;
    ++pos_;  // closing quote
    return out;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      JsonValue v;
      v.value = std::move(*s);
      return v;
    }
    if (c == '{') {
      ++pos_;
      JsonObject obj;
      skip_ws();
      if (consume('}')) {
        JsonValue v;
        v.value = std::move(obj);
        return v;
      }
      while (true) {
        auto key = parse_string();
        if (!key || !consume(':')) return std::nullopt;
        auto value = parse_value();
        if (!value) return std::nullopt;
        obj.emplace(std::move(*key), std::move(*value));
        if (consume(',')) continue;
        if (consume('}')) break;
        return std::nullopt;
      }
      JsonValue v;
      v.value = std::move(obj);
      return v;
    }
    if (c == '[') {
      ++pos_;
      JsonArray array;
      skip_ws();
      if (consume(']')) {
        JsonValue v;
        v.value = std::move(array);
        return v;
      }
      while (true) {
        auto value = parse_value();
        if (!value) return std::nullopt;
        array.push_back(std::move(*value));
        if (consume(',')) continue;
        if (consume(']')) break;
        return std::nullopt;
      }
      JsonValue v;
      v.value = std::move(array);
      return v;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              std::strchr("+-.eE", text_[pos_]))) {
        ++pos_;
      }
      JsonValue v;
      v.number = text_.substr(start, pos_ - start);
      return v;
    }
    return std::nullopt;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::optional<std::uint64_t> as_u64(const JsonValue& v) {
  if (!v.is_number()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const std::uint64_t out = std::strtoull(v.number.c_str(), &end, 10);
  if (errno != 0 || end != v.number.c_str() + v.number.size()) {
    return std::nullopt;
  }
  return out;
}

std::optional<double> as_double(const JsonValue& v) {
  if (!v.is_number()) return std::nullopt;
  char* end = nullptr;
  const double out = std::strtod(v.number.c_str(), &end);
  if (end != v.number.c_str() + v.number.size()) return std::nullopt;
  return out;
}

/// Interprets a parsed document as a Snapshot; returns the first problem
/// found, or an empty string and fills `out`.
std::string interpret(const JsonValue& root, Snapshot* out) {
  const JsonObject* doc = root.object();
  if (!doc) return "top level is not an object";

  const auto schema = doc->find("schema");
  if (schema == doc->end() || !schema->second.is_string()) {
    return "missing \"schema\" string";
  }
  if (schema->second.str() != "netclients.metrics.v1") {
    return "unknown schema version \"" + schema->second.str() + "\"";
  }

  const auto section = [&](const char* name) -> const JsonArray* {
    const auto it = doc->find(name);
    return it == doc->end() ? nullptr : it->second.array();
  };

  const JsonArray* counters = section("counters");
  if (!counters) return "missing \"counters\" array";
  for (const JsonValue& entry : *counters) {
    const JsonObject* obj = entry.object();
    if (!obj) return "counter entry is not an object";
    const auto name = obj->find("name");
    const auto value = obj->find("value");
    if (name == obj->end() || !name->second.is_string() ||
        name->second.str().empty()) {
      return "counter without a name";
    }
    if (value == obj->end() || !as_u64(value->second)) {
      return "counter \"" + name->second.str() + "\" has no integer value";
    }
    out->counters.emplace_back(name->second.str(), *as_u64(value->second));
  }

  const JsonArray* gauges = section("gauges");
  if (!gauges) return "missing \"gauges\" array";
  for (const JsonValue& entry : *gauges) {
    const JsonObject* obj = entry.object();
    if (!obj) return "gauge entry is not an object";
    const auto name = obj->find("name");
    const auto value = obj->find("value");
    if (name == obj->end() || !name->second.is_string() ||
        name->second.str().empty()) {
      return "gauge without a name";
    }
    if (value == obj->end() || !as_double(value->second)) {
      return "gauge \"" + name->second.str() + "\" has no numeric value";
    }
    out->gauges.emplace_back(name->second.str(), *as_double(value->second));
  }

  const JsonArray* histograms = section("histograms");
  if (!histograms) return "missing \"histograms\" array";
  for (const JsonValue& entry : *histograms) {
    const JsonObject* obj = entry.object();
    if (!obj) return "histogram entry is not an object";
    HistogramSnapshot h;
    const auto name = obj->find("name");
    if (name == obj->end() || !name->second.is_string() ||
        name->second.str().empty()) {
      return "histogram without a name";
    }
    h.name = name->second.str();
    const auto count = obj->find("count");
    const auto sum = obj->find("sum");
    const auto buckets = obj->find("buckets");
    if (count == obj->end() || !as_u64(count->second)) {
      return "histogram \"" + h.name + "\" has no integer count";
    }
    if (sum == obj->end() || !as_double(sum->second)) {
      return "histogram \"" + h.name + "\" has no numeric sum";
    }
    if (buckets == obj->end() || !buckets->second.array()) {
      return "histogram \"" + h.name + "\" has no buckets array";
    }
    h.count = *as_u64(count->second);
    h.sum = *as_double(sum->second);
    const JsonArray& bucket_array = *buckets->second.array();
    if (bucket_array.empty()) {
      return "histogram \"" + h.name + "\" has no buckets";
    }
    std::uint64_t bucket_total = 0;
    for (std::size_t b = 0; b < bucket_array.size(); ++b) {
      const JsonObject* bucket = bucket_array[b].object();
      if (!bucket) return "histogram \"" + h.name + "\" bucket not an object";
      const auto le = bucket->find("le");
      const auto bcount = bucket->find("count");
      if (le == bucket->end() || bcount == bucket->end() ||
          !as_u64(bcount->second)) {
        return "histogram \"" + h.name + "\" has a malformed bucket";
      }
      const bool is_last = b + 1 == bucket_array.size();
      if (is_last) {
        if (!le->second.is_string() || le->second.str() != "+inf") {
          return "histogram \"" + h.name + "\" last bucket le != \"+inf\"";
        }
      } else {
        const auto edge = as_double(le->second);
        if (!edge) {
          return "histogram \"" + h.name + "\" bucket le is not numeric";
        }
        if (!h.bounds.empty() && *edge <= h.bounds.back()) {
          return "histogram \"" + h.name + "\" bucket edges not increasing";
        }
        h.bounds.push_back(*edge);
      }
      h.buckets.push_back(*as_u64(bcount->second));
      bucket_total += h.buckets.back();
    }
    if (bucket_total != h.count) {
      return "histogram \"" + h.name + "\" bucket counts do not sum to count";
    }
    out->histograms.push_back(std::move(h));
  }

  const JsonArray* spans = section("spans");
  if (!spans) return "missing \"spans\" array";
  for (const JsonValue& entry : *spans) {
    const JsonObject* obj = entry.object();
    if (!obj) return "span entry is not an object";
    SpanSnapshot s;
    const auto name = obj->find("name");
    const auto count = obj->find("count");
    if (name == obj->end() || !name->second.is_string() ||
        name->second.str().empty()) {
      return "span without a name";
    }
    if (count == obj->end() || !as_u64(count->second)) {
      return "span \"" + name->second.str() + "\" has no integer count";
    }
    s.name = name->second.str();
    s.count = *as_u64(count->second);
    const auto total = obj->find("total_ms");
    if (total != obj->end()) {
      const auto ms = as_double(total->second);
      if (!ms) return "span \"" + s.name + "\" total_ms is not numeric";
      s.total_ms = *ms;
    }
    out->spans.push_back(std::move(s));
  }

  return "";
}

}  // namespace

std::optional<Snapshot> parse_json(const std::string& text) {
  Parser parser(text);
  const auto root = parser.parse();
  if (!root) return std::nullopt;
  Snapshot snapshot;
  if (!interpret(*root, &snapshot).empty()) return std::nullopt;
  return snapshot;
}

std::string validate_metrics_json(const std::string& text) {
  Parser parser(text);
  const auto root = parser.parse();
  if (!root) return "not valid JSON";
  Snapshot snapshot;
  return interpret(*root, &snapshot);
}

bool write_metrics(const std::string& path, const ExportOptions& options,
                   Registry& registry) {
  const Snapshot snapshot = registry.snapshot();
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  const std::string body =
      csv ? to_csv(snapshot, options) : to_json(snapshot, options);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "[obs] cannot write metrics to %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
  }
  return ok;
}

MetricsOutGuard::MetricsOutGuard(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--metrics-out" && i + 1 < *argc) {
      path_ = argv[++i];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      path_ = std::string(arg.substr(std::strlen("--metrics-out=")));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
  if (path_.empty()) {
    if (const char* env = std::getenv("REPRO_METRICS_OUT")) path_ = env;
  }
}

MetricsOutGuard::~MetricsOutGuard() {
  if (!path_.empty()) write_metrics(path_);
}

}  // namespace netclients::obs
