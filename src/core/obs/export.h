#pragma once

// Snapshot exporters for the metrics registry: JSON (the stable
// machine-readable schema CI's bench-smoke job checks) and CSV (flat rows
// for spreadsheet-side diffing), plus a parser/validator for the JSON
// schema and the `--metrics-out <path>` plumbing benches and examples
// share.
//
// JSON schema (`netclients.metrics.v1`):
//
//   {
//     "schema": "netclients.metrics.v1",
//     "counters":   [{"name": "...", "value": 123}, ...],
//     "gauges":     [{"name": "...", "value": 1.5}, ...],
//     "histograms": [{"name": "...", "count": 7, "sum": 12.5,
//                     "buckets": [{"le": 1, "count": 2}, ...,
//                                 {"le": "+inf", "count": 1}]}, ...],
//     "spans":      [{"name": "...", "count": 2, "total_ms": 31.5}, ...]
//   }
//
// Sections are always present (possibly empty) and sorted by metric name;
// every numeric field is emitted with shortest-round-trip formatting, so
// identical snapshots serialise to identical bytes. With
// `include_timings = false` the span objects carry name and count only —
// the deterministic subset compared across REPRO_THREADS values.

#include <optional>
#include <string>

#include "core/obs/obs.h"

namespace netclients::obs {

struct ExportOptions {
  /// When false, span wall-clock totals (the one nondeterministic field)
  /// are omitted — the export is then byte-identical for a fixed seed at
  /// any thread count.
  bool include_timings = true;
};

std::string to_json(const Snapshot& snapshot, const ExportOptions& = {});
std::string to_csv(const Snapshot& snapshot, const ExportOptions& = {});

/// Parses text produced by `to_json` back into a Snapshot (round-trip:
/// parse(to_json(s)) == s when timings are included). Returns nullopt on
/// malformed input or schema mismatch.
std::optional<Snapshot> parse_json(const std::string& text);

/// Schema check: parses and structurally validates (version string,
/// required sections, per-histogram bucket/count consistency). Returns an
/// empty string on success, else a description of the first problem.
std::string validate_metrics_json(const std::string& text);

/// Writes the registry snapshot to `path` — CSV when the path ends in
/// ".csv", JSON otherwise. Returns false (after printing to stderr) when
/// the file cannot be written.
bool write_metrics(const std::string& path, const ExportOptions& = {},
                   Registry& registry = Registry::global());

/// Shared CLI plumbing: strips `--metrics-out <path>` (or
/// `--metrics-out=<path>`) from argv so positional arguments keep their
/// places, falls back to the REPRO_METRICS_OUT env var, and writes the
/// global registry on scope exit. Benches and examples put one of these at
/// the top of main().
class MetricsOutGuard {
 public:
  /// Consumes recognised flags from (argc, argv).
  MetricsOutGuard(int* argc, char** argv);
  explicit MetricsOutGuard(std::string path) : path_(std::move(path)) {}
  ~MetricsOutGuard();
  MetricsOutGuard(const MetricsOutGuard&) = delete;
  MetricsOutGuard& operator=(const MetricsOutGuard&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace netclients::obs
