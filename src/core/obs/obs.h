#pragma once

// Process-wide observability layer for the measurement pipelines: monotonic
// counters, gauges, fixed-bucket histograms, and scoped stage spans, plus a
// deterministic snapshot the exporters (export.h) serialise.
//
// Determinism contract (mirrors the RNG-stream discipline in
// src/core/exec): exported totals are byte-identical at any REPRO_THREADS.
// The rules that make that hold:
//
//  * Counters are unsigned-integer atomics. Integer addition is
//    commutative, so concurrent increments from any interleaving of shards
//    sum to the same total — counters may be bumped directly from inside a
//    shard.
//  * Histograms accumulate a double `sum`, and double addition is NOT
//    commutative in the last bits — so shards never observe into a shared
//    histogram directly. Each shard records into its own ShardDelta and
//    the caller merges the deltas *in shard order*, replaying exactly the
//    sequence a serial run produces.
//  * Span wall-clock durations are inherently nondeterministic; the
//    exporter's deterministic mode (ExportOptions::include_timings =
//    false) emits span names and invocation counts only.
//
// Metric naming scheme: dotted lower_snake paths,
// `<subsystem>.<object>.<event>` — e.g. `googledns.probe.cache_hit`,
// `cacheprobe.calibration.hit_distance_km`, `dnssrv.ratelimiter.dropped`.
// Units ride in the final segment (`_km`, `_ms`, `_seconds`) when the
// value isn't a plain count.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace netclients::obs {

/// Monotonic counter. Relaxed atomic increments: safe (and deterministic
/// in total) from concurrent shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar. Set from single-threaded contexts (stage
/// epilogues, merge loops); reads are always safe.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges (`le`); one
/// implicit overflow bucket catches everything above the last edge.
/// `observe` is internally locked but its double `sum` makes concurrent
/// observation nondeterministic — shards must go through ShardDelta.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  std::size_t bucket_index(double value) const;
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> buckets() const;
  std::uint64_t count() const;
  double sum() const;
  void reset();

 private:
  friend class ShardDelta;
  void merge_delta(const std::vector<std::uint64_t>& buckets,
                   std::uint64_t count, double sum);

  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1, overflow last
  std::uint64_t count = 0;
  double sum = 0;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

struct SpanSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0;

  friend bool operator==(const SpanSnapshot&, const SpanSnapshot&) = default;
};

/// A point-in-time copy of every registered metric, sorted by name (the
/// registry stores metrics in ordered maps, so snapshot order — and
/// therefore export order — never depends on registration order).
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<SpanSnapshot> spans;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Metric registry. `global()` is the process-wide instance every pipeline
/// records into; tests may build private registries. Metric objects live
/// for the registry's lifetime — cache the returned references (typically
/// in function-local statics) instead of re-looking-up on hot paths.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` are inclusive upper edges and must be strictly increasing;
  /// re-registration with the same name returns the existing histogram
  /// (the original bounds win).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Accumulates one stage-span invocation (StageSpan calls this).
  void record_span(std::string_view name, double elapsed_ms);

  Snapshot snapshot() const;

  /// Zeroes every metric's value. Registered metric objects stay alive
  /// (references remain valid); only their values reset. For tests and
  /// benches that isolate per-run exports.
  void reset();

 private:
  struct SpanStats {
    std::uint64_t count = 0;
    double total_ms = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, SpanStats, std::less<>> spans_;
};

/// Thread-local (shard-confined) metric delta buffer. A shard records into
/// its own delta and returns it with the shard's result; the caller calls
/// `merge()` on each delta *in shard order*, which replays double
/// accumulation in the exact sequence a serial run produces.
class ShardDelta {
 public:
  void add(Counter& counter, std::uint64_t n = 1);
  void observe(Histogram& histogram, double value);

  /// Applies the buffered deltas to their metrics and clears the buffer.
  /// Call in shard order.
  void merge();

  bool empty() const { return counters_.empty() && histograms_.empty(); }

 private:
  struct HistogramDelta {
    Histogram* histogram = nullptr;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0;
  };

  std::vector<std::pair<Counter*, std::uint64_t>> counters_;
  std::vector<HistogramDelta> histograms_;
};

/// Sink for live span begin/end narration (the bench harness points this
/// at stderr). Nullable; spans always record into the registry regardless.
struct SpanLogger {
  std::function<void(std::string_view name)> on_begin;
  std::function<void(std::string_view name, double elapsed_ms)> on_end;
};

/// Installs the process-wide span logger (pass {} to silence). Not
/// thread-safe against concurrently running spans — install once at
/// startup.
void set_span_logger(SpanLogger logger);

/// RAII stage span: times its scope on the steady clock and records
/// (count, total_ms) under `name` in the registry on destruction — the one
/// source of truth for per-stage timing.
class StageSpan {
 public:
  explicit StageSpan(std::string_view name,
                     Registry& registry = Registry::global());
  ~StageSpan();
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  /// Milliseconds elapsed so far.
  double elapsed_ms() const;

 private:
  std::string name_;
  Registry* registry_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace netclients::obs
