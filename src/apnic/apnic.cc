#include "apnic/apnic.h"

#include <cmath>

#include "net/rng.h"

namespace netclients::apnic {

ApnicEstimate estimate_population(const sim::World& world,
                                  const ApnicOptions& options) {
  ApnicEstimate est;
  net::Rng rng(net::stable_seed(options.seed, 0x0A9Cu));

  // Expected impressions per AS: ad views sample the active user
  // population (bots filtered to near-zero).
  double total_impressions = 0;
  std::unordered_map<std::uint32_t, double> impressions;
  for (const sim::AsEntry& as : world.ases()) {
    const double visible_users =
        as.users + as.bot_users * options.bot_visibility;
    if (visible_users <= 0) continue;
    const double expected = visible_users * options.impressions_per_user;
    const double sampled =
        expected < 50 ? static_cast<double>(rng.poisson(expected))
                      : expected * rng.uniform(0.85, 1.15);
    if (sampled <= 0) continue;
    impressions.emplace(as.asn, sampled);
    total_impressions += sampled;
  }
  if (total_impressions <= 0) return est;

  // APNIC scales shares against an external world-population figure; we
  // give that figure the same kind of uncertainty.
  est.world_population = world.total_users() * rng.uniform(0.93, 1.07);
  for (const auto& [asn, n] : impressions) {
    if (n < options.min_impressions) continue;  // publication threshold
    const double share = n / total_impressions;
    const double noisy =
        share * est.world_population *
        std::exp(rng.normal(0.0, options.estimate_noise_sigma));
    est.users_by_as.emplace(asn, noisy);
  }
  return est;
}

}  // namespace netclients::apnic
