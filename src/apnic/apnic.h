#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/world.h"

namespace netclients::apnic {

/// Parameters of an APNIC-labs-style ad measurement campaign [19].
///
/// The technique buys Google Ads and records the AS of each impression's
/// client; per-AS user populations are estimated by scaling impression
/// shares to a world Internet-population figure. Its blind spots (which the
/// paper quantifies) come straight from these parameters: the impression
/// budget caps how deep into the AS tail the sample reaches, and the
/// publication threshold drops ASes with too few impressions.
struct ApnicOptions {
  std::uint64_t seed = 0x47C;
  /// Expected ad impressions per user over the campaign. Real campaigns
  /// are tiny relative to the population (one study saw 8,589 addresses
  /// for $5000 [27]).
  double impressions_per_user = 0.004;
  /// Minimum impressions for an AS to appear in the published dataset.
  double min_impressions = 3;
  /// Bots see almost no ads (ad networks filter them).
  double bot_visibility = 0.02;
  /// Relative noise on the published estimate.
  double estimate_noise_sigma = 0.25;
};

struct ApnicEstimate {
  /// asn → estimated user population.
  std::unordered_map<std::uint32_t, double> users_by_as;
  double world_population = 0;  // the figure shares are scaled to
};

ApnicEstimate estimate_population(const sim::World& world,
                                  const ApnicOptions& options);

}  // namespace netclients::apnic
