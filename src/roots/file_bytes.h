#pragma once

// Shared read-only file backing for the zero-copy trace readers: mmap when
// available (MADV_SEQUENTIAL — these files are scanned front to back),
// falling back to a single slurp into a private buffer. Extracted from
// TraceView so the record-framed (NCD1) and packet-framed (NCP1) views
// share one open/release implementation.

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace netclients::roots {

/// The bytes of one open file. Move-only; unmaps/frees on destruction.
class FileBytes {
 public:
  enum class Backing {
    kAuto,    // mmap, falling back to a heap buffer
    kMmap,    // mmap only (open fails where mapping is unavailable)
    kBuffer,  // one read() slurp into a private buffer
  };

  /// Opens `path`. mmap is attempted only for files of at least
  /// `min_mmap_size` bytes (zero-length mappings are invalid); smaller
  /// files fall through to the buffer path. Returns nullopt when the file
  /// cannot be opened/read, or when `backing` is kMmap and mapping failed.
  static std::optional<FileBytes> open(const std::string& path,
                                       Backing backing,
                                       std::size_t min_mmap_size = 1);

  FileBytes() = default;
  FileBytes(FileBytes&& other) noexcept { *this = std::move(other); }
  FileBytes& operator=(FileBytes&& other) noexcept;
  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;
  ~FileBytes();

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  /// True when the bytes are an mmap mapping (vs a heap buffer).
  bool mapped() const { return mapped_; }

 private:
  void release();

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<char> buffer_;  // owns the bytes for the buffer backing
};

}  // namespace netclients::roots
