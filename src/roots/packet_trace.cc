#include "roots/packet_trace.h"

#include <cstring>
#include <fstream>
#include <limits>

#include "dns/message.h"
#include "dns/packet.h"

namespace netclients::roots {
namespace {

constexpr char kMagic[4] = {'N', 'C', 'P', '1'};

template <typename T>
void put(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

}  // namespace

std::optional<PacketTraceView> PacketTraceView::open(const std::string& path,
                                                     Backing backing) {
  auto bytes = FileBytes::open(path, backing, kHeaderBytes);
  if (!bytes) return std::nullopt;
  PacketTraceView view;
  view.bytes_ = std::move(*bytes);
  if (view.bytes_.size() < kHeaderBytes ||
      std::memcmp(view.bytes_.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::memcpy(&view.declared_, view.bytes_.data() + sizeof(kMagic),
              sizeof(view.declared_));
  return view;
}

TraceFile::ReadStats PacketTraceView::validate() const {
  TraceFile::ReadStats stats;
  Cursor cur = cursor();
  PacketRecordRef ref;
  while (cur.next(&ref)) {
  }
  stats.records_read = cur.index();
  if (cur.index() < declared_) {
    stats.records_skipped = declared_ - cur.index();
    stats.truncated = true;
  }
  return stats;
}

bool write_packet_trace(const std::string& path,
                        const std::vector<TraceRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  put(out, static_cast<std::uint64_t>(records.size()));
  dns::WireArena arena;  // recycled across records: one allocation plateau
  std::uint64_t index = 0;
  for (const auto& rec : records) {
    const dns::DnsMessage query = dns::make_query(
        static_cast<std::uint16_t>(index), rec.qname, rec.qtype,
        /*recursion_desired=*/false);
    const auto wire = dns::encode_into(query, arena);
    if (wire.size() > std::numeric_limits<std::uint16_t>::max()) return false;
    put(out, rec.source.value());
    put(out, static_cast<std::uint8_t>(rec.root_letter));
    put(out, rec.timestamp);
    put(out, static_cast<std::uint16_t>(wire.size()));
    out.write(reinterpret_cast<const char*>(wire.data()),
              static_cast<std::streamsize>(wire.size()));
    ++index;
  }
  return static_cast<bool>(out);
}

}  // namespace netclients::roots
