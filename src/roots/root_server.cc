#include "roots/root_server.h"

#include <algorithm>

#include "net/rng.h"

namespace netclients::roots {

RootServer::RootServer(RootConfig config, const std::vector<std::string>* tlds,
                       std::uint64_t seed)
    : config_(config), tlds_(tlds), seed_(seed) {}

bool RootServer::known_tld(const dns::DnsName& name) const {
  if (name.is_root() || name.labels().empty()) return false;
  const std::string& last = name.labels().back();
  return std::binary_search(tlds_->begin(), tlds_->end(), last);
}

void RootServer::observe(net::Ipv4Addr source, const dns::DnsName& qname,
                         dns::RecordType qtype, net::SimTime now) {
  ++received_;
  if (!config_.participates_in_ditl) return;
  if (!config_.complete) {
    // Partial captures sample a deterministic fraction of queries.
    net::Rng rng(net::stable_seed(seed_, source.value(), received_));
    if (rng.uniform() >= config_.capture_fraction) return;
  }
  TraceRecord rec;
  rec.root_letter = config_.letter;
  rec.qtype = qtype;
  rec.timestamp = now;
  rec.qname = qname;
  if (config_.anonymized) {
    // Prefix-preserving anonymization destroys resolver attribution: we
    // model it as an opaque per-source token in an unrouted range.
    rec.source = net::Ipv4Addr(static_cast<std::uint32_t>(
        net::stable_seed(seed_ ^ 0xA707u, source.value())));
  } else {
    rec.source = source;
  }
  trace_.push_back(std::move(rec));
}

dns::DnsMessage RootServer::handle(const dns::DnsMessage& query,
                                   net::Ipv4Addr source, net::SimTime now) {
  if (query.questions.empty()) {
    return dns::make_response(query, dns::RCode::kFormErr);
  }
  const dns::Question& q = query.questions.front();
  observe(source, q.name, q.type, now);
  if (!known_tld(q.name)) {
    // Chromium probes and typos end here: no such TLD.
    return dns::make_response(query, dns::RCode::kNxDomain);
  }
  // Referral to the TLD servers (we do not model the TLD tier; an empty
  // NOERROR answer with an authority NS record is enough for our callers).
  dns::DnsMessage response = dns::make_response(query, dns::RCode::kNoError);
  auto tld = dns::DnsName::parse(q.name.labels().back());
  response.authorities.push_back(dns::ResourceRecord{
      *tld, dns::RecordType::kNs, dns::kClassIn, 172800,
      dns::TxtData{"ns.tld-servers.net"}});
  return response;
}

RootSystem RootSystem::ditl_2020(std::uint64_t seed) {
  RootSystem system;
  system.seed_ = seed;
  // A representative slice of the real TLD table — enough for the
  // background-traffic generators and the known_tld() negative path.
  system.tlds_ = std::make_shared<std::vector<std::string>>(
      std::vector<std::string>{"app",  "biz", "br",   "cn",  "co",  "com",
                               "de",   "edu", "fr",   "gov", "in",  "info",
                               "io",   "jp",  "mil",  "net", "nl",  "org",
                               "ru",   "uk",  "us",   "xyz"});
  std::sort(system.tlds_->begin(), system.tlds_->end());
  const std::string usable = "jhmakd";  // complete + un-anonymized in 2020
  const std::string anonymized = "be";  // participate but anonymize
  const std::string partial = "cl";     // incomplete captures
  for (char letter = 'a'; letter <= 'm'; ++letter) {
    RootConfig config;
    config.letter = letter;
    config.participates_in_ditl =
        usable.find(letter) != std::string::npos ||
        anonymized.find(letter) != std::string::npos ||
        partial.find(letter) != std::string::npos;
    config.anonymized = anonymized.find(letter) != std::string::npos;
    config.complete = partial.find(letter) == std::string::npos;
    config.capture_fraction = config.complete ? 1.0 : 0.4;
    system.roots_.emplace_back(config, system.tlds_.get(),
                               net::stable_seed(seed, letter));
  }
  return system;
}

RootServer& RootSystem::root(char letter) {
  return roots_.at(static_cast<std::size_t>(letter - 'a'));
}

const RootServer& RootSystem::root(char letter) const {
  return roots_.at(static_cast<std::size_t>(letter - 'a'));
}

std::vector<char> RootSystem::letters() const {
  std::vector<char> out;
  for (const auto& r : roots_) out.push_back(r.config().letter);
  return out;
}

std::vector<char> RootSystem::usable_ditl_letters() const {
  std::vector<char> out;
  for (const auto& r : roots_) {
    if (r.config().participates_in_ditl && !r.config().anonymized &&
        r.config().complete) {
      out.push_back(r.config().letter);
    }
  }
  return out;
}

char RootSystem::pick_letter(std::uint64_t resolver_key,
                             std::uint64_t nonce) const {
  // Resolvers strongly prefer 2-3 nearby letters (RTT-based selection) but
  // occasionally try others. Preference order is a stable per-resolver
  // permutation; the choice among the top entries is per-query.
  net::Rng pref(net::stable_seed(seed_ ^ 0x1e77e5u, resolver_key));
  const std::size_t n = roots_.size();
  std::size_t first = pref.below(n);
  std::size_t second = pref.below(n);
  std::size_t third = pref.below(n);
  net::Rng rng(net::stable_seed(seed_ ^ 0x9013u, resolver_key, nonce));
  const double u = rng.uniform();
  std::size_t index = u < 0.60 ? first : (u < 0.90 ? second : third);
  return roots_[index].config().letter;
}

std::vector<TraceRecord> RootSystem::ditl_trace() const {
  std::vector<TraceRecord> out;
  for (const auto& r : roots_) {
    if (r.config().participates_in_ditl && !r.config().anonymized &&
        r.config().complete) {
      out.insert(out.end(), r.trace().begin(), r.trace().end());
    }
  }
  return out;
}

}  // namespace netclients::roots
