#include "roots/file_bytes.h"

#include <fstream>

#include "core/obs/obs.h"

#if defined(__unix__) || defined(__APPLE__)
#define NETCLIENTS_TRACE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace netclients::roots {

std::optional<FileBytes> FileBytes::open(const std::string& path,
                                         Backing backing,
                                         std::size_t min_mmap_size) {
  FileBytes bytes;
#ifdef NETCLIENTS_TRACE_MMAP
  if (backing != Backing::kBuffer) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st {};
      if (::fstat(fd, &st) == 0 &&
          st.st_size >= static_cast<off_t>(min_mmap_size)) {
        const auto size = static_cast<std::size_t>(st.st_size);
        void* mem = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (mem != MAP_FAILED) {
          ::madvise(mem, size, MADV_SEQUENTIAL);
          bytes.data_ = static_cast<const char*>(mem);
          bytes.size_ = size;
          bytes.mapped_ = true;
        } else {
          // mmap was genuinely attempted and refused (not small-file
          // policy, not an explicit kBuffer request). The slurp fallback
          // below still works, but the corpus benches need to see when
          // the fast path silently degrades — count it.
          static obs::Counter& fallbacks_metric = obs::Registry::global()
              .counter("roots.io.mmap_fallbacks");
          fallbacks_metric.add(1);
        }
      }
      ::close(fd);
    }
  }
#endif
  if (!bytes.mapped_ && backing == Backing::kMmap) return std::nullopt;
  if (!bytes.mapped_) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    in.seekg(0, std::ios::end);
    const std::streamoff len = in.tellg();
    if (len < 0) return std::nullopt;
    in.seekg(0);
    bytes.buffer_.resize(static_cast<std::size_t>(len));
    if (len > 0) {
      in.read(bytes.buffer_.data(), len);
      if (!in) return std::nullopt;
    }
    bytes.data_ = bytes.buffer_.data();
    bytes.size_ = bytes.buffer_.size();
  }
  return bytes;
}

FileBytes& FileBytes::operator=(FileBytes&& other) noexcept {
  if (this != &other) {
    release();
    buffer_ = std::move(other.buffer_);
    size_ = other.size_;
    mapped_ = other.mapped_;
    data_ = mapped_ ? other.data_ : buffer_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

FileBytes::~FileBytes() { release(); }

void FileBytes::release() {
#ifdef NETCLIENTS_TRACE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

}  // namespace netclients::roots
