#pragma once

// Packet-framed DITL traces (NCP1): the capture-shaped sibling of the
// record-framed NCD1 format. Where NCD1 stores pre-parsed records (fixed
// fields + length-prefixed labels), NCP1 stores each root query as the
// RFC 1035 wire bytes that crossed the wire, preceded by a small capture
// header (source address, root letter, timestamp, packet length). This is
// what a real DITL collection looks like before any parsing has happened,
// and it is the natural sink for packets lifted off the netsim bus.
//
// Framing vs parsing: the view's Cursor validates *framing only* (capture
// header present, declared packet length in bounds). It never parses DNS —
// that keeps boundary discovery cheap enough for the serial partition walk
// the parallel scan does, and keeps chunk boundaries independent of packet
// contents. Consumers pay the honest per-packet `dns::MessageView::parse`
// inside the (parallel) scan passes; a framed-but-malformed packet is a
// scanned non-match, not a framing error.
//
// Lifetime contract: a PacketRecordRef (and the wire span / string_views
// it hands out) borrows the view's mapping and is valid only while the
// PacketTraceView is alive.

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "net/sim_time.h"
#include "roots/file_bytes.h"
#include "roots/trace.h"

namespace netclients::roots {

/// A non-owning reference to one framed packet inside a PacketTraceView.
/// Capture fields are decoded on access (unaligned memcpy loads); the DNS
/// payload is a borrowed byte span — parse it with dns::MessageView.
class PacketRecordRef {
 public:
  net::Ipv4Addr source() const { return net::Ipv4Addr(load_u32(p_)); }
  char root_letter() const { return static_cast<char>(p_[4]); }
  net::SimTime timestamp() const { return load_f64(p_ + 5); }

  /// The captured RFC 1035 message bytes (borrowed from the mapping).
  std::span<const std::uint8_t> wire() const {
    return {p_ + kFixedBytes, wire_length()};
  }

  /// Whole-record size on disk (capture header plus packet bytes).
  std::size_t size_bytes() const { return kFixedBytes + wire_length(); }

 private:
  friend class PacketTraceView;

  static constexpr std::size_t kFixedBytes = 15;  // u32+u8+f64+u16

  std::size_t wire_length() const { return load_u16(p_ + 13); }

  static std::uint32_t load_u32(const std::uint8_t* p) {
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static std::uint16_t load_u16(const std::uint8_t* p) {
    std::uint16_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static double load_f64(const std::uint8_t* p) {
    double v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }

  const std::uint8_t* p_ = nullptr;  // capture header start
};

/// An open NCP1 trace: header validated once at open(), packet frames
/// discovered lazily through cursors. Move-only; unmaps/frees on
/// destruction.
class PacketTraceView {
 public:
  using Backing = FileBytes::Backing;

  /// Validates magic + count header; same tolerant contract as
  /// TraceView::open — damaged frame bytes are not an open error, they
  /// surface as skip-and-count during traversal.
  static std::optional<PacketTraceView> open(const std::string& path,
                                             Backing backing = Backing::kAuto);

  /// The header's (untrusted) record count.
  std::uint64_t declared_count() const { return declared_; }
  bool mapped() const { return bytes_.mapped(); }
  /// Frame-region size: file bytes past the 12-byte header.
  std::size_t payload_bytes() const { return bytes_.size() - kHeaderBytes; }

  /// Forward framing walk. Validates only that each capture header and its
  /// declared packet length fit in the file; the DNS payload is opaque
  /// here. The format has no resync marker, so the first structural error
  /// ends the valid prefix and the declared remainder counts as skipped.
  class Cursor {
   public:
    /// Byte offset (from the first frame) of the next frame boundary.
    std::size_t offset() const { return static_cast<std::size_t>(p_ - begin_); }
    /// Frames decoded so far (== the index of the next frame).
    std::uint64_t index() const { return index_; }

    bool next(PacketRecordRef* ref) {
      if (index_ >= limit_) return false;
      const std::uint8_t* p = p_;
      if (end_ - p <
          static_cast<std::ptrdiff_t>(PacketRecordRef::kFixedBytes)) {
        return false;
      }
      std::uint16_t wire_len;
      std::memcpy(&wire_len, p + 13, sizeof(wire_len));
      const std::uint8_t* q = p + PacketRecordRef::kFixedBytes;
      if (end_ - q < static_cast<std::ptrdiff_t>(wire_len)) return false;
      ref->p_ = p;
      p_ = q + wire_len;
      ++index_;
      return true;
    }

   private:
    friend class PacketTraceView;
    const std::uint8_t* begin_ = nullptr;
    const std::uint8_t* p_ = nullptr;
    const std::uint8_t* end_ = nullptr;
    std::uint64_t index_ = 0;
    std::uint64_t limit_ = 0;
  };

  Cursor cursor() const { return cursor_at(0, 0); }

  /// Cursor at a known frame boundary — `offset`/`index` must come from a
  /// prior traversal (e.g. a chunk partition).
  Cursor cursor_at(std::size_t offset, std::uint64_t index) const {
    Cursor cur;
    cur.begin_ =
        reinterpret_cast<const std::uint8_t*>(bytes_.data()) + kHeaderBytes;
    cur.end_ = reinterpret_cast<const std::uint8_t*>(bytes_.data()) +
               bytes_.size();
    cur.p_ = cur.begin_ + (offset > payload_bytes() ? payload_bytes() : offset);
    cur.index_ = index;
    cur.limit_ = declared_;
    return cur;
  }

  /// One tolerant full framing walk; same stats shape as
  /// TraceFile::read_tolerant (skipped = declared minus framed).
  TraceFile::ReadStats validate() const;

 private:
  PacketTraceView() = default;

  static constexpr std::size_t kHeaderBytes = 12;  // magic + u64 count

  FileBytes bytes_;  // whole file, header included
  std::uint64_t declared_ = 0;
};

/// Writes `records` as an NCP1 packet trace: each record is encoded as the
/// RD=0 A/qtype query a root server would capture — deterministic message
/// id (low 16 bits of the record index), qname/qtype from the record. Name
/// labels are canonicalized (lowercased) by DnsName, so scans over the
/// packet trace hash the same bytes as scans over the equivalent NCD1
/// trace. Returns false on I/O failure or when a record's query does not
/// fit a single unfragmented packet frame (never the case for valid
/// names).
bool write_packet_trace(const std::string& path,
                        const std::vector<TraceRecord>& records);

}  // namespace netclients::roots
