#pragma once

// Sharded multi-file DITL corpus: N NCD1/NCP1 member files described by a
// text manifest with per-file CRCs. A real DITL collection is delivered as
// many capture files per root letter and site, not one trace; the corpus
// is that shape. `CorpusWriter` rotates records into member files and
// emits the manifest; `CorpusView` opens every member zero-copy (one
// `TraceView`/`PacketTraceView` each) so a scan can partition records
// *across* files and work-steal chunks between them.
//
// Manifest format (text, one member per line, paths relative to the
// manifest's directory):
//
//   NCCORPUS v1
//   <file>\t<ncd1|ncp1>\t<records>\t<bytes>\t<crc32 hex>
//
// Tolerance contract mirrors the trace readers: a member that cannot be
// opened (missing file, bad magic) is skipped and counted, with its
// declared records added to `records_skipped` — never fatal. CRC
// verification is opt-in (it reads every byte, which the zero-copy open
// deliberately avoids); a mismatch under `verify_crc` also skips the
// member, because a corrupt byte anywhere can desync the unframed NCD1
// record stream. `corpusctl verify` is the strict complement.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "roots/packet_trace.h"
#include "roots/trace.h"
#include "roots/trace_view.h"

namespace netclients::roots {

enum class CorpusFormat : std::uint8_t { kNcd1 = 0, kNcp1 = 1 };

std::string_view corpus_format_name(CorpusFormat format);

/// One manifest row.
struct CorpusMember {
  std::string file;  // relative to the manifest's directory
  CorpusFormat format = CorpusFormat::kNcd1;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;  // crc32 of the whole member file

  friend bool operator==(const CorpusMember&, const CorpusMember&) = default;
};

struct CorpusManifest {
  std::vector<CorpusMember> members;

  std::uint64_t total_records() const;
  std::uint64_t total_bytes() const;

  /// Serialises to the manifest text. Deterministic: equal manifests
  /// encode to equal bytes.
  std::string encode() const;
  /// Parses manifest text. Returns nullopt on a bad magic line or any
  /// malformed row (the manifest is tiny and authored by our tools, so it
  /// is validated strictly — tolerance lives at the member level).
  static std::optional<CorpusManifest> decode(std::string_view text);

  bool write(const std::string& path) const;
  static std::optional<CorpusManifest> read(const std::string& path);
};

/// Streams TraceRecords into rotating member files next to the manifest.
/// Member i of manifest `corpus.manifest` is named
/// `corpus.000.ncd1` / `corpus.001.ncp1` / ... (stem shared with the
/// manifest). Deterministic: the member split depends only on the record
/// stream and `records_per_member`.
class CorpusWriter {
 public:
  struct Options {
    CorpusFormat format = CorpusFormat::kNcd1;
    /// Rotate after this many records (0 ⇒ never rotate: one member).
    std::uint64_t records_per_member = 0;
  };

  CorpusWriter(std::string manifest_path, Options options);

  /// Buffers one record, rotating the member file when full.
  void add(const TraceRecord& record);

  /// Forces a member boundary after the records added so far (no-op when
  /// nothing is pending). Lets callers control the split exactly instead
  /// of relying on the rotation threshold.
  void rotate();

  /// Flushes the final member and writes the manifest. Returns false on
  /// any I/O failure (the manifest is not written in that case).
  bool finish();

  const CorpusManifest& manifest() const { return manifest_; }

 private:
  bool flush_member();

  std::string manifest_path_;
  std::string dir_;   // manifest directory (with trailing '/' when non-empty)
  std::string stem_;  // manifest filename minus extension
  Options options_;
  std::vector<TraceRecord> pending_;
  CorpusManifest manifest_;
  bool failed_ = false;
};

/// Convenience: split `records` across `files` members of near-equal size
/// (member i gets records [i*n/files, (i+1)*n/files) — the same boundary
/// arithmetic as exec's block partitions) and write manifest + members.
bool write_corpus(const std::string& manifest_path,
                  const std::vector<TraceRecord>& records,
                  std::size_t files,
                  CorpusFormat format = CorpusFormat::kNcd1);

/// A corpus opened for scanning: the manifest plus one zero-copy view per
/// readable member. Move-only (owns the mappings).
class CorpusView {
 public:
  struct OpenOptions {
    FileBytes::Backing backing = FileBytes::Backing::kAuto;
    /// Re-read every member's bytes and check the manifest CRC before
    /// trusting it. Off by default: it defeats the point of mmap for the
    /// scan path; turn it on in tools and verification jobs.
    bool verify_crc = false;
  };

  struct Member {
    CorpusMember meta;
    /// Exactly one of these is engaged for a readable member (by format);
    /// both empty means the member was skipped.
    std::optional<TraceView> trace;
    std::optional<PacketTraceView> packets;

    bool readable() const { return trace.has_value() || packets.has_value(); }
  };

  struct OpenStats {
    std::uint64_t members_opened = 0;
    std::uint64_t members_skipped = 0;
    std::uint64_t crc_mismatches = 0;
    /// Declared records of skipped members (they were promised by the
    /// manifest but cannot be scanned).
    std::uint64_t records_skipped = 0;

    friend bool operator==(const OpenStats&, const OpenStats&) = default;
  };

  /// Opens the manifest and every member. Returns nullopt only when the
  /// manifest itself cannot be read or parsed; member damage is tolerated
  /// per the header comment.
  static std::optional<CorpusView> open(const std::string& manifest_path,
                                        OpenOptions options);
  static std::optional<CorpusView> open(const std::string& manifest_path);

  const std::vector<Member>& members() const { return members_; }
  const OpenStats& stats() const { return stats_; }

  /// Sum of declared record counts over *readable* members.
  std::uint64_t declared_records() const;
  /// Sum of record-region bytes over readable members.
  std::uint64_t payload_bytes() const;

 private:
  CorpusView() = default;

  std::vector<Member> members_;
  OpenStats stats_;
};

inline std::optional<CorpusView> CorpusView::open(
    const std::string& manifest_path) {
  return open(manifest_path, OpenOptions());
}

}  // namespace netclients::roots
