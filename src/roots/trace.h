#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/types.h"
#include "net/ipv4.h"
#include "net/sim_time.h"

namespace netclients::roots {

/// One captured root-server query, the unit of a DITL trace. Source is the
/// address of whoever sent the query to the root — almost always a
/// recursive resolver, which is why the DNS-logs technique attributes
/// activity to resolvers rather than clients (§3.2.2).
struct TraceRecord {
  net::Ipv4Addr source;
  dns::DnsName qname;
  dns::RecordType qtype = dns::RecordType::kA;
  net::SimTime timestamp = 0;
  char root_letter = 'a';

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Writes/reads the library's compact binary DITL format. The format is a
/// faithful stand-in for DNS-OARC pcap-derived traces: per-record source,
/// qname, qtype, timestamp, capturing root.
///
/// Layout: magic "NCD1", u64 record count, then per record:
///   u32 source, u8 letter, u16 qtype, f64 timestamp, u8 label count,
///   (u8 len, bytes) per label.
class TraceFile {
 public:
  static bool write(const std::string& path,
                    const std::vector<TraceRecord>& records);
  /// Returns empty + ok=false on any structural error.
  static bool read(const std::string& path, std::vector<TraceRecord>* out);

  struct ReadStats {
    std::uint64_t records_read = 0;
    std::uint64_t records_skipped = 0;  // declared but unparseable
    bool truncated = false;             // stream ended mid-record
  };
  /// Tolerant variant for scans that must survive corrupt captures: keeps
  /// every record parsed before the first structural error and counts the
  /// remainder as skipped — never throws, never crashes. The format has
  /// no record framing, so parsing cannot resync past a damaged record.
  /// Returns false only when the file cannot be opened or the magic/count
  /// header itself is invalid.
  static bool read_tolerant(const std::string& path,
                            std::vector<TraceRecord>* out,
                            ReadStats* stats = nullptr);
};

}  // namespace netclients::roots
