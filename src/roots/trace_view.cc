#include "roots/trace_view.h"

#include <cstring>
#include <utility>

#include "dns/name.h"

namespace netclients::roots {
namespace {

constexpr char kMagic[4] = {'N', 'C', 'D', '1'};

}  // namespace

TraceRecord TraceRecordRef::materialize() const {
  TraceRecord rec;
  rec.source = source();
  rec.root_letter = root_letter();
  rec.qtype = qtype();
  rec.timestamp = timestamp();
  std::vector<std::string> labels;
  labels.reserve(label_count());
  for_each_label(
      [&](std::string_view label) { labels.emplace_back(label); });
  // Cursor validation enforces exactly from_labels' structural limits
  // (labels of 1-63 bytes, wire length <= 255), so this cannot fail; the
  // canonicalization from_labels applies (lowercasing) is the one
  // transformation the zero-copy refs skip.
  auto name = dns::DnsName::from_labels(std::move(labels));
  rec.qname = std::move(*name);
  return rec;
}

std::optional<TraceView> TraceView::open(const std::string& path,
                                         Backing backing) {
  auto bytes = FileBytes::open(path, backing, kHeaderBytes);
  if (!bytes) return std::nullopt;
  TraceView view;
  view.bytes_ = std::move(*bytes);
  if (view.bytes_.size() < kHeaderBytes ||
      std::memcmp(view.bytes_.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::memcpy(&view.declared_, view.bytes_.data() + sizeof(kMagic),
              sizeof(view.declared_));
  return view;
}

TraceFile::ReadStats TraceView::validate() const {
  TraceFile::ReadStats stats;
  Cursor cur = cursor();
  TraceRecordRef ref;
  while (cur.next(&ref)) {
  }
  stats.records_read = cur.index();
  if (cur.index() < declared_) {
    stats.records_skipped = declared_ - cur.index();
    stats.truncated = true;
  }
  return stats;
}

}  // namespace netclients::roots
