#include "roots/trace_view.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "dns/name.h"

#if defined(__unix__) || defined(__APPLE__)
#define NETCLIENTS_TRACE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace netclients::roots {
namespace {

constexpr char kMagic[4] = {'N', 'C', 'D', '1'};

}  // namespace

TraceRecord TraceRecordRef::materialize() const {
  TraceRecord rec;
  rec.source = source();
  rec.root_letter = root_letter();
  rec.qtype = qtype();
  rec.timestamp = timestamp();
  std::vector<std::string> labels;
  labels.reserve(label_count());
  for_each_label(
      [&](std::string_view label) { labels.emplace_back(label); });
  // Cursor validation enforces exactly from_labels' structural limits
  // (labels of 1-63 bytes, wire length <= 255), so this cannot fail; the
  // canonicalization from_labels applies (lowercasing) is the one
  // transformation the zero-copy refs skip.
  auto name = dns::DnsName::from_labels(std::move(labels));
  rec.qname = std::move(*name);
  return rec;
}

std::optional<TraceView> TraceView::open(const std::string& path,
                                         Backing backing) {
  TraceView view;
#ifdef NETCLIENTS_TRACE_MMAP
  if (backing != Backing::kBuffer) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st {};
      if (::fstat(fd, &st) == 0 &&
          st.st_size >= static_cast<off_t>(kHeaderBytes)) {
        const auto size = static_cast<std::size_t>(st.st_size);
        void* mem = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (mem != MAP_FAILED) {
          ::madvise(mem, size, MADV_SEQUENTIAL);
          view.data_ = static_cast<const char*>(mem);
          view.size_ = size;
          view.mapped_ = true;
        }
      }
      ::close(fd);
    }
  }
#endif
  if (!view.mapped_ && backing == Backing::kMmap) return std::nullopt;
  if (!view.mapped_) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    in.seekg(0, std::ios::end);
    const std::streamoff len = in.tellg();
    if (len < 0) return std::nullopt;
    in.seekg(0);
    view.buffer_.resize(static_cast<std::size_t>(len));
    if (len > 0) {
      in.read(view.buffer_.data(), len);
      if (!in) return std::nullopt;
    }
    view.data_ = view.buffer_.data();
    view.size_ = view.buffer_.size();
  }
  if (view.size_ < kHeaderBytes ||
      std::memcmp(view.data_, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::memcpy(&view.declared_, view.data_ + sizeof(kMagic),
              sizeof(view.declared_));
  return view;
}

TraceView& TraceView::operator=(TraceView&& other) noexcept {
  if (this != &other) {
    release();
    buffer_ = std::move(other.buffer_);
    size_ = other.size_;
    declared_ = other.declared_;
    mapped_ = other.mapped_;
    data_ = mapped_ ? other.data_ : buffer_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.declared_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

TraceView::~TraceView() { release(); }

void TraceView::release() {
#ifdef NETCLIENTS_TRACE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

TraceFile::ReadStats TraceView::validate() const {
  TraceFile::ReadStats stats;
  Cursor cur = cursor();
  TraceRecordRef ref;
  while (cur.next(&ref)) {
  }
  stats.records_read = cur.index();
  if (cur.index() < declared_) {
    stats.records_skipped = declared_ - cur.index();
    stats.truncated = true;
  }
  return stats;
}

}  // namespace netclients::roots
