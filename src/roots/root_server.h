#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dns/message.h"
#include "roots/trace.h"

namespace netclients::roots {

/// Capture policy of one root letter in a DITL collection year. The paper
/// uses J, H, M, A, K and D root for 2020 — "the roots that offer
/// un-anonymized, complete traces".
struct RootConfig {
  char letter = 'a';
  bool participates_in_ditl = true;
  bool anonymized = false;  // anonymized traces are useless for attribution
  bool complete = true;     // partial captures under-count
  double capture_fraction = 1.0;  // effective when !complete
};

/// One root DNS server: answers referrals for real TLDs, NXDOMAIN for junk
/// (Chromium probes land here precisely because their random labels have no
/// TLD and can't be cached), and captures queries per its DITL policy.
class RootServer {
 public:
  RootServer(RootConfig config, const std::vector<std::string>* tlds,
             std::uint64_t seed);

  /// Handles a query: records a trace entry (per capture policy) and
  /// returns NXDOMAIN / referral. Non-message variant for bulk simulation.
  void observe(net::Ipv4Addr source, const dns::DnsName& qname,
               dns::RecordType qtype, net::SimTime now);

  dns::DnsMessage handle(const dns::DnsMessage& query, net::Ipv4Addr source,
                         net::SimTime now);

  /// True when `name`'s last label is a delegated TLD.
  bool known_tld(const dns::DnsName& name) const;

  const RootConfig& config() const { return config_; }
  const std::vector<TraceRecord>& trace() const { return trace_; }
  std::uint64_t queries_received() const { return received_; }
  void clear_trace() { trace_.clear(); }

 private:
  RootConfig config_;
  const std::vector<std::string>* tlds_;
  std::uint64_t seed_;
  std::vector<TraceRecord> trace_;
  std::uint64_t received_ = 0;
};

/// The 13-letter root system plus the DITL collection view over it.
class RootSystem {
 public:
  /// Mirrors 2020 DITL: a–m exist; j, h, m, a, k, d offer complete,
  /// un-anonymized captures; others are anonymized, partial or absent.
  static RootSystem ditl_2020(std::uint64_t seed);

  RootServer& root(char letter);
  const RootServer& root(char letter) const;
  std::vector<char> letters() const;

  /// Letters usable for the DNS-logs technique.
  std::vector<char> usable_ditl_letters() const;

  /// A resolver's root queries spread over letters (real resolvers rotate
  /// by RTT; we model a stable per-resolver preference distribution).
  char pick_letter(std::uint64_t resolver_key, std::uint64_t nonce) const;

  /// Concatenated trace of the usable letters — the DNS-logs input.
  std::vector<TraceRecord> ditl_trace() const;

  const std::vector<std::string>& tlds() const { return *tlds_; }

 private:
  RootSystem() = default;

  std::vector<RootServer> roots_;
  // Heap-allocated: each RootServer keeps a pointer to the table, which
  // must stay valid when the RootSystem is moved.
  std::shared_ptr<std::vector<std::string>> tlds_;
  std::uint64_t seed_ = 0;
};

}  // namespace netclients::roots
