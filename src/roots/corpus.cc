#include "roots/corpus.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>

#include "core/obs/obs.h"
#include "net/crc32.h"

namespace netclients::roots {
namespace {

constexpr std::string_view kMagicLine = "NCCORPUS v1";

std::optional<CorpusFormat> parse_format(std::string_view token) {
  if (token == "ncd1") return CorpusFormat::kNcd1;
  if (token == "ncp1") return CorpusFormat::kNcp1;
  return std::nullopt;
}

template <typename T>
bool parse_number(std::string_view token, T* out, int base = 10) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, *out, base);
  return ec == std::errc() && ptr == last;
}

/// Splits "dir/name.ext" into dir (with trailing '/', possibly empty) and
/// the extension-free stem.
void split_manifest_path(const std::string& path, std::string* dir,
                         std::string* stem) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t name_begin = slash == std::string::npos ? 0 : slash + 1;
  *dir = path.substr(0, name_begin);
  std::string name = path.substr(name_begin);
  const std::size_t dot = name.find_last_of('.');
  *stem = dot == std::string::npos || dot == 0 ? name : name.substr(0, dot);
}

std::optional<std::uint32_t> file_crc(const std::string& path) {
  // Buffer-backed read: CRC verification touches every byte anyway, and a
  // throwaway mapping would just add page-table churn.
  auto bytes = FileBytes::open(path, FileBytes::Backing::kBuffer);
  if (!bytes) return std::nullopt;
  return net::crc32(std::string_view(bytes->data(), bytes->size()));
}

}  // namespace

std::string_view corpus_format_name(CorpusFormat format) {
  return format == CorpusFormat::kNcp1 ? "ncp1" : "ncd1";
}

std::uint64_t CorpusManifest::total_records() const {
  std::uint64_t total = 0;
  for (const CorpusMember& m : members) total += m.records;
  return total;
}

std::uint64_t CorpusManifest::total_bytes() const {
  std::uint64_t total = 0;
  for (const CorpusMember& m : members) total += m.bytes;
  return total;
}

std::string CorpusManifest::encode() const {
  std::string out(kMagicLine);
  out.push_back('\n');
  char crc_hex[16];
  for (const CorpusMember& m : members) {
    std::snprintf(crc_hex, sizeof(crc_hex), "%08x", m.crc);
    out += m.file;
    out.push_back('\t');
    out += corpus_format_name(m.format);
    out.push_back('\t');
    out += std::to_string(m.records);
    out.push_back('\t');
    out += std::to_string(m.bytes);
    out.push_back('\t');
    out += crc_hex;
    out.push_back('\n');
  }
  return out;
}

std::optional<CorpusManifest> CorpusManifest::decode(std::string_view text) {
  CorpusManifest manifest;
  std::size_t pos = 0;
  bool saw_magic = false;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!saw_magic) {
      if (line != kMagicLine) return std::nullopt;
      saw_magic = true;
      continue;
    }
    if (line.empty()) continue;
    // <file>\t<format>\t<records>\t<bytes>\t<crc hex>
    std::vector<std::string_view> fields;
    std::size_t field_pos = 0;
    while (fields.size() < 5 && field_pos <= line.size()) {
      std::size_t tab = line.find('\t', field_pos);
      if (tab == std::string_view::npos) tab = line.size();
      fields.push_back(line.substr(field_pos, tab - field_pos));
      field_pos = tab + 1;
    }
    if (fields.size() != 5 || fields[0].empty()) return std::nullopt;
    CorpusMember member;
    member.file = std::string(fields[0]);
    const auto format = parse_format(fields[1]);
    if (!format) return std::nullopt;
    member.format = *format;
    if (!parse_number(fields[2], &member.records)) return std::nullopt;
    if (!parse_number(fields[3], &member.bytes)) return std::nullopt;
    if (!parse_number(fields[4], &member.crc, 16)) return std::nullopt;
    manifest.members.push_back(std::move(member));
  }
  if (!saw_magic) return std::nullopt;
  return manifest;
}

bool CorpusManifest::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string text = encode();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(out);
}

std::optional<CorpusManifest> CorpusManifest::read(const std::string& path) {
  auto bytes = FileBytes::open(path, FileBytes::Backing::kBuffer);
  if (!bytes) return std::nullopt;
  return decode(std::string_view(bytes->data(), bytes->size()));
}

// --------------------------------------------------------------- writer

CorpusWriter::CorpusWriter(std::string manifest_path, Options options)
    : manifest_path_(std::move(manifest_path)), options_(options) {
  split_manifest_path(manifest_path_, &dir_, &stem_);
}

void CorpusWriter::add(const TraceRecord& record) {
  pending_.push_back(record);
  if (options_.records_per_member > 0 &&
      pending_.size() >= options_.records_per_member) {
    if (!flush_member()) failed_ = true;
  }
}

void CorpusWriter::rotate() {
  if (!flush_member()) failed_ = true;
}

bool CorpusWriter::flush_member() {
  if (pending_.empty()) return true;
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), "%03zu", manifest_.members.size());
  CorpusMember member;
  member.format = options_.format;
  member.file = stem_ + "." + suffix + "." +
                std::string(corpus_format_name(options_.format));
  const std::string path = dir_ + member.file;
  const bool ok = options_.format == CorpusFormat::kNcp1
                      ? write_packet_trace(path, pending_)
                      : TraceFile::write(path, pending_);
  member.records = pending_.size();
  pending_.clear();
  if (!ok) return false;
  auto bytes = FileBytes::open(path, FileBytes::Backing::kBuffer);
  if (!bytes) return false;
  member.bytes = bytes->size();
  member.crc = net::crc32(std::string_view(bytes->data(), bytes->size()));
  manifest_.members.push_back(std::move(member));
  return true;
}

bool CorpusWriter::finish() {
  if (!flush_member()) failed_ = true;
  if (failed_) return false;
  return manifest_.write(manifest_path_);
}

bool write_corpus(const std::string& manifest_path,
                  const std::vector<TraceRecord>& records, std::size_t files,
                  CorpusFormat format) {
  if (files == 0) files = 1;
  CorpusWriter::Options options;
  options.format = format;
  CorpusWriter writer(manifest_path, options);
  // Explicit near-equal split (block-partition arithmetic) rather than a
  // rotation threshold, so the member count is exactly `files` even when
  // records % files != 0 (empty splits — records < files — collapse, since
  // rotate() is a no-op with nothing pending).
  const std::size_t n = records.size();
  for (std::size_t f = 0; f < files; ++f) {
    const std::size_t begin = n * f / files;
    const std::size_t end = n * (f + 1) / files;
    for (std::size_t i = begin; i < end; ++i) writer.add(records[i]);
    writer.rotate();
  }
  return writer.finish();
}

// ----------------------------------------------------------------- view

std::optional<CorpusView> CorpusView::open(const std::string& manifest_path,
                                           OpenOptions options) {
  static obs::Counter& opened_metric =
      obs::Registry::global().counter("roots.corpus.members_opened");

  auto manifest = CorpusManifest::read(manifest_path);
  if (!manifest) return std::nullopt;

  std::string dir, stem;
  split_manifest_path(manifest_path, &dir, &stem);

  CorpusView view;
  view.members_.reserve(manifest->members.size());
  for (CorpusMember& meta : manifest->members) {
    Member member;
    member.meta = std::move(meta);
    const std::string path = dir + member.meta.file;
    bool crc_ok = true;
    if (options.verify_crc) {
      const auto crc = file_crc(path);
      crc_ok = crc.has_value() && *crc == member.meta.crc;
      if (!crc_ok) ++view.stats_.crc_mismatches;
    }
    if (crc_ok) {
      if (member.meta.format == CorpusFormat::kNcp1) {
        member.packets = PacketTraceView::open(path, options.backing);
      } else {
        member.trace = TraceView::open(path, options.backing);
      }
    }
    if (member.readable()) {
      ++view.stats_.members_opened;
    } else {
      ++view.stats_.members_skipped;
      view.stats_.records_skipped += member.meta.records;
    }
    view.members_.push_back(std::move(member));
  }
  opened_metric.add(view.stats_.members_opened);
  if (view.stats_.members_skipped > 0) {
    // Lazily instantiated like the trace readers' skip counters: a clean
    // corpus run's metric export stays byte-identical whether or not any
    // damage was ever seen.
    static obs::Counter& skipped_metric =
        obs::Registry::global().counter("roots.corpus.members_skipped");
    skipped_metric.add(view.stats_.members_skipped);
  }
  return view;
}

std::uint64_t CorpusView::declared_records() const {
  std::uint64_t total = 0;
  for (const Member& m : members_) {
    if (!m.readable()) continue;
    total += m.trace ? m.trace->declared_count() : m.packets->declared_count();
  }
  return total;
}

std::uint64_t CorpusView::payload_bytes() const {
  std::uint64_t total = 0;
  for (const Member& m : members_) {
    if (!m.readable()) continue;
    total += m.trace ? m.trace->payload_bytes() : m.packets->payload_bytes();
  }
  return total;
}

}  // namespace netclients::roots
