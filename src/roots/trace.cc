#include "roots/trace.h"

#include <cstring>
#include <fstream>

namespace netclients::roots {
namespace {

constexpr char kMagic[4] = {'N', 'C', 'D', '1'};

template <typename T>
void put(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool get(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

}  // namespace

bool TraceFile::write(const std::string& path,
                      const std::vector<TraceRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  put(out, static_cast<std::uint64_t>(records.size()));
  for (const auto& rec : records) {
    put(out, rec.source.value());
    put(out, rec.root_letter);
    put(out, static_cast<std::uint16_t>(rec.qtype));
    put(out, rec.timestamp);
    put(out, static_cast<std::uint8_t>(rec.qname.labels().size()));
    for (const auto& label : rec.qname.labels()) {
      put(out, static_cast<std::uint8_t>(label.size()));
      out.write(label.data(), static_cast<std::streamsize>(label.size()));
    }
  }
  return static_cast<bool>(out);
}

bool TraceFile::read(const std::string& path,
                     std::vector<TraceRecord>* out_records) {
  out_records->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint64_t count = 0;
  if (!get(in, &count)) return false;
  out_records->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord rec;
    std::uint32_t source = 0;
    std::uint16_t qtype = 0;
    std::uint8_t label_count = 0;
    if (!get(in, &source) || !get(in, &rec.root_letter) || !get(in, &qtype) ||
        !get(in, &rec.timestamp) || !get(in, &label_count)) {
      return false;
    }
    rec.source = net::Ipv4Addr(source);
    rec.qtype = static_cast<dns::RecordType>(qtype);
    std::vector<std::string> labels;
    labels.reserve(label_count);
    for (std::uint8_t l = 0; l < label_count; ++l) {
      std::uint8_t len = 0;
      if (!get(in, &len)) return false;
      std::string label(len, '\0');
      in.read(label.data(), len);
      if (!in) return false;
      labels.push_back(std::move(label));
    }
    auto name = dns::DnsName::from_labels(std::move(labels));
    if (!name) return false;
    rec.qname = std::move(*name);
    out_records->push_back(std::move(rec));
  }
  return true;
}

}  // namespace netclients::roots
