#include "roots/trace.h"

#include <cstring>
#include <fstream>

namespace netclients::roots {
namespace {

constexpr char kMagic[4] = {'N', 'C', 'D', '1'};

template <typename T>
void put(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool get(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

}  // namespace

bool TraceFile::write(const std::string& path,
                      const std::vector<TraceRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  put(out, static_cast<std::uint64_t>(records.size()));
  for (const auto& rec : records) {
    put(out, rec.source.value());
    put(out, rec.root_letter);
    put(out, static_cast<std::uint16_t>(rec.qtype));
    put(out, rec.timestamp);
    put(out, static_cast<std::uint8_t>(rec.qname.labels().size()));
    for (const auto& label : rec.qname.labels()) {
      put(out, static_cast<std::uint8_t>(label.size()));
      out.write(label.data(), static_cast<std::streamsize>(label.size()));
    }
  }
  return static_cast<bool>(out);
}

namespace {

/// Parses one record; false on any structural error (stream exhausted,
/// bad label data, label set no DnsName accepts).
bool read_record(std::ifstream& in, TraceRecord* rec) {
  std::uint32_t source = 0;
  std::uint16_t qtype = 0;
  std::uint8_t label_count = 0;
  if (!get(in, &source) || !get(in, &rec->root_letter) || !get(in, &qtype) ||
      !get(in, &rec->timestamp) || !get(in, &label_count)) {
    return false;
  }
  rec->source = net::Ipv4Addr(source);
  rec->qtype = static_cast<dns::RecordType>(qtype);
  std::vector<std::string> labels;
  labels.reserve(label_count);
  for (std::uint8_t l = 0; l < label_count; ++l) {
    std::uint8_t len = 0;
    if (!get(in, &len)) return false;
    std::string label(len, '\0');
    in.read(label.data(), len);
    if (!in) return false;
    labels.push_back(std::move(label));
  }
  auto name = dns::DnsName::from_labels(std::move(labels));
  if (!name) return false;
  rec->qname = std::move(*name);
  return true;
}

}  // namespace

bool TraceFile::read(const std::string& path,
                     std::vector<TraceRecord>* out_records) {
  out_records->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint64_t count = 0;
  if (!get(in, &count)) return false;
  // Clamp the speculative reservation: the count field is untrusted input
  // and a corrupt value must fail parse, not exhaust memory.
  out_records->reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 20)));
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord rec;
    if (!read_record(in, &rec)) return false;
    out_records->push_back(std::move(rec));
  }
  return true;
}

bool TraceFile::read_tolerant(const std::string& path,
                              std::vector<TraceRecord>* out_records,
                              ReadStats* stats) {
  out_records->clear();
  if (stats) *stats = ReadStats{};
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint64_t count = 0;
  if (!get(in, &count)) return false;
  // The count is attacker/corruption-controlled: cap the speculative
  // reservation (the vector still grows past it if the records are real).
  out_records->reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 20)));
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord rec;
    if (!read_record(in, &rec)) {
      if (stats) {
        stats->records_read = out_records->size();
        stats->records_skipped = count - i;
        stats->truncated = true;
      }
      return true;  // keep what parsed; the damaged tail is skip-and-count
    }
    out_records->push_back(std::move(rec));
  }
  if (stats) stats->records_read = out_records->size();
  return true;
}

}  // namespace netclients::roots
