#include "roots/trace.h"

#include <algorithm>
#include <fstream>

#include "roots/trace_view.h"

namespace netclients::roots {
namespace {

constexpr char kMagic[4] = {'N', 'C', 'D', '1'};

template <typename T>
void put(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

}  // namespace

bool TraceFile::write(const std::string& path,
                      const std::vector<TraceRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  put(out, static_cast<std::uint64_t>(records.size()));
  for (const auto& rec : records) {
    put(out, rec.source.value());
    put(out, rec.root_letter);
    put(out, static_cast<std::uint16_t>(rec.qtype));
    put(out, rec.timestamp);
    put(out, static_cast<std::uint8_t>(rec.qname.labels().size()));
    for (const auto& label : rec.qname.labels()) {
      put(out, static_cast<std::uint8_t>(label.size()));
      out.write(label.data(), static_cast<std::streamsize>(label.size()));
    }
  }
  return static_cast<bool>(out);
}

namespace {

/// Shared core of the two readers: one slurp into a buffer-backed
/// TraceView (no per-field ifstream reads), then a cursor walk that
/// materializes each validated record. The cursor applies the same
/// framing and structural rules as the old per-field parser — header
/// validation, bounds, label/wire limits — so strict and tolerant reads
/// cannot drift from each other or from the zero-copy scan path.
bool read_materialized(const std::string& path, bool strict,
                       std::vector<TraceRecord>* out_records,
                       TraceFile::ReadStats* stats) {
  out_records->clear();
  if (stats) *stats = TraceFile::ReadStats{};
  const auto view = TraceView::open(path, TraceView::Backing::kBuffer);
  if (!view) return false;  // unopenable file or bad magic/count header
  const std::uint64_t count = view->declared_count();
  // The count is attacker/corruption-controlled: cap the speculative
  // reservation (the vector still grows past it if the records are real).
  out_records->reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 20)));
  TraceView::Cursor cursor = view->cursor();
  TraceRecordRef ref;
  while (cursor.next(&ref)) out_records->push_back(ref.materialize());
  if (cursor.index() < count) {  // structural error before the declared end
    if (strict) {
      out_records->clear();
      return false;
    }
    if (stats) {
      stats->records_read = out_records->size();
      stats->records_skipped = count - cursor.index();
      stats->truncated = true;
    }
    return true;  // keep what parsed; the damaged tail is skip-and-count
  }
  if (stats) stats->records_read = out_records->size();
  return true;
}

}  // namespace

bool TraceFile::read(const std::string& path,
                     std::vector<TraceRecord>* out_records) {
  return read_materialized(path, /*strict=*/true, out_records, nullptr);
}

bool TraceFile::read_tolerant(const std::string& path,
                              std::vector<TraceRecord>* out_records,
                              ReadStats* stats) {
  return read_materialized(path, /*strict=*/false, out_records, stats);
}

}  // namespace netclients::roots
