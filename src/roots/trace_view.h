#pragma once

// Zero-copy ingestion for the binary DITL trace format (NCD1).
//
// `TraceFile::read_tolerant` materializes every record — a std::string per
// label, a std::vector per name, the whole trace resident before the scan
// starts. At DITL scale (billions of records) the scan is allocation-bound
// long before it is CPU-bound. `TraceView` is the streaming alternative:
// the file is mmap-ed (or slurped once into a private buffer when mapping
// is unavailable), the NCD1 framing is validated once, and records are
// exposed as `TraceRecordRef`s — fixed header fields decoded in place,
// labels as std::string_views into the mapped bytes, zero per-record heap
// work. Tolerant skip-and-count semantics are identical to
// `read_tolerant`: the format has no record framing, so the first
// structural error ends the valid prefix and the declared remainder is
// counted as skipped.
//
// Lifetime contract: a TraceRecordRef (and every string_view it hands
// out) borrows the view's mapping and is valid only while the TraceView
// is alive. Consumers that outlive the view must materialize().

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "roots/file_bytes.h"
#include "roots/trace.h"

namespace netclients::roots {

/// A non-owning reference to one validated record inside a TraceView
/// mapping. Fixed fields are decoded on access (unaligned memcpy loads);
/// labels are string_views over the mapped label bytes.
class TraceRecordRef {
 public:
  net::Ipv4Addr source() const { return net::Ipv4Addr(load_u32(p_)); }
  char root_letter() const { return p_[4]; }
  dns::RecordType qtype() const {
    return static_cast<dns::RecordType>(load_u16(p_ + 5));
  }
  net::SimTime timestamp() const { return load_f64(p_ + 7); }

  std::size_t label_count() const {
    return static_cast<unsigned char>(p_[15]);
  }
  bool is_single_label() const { return label_count() == 1; }

  /// First label's bytes — the only label the Chromium signature scan
  /// inspects. Raw file bytes: not canonicalized to lowercase the way a
  /// materialized DnsName is.
  std::string_view first_label() const {
    const unsigned char len = static_cast<unsigned char>(p_[kFixedBytes]);
    return std::string_view(p_ + kFixedBytes + 1, len);
  }

  /// i-th label; O(i) — walks the length bytes. Prefer for_each_label for
  /// full traversal.
  std::string_view label(std::size_t i) const {
    const char* q = p_ + kFixedBytes;
    for (std::size_t skip = 0; skip < i; ++skip) {
      q += 1 + static_cast<unsigned char>(*q);
    }
    const unsigned char len = static_cast<unsigned char>(*q);
    return std::string_view(q + 1, len);
  }

  template <typename Fn>
  void for_each_label(Fn&& fn) const {
    const char* q = p_ + kFixedBytes;
    for (std::size_t i = 0, n = label_count(); i < n; ++i) {
      const unsigned char len = static_cast<unsigned char>(*q);
      fn(std::string_view(q + 1, len));
      q += 1 + len;
    }
  }

  /// Whole-record size on disk (fixed header plus label region).
  std::size_t size_bytes() const { return size_; }

  /// Deep copy into an owning TraceRecord (allocates — the slow path the
  /// view exists to avoid; used by the materializing readers and by
  /// consumers that outlive the mapping).
  TraceRecord materialize() const;

 private:
  friend class TraceView;

  static constexpr std::size_t kFixedBytes = 16;  // u32+u8+u16+f64+u8

  static std::uint32_t load_u32(const char* p) {
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static std::uint16_t load_u16(const char* p) {
    std::uint16_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static double load_f64(const char* p) {
    double v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }

  const char* p_ = nullptr;  // fixed header start
  std::size_t size_ = 0;     // validated whole-record byte size
};

/// An open NCD1 trace: header validated once at open(), records decoded
/// lazily through cursors. Move-only; unmaps/frees on destruction.
class TraceView {
 public:
  using Backing = FileBytes::Backing;

  /// Validates magic + count header. Returns nullopt exactly when
  /// `read_tolerant` would return false: unopenable file or invalid
  /// magic/count header. Damaged record bytes are *not* an open error —
  /// they surface as skip-and-count during cursor traversal.
  static std::optional<TraceView> open(const std::string& path,
                                       Backing backing = Backing::kAuto);

  /// The header's (untrusted) record count. Traversal never yields more
  /// than this many records, and yields fewer only on a structural error.
  std::uint64_t declared_count() const { return declared_; }
  /// True when the bytes are an mmap mapping (vs a heap buffer).
  bool mapped() const { return bytes_.mapped(); }
  /// Record-region size: file bytes past the 12-byte header.
  std::size_t payload_bytes() const { return bytes_.size() - kHeaderBytes; }

  /// Forward decoder over the record region. Validation rules mirror the
  /// materializing reader exactly (same bounds checks, same label-length
  /// and wire-length limits as DnsName::from_labels), so the two paths
  /// accept byte-identical prefixes of any input.
  class Cursor {
   public:
    /// Byte offset (from the first record) of the next record boundary.
    std::size_t offset() const { return static_cast<std::size_t>(p_ - begin_); }
    /// Records decoded so far (== the index of the next record).
    std::uint64_t index() const { return index_; }

    /// Decodes and validates the record at the cursor into `ref` and
    /// advances. Returns false — without advancing — once `declared_count`
    /// records were read or at the first structural error; the format has
    /// no framing, so a cursor never resyncs past damage.
    bool next(TraceRecordRef* ref) {
      if (index_ >= limit_) return false;
      const char* p = p_;
      if (end_ - p < static_cast<std::ptrdiff_t>(TraceRecordRef::kFixedBytes))
        return false;
      const std::size_t labels = static_cast<unsigned char>(p[15]);
      const char* q = p + TraceRecordRef::kFixedBytes;
      std::size_t wire = 1;  // root terminator
      for (std::size_t i = 0; i < labels; ++i) {
        if (end_ - q < 1) return false;
        const unsigned char len = static_cast<unsigned char>(*q);
        ++q;
        if (len == 0 || len > 63) return false;
        if (end_ - q < static_cast<std::ptrdiff_t>(len)) return false;
        wire += 1 + static_cast<std::size_t>(len);
        q += len;
      }
      if (wire > 255) return false;
      ref->p_ = p;
      ref->size_ = static_cast<std::size_t>(q - p);
      p_ = q;
      ++index_;
      return true;
    }

   private:
    friend class TraceView;
    const char* begin_ = nullptr;
    const char* p_ = nullptr;
    const char* end_ = nullptr;
    std::uint64_t index_ = 0;
    std::uint64_t limit_ = 0;
  };

  /// Cursor at the first record.
  Cursor cursor() const { return cursor_at(0, 0); }

  /// Cursor at a known record boundary — `offset`/`index` must come from a
  /// prior traversal (e.g. a chunk partition); arbitrary offsets would
  /// decode garbage as records.
  Cursor cursor_at(std::size_t offset, std::uint64_t index) const {
    Cursor cur;
    cur.begin_ = bytes_.data() + kHeaderBytes;
    cur.end_ = bytes_.data() + bytes_.size();
    cur.p_ = cur.begin_ + (offset > payload_bytes() ? payload_bytes() : offset);
    cur.index_ = index;
    cur.limit_ = declared_;
    return cur;
  }

  /// One tolerant full walk; same stats as TraceFile::read_tolerant.
  TraceFile::ReadStats validate() const;

 private:
  TraceView() = default;

  static constexpr std::size_t kHeaderBytes = 12;  // magic + u64 count

  FileBytes bytes_;  // whole file, header included
  std::uint64_t declared_ = 0;
};

}  // namespace netclients::roots
