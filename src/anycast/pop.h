#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/geo.h"

namespace netclients::anycast {

/// Identifier of a Google-Public-DNS-style point of presence.
using PopId = int;
inline constexpr PopId kNoPop = -1;

/// One anycast PoP. The default table mirrors the paper's world: 45 sites,
/// of which 27 actively announce the anycast route (22 end up reachable
/// from the cloud vantage points, 5 only show up as resolvers in CDN logs)
/// and 18 are inactive (they answer no clients — the paper verified 18
/// unprobed sites sent no queries to Microsoft, Appendix A.1).
struct PopSite {
  PopId id = kNoPop;
  std::string city;
  std::string country_code;  // ISO 3166-1 alpha-2
  net::LatLon location;
  bool active = true;          // announces the anycast route
  double traffic_weight = 1.0; // relative share of client queries
};

/// The set of PoPs of a public anycast DNS service.
class PopTable {
 public:
  explicit PopTable(std::vector<PopSite> sites);

  /// The default 45-site table modelled on Google Public DNS's public PoP
  /// list (city locations are real; the active/inactive split reproduces
  /// the paper's 22/5/18 classification).
  static PopTable google_default();

  const std::vector<PopSite>& sites() const { return sites_; }
  const PopSite& site(PopId id) const { return sites_.at(static_cast<std::size_t>(id)); }
  std::size_t size() const { return sites_.size(); }

  std::vector<PopId> active_pops() const;

  /// Nearest *active* PoP by great-circle distance, or kNoPop if none.
  PopId nearest_active(net::LatLon location) const;

  std::optional<PopId> find_by_city(const std::string& city) const;

 private:
  std::vector<PopSite> sites_;
};

}  // namespace netclients::anycast
