#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/geo.h"
#include "net/ipv4.h"

namespace netclients::anycast {

/// A measurement vantage point: a cloud VM that issues DNS probes. Mirrors
/// the paper's AWS + Vultr fleet (§3.1.1): probes from each VP reach
/// whatever PoP anycast routes that VM to, and the union of reached PoPs is
/// the "probed" set (22 of 45 in the paper).
struct VantagePoint {
  int id = -1;
  std::string name;      // e.g. "aws-us-west-2"
  std::string provider;  // "aws" | "vultr"
  std::string country_code;
  net::LatLon location;
  net::Ipv4Addr address;  // source address of its probes
};

/// The default fleet: one VM per cloud region the paper could use. VP
/// placement determines PoP coverage — there are deliberately no VMs near
/// Hong Kong, Osaka, Hamina, Buenos Aires, or Lagos, which is how those
/// five active PoPs end up unprobed (Appendix A.1).
std::vector<VantagePoint> default_vantage_fleet();

}  // namespace netclients::anycast
