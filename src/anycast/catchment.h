#pragma once

#include <cstdint>
#include <vector>

#include "anycast/pop.h"
#include "net/geo.h"
#include "net/rng.h"

namespace netclients::anycast {

/// Per-network routing bias injected by the world model. Anycast catchments
/// follow BGP, not geography; the paper observes that anycast "does not
/// always route clients to the nearest PoP" [8,21,24] and that South
/// American coverage is poor even with all SA PoPs probed. The bias says:
/// with `misroute_probability`, a network's queries land on one of
/// `alternates` (weighted) instead of the geographically sensible PoP.
struct RouteBias {
  double misroute_probability = 0.0;
  std::vector<PopId> alternates;  // must be active PoPs

  bool empty() const { return alternates.empty() || misroute_probability <= 0; }
};

/// Deterministic anycast catchment model.
///
/// For a network identified by `route_key` (hash of its prefix/AS) at a
/// geographic location, picks the serving PoP:
///   1. with the network's misroute probability, a biased alternate;
///   2. otherwise the active PoP minimizing distance × detour, where the
///      detour factor is a per-(network, PoP) lognormal sample — stable for
///      the lifetime of the network, as real BGP decisions are on the
///      timescale of a probing campaign.
class CatchmentModel {
 public:
  CatchmentModel(const PopTable* pops, std::uint64_t seed,
                 double detour_sigma = 0.25)
      : pops_(pops), seed_(seed), detour_sigma_(detour_sigma) {}

  /// The PoP serving queries from this network. kNoPop only if no PoP is
  /// active.
  PopId pop_for(net::LatLon location, std::uint64_t route_key,
                const RouteBias& bias = {}) const;

  const PopTable& pops() const { return *pops_; }

 private:
  const PopTable* pops_;
  std::uint64_t seed_;
  double detour_sigma_;
};

}  // namespace netclients::anycast
