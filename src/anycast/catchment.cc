#include "anycast/catchment.h"

#include <cmath>
#include <limits>

namespace netclients::anycast {

PopId CatchmentModel::pop_for(net::LatLon location, std::uint64_t route_key,
                              const RouteBias& bias) const {
  if (!bias.empty()) {
    net::Rng rng(net::stable_seed(seed_ ^ 0xB1A5u, route_key));
    if (rng.uniform() < bias.misroute_probability) {
      return bias.alternates[rng.below(bias.alternates.size())];
    }
  }
  PopId best = kNoPop;
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& site : pops_->sites()) {
    if (!site.active) continue;
    // Stable per-(network, PoP) detour: e^{N(0, sigma)} stretches the
    // geographic distance to emulate BGP path quality. A small constant
    // offset keeps PoP choice well-defined for co-located clients.
    net::Rng rng(net::stable_seed(seed_, route_key,
                                  static_cast<std::uint64_t>(site.id)));
    const double detour = std::exp(rng.normal(0.0, detour_sigma_));
    // Low-capacity sites announce the anycast route sparsely (few transit
    // relationships), so BGP prefers well-connected sites even at larger
    // geographic distance; the capacity factor models that preference.
    const double capacity =
        0.08 + 0.92 * site.traffic_weight / (site.traffic_weight + 1.0);
    const double score =
        (net::haversine_km(location, site.location) + 50.0) * detour /
        capacity;
    if (score < best_score) {
      best_score = score;
      best = site.id;
    }
  }
  return best;
}

}  // namespace netclients::anycast
