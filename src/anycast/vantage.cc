#include "anycast/vantage.h"

namespace netclients::anycast {
namespace {

VantagePoint make(int id, std::string name, std::string provider,
                  std::string cc, double lat, double lon) {
  // Vantage addresses live in a reserved measurement block (198.18.0.0/15,
  // RFC 2544 benchmarking space) so they never collide with the synthetic
  // client address plan.
  return VantagePoint{
      id,
      std::move(name),
      std::move(provider),
      std::move(cc),
      {lat, lon},
      net::Ipv4Addr::from_octets(198, 18, static_cast<std::uint8_t>(id), 1)};
}

}  // namespace

std::vector<VantagePoint> default_vantage_fleet() {
  std::vector<VantagePoint> fleet;
  int id = 0;
  // AWS regions.
  fleet.push_back(make(id++, "aws-us-west-2", "aws", "US", 45.523, -122.676));  // Portland
  fleet.push_back(make(id++, "aws-us-east-1", "aws", "US", 39.043, -77.487));   // Ashburn
  fleet.push_back(make(id++, "aws-us-east-2", "aws", "US", 39.961, -82.999));   // Columbus
  fleet.push_back(make(id++, "aws-us-west-1", "aws", "US", 37.774, -122.419));  // SF
  fleet.push_back(make(id++, "aws-ca-central-1", "aws", "CA", 45.501, -73.567));// Montreal
  fleet.push_back(make(id++, "aws-sa-east-1", "aws", "BR", -23.551, -46.633));  // Sao Paulo
  fleet.push_back(make(id++, "aws-eu-west-1", "aws", "IE", 53.349, -6.260));    // Dublin
  fleet.push_back(make(id++, "aws-eu-west-2", "aws", "GB", 51.507, -0.128));    // London
  fleet.push_back(make(id++, "aws-eu-west-3", "aws", "FR", 48.857, 2.352));     // Paris
  fleet.push_back(make(id++, "aws-eu-central-1", "aws", "DE", 50.110, 8.682));  // Frankfurt
  fleet.push_back(make(id++, "aws-ap-northeast-1", "aws", "JP", 35.676, 139.650)); // Tokyo
  fleet.push_back(make(id++, "aws-ap-northeast-2", "aws", "KR", 37.566, 126.978)); // Seoul
  fleet.push_back(make(id++, "aws-ap-southeast-1", "aws", "SG", 1.352, 103.820));  // Singapore
  fleet.push_back(make(id++, "aws-ap-southeast-2", "aws", "AU", -33.869, 151.209));// Sydney
  fleet.push_back(make(id++, "aws-ap-south-1", "aws", "IN", 19.076, 72.878));   // Mumbai
  fleet.push_back(make(id++, "aws-us-southeast", "aws", "US", 33.749, -84.388));// Atlanta
  // Vultr locations filling the gaps AWS leaves.
  fleet.push_back(make(id++, "vultr-dallas", "vultr", "US", 32.776, -96.797));
  fleet.push_back(make(id++, "vultr-charleston", "vultr", "US", 32.776, -79.931));
  fleet.push_back(make(id++, "vultr-omaha", "vultr", "US", 41.257, -95.995));
  fleet.push_back(make(id++, "vultr-los-angeles", "vultr", "US", 34.052, -118.244));
  fleet.push_back(make(id++, "vultr-toronto", "vultr", "CA", 43.651, -79.347));
  fleet.push_back(make(id++, "vultr-amsterdam", "vultr", "NL", 52.370, 4.895));
  fleet.push_back(make(id++, "vultr-zurich", "vultr", "CH", 47.377, 8.541));
  fleet.push_back(make(id++, "vultr-taipei", "vultr", "TW", 25.033, 121.565));
  fleet.push_back(make(id++, "vultr-santiago", "vultr", "CL", -33.449, -70.669));
  fleet.push_back(make(id++, "vultr-miami", "vultr", "US", 25.762, -80.192));
  return fleet;
}

}  // namespace netclients::anycast
