#include "anycast/pop.h"

#include <cassert>
#include <limits>

namespace netclients::anycast {
namespace {

PopSite make(PopId id, std::string city, std::string cc, double lat,
             double lon, bool active, double weight) {
  return PopSite{id, std::move(city), std::move(cc), {lat, lon}, active,
                 weight};
}

}  // namespace

PopTable::PopTable(std::vector<PopSite> sites) : sites_(std::move(sites)) {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    assert(sites_[i].id == static_cast<PopId>(i));
  }
}

PopTable PopTable::google_default() {
  std::vector<PopSite> s;
  PopId id = 0;
  // --- 22 active sites that the cloud vantage points end up reaching.
  // United States (seven states) + Canada (two provinces).
  s.push_back(make(id++, "The Dalles", "US", 45.594, -121.178, true, 3.0));
  s.push_back(make(id++, "Council Bluffs", "US", 41.261, -95.861, true, 3.0));
  s.push_back(make(id++, "Charleston", "US", 32.776, -79.931, true, 2.5));
  s.push_back(make(id++, "Ashburn", "US", 39.043, -77.487, true, 3.5));
  s.push_back(make(id++, "Atlanta", "US", 33.749, -84.388, true, 2.0));
  s.push_back(make(id++, "Dallas", "US", 32.776, -96.797, true, 2.0));
  s.push_back(make(id++, "Los Angeles", "US", 34.052, -118.244, true, 3.0));
  s.push_back(make(id++, "Montreal", "CA", 45.501, -73.567, true, 1.2));
  s.push_back(make(id++, "Toronto", "CA", 43.651, -79.347, true, 1.5));
  // Europe (five countries).
  s.push_back(make(id++, "Groningen", "NL", 53.219, 6.566, true, 2.5));
  s.push_back(make(id++, "Zurich", "CH", 47.377, 8.541, true, 1.8));
  s.push_back(make(id++, "Frankfurt", "DE", 50.110, 8.682, true, 3.0));
  s.push_back(make(id++, "London", "GB", 51.507, -0.128, true, 2.8));
  s.push_back(make(id++, "Dublin", "IE", 53.349, -6.260, true, 1.5));
  // Asia (five countries/regions).
  s.push_back(make(id++, "Tokyo", "JP", 35.676, 139.650, true, 2.8));
  s.push_back(make(id++, "Singapore", "SG", 1.352, 103.820, true, 2.5));
  s.push_back(make(id++, "Changhua", "TW", 24.081, 120.538, true, 2.0));
  s.push_back(make(id++, "Mumbai", "IN", 19.076, 72.878, true, 3.0));
  s.push_back(make(id++, "Seoul", "KR", 37.566, 126.978, true, 1.8));
  // South America (two countries) + Australia.
  s.push_back(make(id++, "Sao Paulo", "BR", -23.551, -46.633, true, 2.0));
  s.push_back(make(id++, "Santiago", "CL", -33.449, -70.669, true, 1.0));
  s.push_back(make(id++, "Sydney", "AU", -33.869, 151.209, true, 1.5));
  // --- 5 active sites no vantage point reaches ("unprobed and verified").
  // Low-capacity sites with sparse anycast announcements; together they
  // carry ~5% of client queries, per Appendix A.1.
  s.push_back(make(id++, "Hong Kong", "HK", 22.320, 114.170, true, 0.12));
  s.push_back(make(id++, "Osaka", "JP", 34.694, 135.502, true, 0.10));
  s.push_back(make(id++, "Hamina", "FI", 60.570, 27.198, true, 0.15));
  s.push_back(make(id++, "Buenos Aires", "AR", -34.604, -58.382, true, 0.25));
  s.push_back(make(id++, "Lagos", "NG", 6.524, 3.379, true, 0.12));
  // --- 18 inactive sites ("unprobed and unverified": no anycast route).
  s.push_back(make(id++, "Stockholm", "SE", 59.329, 18.069, false, 0));
  s.push_back(make(id++, "Warsaw", "PL", 52.230, 21.012, false, 0));
  s.push_back(make(id++, "Madrid", "ES", 40.417, -3.704, false, 0));
  s.push_back(make(id++, "Milan", "IT", 45.464, 9.190, false, 0));
  s.push_back(make(id++, "Vienna", "AT", 48.208, 16.374, false, 0));
  s.push_back(make(id++, "Doha", "QA", 25.285, 51.531, false, 0));
  s.push_back(make(id++, "Tel Aviv", "IL", 32.085, 34.782, false, 0));
  s.push_back(make(id++, "Johannesburg", "ZA", -26.204, 28.047, false, 0));
  s.push_back(make(id++, "Nairobi", "KE", -1.292, 36.822, false, 0));
  s.push_back(make(id++, "Bangkok", "TH", 13.756, 100.502, false, 0));
  s.push_back(make(id++, "Kuala Lumpur", "MY", 3.139, 101.687, false, 0));
  s.push_back(make(id++, "Manila", "PH", 14.600, 120.984, false, 0));
  s.push_back(make(id++, "Auckland", "NZ", -36.848, 174.763, false, 0));
  s.push_back(make(id++, "Lima", "PE", -12.046, -77.043, false, 0));
  s.push_back(make(id++, "Bogota", "CO", 4.711, -74.072, false, 0));
  s.push_back(make(id++, "Mexico City", "MX", 19.433, -99.133, false, 0));
  s.push_back(make(id++, "Cairo", "EG", 30.044, 31.236, false, 0));
  s.push_back(make(id++, "Riyadh", "SA", 24.713, 46.675, false, 0));
  assert(s.size() == 45);
  return PopTable(std::move(s));
}

std::vector<PopId> PopTable::active_pops() const {
  std::vector<PopId> out;
  for (const auto& site : sites_) {
    if (site.active) out.push_back(site.id);
  }
  return out;
}

PopId PopTable::nearest_active(net::LatLon location) const {
  PopId best = kNoPop;
  double best_km = std::numeric_limits<double>::infinity();
  for (const auto& site : sites_) {
    if (!site.active) continue;
    double km = net::haversine_km(location, site.location);
    if (km < best_km) {
      best_km = km;
      best = site.id;
    }
  }
  return best;
}

std::optional<PopId> PopTable::find_by_city(const std::string& city) const {
  for (const auto& site : sites_) {
    if (site.city == city) return site.id;
  }
  return std::nullopt;
}

}  // namespace netclients::anycast
