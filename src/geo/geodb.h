#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/geo.h"
#include "net/rng.h"

namespace netclients::geo {

/// One /24's geolocation as a commercial database would report it: a point
/// plus an accuracy (error) radius. MaxMind is "more accurate for end-user
/// networks" [16]; the error model below reflects that by taking a quality
/// parameter from the caller.
struct GeoRecord {
  net::LatLon location;
  double error_radius_km = 0;
  std::uint16_t country = 0;  // index into the world's country table
};

/// A MaxMind-style IP geolocation database keyed by /24 index.
///
/// Built once (sorted by index) and then immutable; lookups are binary
/// search. The cache-probing pipeline uses it to (a) select calibration
/// prefixes with error radius < 200 km and (b) assign candidate prefixes to
/// PoPs whose service radius could contain them (§3.1.1).
class GeoDatabase {
 public:
  /// Entries must be added in strictly increasing /24-index order.
  void add(std::uint32_t slash24_index, GeoRecord record);

  std::optional<GeoRecord> lookup(std::uint32_t slash24_index) const;

  std::size_t size() const { return index_.size(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < index_.size(); ++i) fn(index_[i], records_[i]);
  }

  /// The observation model: displaces the true location and reports an
  /// error radius. `quality` in (0, 1]: eyeball networks ~0.9 (small error,
  /// honest radius), infrastructure ~0.3 (large error, often optimistic
  /// radius) — capturing why geolocation of user networks is trustworthy
  /// and that of routers is not [16].
  static GeoRecord observe(net::LatLon truth, std::uint16_t country,
                           double quality, net::Rng& rng);

 private:
  std::vector<std::uint32_t> index_;  // sorted /24 indices
  std::vector<GeoRecord> records_;
};

}  // namespace netclients::geo
