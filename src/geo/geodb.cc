#include "geo/geodb.h"

#include <algorithm>
#include <cassert>

namespace netclients::geo {

void GeoDatabase::add(std::uint32_t slash24_index, GeoRecord record) {
  assert(index_.empty() || index_.back() < slash24_index);
  index_.push_back(slash24_index);
  records_.push_back(record);
}

std::optional<GeoRecord> GeoDatabase::lookup(
    std::uint32_t slash24_index) const {
  auto it = std::lower_bound(index_.begin(), index_.end(), slash24_index);
  if (it == index_.end() || *it != slash24_index) return std::nullopt;
  return records_[static_cast<std::size_t>(it - index_.begin())];
}

GeoRecord GeoDatabase::observe(net::LatLon truth, std::uint16_t country,
                               double quality, net::Rng& rng) {
  // Displacement: lognormal distance scaled by (1 - quality), random
  // bearing. High quality -> tens of km; low quality -> hundreds+.
  const double displacement_km =
      rng.lognormal(0.0, 1.0) * 15.0 * (1.05 - quality) * 10.0;
  const double bearing = rng.uniform(0.0, 360.0);
  GeoRecord record;
  record.location = net::destination_point(truth, bearing, displacement_km);
  record.country = country;
  // Reported radius: correlated with the actual error but noisy; low
  // quality records often *understate* their error, which is exactly why
  // the pipeline filters on reported radius < 200 km and still needs the
  // per-PoP service-radius slack.
  const double honesty = rng.uniform(0.6, 1.6) * (0.5 + quality);
  record.error_radius_km =
      std::max(1.0, displacement_km * honesty + rng.uniform(0.0, 25.0));
  return record;
}

}  // namespace netclients::geo
