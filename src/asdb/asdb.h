#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>

namespace netclients::asdb {

/// AS business categories, a condensed version of the ASdb taxonomy [38]
/// used in §4 to characterize the 29,973 ASes the paper's techniques detect
/// but APNIC misses (39.5% ISPs, 17.4% hosting/cloud, 6.2% education).
enum class AsCategory : std::uint8_t {
  kIsp,
  kMobileCarrier,
  kHostingCloud,
  kEducation,
  kEnterprise,
  kGovernment,
  kContentCdn,
  kTransit,
  kOther,
};

constexpr std::string_view to_string(AsCategory c) {
  switch (c) {
    case AsCategory::kIsp: return "ISP";
    case AsCategory::kMobileCarrier: return "Mobile carrier";
    case AsCategory::kHostingCloud: return "Hosting/cloud";
    case AsCategory::kEducation: return "Education";
    case AsCategory::kEnterprise: return "Enterprise";
    case AsCategory::kGovernment: return "Government";
    case AsCategory::kContentCdn: return "Content/CDN";
    case AsCategory::kTransit: return "Transit";
    case AsCategory::kOther: return "Other";
  }
  return "?";
}

/// ASdb-style categorization with partial coverage: the real database
/// categorizes 92.7% of the ASes the paper looked up; uncategorized ASes
/// return nullopt.
class AsdbDatabase {
 public:
  void add(std::uint32_t asn, AsCategory category) {
    categories_.insert_or_assign(asn, category);
  }

  std::optional<AsCategory> lookup(std::uint32_t asn) const {
    auto it = categories_.find(asn);
    if (it == categories_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t size() const { return categories_.size(); }

 private:
  std::unordered_map<std::uint32_t, AsCategory> categories_;
};

}  // namespace netclients::asdb
