#pragma once

// The network query client: `lookup_many` over the wire.
//
// `Client::lookup_many` has the same shape as the serving tier's own
// batched entry point — a span of addresses in, one `LookupResult` per
// address out, in order — but every answer crosses the bus as NCS1 wire
// bytes. Queries are cut into fixed-size chunks (one message each), sent
// over UDP first, and pumped synchronously on the bus's virtual clock:
// the client advances the bus event by event (`next_event_time`) so its
// timeout never overshoots an arrival.
//
// Resilience is the stock stack: per-chunk retries with
// `RetryPolicy`-jittered backoff, per-server `CircuitBreaker`, and two
// escalation paths to TCP — the protocol one (a TC=1 response: the
// answer existed but outgrew the UDP cap; escalation is immediate,
// sticky, and consumes no retry budget) and the optional soft one
// (`RetryPolicy::escalate_udp_to_tcp`: consecutive UDP timeouts force
// the flow onto TCP, the paper's forced migration). Chunks whose retry
// budget exhausts yield miss results (skip-and-count; `failed_chunks`
// says how many) — the call always returns, it never hangs.
//
// Determinism: chunk boundaries depend only on the query count, ids and
// connection ids are sequential, backoff jitter is keyed by
// (seed, chunk identity, attempt) through net::stable_seed, and the bus
// delivers in (deliver_at, sequence) order — so client-observed results
// are byte-identical across runs and at any REPRO_THREADS, and under a
// seeded FaultPlane the loss/retry/escalation dance replays exactly.

#include <cstdint>
#include <span>
#include <vector>

#include "core/resilience/resilience.h"
#include "core/serve/serve.h"
#include "dns/packet.h"
#include "net/ipv4.h"
#include "netsim/bus.h"
#include "netsvc/protocol.h"
#include "netsvc/transport.h"

namespace netclients::netsvc {

struct ClientOptions {
  /// Addresses per query message (one chunk = one request/response).
  std::size_t batch_per_message = 8;
  /// Retry/timeout/backoff policy per chunk. `max_attempts`,
  /// `udp/tcp_timeout_seconds`, the backoff ladder, and the optional
  /// `escalate_udp_to_tcp` all apply.
  core::resilience::RetryPolicy retry;
  /// Circuit breaker on the server link (skip-and-count while open).
  core::resilience::BreakerPolicy breaker;
  /// Propagation latency of a request datagram/segment.
  double request_latency = 0.01;
  /// The client's belief of the UDP payload cap: an encoded query larger
  /// than this is sent over TCP directly (the bus would truncate it).
  std::size_t udp_payload_cap = 512;
  /// Start transport (UDP unless configured otherwise); escalation may
  /// switch the client to TCP permanently.
  googledns::Transport transport = googledns::Transport::kUdp;
  StreamOptions stream;
};

/// Event counts of one client. Opt-in publish(), BusStats-style.
struct ClientStats {
  std::uint64_t udp_queries = 0;
  std::uint64_t tcp_queries = 0;
  std::uint64_t responses = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  /// TC=1 responses observed (each turns into a TCP re-ask).
  std::uint64_t truncated_seen = 0;
  /// Permanent switches to TCP (TC-driven or soft-failure-driven).
  std::uint64_t escalations = 0;
  /// Chunks that yielded miss results: retry budget exhausted, an open
  /// breaker, or a server error.
  std::uint64_t failed_chunks = 0;
  std::uint64_t breaker_skipped = 0;
  /// Responses discarded as unusable (stale id, parse failure, count
  /// mismatch, server error).
  std::uint64_t discarded = 0;
  /// Queries too large for the UDP cap, sent over TCP without switching.
  std::uint64_t oversize_queries = 0;

  /// Registers the values as `netsvc.client.*` counters in the global
  /// registry. Call once per run.
  void publish() const;
};

class Client {
 public:
  /// Attaches to `bus` at `address`, talking to the server at `server`.
  /// The bus must outlive the client; the client detaches on destruction.
  Client(netsim::MessageBus& bus, net::Ipv4Addr address,
         net::Ipv4Addr server, ClientOptions options = {});
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// THE entry point, mirroring ClientIndex::lookup_many: one result per
  /// address written into `out` (which must hold addrs.size() slots), in
  /// query order. Blocks on the *virtual* clock only.
  void lookup_many(std::span<const net::Ipv4Addr> addrs,
                   core::serve::LookupResult* out);
  /// Allocating convenience over the span core.
  std::vector<core::serve::LookupResult> lookup_many(
      std::span<const net::Ipv4Addr> addrs);

  /// Transport the next chunk would use (observes sticky escalation).
  googledns::Transport transport() const { return transport_; }
  const ClientStats& stats() const { return stats_; }
  const StreamStats& stream_stats() const { return stream_.stats(); }

 private:
  /// One chunk: send, pump, retry until answered or budget exhausted.
  void lookup_chunk(std::span<const net::Ipv4Addr> addrs,
                    core::serve::LookupResult* out);

  /// Sends one request for `addrs` at virtual time `send_at` over
  /// `transport`; returns the conn id used (0 for UDP).
  std::uint32_t send_request(std::uint16_t id,
                             std::span<const net::Ipv4Addr> addrs,
                             googledns::Transport transport, double send_at);

  /// Pumps the bus event by event until a response for `pending_id_`
  /// arrives or the virtual deadline passes. Returns true on response.
  bool pump_until(double deadline);

  /// Accepts a candidate response payload delivered to our address.
  void offer_response(std::span<const std::uint8_t> payload);

  /// Flips the sticky transport to TCP (idempotent).
  void escalate();

  netsim::MessageBus& bus_;
  net::Ipv4Addr address_;
  net::Ipv4Addr server_;
  ClientOptions options_;
  StreamSocket stream_;
  dns::WireArena arena_;
  core::resilience::CircuitBreaker breaker_;
  googledns::Transport transport_;
  int consecutive_soft_failures_ = 0;
  std::uint16_t next_id_ = 1;
  std::uint32_t next_conn_ = 1;
  std::uint16_t pending_id_ = 0;
  bool have_response_ = false;
  std::vector<std::uint8_t> response_;  // latest matching payload
  ResponseView parsed_;                 // reused across chunks
  ClientStats stats_;
};

}  // namespace netclients::netsvc
