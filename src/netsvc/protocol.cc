#include "netsvc/protocol.h"

#include <bit>
#include <cassert>

namespace netclients::netsvc {
namespace {

using core::serve::LookupResult;

constexpr char kHexDigits[] = "0123456789abcdef";
constexpr std::string_view kSuffixLabel = "ncs1";

/// Packet offset of the ".ncs1" suffix inside the first question's name
/// (header 12 + length octet 1 + 8 hex chars); later questions emit a
/// compression pointer here.
constexpr std::uint16_t kSuffixOffset = 12 + 1 + 8;

constexpr std::uint16_t kTypeTxt =
    static_cast<std::uint16_t>(dns::RecordType::kTxt);

/// Decodes one lowercase hex digit; -1 on anything else (strict: NCS1
/// names are canonical, so uppercase is a profile violation, not case
/// folding).
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

/// Writes the DNS header. `flags` is the raw RFC 1035 flags word.
void write_header(dns::BufWriter& writer, std::uint16_t id,
                  std::uint16_t flags, std::uint16_t qd, std::uint16_t an) {
  writer.u16(id);
  writer.u16(flags);
  writer.u16(qd);
  writer.u16(an);
  writer.u16(0);  // NSCOUNT
  writer.u16(0);  // ARCOUNT
}

constexpr std::uint16_t kFlagsQuery = 0x0000;           // qr=0, rd=0
constexpr std::uint16_t kFlagsResponse = 0x8400;        // qr=1, aa=1
constexpr std::uint16_t kFlagsTruncated = 0x8600;       // qr=1, aa=1, tc=1
constexpr std::uint16_t kFlagsFormErr = 0x8401;         // qr=1, aa=1, rcode=1

}  // namespace

std::span<const std::uint8_t> encode_query(
    std::uint16_t id, std::span<const net::Ipv4Addr> addrs,
    dns::WireArena& arena) {
  assert(!addrs.empty() && addrs.size() <= kMaxQuestionsPerMessage);
  dns::BufWriter writer(arena);
  write_header(writer, id, kFlagsQuery,
               static_cast<std::uint16_t>(addrs.size()), 0);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const std::uint32_t value = addrs[i].value();
    writer.u8(8);
    for (int shift = 28; shift >= 0; shift -= 4) {
      writer.u8(static_cast<std::uint8_t>(kHexDigits[(value >> shift) & 0xF]));
    }
    if (i == 0) {
      writer.u8(static_cast<std::uint8_t>(kSuffixLabel.size()));
      for (char c : kSuffixLabel) writer.u8(static_cast<std::uint8_t>(c));
      writer.u8(0);
    } else {
      writer.u16(0xC000 | kSuffixOffset);
    }
    writer.u16(kTypeTxt);
    writer.u16(dns::kClassIn);
  }
  assert(writer.size() == query_wire_size(addrs.size()));
  return writer.finish();
}

ParseStatus parse_query(std::span<const std::uint8_t> wire, QueryView* out) {
  out->clear();
  const auto view = dns::MessageView::parse(wire);
  if (!view) return ParseStatus::kDrop;
  const dns::Header& header = view->header();
  if (header.qr) return ParseStatus::kDrop;  // a response, not a query
  out->id = header.id;
  if (header.opcode != 0 || header.tc) return ParseStatus::kFormErr;
  const std::size_t count = view->question_count();
  if (count == 0 || count > kMaxQuestionsPerMessage) {
    return ParseStatus::kFormErr;
  }
  using Section = dns::MessageView::Section;
  if (view->record_count(Section::kAnswer) != 0 ||
      view->record_count(Section::kAuthority) != 0 ||
      view->record_count(Section::kAdditional) != 0 || view->edns()) {
    return ParseStatus::kFormErr;
  }
  // Re-walk the (already fully validated) question section to harvest the
  // per-question name offsets and the section's end — MessageView keeps
  // both private. parse_name cannot fail here.
  dns::PacketReader reader(wire);
  reader.seek(12);
  out->addrs.reserve(count);
  out->name_offsets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t name_offset = reader.pos();
    dns::NameView name;
    if (!parse_name(reader, &name)) return ParseStatus::kDrop;  // unreachable
    std::uint16_t type = 0, qclass = 0;
    reader.u16(type);
    reader.u16(qclass);
    if (type != kTypeTxt || qclass != dns::kClassIn ||
        name.label_count() != 2) {
      return ParseStatus::kFormErr;
    }
    std::uint32_t value = 0;
    bool valid = true;
    std::size_t label_index = 0;
    name.for_each_label([&](std::string_view label) {
      if (label_index == 0) {
        if (label.size() != 8) {
          valid = false;
        } else {
          for (char c : label) {
            const int digit = hex_value(c);
            if (digit < 0) {
              valid = false;
              break;
            }
            value = (value << 4) | static_cast<std::uint32_t>(digit);
          }
        }
      } else if (label != kSuffixLabel) {
        valid = false;
      }
      ++label_index;
    });
    if (!valid) return ParseStatus::kFormErr;
    out->addrs.push_back(net::Ipv4Addr(value));
    out->name_offsets.push_back(static_cast<std::uint16_t>(name_offset));
  }
  out->question_bytes = wire.subspan(12, reader.pos() - 12);
  return ParseStatus::kOk;
}

std::span<const std::uint8_t> encode_response(
    const QueryView& query, std::span<const LookupResult> results,
    dns::WireArena& arena) {
  assert(results.size() == query.addrs.size());
  dns::BufWriter writer(arena);
  write_header(writer, query.id, kFlagsResponse,
               static_cast<std::uint16_t>(query.addrs.size()),
               static_cast<std::uint16_t>(results.size()));
  writer.bytes(query.question_bytes);
  for (std::size_t i = 0; i < results.size(); ++i) {
    assert(query.name_offsets[i] < 0x4000);
    writer.u16(0xC000 | query.name_offsets[i]);  // owner = question's name
    writer.u16(kTypeTxt);
    writer.u16(dns::kClassIn);
    writer.u32(0);  // TTL: answers are snapshots, never cacheable
    writer.u16(static_cast<std::uint16_t>(kResultBlobSize + 1));
    writer.u8(static_cast<std::uint8_t>(kResultBlobSize));
    write_result_blob(results[i], writer);
  }
  assert(writer.size() ==
         response_wire_size(query.question_bytes.size(), results.size()));
  return writer.finish();
}

std::span<const std::uint8_t> encode_truncated(const QueryView& query,
                                               dns::WireArena& arena) {
  dns::BufWriter writer(arena);
  write_header(writer, query.id, kFlagsTruncated,
               static_cast<std::uint16_t>(query.addrs.size()), 0);
  writer.bytes(query.question_bytes);
  return writer.finish();
}

std::span<const std::uint8_t> encode_formerr(std::uint16_t id,
                                             dns::WireArena& arena) {
  dns::BufWriter writer(arena);
  write_header(writer, id, kFlagsFormErr, 0, 0);
  return writer.finish();
}

bool parse_response(std::span<const std::uint8_t> wire, ResponseView* out) {
  out->clear();
  const auto view = dns::MessageView::parse(wire);
  if (!view) return false;
  const dns::Header& header = view->header();
  if (!header.qr) return false;
  out->id = header.id;
  out->truncated = header.tc;
  out->rcode = header.rcode;
  if (out->truncated) return true;  // TC responses carry no answers
  bool ok = true;
  view->for_each_record(
      dns::MessageView::Section::kAnswer,
      [&](const dns::MessageView::RecordView& record) {
        if (!ok) return;
        const auto blob = record.txt_segment();
        if (!blob) {
          ok = false;
          return;
        }
        const auto result = read_result_blob(*blob);
        if (!result) {
          ok = false;
          return;
        }
        out->results.push_back(*result);
      });
  return ok;
}

void write_result_blob(const LookupResult& result, dns::BufWriter& writer) {
  writer.u8(result.active ? 1 : 0);
  writer.u8(result.prefix.length());
  writer.u32(result.prefix.base().value());
  writer.u32(result.asn);
  writer.u16(result.country);
  writer.u32(result.domain_mask);
  const std::uint64_t volume_bits = std::bit_cast<std::uint64_t>(result.volume);
  writer.u32(static_cast<std::uint32_t>(volume_bits >> 32));
  writer.u32(static_cast<std::uint32_t>(volume_bits));
}

std::optional<LookupResult> read_result_blob(
    std::span<const std::uint8_t> blob) {
  if (blob.size() != kResultBlobSize) return std::nullopt;
  dns::PacketReader reader(blob);
  std::uint8_t flags = 0, prefix_length = 0;
  std::uint32_t prefix_base = 0, asn = 0, domain_mask = 0;
  std::uint16_t country = 0;
  std::uint32_t volume_hi = 0, volume_lo = 0;
  reader.u8(flags);
  reader.u8(prefix_length);
  reader.u32(prefix_base);
  reader.u32(asn);
  reader.u16(country);
  reader.u32(domain_mask);
  reader.u32(volume_hi);
  reader.u32(volume_lo);
  if (reader.failed() || prefix_length > 32) return std::nullopt;
  LookupResult result;
  result.active = (flags & 1) != 0;
  result.prefix = net::Prefix(net::Ipv4Addr(prefix_base), prefix_length);
  result.asn = asn;
  result.country = country;
  result.domain_mask = domain_mask;
  result.volume = std::bit_cast<double>(
      (std::uint64_t{volume_hi} << 32) | volume_lo);
  return result;
}

}  // namespace netclients::netsvc
