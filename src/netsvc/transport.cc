#include "netsvc/transport.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "core/obs/obs.h"

namespace netclients::netsvc {

namespace {
constexpr std::size_t kSegmentHeader = 8;  // u32 conn, u32 stream offset
}  // namespace

void StreamStats::publish(std::string_view prefix) const {
  obs::Registry& registry = obs::Registry::global();
  const std::string base = "netsvc.stream." + std::string(prefix) + ".";
  registry.counter(base + "segments_in").add(segments_in);
  registry.counter(base + "segments_out").add(segments_out);
  registry.counter(base + "frames_in").add(frames_in);
  registry.counter(base + "frames_out").add(frames_out);
  registry.counter(base + "resets").add(resets);
  registry.counter(base + "orphan_segments").add(orphan_segments);
  registry.counter(base + "zero_frames").add(zero_frames);
  registry.counter(base + "oversize_frames").add(oversize_frames);
  registry.counter(base + "evicted").add(evicted);
}

void StreamSocket::ingest(const netsim::Datagram& datagram, net::SimTime now) {
  ++stats_.segments_in;
  const auto& payload = datagram.payload;
  if (payload.size() < kSegmentHeader) {
    ++stats_.orphan_segments;
    return;
  }
  const std::uint32_t conn = (std::uint32_t{payload[0]} << 24) |
                             (std::uint32_t{payload[1]} << 16) |
                             (std::uint32_t{payload[2]} << 8) | payload[3];
  const std::uint32_t offset = (std::uint32_t{payload[4]} << 24) |
                               (std::uint32_t{payload[5]} << 16) |
                               (std::uint32_t{payload[6]} << 8) | payload[7];
  const std::uint64_t conn_key = key(datagram.src, conn);
  auto it = recv_.find(conn_key);
  if (it == recv_.end()) {
    if (offset != 0) {
      // Tail of a stream whose head was lost (or whose state was already
      // reset/evicted): without the missing prefix the frame boundary is
      // unknowable, so the segment is skipped and counted.
      ++stats_.orphan_segments;
      return;
    }
    if (recv_.size() >= options_.max_connections) {
      auto oldest = recv_.begin();
      for (auto walk = recv_.begin(); walk != recv_.end(); ++walk) {
        if (walk->second.opened_seq < oldest->second.opened_seq) oldest = walk;
      }
      recv_.erase(oldest);
      ++stats_.evicted;
    }
    it = recv_.emplace(conn_key, RecvState{}).first;
    it->second.opened_seq = next_opened_seq_++;
  }
  RecvState& state = it->second;
  if (offset != state.expected_offset) {
    // Gap: a segment was lost, blackholed, or jittered out of order.
    ++stats_.resets;
    recv_.erase(it);
    return;
  }
  state.buffer.insert(state.buffer.end(), payload.begin() + kSegmentHeader,
                      payload.end());
  state.expected_offset +=
      static_cast<std::uint32_t>(payload.size() - kSegmentHeader);
  if (!drain_frames(datagram.src, conn, state, now)) {
    ++stats_.resets;
    recv_.erase(conn_key);
  }
}

bool StreamSocket::drain_frames(net::Ipv4Addr peer, std::uint32_t conn,
                                RecvState& state, net::SimTime now) {
  std::size_t consumed = 0;
  auto& buffer = state.buffer;
  while (buffer.size() - consumed >= 2) {
    const std::size_t length = (std::size_t{buffer[consumed]} << 8) |
                               buffer[consumed + 1];
    if (length == 0) {
      ++stats_.zero_frames;
      consumed += 2;
      continue;
    }
    if (length > options_.max_frame) {
      ++stats_.oversize_frames;
      return false;
    }
    if (buffer.size() - consumed < 2 + length) break;  // frame incomplete
    ++stats_.frames_in;
    if (on_frame_) {
      on_frame_(peer, conn,
                std::span<const std::uint8_t>(buffer.data() + consumed + 2,
                                              length),
                now);
    }
    consumed += 2 + length;
  }
  if (consumed > 0) {
    buffer.erase(buffer.begin(),
                 buffer.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  return true;
}

void StreamSocket::send_frame(net::Ipv4Addr peer, std::uint32_t conn,
                              std::span<const std::uint8_t> frame,
                              net::SimTime now, double latency) {
  assert(frame.size() <= options_.max_frame);
  const std::uint64_t conn_key = key(peer, conn);
  std::uint32_t offset = 0;
  if (auto it = send_offsets_.find(conn_key); it != send_offsets_.end()) {
    offset = it->second;
  }
  // The stream bytes: 2-byte big-endian length prefix, then the frame.
  std::vector<std::uint8_t> stream;
  stream.reserve(2 + frame.size());
  stream.push_back(static_cast<std::uint8_t>(frame.size() >> 8));
  stream.push_back(static_cast<std::uint8_t>(frame.size()));
  stream.insert(stream.end(), frame.begin(), frame.end());

  const std::size_t mss = std::max<std::size_t>(1, options_.segment_bytes);
  for (std::size_t at = 0; at < stream.size(); at += mss) {
    const std::size_t take = std::min(mss, stream.size() - at);
    std::vector<std::uint8_t> payload;
    payload.reserve(kSegmentHeader + take);
    payload.push_back(static_cast<std::uint8_t>(conn >> 24));
    payload.push_back(static_cast<std::uint8_t>(conn >> 16));
    payload.push_back(static_cast<std::uint8_t>(conn >> 8));
    payload.push_back(static_cast<std::uint8_t>(conn));
    payload.push_back(static_cast<std::uint8_t>(offset >> 24));
    payload.push_back(static_cast<std::uint8_t>(offset >> 16));
    payload.push_back(static_cast<std::uint8_t>(offset >> 8));
    payload.push_back(static_cast<std::uint8_t>(offset));
    payload.insert(payload.end(), stream.begin() + at,
                   stream.begin() + at + take);
    bus_.send(local_, peer, netsim::Proto::kTcp, std::move(payload), now,
              latency);
    offset += static_cast<std::uint32_t>(take);
    ++stats_.segments_out;
  }
  send_offsets_[conn_key] = offset;
  ++stats_.frames_out;
}

void StreamSocket::close(net::Ipv4Addr peer, std::uint32_t conn) {
  const std::uint64_t conn_key = key(peer, conn);
  recv_.erase(conn_key);
  send_offsets_.erase(conn_key);
}

}  // namespace netclients::netsvc
