#include "netsvc/client.h"

#include <algorithm>

#include "core/obs/obs.h"
#include "net/rng.h"

namespace netclients::netsvc {

using core::serve::LookupResult;
using googledns::Transport;

void ClientStats::publish() const {
  obs::Registry& registry = obs::Registry::global();
  registry.counter("netsvc.client.udp_queries").add(udp_queries);
  registry.counter("netsvc.client.tcp_queries").add(tcp_queries);
  registry.counter("netsvc.client.responses").add(responses);
  registry.counter("netsvc.client.retries").add(retries);
  registry.counter("netsvc.client.timeouts").add(timeouts);
  registry.counter("netsvc.client.truncated_seen").add(truncated_seen);
  registry.counter("netsvc.client.escalations").add(escalations);
  registry.counter("netsvc.client.failed_chunks").add(failed_chunks);
  registry.counter("netsvc.client.breaker_skipped").add(breaker_skipped);
  registry.counter("netsvc.client.discarded").add(discarded);
  registry.counter("netsvc.client.oversize_queries").add(oversize_queries);
}

Client::Client(netsim::MessageBus& bus, net::Ipv4Addr address,
               net::Ipv4Addr server, ClientOptions options)
    : bus_(bus),
      address_(address),
      server_(server),
      options_(options),
      stream_(bus, address, options.stream),
      breaker_(options.breaker),
      transport_(options.transport) {
  stream_.on_frame([this](net::Ipv4Addr, std::uint32_t,
                          std::span<const std::uint8_t> frame, net::SimTime) {
    offer_response(frame);
  });
  bus_.attach(address_, [this](const netsim::Datagram& d, net::SimTime now) {
    if (d.proto == netsim::Proto::kTcp) {
      stream_.ingest(d, now);
      return;
    }
    offer_response(d.payload);
  });
}

Client::~Client() { bus_.detach(address_); }

void Client::lookup_many(std::span<const net::Ipv4Addr> addrs,
                         LookupResult* out) {
  const std::size_t batch = std::clamp<std::size_t>(
      options_.batch_per_message, 1, kMaxQuestionsPerMessage);
  for (std::size_t offset = 0; offset < addrs.size(); offset += batch) {
    const std::size_t take = std::min(batch, addrs.size() - offset);
    lookup_chunk(addrs.subspan(offset, take), out + offset);
  }
}

std::vector<LookupResult> Client::lookup_many(
    std::span<const net::Ipv4Addr> addrs) {
  std::vector<LookupResult> out(addrs.size());
  lookup_many(addrs, out.data());
  return out;
}

void Client::lookup_chunk(std::span<const net::Ipv4Addr> addrs,
                          LookupResult* out) {
  // Failure shape: misses. Overwritten on success.
  std::fill_n(out, addrs.size(), LookupResult{});
  if (!breaker_.allow(bus_.now())) {
    ++stats_.breaker_skipped;
    ++stats_.failed_chunks;
    return;
  }
  const std::uint64_t chunk_key = net::stable_seed(
      std::uint64_t{addrs.front().value()}, std::uint64_t{addrs.size()});
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  int tries = 0;
  double send_at = bus_.now();
  while (true) {
    Transport transport = transport_;
    if (transport == Transport::kUdp &&
        query_wire_size(addrs.size()) > options_.udp_payload_cap) {
      // The bus would truncate the *query* in flight; ask over TCP
      // without flipping the sticky transport.
      ++stats_.oversize_queries;
      transport = Transport::kTcp;
    }
    if (next_id_ == 0) next_id_ = 1;
    const std::uint16_t id = next_id_++;
    const std::uint32_t conn = send_request(id, addrs, transport, send_at);
    pending_id_ = id;
    have_response_ = false;
    const bool answered =
        pump_until(send_at + options_.retry.timeout_for(transport));
    pending_id_ = 0;
    if (transport == Transport::kTcp) stream_.close(server_, conn);

    if (answered) {
      ++stats_.responses;
      if (parse_response(response_, &parsed_)) {
        if (parsed_.truncated) {
          ++stats_.truncated_seen;
          if (transport == Transport::kUdp) {
            // The answer exists but outgrew the UDP cap: re-ask over TCP
            // immediately. Protocol escalation is sticky and consumes no
            // retry budget — it is a success signal, not a failure.
            escalate();
            send_at = bus_.now();
            continue;
          }
          ++stats_.discarded;  // TC over TCP: nonsensical, treat as failure
        } else if (parsed_.rcode != dns::RCode::kNoError) {
          // The server refused the chunk outright (FORMERR/SERVFAIL):
          // retrying the same bytes cannot help.
          ++stats_.discarded;
          ++stats_.failed_chunks;
          breaker_.record_failure(bus_.now());
          return;
        } else if (parsed_.results.size() == addrs.size()) {
          std::copy(parsed_.results.begin(), parsed_.results.end(), out);
          breaker_.record_success();
          consecutive_soft_failures_ = 0;
          return;
        } else {
          ++stats_.discarded;  // short/overfull answer: retry
        }
      } else {
        ++stats_.discarded;  // unparseable response: retry
      }
    } else {
      ++stats_.timeouts;
      if (options_.retry.escalate_udp_to_tcp &&
          transport_ == Transport::kUdp &&
          ++consecutive_soft_failures_ >=
              options_.retry.escalation_threshold) {
        escalate();  // the paper's forced migration, soft-failure-driven
      }
    }
    if (++tries >= max_attempts) {
      ++stats_.failed_chunks;
      breaker_.record_failure(bus_.now());
      return;
    }
    ++stats_.retries;
    send_at = bus_.now() + options_.retry.backoff_before(tries, chunk_key);
  }
}

std::uint32_t Client::send_request(std::uint16_t id,
                                   std::span<const net::Ipv4Addr> addrs,
                                   Transport transport, double send_at) {
  const auto query = encode_query(id, addrs, arena_);
  if (transport == Transport::kUdp) {
    ++stats_.udp_queries;
    bus_.send(address_, server_, netsim::Proto::kUdp,
              {query.begin(), query.end()}, send_at,
              options_.request_latency);
    return 0;
  }
  ++stats_.tcp_queries;
  // A fresh connection per attempt: a mid-frame loss poisons only its own
  // stream, and the retry starts at offset zero instead of hanging.
  const std::uint32_t conn = next_conn_++;
  stream_.send_frame(server_, conn, query, send_at, options_.request_latency);
  return conn;
}

bool Client::pump_until(double deadline) {
  while (!have_response_) {
    const auto next = bus_.next_event_time();
    if (!next || *next > deadline) {
      bus_.run_until(deadline);
      break;
    }
    bus_.run_until(*next);
  }
  return have_response_;
}

void Client::offer_response(std::span<const std::uint8_t> payload) {
  if (have_response_ || payload.size() < 12) {
    ++stats_.discarded;
    return;
  }
  const std::uint16_t id =
      static_cast<std::uint16_t>(payload[0] << 8 | payload[1]);
  if (id != pending_id_) {
    ++stats_.discarded;  // stale: an attempt we already timed out
    return;
  }
  response_.assign(payload.begin(), payload.end());
  have_response_ = true;
}

void Client::escalate() {
  if (transport_ == Transport::kTcp) return;
  transport_ = Transport::kTcp;
  ++stats_.escalations;
  consecutive_soft_failures_ = 0;
}

}  // namespace netclients::netsvc
